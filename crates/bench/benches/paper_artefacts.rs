//! One Criterion bench group per table/figure of the paper.
//!
//! Each bench regenerates (a reduced but representative slice of) the
//! corresponding artefact; the measured quantity is the simulator's
//! wall-clock cost, and the bench body asserts the artefact's headline
//! property so a regression in *results* fails the bench run loudly.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use faas_bench::{run_burst, scheduled};
use faas_core::Policy;
use faas_experiments::{fig2, fig5, fig6, grid, table1, Effort};
use faas_invoker::NodeMode;
use std::hint::black_box;

fn quick() -> Effort {
    Effort {
        seeds: 1,
        quick: true,
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_calibration", |b| {
        b.iter(|| {
            let r = table1::run(black_box(7));
            assert_eq!(r.rows.len(), 11);
            black_box(r)
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_coldstarts", |b| {
        b.iter(|| {
            let r = fig2::run(black_box(quick()));
            assert!(!r.points.is_empty());
            black_box(r)
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    // Table II's input: one FIFO and one baseline run of a mid-grid cell.
    c.bench_function("table2_completion", |b| {
        b.iter(|| {
            let fifo = run_burst(10, 40, &scheduled(Policy::Fifo), 3);
            let base = run_burst(10, 40, &NodeMode::Baseline, 3);
            let ratio = fifo.last_completion.as_secs_f64() / base.last_completion.as_secs_f64();
            assert!(ratio > 0.2 && ratio < 3.0, "ratio {ratio}");
            black_box(ratio)
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_grid", |b| {
        b.iter(|| {
            let g = grid::run(black_box(quick()));
            assert_eq!(g.cells.len(), 12);
            black_box(g)
        })
    });
}

fn bench_fig3(c: &mut Criterion) {
    // Fig. 3's per-panel content: all six strategies on one panel.
    c.bench_function("fig3_response_time", |b| {
        b.iter_batched(
            || (),
            |_| {
                for policy in [Policy::Fifo, Policy::Sept, Policy::FairChoice] {
                    let r = run_burst(10, 30, &scheduled(policy), 5);
                    black_box(r);
                }
            },
            BatchSize::PerIteration,
        )
    });
}

fn bench_fig4(c: &mut Criterion) {
    // Fig. 4 shares runs with Fig. 3; bench the stretch aggregation on top.
    c.bench_function("fig4_stretch", |b| {
        let catalogue = faas_workload::sebs::Catalogue::sebs();
        let run = run_burst(10, 30, &scheduled(Policy::Sept), 6);
        let outcomes: Vec<&faas_workload::trace::CallOutcome> = run.measured().collect();
        b.iter(|| {
            let s =
                faas_metrics::summary::stretch_boxplot(black_box(&outcomes), black_box(&catalogue));
            assert!(s.median >= 0.0);
            black_box(s)
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_fairness", |b| {
        b.iter(|| {
            let r = fig5::run(black_box(Effort {
                seeds: 1,
                quick: true,
            }));
            assert_eq!(r.rows.len(), 6);
            black_box(r)
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_multinode", |b| {
        b.iter(|| {
            let r = fig6::run(black_box(Effort {
                seeds: 1,
                quick: true,
            }));
            assert!(!r.rows.is_empty());
            black_box(r)
        })
    });
}

criterion_group! {
    name = artefacts;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig2, bench_table2, bench_table3,
              bench_fig3, bench_fig4, bench_fig5, bench_fig6
}
criterion_main!(artefacts);
