//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * estimator window size (the paper fixes 10 following its ref. \[18\]);
//! * Fair-Choice window `T` (the paper suggests 60 s);
//! * Fair-Choice count semantics (received vs concluded calls);
//! * busy-container limit (exactly `cores` in the paper vs oversubscribed).
//!
//! Each bench runs the mid-grid configuration (10 cores, intensity 60) and
//! reports the simulator cost; the asserted values pin the *qualitative*
//! result of each ablation so regressions surface here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faas_core::{FcCountMode, Policy, SchedulerConfig};
use faas_invoker::{simulate_scenario, NodeConfig, NodeMode};
use faas_simcore::time::SimDuration;
use faas_workload::scenario::BurstScenario;
use faas_workload::sebs::Catalogue;
use std::hint::black_box;

fn avg_response(cfg: SchedulerConfig, seed: u64) -> f64 {
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(10, 60).generate(&catalogue, seed);
    let result = simulate_scenario(
        &catalogue,
        &scenario,
        &NodeMode::Scheduled(cfg),
        &NodeConfig::paper(10),
        seed,
    );
    let v: Vec<f64> = result
        .measured()
        .map(|o| o.response_time().as_secs_f64())
        .collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn bench_estimate_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_estimate_window");
    group.sample_size(10);
    for window in [1usize, 3, 10, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                let mut cfg = SchedulerConfig::paper(Policy::Sept);
                cfg.estimate_window = w;
                black_box(avg_response(cfg, 11))
            })
        });
    }
    group.finish();
}

fn bench_fc_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fc_window");
    group.sample_size(10);
    for secs in [15u64, 60, 240] {
        group.bench_with_input(BenchmarkId::from_parameter(secs), &secs, |b, &t| {
            b.iter(|| {
                let mut cfg = SchedulerConfig::paper(Policy::FairChoice);
                cfg.fc_window = SimDuration::from_secs(t);
                black_box(avg_response(cfg, 12))
            })
        });
    }
    group.finish();
}

fn bench_fc_count_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fc_count_mode");
    group.sample_size(10);
    for (name, mode) in [
        ("arrivals", FcCountMode::Arrivals),
        ("completions", FcCountMode::Completions),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = SchedulerConfig::paper(Policy::FairChoice);
                cfg.fc_count_mode = mode;
                black_box(avg_response(cfg, 13))
            })
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_estimate_window,
    bench_fc_window,
    bench_fc_count_mode
);
criterion_main!(ablations);
