//! Micro-benchmarks of the scheduling primitives: the per-call work the
//! paper's invoker modification adds to OpenWhisk's hot path, plus the GPS
//! kernel under baseline-mode oversubscription (virtual-time kernel vs the
//! seed reference integrator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faas_core::{PendingQueue, Policy, SchedulerConfig, SchedulerState};
use faas_cpu::bench_support::{churn_params, run_churn};
use faas_cpu::{GpsCpu, ReferenceGpsCpu};
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::sebs::{Catalogue, FuncId};
use std::hint::black_box;

fn bench_priority_computation(c: &mut Criterion) {
    let catalogue = Catalogue::sebs();
    let mut group = c.benchmark_group("priority_computation");
    for policy in Policy::ALL {
        group.bench_function(policy.name(), |b| {
            let mut state = SchedulerState::new(catalogue.len(), SchedulerConfig::paper(policy));
            // Pre-populate history as a loaded node would have it.
            for (func, _) in catalogue.iter() {
                for k in 0..10 {
                    state.on_complete(
                        func,
                        SimDuration::from_millis(100 + k),
                        SimTime::from_millis(100 * k),
                    );
                }
            }
            let mut t = 10_000u64;
            b.iter(|| {
                t += 7;
                let func = FuncId((t % 11) as u16);
                black_box(state.on_receive(func, SimTime::from_millis(t)))
            })
        });
    }
    group.finish();
}

fn bench_queue_ops(c: &mut Criterion) {
    c.bench_function("pending_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = PendingQueue::new();
            for i in 0..1000u32 {
                q.push((i % 97) as f64, i);
            }
            let mut sum = 0u64;
            while let Some(i) = q.pop() {
                sum += i as u64;
            }
            black_box(sum)
        })
    });
}

fn bench_estimator_updates(c: &mut Criterion) {
    c.bench_function("estimator_record_estimate", |b| {
        let mut state = SchedulerState::new(11, SchedulerConfig::paper(Policy::Sept));
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            let func = FuncId((k % 11) as u16);
            state.on_complete(
                func,
                SimDuration::from_millis(k % 9000),
                SimTime::from_millis(k),
            );
            black_box(state.estimate_secs(func))
        })
    });
}

fn bench_gps_oversubscription(c: &mut Criterion) {
    // The paper's stressed regime: hundreds of runnable containers on 10
    // cores (n >> cores). The virtual-time kernel's per-event cost is
    // O(log n); the reference integrator's is O(n).
    let mut group = c.benchmark_group("gps_high_oversubscription");
    group.sample_size(20);
    for tasks in [64usize, 512] {
        group.bench_with_input(
            BenchmarkId::new("virtual_time", tasks),
            &tasks,
            |b, &tasks| {
                b.iter(|| {
                    let mut kernel = GpsCpu::new(churn_params(10.0));
                    black_box(run_churn(&mut kernel, tasks, 2_000))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("reference", tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                let mut kernel = ReferenceGpsCpu::new(churn_params(10.0));
                black_box(run_churn(&mut kernel, tasks, 2_000))
            })
        });
    }
    group.finish();
}

criterion_group!(
    micro,
    bench_priority_computation,
    bench_queue_ops,
    bench_estimator_updates,
    bench_gps_oversubscription
);
criterion_main!(micro);
