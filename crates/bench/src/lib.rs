//! # faas-bench
//!
//! Criterion benchmark targets, one per table/figure of the paper plus
//! micro-benchmarks of the scheduling primitives.
//!
//! | Bench target | Regenerates |
//! |--------------|-------------|
//! | `table1_calibration` | Table I idle-system latencies |
//! | `fig2_coldstarts` | Fig. 2 cold-start sweep (reduced grid) |
//! | `table2_completion` | Table II completion-ratio inputs |
//! | `table3_grid` | Table III/IV grid cells (representative subset) |
//! | `fig3_response_time` | Fig. 3 box-plot inputs |
//! | `fig4_stretch` | Fig. 4 box-plot inputs |
//! | `fig5_fairness` | Fig. 5 fairness panels |
//! | `fig6_multinode` | Fig. 6 / Tables V & VI multi-node runs |
//! | `policy_micro` | Priority computation, queue ops, estimator updates |
//! | `ablations` | Estimator-window / FC-window / FC-count-mode ablations |
//!
//! The benchmarks measure the *simulator's* wall-clock cost of regenerating
//! each artefact (the experiment outputs themselves are deterministic);
//! they double as the regression harness for the hot simulation paths.
//!
//! Helper functions shared by the bench targets live here so each bench
//! file stays declarative.

use faas_core::{Policy, SchedulerConfig};
use faas_invoker::{simulate_scenario, NodeConfig, NodeMode, NodeResult};
use faas_workload::scenario::BurstScenario;
use faas_workload::sebs::Catalogue;

/// Run one single-node burst configuration (shared by several benches).
pub fn run_burst(cores: u32, intensity: u32, mode: &NodeMode, seed: u64) -> NodeResult {
    let catalogue = Catalogue::sebs();
    let scenario = BurstScenario::standard(cores, intensity).generate(&catalogue, seed);
    simulate_scenario(&catalogue, &scenario, mode, &NodeConfig::paper(cores), seed)
}

/// The scheduled mode for a policy with the paper's hyper-parameters.
pub fn scheduled(policy: Policy) -> NodeMode {
    NodeMode::Scheduled(SchedulerConfig::paper(policy))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_burst_produces_outcomes() {
        let r = run_burst(5, 30, &scheduled(Policy::Fifo), 1);
        assert_eq!(r.measured_len(), 165);
    }

    #[test]
    fn baseline_mode_runs() {
        let r = run_burst(5, 30, &NodeMode::Baseline, 1);
        assert_eq!(r.measured_len(), 165);
    }
}
