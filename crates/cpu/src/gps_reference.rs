//! The original O(n)-per-event GPS integrator, kept as an executable
//! specification.
//!
//! This is the seed implementation of [`crate::gps::GpsCpu`] before the
//! virtual-time rewrite: `advance` depletes every slot, `compute_rates`
//! rebuilds the whole rate vector on every call, and `next_completion` /
//! `finished_tasks` scan all slots. It is semantically authoritative —
//! the optimized kernel must reproduce its completion order, completion
//! times, and `work_done` accounting — and is exercised against the
//! production kernel by the differential property tests in
//! `tests/prop_gps_diff.rs` and by the `gps` micro-benchmarks, which report
//! the before/after speedup.
//!
//! Do not use this type in simulations; it exists only as a test and
//! benchmark oracle.

use crate::gps::{GpsParams, Resource, ResourceVector, TaskId, AXES, WORK_EPSILON};
use faas_simcore::time::{SimDuration, SimTime};

#[derive(Debug, Clone, Copy)]
struct Task {
    /// Remaining work in dominant-resource units.
    remaining: f64,
    /// GPS weight (OpenWhisk: proportional to the container memory limit).
    weight: f64,
    /// Upper bound on the task's service rate in dominant-resource units.
    max_rate: f64,
    /// Dominant-normalized demand profile (see
    /// [`ResourceVector::profile`]); `[1.0, 0.0]` for CPU-only tasks.
    demand: [f64; AXES],
}

/// The seed GPS processor bank: correct, allocation-light, but O(n) on
/// every `advance`/`next_completion`/`finished_tasks` call.
#[derive(Debug, Clone)]
pub struct ReferenceGpsCpu {
    params: GpsParams,
    /// Memory-bandwidth capacity; `+inf` disables the axis.
    mem_capacity: f64,
    slots: Vec<Option<Task>>,
    free_slots: Vec<u32>,
    runnable: usize,
    last_advance: SimTime,
    generation: u64,
    work_done: f64,
    rates_scratch: Vec<f64>,
}

impl ReferenceGpsCpu {
    /// Create an empty bank.
    pub fn new(params: GpsParams) -> Self {
        params.validate();
        ReferenceGpsCpu {
            params,
            mem_capacity: f64::INFINITY,
            slots: Vec::new(),
            free_slots: Vec::new(),
            runnable: 0,
            last_advance: SimTime::ZERO,
            generation: 0,
            work_done: 0.0,
            rates_scratch: Vec::new(),
        }
    }

    /// The model parameters.
    pub fn params(&self) -> GpsParams {
        self.params
    }

    /// Number of runnable tasks.
    pub fn len(&self) -> usize {
        self.runnable
    }

    /// True if no task is runnable.
    pub fn is_empty(&self) -> bool {
        self.runnable == 0
    }

    /// Current generation; bumped on every add/remove.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total core-seconds of service delivered so far.
    pub fn work_done(&self) -> f64 {
        self.work_done
    }

    /// Instantaneous service rate of `id` under the current task set.
    pub fn current_rate(&mut self, id: TaskId) -> f64 {
        self.compute_rates();
        self.rates_scratch[id.index() as usize]
    }

    /// Remaining work of a task (after the last `advance`).
    pub fn remaining(&self, id: TaskId) -> f64 {
        self.slots[id.index() as usize]
            .as_ref()
            .expect("remaining() on dead task")
            .remaining
    }

    /// Advance the clock to `now`, depleting every task's remaining work by
    /// the service it received. Must be called with monotone timestamps.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_advance).as_secs_f64();
        self.last_advance = self.last_advance.max(now);
        if dt <= 0.0 || self.runnable == 0 {
            return;
        }
        self.compute_rates();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(task) = slot {
                let served = self.rates_scratch[i] * dt;
                let consumed = served.min(task.remaining);
                task.remaining -= consumed;
                self.work_done += consumed;
            }
        }
    }

    /// Change the bank's core capacity at `now`. The integrator recomputes
    /// the full rate vector on every query anyway, so this is just: settle
    /// served work under the old capacity, swap the parameter, bump the
    /// generation.
    pub fn set_capacity(&mut self, now: SimTime, cores: f64) {
        self.advance(now);
        if cores == self.params.cores {
            return;
        }
        let params = GpsParams {
            cores,
            ..self.params
        };
        params.validate();
        self.params = params;
        self.generation += 1;
    }

    /// Change the capacity of an arbitrary resource axis; mirrors
    /// [`crate::gps::GpsCpu::set_resource_capacity`].
    pub fn set_resource_capacity(&mut self, now: SimTime, resource: Resource, capacity: f64) {
        match resource {
            Resource::Cpu => self.set_capacity(now, capacity),
            Resource::Mem => {
                self.advance(now);
                if capacity == self.mem_capacity {
                    return;
                }
                assert!(
                    capacity > 0.0 && !capacity.is_nan(),
                    "memory bandwidth must be positive (+inf disables the axis), got {capacity}"
                );
                self.mem_capacity = capacity;
                self.generation += 1;
            }
        }
    }

    /// Add a task with `work` core-seconds of demand.
    pub fn add_task(&mut self, now: SimTime, work: f64, weight: f64, max_rate: f64) -> TaskId {
        self.add_task_demand(now, work, weight, max_rate, ResourceVector::CPU_ONLY)
    }

    /// Add a task with an explicit per-resource demand profile. `work` and
    /// `max_rate` are in dominant-resource units, exactly as in
    /// [`crate::gps::GpsCpu::add_task_demand`].
    pub fn add_task_demand(
        &mut self,
        now: SimTime,
        work: f64,
        weight: f64,
        max_rate: f64,
        demand: ResourceVector,
    ) -> TaskId {
        assert!(work >= 0.0 && work.is_finite(), "invalid work {work}");
        assert!(weight > 0.0, "weight must be positive");
        assert!(max_rate > 0.0, "max_rate must be positive");
        let profile = demand.profile();
        self.advance(now);
        self.generation += 1;
        let task = Task {
            remaining: work,
            weight,
            max_rate,
            demand: profile,
        };
        self.runnable += 1;
        if let Some(slot) = self.free_slots.pop() {
            self.slots[slot as usize] = Some(task);
            TaskId::from_index(slot)
        } else {
            self.slots.push(Some(task));
            TaskId::from_index((self.slots.len() - 1) as u32)
        }
    }

    /// Remove a task (completed or aborted), returning its residual work.
    pub fn remove_task(&mut self, now: SimTime, id: TaskId) -> f64 {
        self.advance(now);
        self.generation += 1;
        let task = self.slots[id.index() as usize]
            .take()
            .expect("remove_task on dead task");
        self.free_slots.push(id.index());
        self.runnable -= 1;
        task.remaining
    }

    /// The earliest task completion strictly after `now`, as
    /// `(task, completion time)`. Ties resolve to the lowest slot index.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(TaskId, SimTime)> {
        self.advance(now);
        if self.runnable == 0 {
            return None;
        }
        self.compute_rates();
        let mut best: Option<(usize, f64)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(task) = slot {
                let rate = self.rates_scratch[i];
                // Exhausted tasks complete "now" whatever their rate: a
                // numerically-finished task whose water-filling rate
                // underflowed to zero must not be starved out of the scan
                // while `finished_tasks` keeps reporting it (the owner's
                // completion tick would never fire).
                let eta = if task.remaining <= WORK_EPSILON {
                    0.0
                } else if rate <= 0.0 {
                    continue;
                } else {
                    task.remaining / rate
                };
                match best {
                    Some((_, b)) if eta >= b => {}
                    _ => best = Some((i, eta)),
                }
            }
        }
        best.map(|(i, eta)| {
            (
                TaskId::from_index(i as u32),
                now + SimDuration::from_secs_f64(eta),
            )
        })
    }

    /// All tasks whose remaining work is (numerically) exhausted at `now`,
    /// in slot order.
    pub fn finished_tasks(&mut self, now: SimTime) -> Vec<TaskId> {
        self.advance(now);
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Some(task) if task.remaining <= WORK_EPSILON => Some(TaskId::from_index(i as u32)),
                _ => None,
            })
            .collect()
    }

    /// Water-filling rate computation into `rates_scratch`.
    fn compute_rates(&mut self) {
        self.rates_scratch.clear();
        self.rates_scratch.resize(self.slots.len(), 0.0);
        if self.runnable == 0 {
            return;
        }
        let cap = self.params.effective_capacity(self.runnable);

        // Fast path: uniform weights, max_rates, and demand profiles. The
        // common rate is bounded by every axis the profile touches; axes
        // with zero demand are skipped so the CPU-only case divides by
        // exactly `runnable`, as the scalar integrator did.
        let mut uniform = true;
        let mut first: Option<Task> = None;
        for slot in self.slots.iter().flatten() {
            match first {
                None => first = Some(*slot),
                Some(f) => {
                    if f.weight != slot.weight
                        || f.max_rate != slot.max_rate
                        || f.demand != slot.demand
                    {
                        uniform = false;
                        break;
                    }
                }
            }
        }
        if uniform {
            let f = first.expect("runnable > 0 implies a task exists");
            let mut rate = f.max_rate;
            if f.demand[0] > 0.0 {
                rate = rate.min(cap / (self.runnable as f64 * f.demand[0]));
            }
            if f.demand[1] > 0.0 {
                rate = rate.min(self.mem_capacity / (self.runnable as f64 * f.demand[1]));
            }
            for (i, slot) in self.slots.iter().enumerate() {
                if slot.is_some() {
                    self.rates_scratch[i] = rate;
                }
            }
            return;
        }

        // General water-filling, per resource axis: tasks whose fair share
        // exceeds their cap are pinned at the cap and the surplus
        // redistributed. The shared level is the minimum over axes of
        // (remaining capacity) / (total demand-weighted weight); an axis
        // nobody demands never binds. With CPU-only profiles this reduces
        // bit-for-bit to the scalar loop: axis 0 multiplies by 1.0
        // everywhere and axis 1 accumulates exact zeros.
        let mut active: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect();
        let mut remaining = [cap, self.mem_capacity];
        while !active.is_empty() {
            let mut total_weight = [0.0f64; AXES];
            for &i in &active {
                let task = self.slots[i].as_ref().unwrap();
                for (k, &d) in task.demand.iter().enumerate() {
                    total_weight[k] += task.weight * d;
                }
            }
            let mut per_weight = f64::INFINITY;
            for k in 0..AXES {
                if total_weight[k] > 0.0 {
                    per_weight = per_weight.min(remaining[k] / total_weight[k]);
                }
            }
            let mut pinned_any = false;
            active.retain(|&i| {
                let task = self.slots[i].as_ref().unwrap();
                if task.weight * per_weight >= task.max_rate {
                    self.rates_scratch[i] = task.max_rate;
                    for (k, &d) in task.demand.iter().enumerate() {
                        remaining[k] -= task.max_rate * d;
                    }
                    pinned_any = true;
                    false
                } else {
                    true
                }
            });
            if !pinned_any {
                for &i in &active {
                    let task = self.slots[i].as_ref().unwrap();
                    self.rates_scratch[i] = task.weight * per_weight;
                }
                break;
            }
        }
    }
}
