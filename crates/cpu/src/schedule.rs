//! Reusable churn-schedule test support: random interleavings of
//! add/remove/advance/next-completion over heterogeneous weights and rate
//! caps, plus the differential driver that locks the production kernel to
//! the seed integrator after every step.
//!
//! PR 1 pinned the virtual-time kernel with an inline harness in
//! `tests/prop_gps_diff.rs`. This module is that harness extracted and
//! generalized so the weighted-partition suites
//! (`tests/prop_gps_weighted.rs`), the original differential tests and any
//! future kernel rewrite share one schedule vocabulary:
//!
//! * [`ChurnOp`] — the four kernel operations a schedule interleaves;
//! * [`SignaturePool`] — the `(weight, max_rate)` signatures a schedule
//!   draws from, from the invoker's uniform `(1, 1)` through heavily
//!   heterogeneous weighted-container pools;
//! * [`random_schedule`] — seeded schedule generation;
//! * [`DifferentialPair`] — drives [`GpsCpu`] and [`ReferenceGpsCpu`] in
//!   lockstep, comparing every observable (live count, `work_done`,
//!   per-task remaining, next completion, finished sets, residuals) after
//!   every operation.

use crate::gps::{GpsCpu, GpsParams, TaskId};
use crate::gps_reference::ReferenceGpsCpu;
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};

/// Tolerance on completion-time agreement, seconds.
pub const TIME_TOL: f64 = 1e-6;
/// Tolerance on remaining-work / `work_done` agreement, core-seconds.
pub const WORK_TOL: f64 = 1e-6;

/// One schedule step. Work and time are in milliseconds (of core-time and
/// simulated time respectively) so schedules stay shrink-friendly integer
/// tuples; `sig` indexes the [`SignaturePool`].
#[derive(Debug, Clone, Copy)]
pub enum ChurnOp {
    /// Add a task with `work_ms` milliseconds of core-work and the pool
    /// signature `sig`.
    Add { work_ms: u64, sig: u8 },
    /// Remove the `pick % live`-th live task (no-op when idle).
    Remove { pick: u64 },
    /// Advance simulated time by `dt_ms`.
    Advance { dt_ms: u64 },
    /// Jump to the next predicted completion and retire every finished
    /// task.
    CompleteNext,
}

/// A pool of `(weight, max_rate)` signatures a schedule draws from.
#[derive(Debug, Clone)]
pub struct SignaturePool {
    sigs: Vec<(f64, f64)>,
}

impl SignaturePool {
    /// Build a pool from explicit signatures.
    pub fn new(sigs: Vec<(f64, f64)>) -> Self {
        assert!(!sigs.is_empty(), "signature pool cannot be empty");
        for &(w, c) in &sigs {
            assert!(w > 0.0 && c > 0.0, "invalid signature ({w}, {c})");
        }
        SignaturePool { sigs }
    }

    /// The invoker's single `(1, 1)` signature: schedules stay on the
    /// uniform fast path.
    pub fn uniform() -> Self {
        SignaturePool::new(vec![(1.0, 1.0)])
    }

    /// PR 1's four-signature mixed pool (uniform plus weighted/capped).
    pub fn paper_mixed() -> Self {
        SignaturePool::new(vec![(1.0, 1.0), (2.5, 1.0), (1.0, 0.5), (4.0, 0.25)])
    }

    /// A seeded heterogeneous weighted-container pool: 6–10 signatures
    /// with weights spanning 0.25–8 and caps 0.125–2, plus one cap that
    /// lands exactly on a unit fair share so boundary ties appear in
    /// random schedules.
    pub fn weighted(seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x5166_7001);
        let weights = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
        let caps = [0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0];
        let n = 6 + (rng.next_u64() % 5) as usize;
        let mut sigs: Vec<(f64, f64)> = (0..n)
            .map(|_| (*rng.choose(&weights), *rng.choose(&caps)))
            .collect();
        // Always include the exact-tie signature and a plain uniform one:
        // the interesting partition boundaries must be reachable from any
        // seed.
        sigs[0] = (1.0, 1.0);
        sigs[1] = (2.0, 1.0);
        SignaturePool::new(sigs)
    }

    /// The `sig`-th signature (wrapping).
    pub fn get(&self, sig: u8) -> (f64, f64) {
        self.sigs[sig as usize % self.sigs.len()]
    }

    /// Number of signatures in the pool.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Pools are never empty (asserted at construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Generate a seeded random schedule of `steps` operations drawing
/// signatures `0..sig_range`. Op mix follows the PR 1 harness: 40% adds,
/// 20% advances, 10% removes, 30% completion-driven churn.
pub fn random_schedule(
    rng: &mut Xoshiro256,
    steps: usize,
    sig_range: u8,
    max_work_ms: u64,
    max_dt_ms: u64,
) -> Vec<ChurnOp> {
    assert!(sig_range > 0 && max_work_ms > 0 && max_dt_ms > 0);
    (0..steps)
        .map(|_| match rng.next_u64() % 10 {
            0..=3 => ChurnOp::Add {
                work_ms: 1 + rng.next_u64() % max_work_ms,
                sig: (rng.next_u64() % sig_range as u64) as u8,
            },
            4..=5 => ChurnOp::Advance {
                dt_ms: 1 + rng.next_u64() % max_dt_ms,
            },
            6 => ChurnOp::Remove {
                pick: rng.next_u64(),
            },
            _ => ChurnOp::CompleteNext,
        })
        .collect()
}

/// The production kernel and the seed integrator driven in lockstep.
pub struct DifferentialPair {
    /// The kernel under test.
    pub opt: GpsCpu,
    /// The executable specification.
    pub reference: ReferenceGpsCpu,
    pool: SignaturePool,
    live: Vec<TaskId>,
    now: SimTime,
}

impl DifferentialPair {
    /// Fresh pair over identical parameters.
    pub fn new(cores: f64, kappa: f64, pool: SignaturePool) -> Self {
        let params = GpsParams {
            cores,
            ctx_switch_penalty: kappa,
            penalty_cap: 100.0,
        };
        DifferentialPair {
            opt: GpsCpu::new(params),
            reference: ReferenceGpsCpu::new(params),
            pool,
            live: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time of the pair.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live tasks.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Assert the production kernel sits on the uniform fast path: the
    /// virtual-time representation, with the weighted partition untouched.
    /// The uniform-regression suite calls this after every operation of a
    /// signature-homogeneous schedule.
    pub fn assert_uniform_fast_path(&self) {
        assert!(
            self.opt.is_uniform_mode(),
            "homogeneous workload left the uniform fast path at {:?}",
            self.now
        );
        assert_eq!(
            self.opt.partition_sizes(),
            (0, 0),
            "homogeneous workload touched the partition structure"
        );
    }

    fn check_state(&self) {
        assert_eq!(self.opt.len(), self.reference.len(), "live-count mismatch");
        assert!(
            (self.opt.work_done() - self.reference.work_done()).abs() < WORK_TOL,
            "work_done diverged: optimized={} reference={}",
            self.opt.work_done(),
            self.reference.work_done()
        );
        for &id in &self.live {
            let a = self.opt.remaining(id);
            let b = self.reference.remaining(id);
            assert!(
                (a - b).abs() < WORK_TOL,
                "remaining diverged for {id:?}: optimized={a} reference={b}"
            );
        }
    }

    fn check_next_completion(&mut self) {
        let a = self.opt.next_completion(self.now);
        let b = self.reference.next_completion(self.now);
        match (a, b) {
            (None, None) => {}
            (Some((ida, ta)), Some((idb, tb))) => {
                assert!(
                    (ta.as_secs_f64() - tb.as_secs_f64()).abs() < TIME_TOL,
                    "completion time diverged: optimized=({ida:?}, {ta}) reference=({idb:?}, {tb})"
                );
                if ida != idb {
                    // The kernels may only disagree on a genuine tie: two
                    // tasks whose remaining work is equal in real
                    // arithmetic (floating-point noise breaks the tie
                    // differently in the two algebraic formulations).
                    // Certify the tie; the finished-set comparison after
                    // the completion keeps the kernels in lockstep because
                    // tied tasks finish together.
                    let tie = (self.reference.remaining(ida) - self.reference.remaining(idb)).abs()
                        < WORK_TOL;
                    assert!(
                        tie,
                        "completion order diverged beyond a tie at {:?}: \
                         optimized={ida:?} reference={idb:?} (ref remainings {} vs {})",
                        self.now,
                        self.reference.remaining(ida),
                        self.reference.remaining(idb)
                    );
                }
            }
            (a, b) => panic!("completion presence diverged: optimized={a:?} reference={b:?}"),
        }
    }

    /// Apply one operation to both kernels and compare every observable.
    pub fn apply(&mut self, op: ChurnOp) {
        match op {
            ChurnOp::Add { work_ms, sig } => {
                let work = work_ms as f64 / 1000.0;
                let (weight, max_rate) = self.pool.get(sig);
                let ida = self.opt.add_task(self.now, work, weight, max_rate);
                let idb = self.reference.add_task(self.now, work, weight, max_rate);
                assert_eq!(ida, idb, "slot allocation diverged");
                self.live.push(ida);
            }
            ChurnOp::Remove { pick } => {
                if self.live.is_empty() {
                    return;
                }
                let id = self.live.remove((pick % self.live.len() as u64) as usize);
                let ra = self.opt.remove_task(self.now, id);
                let rb = self.reference.remove_task(self.now, id);
                assert!(
                    (ra - rb).abs() < WORK_TOL,
                    "residual diverged for {id:?}: optimized={ra} reference={rb}"
                );
            }
            ChurnOp::Advance { dt_ms } => {
                self.now += SimDuration::from_millis(dt_ms);
                self.opt.advance(self.now);
                self.reference.advance(self.now);
            }
            ChurnOp::CompleteNext => {
                let Some((id, at)) = self.reference.next_completion(self.now) else {
                    assert!(self.opt.next_completion(self.now).is_none());
                    return;
                };
                self.check_next_completion();
                self.now = self.now.max(at);
                let fa = self.opt.finished_tasks(self.now);
                let fb = self.reference.finished_tasks(self.now);
                assert_eq!(fa, fb, "finished sets diverged at {:?}", self.now);
                assert!(
                    fb.contains(&id) || self.reference.remaining(id) > 0.0,
                    "predicted completion {id:?} neither finished nor pending"
                );
                for done in fb {
                    self.live.retain(|&l| l != done);
                    let ra = self.opt.remove_task(self.now, done);
                    let rb = self.reference.remove_task(self.now, done);
                    assert!((ra - rb).abs() < WORK_TOL, "finished residual diverged");
                }
            }
        }
        self.check_state();
        self.check_next_completion();
    }

    /// Drive every remaining task to completion, comparing the full
    /// completion order.
    pub fn drain(&mut self) {
        let mut guard = 0usize;
        while !self.reference.is_empty() {
            self.apply(ChurnOp::CompleteNext);
            guard += 1;
            assert!(guard < 100_000, "drain did not converge");
        }
        assert!(self.opt.is_empty(), "optimized kernel retained tasks");
    }
}

/// Drive one fully seeded random schedule end to end: node shape, schedule
/// and pool choice all derive from `seed`. The volume sweeps call this in
/// a loop; a failing seed reproduces exactly.
pub fn run_differential_schedule(seed: u64, pool: &SignaturePool, max_steps: usize) {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xD1FF_5EED);
    let cores = 1.0 + (rng.next_u64() % 12) as f64;
    let kappa = (rng.next_u64() % 100) as f64 / 100.0;
    let steps = max_steps / 4 + (rng.next_u64() % (3 * max_steps as u64 / 4).max(1)) as usize;
    let ops = random_schedule(&mut rng, steps, pool.len() as u8, 4_000, 1_200);
    let mut pair = DifferentialPair::new(cores, kappa, pool.clone());
    for op in ops {
        pair.apply(op);
    }
    pair.drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_lookup_wraps() {
        let pool = SignaturePool::paper_mixed();
        assert_eq!(pool.get(0), pool.get(4));
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn weighted_pools_are_seed_deterministic_and_diverse() {
        let a = SignaturePool::weighted(7);
        let b = SignaturePool::weighted(7);
        assert_eq!(a.sigs, b.sigs, "same seed, same pool");
        assert!(a.len() >= 6);
        let distinct: std::collections::BTreeSet<(u64, u64)> = a
            .sigs
            .iter()
            .map(|&(w, c)| (w.to_bits(), c.to_bits()))
            .collect();
        assert!(distinct.len() >= 2, "pool must be heterogeneous");
    }

    #[test]
    fn random_schedules_are_seed_deterministic() {
        let gen = |seed: u64| {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            random_schedule(&mut rng, 50, 4, 1_000, 500)
        };
        let fmt = |ops: &[ChurnOp]| format!("{ops:?}");
        assert_eq!(fmt(&gen(3)), fmt(&gen(3)));
        assert_ne!(fmt(&gen(3)), fmt(&gen(4)));
    }

    #[test]
    fn differential_pair_smoke() {
        run_differential_schedule(1, &SignaturePool::paper_mixed(), 60);
        run_differential_schedule(2, &SignaturePool::weighted(2), 60);
    }
}
