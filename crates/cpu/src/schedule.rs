//! Reusable churn-schedule test support: random interleavings of
//! add/remove/advance/next-completion over heterogeneous weights and rate
//! caps, plus the differential driver that locks the production kernel to
//! the seed integrator after every step.
//!
//! PR 1 pinned the virtual-time kernel with an inline harness in
//! `tests/prop_gps_diff.rs`. This module is that harness extracted and
//! generalized so the weighted-partition suites
//! (`tests/prop_gps_weighted.rs`), the original differential tests and any
//! future kernel rewrite share one schedule vocabulary:
//!
//! * [`ChurnOp`] — the four kernel operations a schedule interleaves;
//! * [`SignaturePool`] — the `(weight, max_rate)` signatures a schedule
//!   draws from, from the invoker's uniform `(1, 1)` through heavily
//!   heterogeneous weighted-container pools;
//! * [`random_schedule`] — seeded schedule generation;
//! * [`DifferentialPair`] — drives [`GpsCpu`] and [`ReferenceGpsCpu`] in
//!   lockstep, comparing every observable (live count, `work_done`,
//!   per-task remaining, next completion, finished sets, residuals) after
//!   every operation.

use crate::gps::{GpsCpu, GpsParams, Resource, ResourceVector, TaskId};
use crate::gps_reference::ReferenceGpsCpu;
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};

/// Tolerance on completion-time agreement, seconds.
pub const TIME_TOL: f64 = 1e-6;
/// Tolerance on remaining-work / `work_done` agreement, core-seconds.
pub const WORK_TOL: f64 = 1e-6;

/// One schedule step. Work and time are in milliseconds (of core-time and
/// simulated time respectively) so schedules stay shrink-friendly integer
/// tuples; `sig` indexes the [`SignaturePool`].
#[derive(Debug, Clone, Copy)]
pub enum ChurnOp {
    /// Add a task with `work_ms` milliseconds of core-work and the pool
    /// signature `sig`.
    Add { work_ms: u64, sig: u8 },
    /// Remove the `pick % live`-th live task (no-op when idle).
    Remove { pick: u64 },
    /// Remove the `pick`-th live task *of pool signature `sig`* (no-op
    /// when no such task is live): lets schedules thrash the water level
    /// by targeting the heavy swing signature.
    RemoveSig { sig: u8, pick: u64 },
    /// Remove *every* live task of pool signature `sig`. Random removal
    /// almost never drains a whole signature class, so plain schedules
    /// cannot force general→uniform mode flips on demand; this op can.
    DrainSig { sig: u8 },
    /// Advance simulated time by `dt_ms`.
    Advance { dt_ms: u64 },
    /// Jump to the next predicted completion and retire every finished
    /// task.
    CompleteNext,
    /// Set the node capacity to `cores_centi / 100` cores (dynamic
    /// capacity: degradation and restoration ramps). Applied to both
    /// kernels; zero is clamped to one centi-core so shrunk schedules stay
    /// valid.
    SetCapacity { cores_centi: u64 },
    /// Set the memory-bandwidth capacity to `mem_centi / 100` units
    /// (multi-resource DRF schedules only). Zero is clamped to one
    /// centi-unit; applied to both kernels.
    SetMemCapacity { mem_centi: u64 },
}

/// A pool of `(weight, max_rate, demand)` signatures a schedule draws
/// from. Single-resource pools carry [`ResourceVector::CPU_ONLY`] demands,
/// which keeps every pre-DRF suite on the bit-identical degenerate path.
#[derive(Debug, Clone)]
pub struct SignaturePool {
    sigs: Vec<(f64, f64, ResourceVector)>,
}

impl SignaturePool {
    /// Build a CPU-only pool from explicit `(weight, max_rate)` signatures.
    pub fn new(sigs: Vec<(f64, f64)>) -> Self {
        SignaturePool::new_with_demands(
            sigs.into_iter()
                .map(|(w, c)| (w, c, ResourceVector::CPU_ONLY))
                .collect(),
        )
    }

    /// Build a multi-resource pool from explicit
    /// `(weight, max_rate, demand)` signatures.
    pub fn new_with_demands(sigs: Vec<(f64, f64, ResourceVector)>) -> Self {
        assert!(!sigs.is_empty(), "signature pool cannot be empty");
        for &(w, c, d) in &sigs {
            assert!(w > 0.0 && c > 0.0, "invalid signature ({w}, {c})");
            // Profile normalization also validates the vector.
            let _ = d.profile();
        }
        SignaturePool { sigs }
    }

    /// The invoker's single `(1, 1)` signature: schedules stay on the
    /// uniform fast path.
    pub fn uniform() -> Self {
        SignaturePool::new(vec![(1.0, 1.0)])
    }

    /// PR 1's four-signature mixed pool (uniform plus weighted/capped).
    pub fn paper_mixed() -> Self {
        SignaturePool::new(vec![(1.0, 1.0), (2.5, 1.0), (1.0, 0.5), (4.0, 0.25)])
    }

    /// A seeded heterogeneous weighted-container pool: 6–10 signatures
    /// with weights spanning 0.25–8 and caps 0.125–2, plus one cap that
    /// lands exactly on a unit fair share so boundary ties appear in
    /// random schedules.
    pub fn weighted(seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x5166_7001);
        let weights = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
        let caps = [0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0];
        let n = 6 + (rng.next_u64() % 5) as usize;
        let mut sigs: Vec<(f64, f64)> = (0..n)
            .map(|_| (*rng.choose(&weights), *rng.choose(&caps)))
            .collect();
        // Always include the exact-tie signature and a plain uniform one:
        // the interesting partition boundaries must be reachable from any
        // seed.
        sigs[0] = (1.0, 1.0);
        sigs[1] = (2.0, 1.0);
        SignaturePool::new(sigs)
    }

    /// A ladder of pin ratios around the unit fair share plus one
    /// heavy-weight swing signature: adding or removing a swing task moves
    /// the water level across several ladder rungs at once, so every such
    /// membership change forces a batch of capped/uncapped boundary
    /// crossings (the re-keying path of the two-clock kernel). Signature 0
    /// is the swing; 1 is the plain uniform `(1, 1)` rung, so draining
    /// everything else flips the bank back to uniform mode.
    pub fn boundary_ladder() -> Self {
        SignaturePool::new(vec![
            (8.0, 8.0), // swing: ratio 1.0, weight dominates the level
            (1.0, 1.0), // uniform rung (also the mode-flip anchor)
            (1.0, 0.2),
            (1.0, 0.35),
            (1.0, 0.5),
            (1.0, 0.65),
            (1.0, 0.8),
            (2.0, 1.0), // ratio 0.5 at double weight: ties with the mid rung
        ])
    }

    /// A mixed DRF pool: the paper's weighted/capped signatures crossed
    /// with CPU-only, balanced, CPU-heavy and memory-dominant demand
    /// profiles, so schedules exercise every partition shape the
    /// dominant-share kernel distinguishes (pure axis-0, both axes, axis-1
    /// dominant).
    pub fn drf_mixed() -> Self {
        SignaturePool::new_with_demands(vec![
            (1.0, 1.0, ResourceVector::CPU_ONLY),
            (2.5, 1.0, ResourceVector::per_cpu(0.5)),
            (1.0, 0.5, ResourceVector::per_cpu(1.0)),
            (4.0, 0.25, ResourceVector::per_cpu(2.0)),
            (1.0, 1.0, ResourceVector::per_cpu(4.0)),
        ])
    }

    /// A seeded heterogeneous DRF pool: the [`SignaturePool::weighted`]
    /// weight/cap lattice crossed with a seeded memory-per-CPU draw
    /// (including exact zeros, so degenerate and demanding signatures mix
    /// in one schedule). Signature 0 is pinned CPU-only and signature 1 to
    /// the balanced 1:1 profile.
    pub fn drf_weighted(seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xD8F5_1CE5);
        let weights = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
        let caps = [0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0];
        let mems = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0];
        let n = 6 + (rng.next_u64() % 5) as usize;
        let mut sigs: Vec<(f64, f64, ResourceVector)> = (0..n)
            .map(|_| {
                (
                    *rng.choose(&weights),
                    *rng.choose(&caps),
                    ResourceVector::per_cpu(*rng.choose(&mems)),
                )
            })
            .collect();
        sigs[0] = (1.0, 1.0, ResourceVector::CPU_ONLY);
        sigs[1] = (2.0, 1.0, ResourceVector::per_cpu(1.0));
        SignaturePool::new_with_demands(sigs)
    }

    /// The `sig`-th signature's `(weight, max_rate)` (wrapping).
    pub fn get(&self, sig: u8) -> (f64, f64) {
        let (w, c, _) = self.sigs[sig as usize % self.sigs.len()];
        (w, c)
    }

    /// The `sig`-th full `(weight, max_rate, demand)` signature (wrapping).
    pub fn get_full(&self, sig: u8) -> (f64, f64, ResourceVector) {
        self.sigs[sig as usize % self.sigs.len()]
    }

    /// Number of signatures in the pool.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Pools are never empty (asserted at construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Generate a seeded random schedule of `steps` operations drawing
/// signatures `0..sig_range`. Op mix follows the PR 1 harness: 40% adds,
/// 20% advances, 10% removes, 30% completion-driven churn.
pub fn random_schedule(
    rng: &mut Xoshiro256,
    steps: usize,
    sig_range: u8,
    max_work_ms: u64,
    max_dt_ms: u64,
) -> Vec<ChurnOp> {
    assert!(sig_range > 0 && max_work_ms > 0 && max_dt_ms > 0);
    (0..steps)
        .map(|_| match rng.next_u64() % 10 {
            0..=3 => ChurnOp::Add {
                work_ms: 1 + rng.next_u64() % max_work_ms,
                sig: (rng.next_u64() % sig_range as u64) as u8,
            },
            4..=5 => ChurnOp::Advance {
                dt_ms: 1 + rng.next_u64() % max_dt_ms,
            },
            6 => ChurnOp::Remove {
                pick: rng.next_u64(),
            },
            _ => ChurnOp::CompleteNext,
        })
        .collect()
}

/// Generate a seeded multi-resource schedule: the [`random_schedule`] op
/// mix with one slot of the decade re-pointed at memory-bandwidth capacity
/// churn, so DRF schedules move the binding axis (CPU↔memory) while tasks
/// come and go. `mem_centi_range` bounds the bandwidth draw, in
/// centi-units above the one-centi floor.
pub fn drf_schedule(
    rng: &mut Xoshiro256,
    steps: usize,
    sig_range: u8,
    max_work_ms: u64,
    max_dt_ms: u64,
    mem_centi_range: u64,
) -> Vec<ChurnOp> {
    assert!(sig_range > 0 && max_work_ms > 0 && max_dt_ms > 0 && mem_centi_range > 0);
    (0..steps)
        .map(|_| match rng.next_u64() % 10 {
            0..=3 => ChurnOp::Add {
                work_ms: 1 + rng.next_u64() % max_work_ms,
                sig: (rng.next_u64() % sig_range as u64) as u8,
            },
            4..=5 => ChurnOp::Advance {
                dt_ms: 1 + rng.next_u64() % max_dt_ms,
            },
            6 => ChurnOp::Remove {
                pick: rng.next_u64(),
            },
            7 => ChurnOp::SetMemCapacity {
                mem_centi: 1 + rng.next_u64() % mem_centi_range,
            },
            _ => ChurnOp::CompleteNext,
        })
        .collect()
}

/// Generate a seeded schedule that deliberately thrashes the
/// capped/uncapped boundary and the uniform↔general mode flip, for the
/// [`SignaturePool::boundary_ladder`] pool. Each block populates the
/// ladder, slams the heavy swing signature in and out (every swing move
/// shifts the water level across several rungs — a batch of boundary
/// crossings, i.e. heap re-keys), and every other block drains all
/// heterogeneous signatures *mid-completion-stream* so the bank flips to
/// uniform and back while completions are being consumed.
pub fn boundary_thrash_schedule(rng: &mut Xoshiro256, blocks: usize, pool_len: u8) -> Vec<ChurnOp> {
    assert!(
        pool_len > 2,
        "thrash schedules need swing + uniform + rungs"
    );
    let mut ops = Vec::new();
    for block in 0..blocks {
        // Populate the ladder rungs (signatures 2..) around the boundary.
        for _ in 0..3 + rng.next_u64() % 5 {
            ops.push(ChurnOp::Add {
                work_ms: 200 + rng.next_u64() % 2_500,
                sig: 2 + (rng.next_u64() % (pool_len as u64 - 2)) as u8,
            });
        }
        // Keep a uniform anchor alive so mode flips have a survivor.
        ops.push(ChurnOp::Add {
            work_ms: 400 + rng.next_u64() % 2_000,
            sig: 1,
        });
        // Swing in: the water level dives, pinning a batch of rungs.
        ops.push(ChurnOp::Add {
            work_ms: 500 + rng.next_u64() % 3_000,
            sig: 0,
        });
        ops.push(ChurnOp::CompleteNext);
        ops.push(ChurnOp::Advance {
            dt_ms: 1 + rng.next_u64() % 400,
        });
        // Swing out: the level jumps back up, unpinning across the rungs.
        ops.push(ChurnOp::RemoveSig {
            sig: 0,
            pick: rng.next_u64(),
        });
        ops.push(ChurnOp::CompleteNext);
        if block % 2 == 1 {
            // Mid-stream mode flip: drain every heterogeneous signature so
            // only the uniform anchor survives, consume a completion in
            // uniform mode, then the next block re-enters general mode.
            for sig in 2..pool_len {
                ops.push(ChurnOp::DrainSig { sig });
            }
            ops.push(ChurnOp::DrainSig { sig: 0 });
            ops.push(ChurnOp::CompleteNext);
        }
    }
    ops
}

/// Generate a seeded schedule that thrashes the node *capacity* on top of
/// boundary-ladder membership churn, for the
/// [`SignaturePool::boundary_ladder`] pool. Each block populates the
/// ladder, then walks the capacity through a degradation ramp (step-downs
/// with churn and completions between the steps — every step moves the
/// water level, forcing capped/uncapped boundary crossings), holds the
/// trough, and restores — sometimes past the original capacity (autoscale
/// overshoot). Every other block drains the heterogeneous signatures so
/// capacity changes also land in uniform mode and on the representation
/// flips themselves.
pub fn capacity_thrash_schedule(
    rng: &mut Xoshiro256,
    blocks: usize,
    pool_len: u8,
    base_centi: u64,
) -> Vec<ChurnOp> {
    assert!(
        pool_len > 2,
        "thrash schedules need swing + uniform + rungs"
    );
    assert!(base_centi >= 100, "base capacity below one core");
    let mut ops = Vec::new();
    for block in 0..blocks {
        // Populate the ladder rungs and the uniform anchor.
        for _ in 0..3 + rng.next_u64() % 5 {
            ops.push(ChurnOp::Add {
                work_ms: 200 + rng.next_u64() % 2_500,
                sig: 2 + (rng.next_u64() % (pool_len as u64 - 2)) as u8,
            });
        }
        ops.push(ChurnOp::Add {
            work_ms: 400 + rng.next_u64() % 2_000,
            sig: 1,
        });
        if rng.next_u64().is_multiple_of(2) {
            // Heavy swing task: its weight dominates the water level, so
            // capacity steps move the boundary across several rungs.
            ops.push(ChurnOp::Add {
                work_ms: 500 + rng.next_u64() % 3_000,
                sig: 0,
            });
        }
        // Degradation ramp: step down to a trough between 10% and 60% of
        // base, in 2–4 steps, with completions and time between the steps.
        let trough = base_centi * (10 + rng.next_u64() % 51) / 100;
        let steps = 2 + rng.next_u64() % 3;
        for step in 1..=steps {
            let level = base_centi - (base_centi - trough) * step / steps;
            ops.push(ChurnOp::SetCapacity { cores_centi: level });
            ops.push(ChurnOp::Advance {
                dt_ms: 1 + rng.next_u64() % 400,
            });
            ops.push(ChurnOp::CompleteNext);
        }
        // Hold the trough under churn, then restore — sometimes
        // overshooting base (autoscale-up adding headroom).
        ops.push(ChurnOp::Remove {
            pick: rng.next_u64(),
        });
        ops.push(ChurnOp::CompleteNext);
        let restored = if rng.next_u64().is_multiple_of(4) {
            base_centi + base_centi * (rng.next_u64() % 50) / 100
        } else {
            base_centi
        };
        ops.push(ChurnOp::SetCapacity {
            cores_centi: restored,
        });
        ops.push(ChurnOp::CompleteNext);
        if block % 2 == 1 {
            // Flip to uniform mode mid-stream and thrash capacity there
            // too: the memoized uniform rate must track every change.
            for sig in 2..pool_len {
                ops.push(ChurnOp::DrainSig { sig });
            }
            ops.push(ChurnOp::DrainSig { sig: 0 });
            ops.push(ChurnOp::SetCapacity {
                cores_centi: trough.max(100),
            });
            ops.push(ChurnOp::CompleteNext);
            ops.push(ChurnOp::SetCapacity {
                cores_centi: base_centi,
            });
        }
    }
    ops
}

/// The production kernel and the seed integrator driven in lockstep.
pub struct DifferentialPair {
    /// The kernel under test.
    pub opt: GpsCpu,
    /// The executable specification.
    pub reference: ReferenceGpsCpu,
    pool: SignaturePool,
    /// Live tasks with the (wrapped) pool signature they were added under,
    /// so signature-targeted ops can find them.
    live: Vec<(TaskId, u8)>,
    now: SimTime,
}

impl DifferentialPair {
    /// Fresh pair over identical parameters.
    pub fn new(cores: f64, kappa: f64, pool: SignaturePool) -> Self {
        let params = GpsParams {
            cores,
            ctx_switch_penalty: kappa,
            penalty_cap: 100.0,
        };
        DifferentialPair {
            opt: GpsCpu::new(params),
            reference: ReferenceGpsCpu::new(params),
            pool,
            live: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// Fresh pair with a finite memory-bandwidth capacity on both kernels,
    /// for multi-resource DRF schedules.
    pub fn new_with_mem(cores: f64, kappa: f64, mem: f64, pool: SignaturePool) -> Self {
        let mut pair = DifferentialPair::new(cores, kappa, pool);
        pair.opt
            .set_resource_capacity(SimTime::ZERO, Resource::Mem, mem);
        pair.reference
            .set_resource_capacity(SimTime::ZERO, Resource::Mem, mem);
        pair
    }

    /// Current simulated time of the pair.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live tasks.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Assert the production kernel sits on the uniform fast path: the
    /// virtual-time representation, with the weighted partition untouched.
    /// The uniform-regression suite calls this after every operation of a
    /// signature-homogeneous schedule.
    pub fn assert_uniform_fast_path(&self) {
        assert!(
            self.opt.is_uniform_mode(),
            "homogeneous workload left the uniform fast path at {:?}",
            self.now
        );
        assert_eq!(
            self.opt.partition_sizes(),
            (0, 0),
            "homogeneous workload touched the partition structure"
        );
    }

    fn check_state(&self) {
        assert_eq!(self.opt.len(), self.reference.len(), "live-count mismatch");
        assert!(
            (self.opt.work_done() - self.reference.work_done()).abs() < WORK_TOL,
            "work_done diverged: optimized={} reference={}",
            self.opt.work_done(),
            self.reference.work_done()
        );
        for &(id, _) in &self.live {
            let a = self.opt.remaining(id);
            let b = self.reference.remaining(id);
            assert!(
                (a - b).abs() < WORK_TOL,
                "remaining diverged for {id:?}: optimized={a} reference={b}"
            );
        }
    }

    fn check_next_completion(&mut self) {
        let a = self.opt.next_completion(self.now);
        let b = self.reference.next_completion(self.now);
        match (a, b) {
            (None, None) => {}
            (Some((ida, ta)), Some((idb, tb))) => {
                assert!(
                    (ta.as_secs_f64() - tb.as_secs_f64()).abs() < TIME_TOL,
                    "completion time diverged: optimized=({ida:?}, {ta}) reference=({idb:?}, {tb})"
                );
                if ida != idb {
                    // The kernels may only disagree on a genuine tie: two
                    // tasks whose remaining work is equal in real
                    // arithmetic (floating-point noise breaks the tie
                    // differently in the two algebraic formulations).
                    // Certify the tie; the finished-set comparison after
                    // the completion keeps the kernels in lockstep because
                    // tied tasks finish together.
                    let tie = (self.reference.remaining(ida) - self.reference.remaining(idb)).abs()
                        < WORK_TOL;
                    assert!(
                        tie,
                        "completion order diverged beyond a tie at {:?}: \
                         optimized={ida:?} reference={idb:?} (ref remainings {} vs {})",
                        self.now,
                        self.reference.remaining(ida),
                        self.reference.remaining(idb)
                    );
                }
            }
            (a, b) => panic!("completion presence diverged: optimized={a:?} reference={b:?}"),
        }
    }

    /// Remove one live task from both kernels, comparing residuals.
    fn remove_live(&mut self, index: usize) {
        let (id, _) = self.live.remove(index);
        let ra = self.opt.remove_task(self.now, id);
        let rb = self.reference.remove_task(self.now, id);
        assert!(
            (ra - rb).abs() < WORK_TOL,
            "residual diverged for {id:?}: optimized={ra} reference={rb}"
        );
    }

    /// Apply one operation to both kernels and compare every observable.
    pub fn apply(&mut self, op: ChurnOp) {
        match op {
            ChurnOp::Add { work_ms, sig } => {
                let work = work_ms as f64 / 1000.0;
                let (weight, max_rate, demand) = self.pool.get_full(sig);
                let ida = self
                    .opt
                    .add_task_demand(self.now, work, weight, max_rate, demand);
                let idb = self
                    .reference
                    .add_task_demand(self.now, work, weight, max_rate, demand);
                assert_eq!(ida, idb, "slot allocation diverged");
                self.live
                    .push((ida, (sig as usize % self.pool.len()) as u8));
            }
            ChurnOp::Remove { pick } => {
                if self.live.is_empty() {
                    return;
                }
                self.remove_live((pick % self.live.len() as u64) as usize);
            }
            ChurnOp::RemoveSig { sig, pick } => {
                let sig = (sig as usize % self.pool.len()) as u8;
                let matches: Vec<usize> = self
                    .live
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &(_, s))| (s == sig).then_some(i))
                    .collect();
                if matches.is_empty() {
                    return;
                }
                self.remove_live(matches[(pick % matches.len() as u64) as usize]);
            }
            ChurnOp::DrainSig { sig } => {
                let sig = (sig as usize % self.pool.len()) as u8;
                while let Some(index) = self.live.iter().position(|&(_, s)| s == sig) {
                    self.remove_live(index);
                    // Compare the full observable set after every removal,
                    // not just at the end of the drain: a mid-drain
                    // rebalance is exactly the state the op targets.
                    self.check_state();
                }
            }
            ChurnOp::Advance { dt_ms } => {
                self.now += SimDuration::from_millis(dt_ms);
                self.opt.advance(self.now);
                self.reference.advance(self.now);
            }
            ChurnOp::SetCapacity { cores_centi } => {
                let cores = cores_centi.max(1) as f64 / 100.0;
                self.opt.set_capacity(self.now, cores);
                self.reference.set_capacity(self.now, cores);
            }
            ChurnOp::SetMemCapacity { mem_centi } => {
                let mem = mem_centi.max(1) as f64 / 100.0;
                self.opt.set_resource_capacity(self.now, Resource::Mem, mem);
                self.reference
                    .set_resource_capacity(self.now, Resource::Mem, mem);
            }
            ChurnOp::CompleteNext => {
                let Some((id, at)) = self.reference.next_completion(self.now) else {
                    assert!(self.opt.next_completion(self.now).is_none());
                    return;
                };
                self.check_next_completion();
                self.now = self.now.max(at);
                let fa = self.opt.finished_tasks(self.now);
                let fb = self.reference.finished_tasks(self.now);
                assert_eq!(fa, fb, "finished sets diverged at {:?}", self.now);
                assert!(
                    fb.contains(&id) || self.reference.remaining(id) > 0.0,
                    "predicted completion {id:?} neither finished nor pending"
                );
                for done in fb {
                    self.live.retain(|&(l, _)| l != done);
                    let ra = self.opt.remove_task(self.now, done);
                    let rb = self.reference.remove_task(self.now, done);
                    assert!((ra - rb).abs() < WORK_TOL, "finished residual diverged");
                }
            }
        }
        self.check_state();
        self.check_next_completion();
    }

    /// Drive every remaining task to completion, comparing the full
    /// completion order.
    pub fn drain(&mut self) {
        let mut guard = 0usize;
        while !self.reference.is_empty() {
            self.apply(ChurnOp::CompleteNext);
            guard += 1;
            assert!(guard < 100_000, "drain did not converge");
        }
        assert!(self.opt.is_empty(), "optimized kernel retained tasks");
    }
}

/// Drive one fully seeded random schedule end to end: node shape, schedule
/// and pool choice all derive from `seed`. The volume sweeps call this in
/// a loop; a failing seed reproduces exactly.
pub fn run_differential_schedule(seed: u64, pool: &SignaturePool, max_steps: usize) {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xD1FF_5EED);
    let cores = 1.0 + (rng.next_u64() % 12) as f64;
    let kappa = (rng.next_u64() % 100) as f64 / 100.0;
    let steps = max_steps / 4 + (rng.next_u64() % (3 * max_steps as u64 / 4).max(1)) as usize;
    let ops = random_schedule(&mut rng, steps, pool.len() as u8, 4_000, 1_200);
    let mut pair = DifferentialPair::new(cores, kappa, pool.clone());
    for op in ops {
        pair.apply(op);
    }
    pair.drain();
}

/// Drive one fully seeded multi-resource DRF schedule end to end: node
/// shape (cores *and* a finite memory-bandwidth capacity), schedule and
/// bandwidth churn all derive from `seed`; every observable is pinned to
/// the reference integrator per step. A failing seed reproduces exactly.
pub fn run_drf_differential_schedule(seed: u64, pool: &SignaturePool, max_steps: usize) {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xDF00_D0D0);
    let cores = 1.0 + (rng.next_u64() % 12) as f64;
    let kappa = (rng.next_u64() % 100) as f64 / 100.0;
    // Bandwidth envelope 0.5–12 units: below, inside and above the pool's
    // memory demand range, so either axis can bind.
    let mem_centi = 50 + rng.next_u64() % 1_151;
    let steps = max_steps / 4 + (rng.next_u64() % (3 * max_steps as u64 / 4).max(1)) as usize;
    let ops = drf_schedule(&mut rng, steps, pool.len() as u8, 4_000, 1_200, 1_200);
    let mut pair =
        DifferentialPair::new_with_mem(cores, kappa, mem_centi as f64 / 100.0, pool.clone());
    for op in ops {
        pair.apply(op);
    }
    pair.drain();
}

/// Drive one seeded boundary-thrash schedule end to end over the
/// [`SignaturePool::boundary_ladder`] pool, with the node shape derived
/// from `seed`, and return the number of capped/uncapped boundary
/// crossings the production kernel performed (so suites can assert the
/// schedules actually exercise the re-keying path).
pub fn run_boundary_thrash_schedule(seed: u64, blocks: usize) -> u64 {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xB0BB_1E57);
    // The ladder ratios sit in 0.2–1.0 at ~unit weights: 2–7 cores keeps
    // the water level inside the ladder so the swing moves cross rungs.
    let cores = 2.0 + (rng.next_u64() % 6) as f64;
    let kappa = (rng.next_u64() % 60) as f64 / 100.0;
    let pool = SignaturePool::boundary_ladder();
    let ops = boundary_thrash_schedule(&mut rng, blocks, pool.len() as u8);
    let mut pair = DifferentialPair::new(cores, kappa, pool);
    for op in ops {
        pair.apply(op);
    }
    pair.drain();
    pair.opt.boundary_crossings()
}

/// Drive one seeded capacity-thrash schedule end to end over the
/// [`SignaturePool::boundary_ladder`] pool — dynamic-capacity ramps and
/// restorations interleaved with membership churn and mode flips, every
/// observable pinned to the reference integrator per step — and return the
/// number of capped/uncapped boundary crossings the production kernel
/// performed (so suites can assert the ramps actually move the boundary).
pub fn run_capacity_thrash_schedule(seed: u64, blocks: usize) -> u64 {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xCA9A_C17F);
    // Same envelope as the boundary-thrash runner: the ladder ratios sit
    // in 0.2–1.0 at ~unit weights, so 2–7 cores keeps the water level
    // inside the ladder and every capacity step crosses rungs.
    let cores = 2.0 + (rng.next_u64() % 6) as f64;
    let kappa = (rng.next_u64() % 60) as f64 / 100.0;
    let pool = SignaturePool::boundary_ladder();
    let base_centi = (cores * 100.0) as u64;
    let ops = capacity_thrash_schedule(&mut rng, blocks, pool.len() as u8, base_centi);
    let mut pair = DifferentialPair::new(cores, kappa, pool);
    for op in ops {
        pair.apply(op);
    }
    pair.drain();
    pair.opt.boundary_crossings()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_lookup_wraps() {
        let pool = SignaturePool::paper_mixed();
        assert_eq!(pool.get(0), pool.get(4));
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn weighted_pools_are_seed_deterministic_and_diverse() {
        let a = SignaturePool::weighted(7);
        let b = SignaturePool::weighted(7);
        assert_eq!(a.sigs, b.sigs, "same seed, same pool");
        assert!(a.len() >= 6);
        let distinct: std::collections::BTreeSet<(u64, u64)> = a
            .sigs
            .iter()
            .map(|&(w, c, _)| (w.to_bits(), c.to_bits()))
            .collect();
        assert!(distinct.len() >= 2, "pool must be heterogeneous");
    }

    #[test]
    fn drf_pools_are_seed_deterministic_and_mix_demand_shapes() {
        let a = SignaturePool::drf_weighted(7);
        let b = SignaturePool::drf_weighted(7);
        assert_eq!(a.sigs, b.sigs, "same seed, same pool");
        assert!(a.len() >= 6);
        let mixed = SignaturePool::drf_mixed();
        let has_cpu_only = mixed.sigs.iter().any(|&(_, _, d)| d.mem == 0.0);
        let has_mem_dominant = mixed.sigs.iter().any(|&(_, _, d)| d.mem > d.cpu);
        assert!(
            has_cpu_only && has_mem_dominant,
            "pool must span demand shapes"
        );
    }

    #[test]
    fn random_schedules_are_seed_deterministic() {
        let gen = |seed: u64| {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            random_schedule(&mut rng, 50, 4, 1_000, 500)
        };
        let fmt = |ops: &[ChurnOp]| format!("{ops:?}");
        assert_eq!(fmt(&gen(3)), fmt(&gen(3)));
        assert_ne!(fmt(&gen(3)), fmt(&gen(4)));
    }

    #[test]
    fn differential_pair_smoke() {
        run_differential_schedule(1, &SignaturePool::paper_mixed(), 60);
        run_differential_schedule(2, &SignaturePool::weighted(2), 60);
    }

    #[test]
    fn drf_differential_pair_smoke() {
        run_drf_differential_schedule(1, &SignaturePool::drf_mixed(), 60);
        run_drf_differential_schedule(2, &SignaturePool::drf_weighted(2), 60);
    }

    #[test]
    fn set_mem_capacity_op_applies_to_both_kernels() {
        let mut pair = DifferentialPair::new_with_mem(4.0, 0.0, 2.0, SignaturePool::drf_mixed());
        pair.apply(ChurnOp::Add {
            work_ms: 900,
            sig: 2,
        });
        pair.apply(ChurnOp::Add {
            work_ms: 900,
            sig: 4,
        });
        pair.apply(ChurnOp::SetMemCapacity { mem_centi: 120 });
        assert_eq!(pair.opt.resource_capacity(crate::gps::Resource::Mem), 1.2);
        pair.apply(ChurnOp::Advance { dt_ms: 300 });
        pair.apply(ChurnOp::SetMemCapacity { mem_centi: 0 });
        assert_eq!(
            pair.opt.resource_capacity(crate::gps::Resource::Mem),
            0.01,
            "zero clamps to a centi-unit"
        );
        pair.apply(ChurnOp::SetMemCapacity { mem_centi: 400 });
        pair.drain();
    }

    #[test]
    fn boundary_thrash_smoke() {
        let crossings = run_boundary_thrash_schedule(1, 4);
        assert!(crossings > 0, "thrash schedule never crossed the boundary");
    }

    #[test]
    fn capacity_thrash_smoke() {
        let crossings = run_capacity_thrash_schedule(1, 4);
        assert!(crossings > 0, "capacity thrash never crossed the boundary");
    }

    #[test]
    fn set_capacity_op_applies_to_both_kernels() {
        let mut pair = DifferentialPair::new(4.0, 0.0, SignaturePool::boundary_ladder());
        pair.apply(ChurnOp::Add {
            work_ms: 900,
            sig: 2,
        });
        pair.apply(ChurnOp::Add {
            work_ms: 900,
            sig: 4,
        });
        pair.apply(ChurnOp::SetCapacity { cores_centi: 120 });
        assert_eq!(pair.opt.params().cores, 1.2);
        assert_eq!(pair.reference.params().cores, 1.2);
        pair.apply(ChurnOp::Advance { dt_ms: 300 });
        pair.apply(ChurnOp::SetCapacity { cores_centi: 0 });
        assert_eq!(pair.opt.params().cores, 0.01, "zero clamps to a centi-core");
        pair.apply(ChurnOp::SetCapacity { cores_centi: 400 });
        pair.drain();
    }

    #[test]
    fn drain_sig_removes_exactly_one_signature_class() {
        let pool = SignaturePool::boundary_ladder();
        let mut pair = DifferentialPair::new(4.0, 0.0, pool);
        for sig in [0u8, 1, 2, 0, 1, 2] {
            pair.apply(ChurnOp::Add { work_ms: 500, sig });
        }
        assert_eq!(pair.live_len(), 6);
        pair.apply(ChurnOp::DrainSig { sig: 0 });
        assert_eq!(pair.live_len(), 4, "both swing tasks removed");
        pair.apply(ChurnOp::DrainSig { sig: 2 });
        pair.apply(ChurnOp::RemoveSig { sig: 2, pick: 7 });
        assert_eq!(pair.live_len(), 2, "drained class is empty, op is a no-op");
        assert!(pair.opt.is_uniform_mode(), "single signature flips back");
        pair.drain();
    }
}
