//! Dedicated-core allocation: the paper's CPU regime.
//!
//! §IV-A of the paper: "We limit the number of busy containers with the
//! number of available CPU cores \[and\] a single container is always assigned
//! a CPU limit of exactly one core." Execution is therefore non-preemptive:
//! once a call starts it owns its core until the container is released.

use serde::{Deserialize, Serialize};

/// A pool of identical cores handed out whole.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorePool {
    total: u32,
    busy: u32,
    /// High-water mark of simultaneously busy cores, for diagnostics.
    peak_busy: u32,
}

impl CorePool {
    /// Create a pool of `total` cores. Panics if `total == 0` — a node with
    /// zero action cores cannot make progress and always indicates a
    /// configuration error.
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "a node needs at least one action core");
        CorePool {
            total,
            busy: 0,
            peak_busy: 0,
        }
    }

    /// Total number of cores.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Cores currently held.
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Cores currently free. Zero (not an underflow) while a capacity
    /// shrink has left more cores busy than the new total — running calls
    /// are non-preemptive, so the pool drains down to the new size as they
    /// finish.
    pub fn free(&self) -> u32 {
        self.total.saturating_sub(self.busy)
    }

    /// Highest number of simultaneously busy cores observed.
    pub fn peak_busy(&self) -> u32 {
        self.peak_busy
    }

    /// True if at least one core is free.
    pub fn has_free(&self) -> bool {
        self.busy < self.total
    }

    /// Acquire one core. Returns `false` (and changes nothing) if all cores
    /// are busy.
    pub fn try_acquire(&mut self) -> bool {
        if self.busy < self.total {
            self.busy += 1;
            self.peak_busy = self.peak_busy.max(self.busy);
            true
        } else {
            false
        }
    }

    /// Release one core. Panics if no core is held — releasing an un-acquired
    /// core means the caller's accounting is corrupt.
    pub fn release(&mut self) {
        assert!(self.busy > 0, "released a core that was never acquired");
        self.busy -= 1;
    }

    /// Resize the pool (dynamic capacity). Running calls are non-preemptive,
    /// so `busy` may transiently exceed a shrunken `total`: no new core is
    /// handed out until completions drain the pool below the new size.
    /// Panics on zero — a node with no action cores cannot make progress.
    pub fn set_total(&mut self, total: u32) {
        assert!(total > 0, "a node needs at least one action core");
        self.total = total;
    }

    /// Release every held core at once (node crash: the in-flight calls
    /// owning them are killed). The peak-busy high-water mark survives —
    /// it describes the run, not the incarnation.
    pub fn release_all(&mut self) {
        self.busy = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut pool = CorePool::new(2);
        assert_eq!(pool.free(), 2);
        assert!(pool.try_acquire());
        assert!(pool.try_acquire());
        assert!(!pool.try_acquire(), "third acquire must fail on 2 cores");
        assert_eq!(pool.busy(), 2);
        pool.release();
        assert!(pool.has_free());
        assert!(pool.try_acquire());
    }

    #[test]
    fn peak_tracking() {
        let mut pool = CorePool::new(4);
        pool.try_acquire();
        pool.try_acquire();
        pool.release();
        pool.try_acquire();
        pool.try_acquire();
        assert_eq!(pool.peak_busy(), 3);
    }

    #[test]
    #[should_panic(expected = "never acquired")]
    fn release_without_acquire_panics() {
        CorePool::new(1).release();
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_cores_rejected() {
        CorePool::new(0);
    }

    #[test]
    fn shrink_below_busy_blocks_new_acquires_until_drained() {
        let mut pool = CorePool::new(4);
        for _ in 0..4 {
            assert!(pool.try_acquire());
        }
        pool.set_total(2);
        assert_eq!(pool.free(), 0, "no underflow while over-subscribed");
        assert!(!pool.has_free());
        assert!(!pool.try_acquire(), "shrunken pool hands out nothing");
        pool.release();
        pool.release();
        assert!(!pool.has_free(), "still at the new total");
        pool.release();
        assert!(pool.try_acquire(), "drained below the new total");
    }

    #[test]
    fn grow_frees_cores_immediately() {
        let mut pool = CorePool::new(1);
        assert!(pool.try_acquire());
        assert!(!pool.has_free());
        pool.set_total(3);
        assert_eq!(pool.free(), 2);
        assert!(pool.try_acquire());
    }

    #[test]
    fn release_all_clears_busy_and_keeps_peak() {
        let mut pool = CorePool::new(4);
        pool.try_acquire();
        pool.try_acquire();
        pool.try_acquire();
        pool.release_all();
        assert_eq!(pool.busy(), 0);
        assert_eq!(pool.free(), 4);
        assert_eq!(pool.peak_busy(), 3, "peak describes the run");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn set_total_zero_rejected() {
        CorePool::new(1).set_total(0);
    }

    #[test]
    fn totals_are_invariant() {
        let mut pool = CorePool::new(8);
        for _ in 0..5 {
            pool.try_acquire();
        }
        assert_eq!(pool.busy() + pool.free(), pool.total());
    }
}
