//! # faas-cpu
//!
//! Processor models for the FaaS node simulations.
//!
//! The paper contrasts two CPU-allocation regimes on a worker node:
//!
//! * **Baseline OpenWhisk** (§III, §IV-A): every busy container receives a
//!   *soft* CPU share proportional to its memory limit; the OS preempts and
//!   time-slices freely when containers outnumber cores. We model this with
//!   [`gps::GpsCpu`] — generalized processor sharing with a per-task rate cap
//!   of one core (a single-threaded function cannot exceed one core even if
//!   its share allows it) and a context-switch overhead that shaves effective
//!   capacity as the run-queue oversubscribes the cores.
//!
//! * **The paper's approach** (§IV-A): at most `cores` busy containers, each
//!   pinned to exactly one core, no oversubscription and hence (almost) no
//!   OS preemption. We model this with [`dedicated::CorePool`].
//!
//! Both models are pure state machines over simulated time; the node
//! simulation in `faas-invoker` owns the event queue and drives them.

pub mod bench_support;
pub mod dedicated;
pub mod gps;
pub mod gps_reference;
pub mod schedule;

pub use dedicated::CorePool;
pub use gps::{GpsCpu, GpsParams, Resource, ResourceVector, TaskId};
pub use gps_reference::ReferenceGpsCpu;
pub use schedule::{ChurnOp, DifferentialPair, SignaturePool};
