//! Generalized processor sharing with context-switch overhead: the baseline
//! OpenWhisk CPU regime.
//!
//! Default OpenWhisk gives each container a CPU share proportional to its
//! memory limit (soft limits) and lets the Linux scheduler time-slice the
//! containers across the cores. We model the long-run effect of CFS with
//! *generalized processor sharing* (GPS): at any instant every CPU-consuming
//! task `i` receives a service rate
//!
//! ```text
//! rate_i = min(max_rate_i, C_eff * weight_i / Σ weights)
//! ```
//!
//! subject to water-filling redistribution of capacity unused by rate-capped
//! tasks. `max_rate` is 1.0 core for a single-threaded function call —
//! OpenWhisk's soft limits let a container exceed its share, but a function
//! executing sequential Python cannot use more than one core.
//!
//! Context switching is not free. §IV-A: "If the number of concurrently
//! executed actions is greater than the number of CPU cores, then multiple
//! context switches might be performed by the OS. Such context switching can
//! have a significant negative impact on the response time." We model this
//! as a capacity loss that grows with oversubscription:
//!
//! ```text
//! C_eff = C / (1 + kappa * max(0, n - C) / C)
//! ```
//!
//! where `n` is the number of runnable tasks and `kappa` the calibrated
//! context-switch penalty. With `n <= C` there is no penalty and GPS
//! degenerates to "every task runs at full speed", matching an idle node.
//!
//! The structure is a pure state machine over simulated time. The owner
//! drives it with [`GpsCpu::advance`] and re-queries
//! [`GpsCpu::next_completion`] after every membership change; stale
//! completion events are invalidated by a generation counter.

use faas_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a task inside a [`GpsCpu`]. Slots are recycled; a `TaskId`
/// is only meaningful until the task completes or is removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(u32);

impl TaskId {
    /// Raw slot index (for diagnostics).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Tuning parameters of the shared-CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsParams {
    /// Number of physical cores available to action containers.
    pub cores: f64,
    /// Context-switch penalty `kappa`: fraction of capacity lost per unit of
    /// oversubscription (`(n - cores) / cores`).
    pub ctx_switch_penalty: f64,
    /// Upper bound on the capacity-loss divisor `1 + kappa * oversub`:
    /// context switching degrades throughput but never collapses it — the
    /// OS still schedules runnable work, just with more overhead. Without
    /// the cap, small nodes (5 cores, 128 runnable containers) would lose
    /// almost all capacity, which the paper's 5-core baseline contradicts.
    pub penalty_cap: f64,
}

impl GpsParams {
    /// Effective capacity given `n` runnable tasks.
    pub fn effective_capacity(&self, runnable: usize) -> f64 {
        let n = runnable as f64;
        if n <= self.cores || self.ctx_switch_penalty == 0.0 {
            return self.cores;
        }
        let oversub = (n - self.cores) / self.cores;
        self.cores / (1.0 + self.ctx_switch_penalty * oversub).min(self.penalty_cap)
    }
}

#[derive(Debug, Clone, Copy)]
struct Task {
    /// Remaining CPU work in core-seconds.
    remaining: f64,
    /// GPS weight (OpenWhisk: proportional to the container memory limit).
    weight: f64,
    /// Upper bound on the task's service rate in cores.
    max_rate: f64,
}

/// Work below this many core-seconds counts as complete; guards against
/// floating-point residue keeping a task alive forever.
const WORK_EPSILON: f64 = 1e-9;

/// The GPS processor bank.
#[derive(Debug, Clone)]
pub struct GpsCpu {
    params: GpsParams,
    slots: Vec<Option<Task>>,
    free_slots: Vec<u32>,
    runnable: usize,
    last_advance: SimTime,
    /// Incremented on every membership change; lets the owner discard stale
    /// completion events.
    generation: u64,
    /// Total core-seconds of work completed, for conservation checks.
    work_done: f64,
    /// Scratch buffer for rate computation (avoids per-event allocation).
    rates_scratch: Vec<f64>,
}

impl GpsCpu {
    /// Create an empty bank.
    pub fn new(params: GpsParams) -> Self {
        assert!(params.cores > 0.0, "GPS needs positive capacity");
        assert!(
            params.ctx_switch_penalty >= 0.0,
            "context-switch penalty must be non-negative"
        );
        GpsCpu {
            params,
            slots: Vec::new(),
            free_slots: Vec::new(),
            runnable: 0,
            last_advance: SimTime::ZERO,
            generation: 0,
            work_done: 0.0,
            rates_scratch: Vec::new(),
        }
    }

    /// The model parameters.
    pub fn params(&self) -> GpsParams {
        self.params
    }

    /// Number of runnable tasks.
    pub fn len(&self) -> usize {
        self.runnable
    }

    /// True if no task is runnable.
    pub fn is_empty(&self) -> bool {
        self.runnable == 0
    }

    /// Current generation; bumped on every add/remove.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total core-seconds of service delivered so far.
    pub fn work_done(&self) -> f64 {
        self.work_done
    }

    /// Instantaneous service rate of `id` under the current task set.
    pub fn current_rate(&mut self, id: TaskId) -> f64 {
        self.compute_rates();
        self.rates_scratch[id.0 as usize]
    }

    /// Remaining work of a task (after the last `advance`).
    pub fn remaining(&self, id: TaskId) -> f64 {
        self.slots[id.0 as usize]
            .as_ref()
            .expect("remaining() on dead task")
            .remaining
    }

    /// Advance the clock to `now`, depleting every task's remaining work by
    /// the service it received. Must be called with monotone timestamps.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_advance).as_secs_f64();
        self.last_advance = self.last_advance.max(now);
        if dt <= 0.0 || self.runnable == 0 {
            return;
        }
        self.compute_rates();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(task) = slot {
                let served = self.rates_scratch[i] * dt;
                let consumed = served.min(task.remaining);
                task.remaining -= consumed;
                self.work_done += consumed;
            }
        }
    }

    /// Add a task with `work` core-seconds of demand. `advance(now)` must
    /// already have been called (or be implied by event ordering).
    pub fn add_task(&mut self, now: SimTime, work: f64, weight: f64, max_rate: f64) -> TaskId {
        assert!(work >= 0.0 && work.is_finite(), "invalid work {work}");
        assert!(weight > 0.0, "weight must be positive");
        assert!(max_rate > 0.0, "max_rate must be positive");
        self.advance(now);
        self.generation += 1;
        let task = Task {
            remaining: work,
            weight,
            max_rate,
        };
        self.runnable += 1;
        if let Some(slot) = self.free_slots.pop() {
            self.slots[slot as usize] = Some(task);
            TaskId(slot)
        } else {
            self.slots.push(Some(task));
            TaskId((self.slots.len() - 1) as u32)
        }
    }

    /// Remove a task (completed or aborted), returning its residual work.
    pub fn remove_task(&mut self, now: SimTime, id: TaskId) -> f64 {
        self.advance(now);
        self.generation += 1;
        let task = self.slots[id.0 as usize]
            .take()
            .expect("remove_task on dead task");
        self.free_slots.push(id.0);
        self.runnable -= 1;
        task.remaining
    }

    /// The earliest task completion strictly after `now`, as
    /// `(task, completion time)`. Ties resolve to the lowest slot index for
    /// determinism. Returns `None` when idle.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(TaskId, SimTime)> {
        self.advance(now);
        if self.runnable == 0 {
            return None;
        }
        self.compute_rates();
        let mut best: Option<(usize, f64)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(task) = slot {
                let rate = self.rates_scratch[i];
                if rate <= 0.0 {
                    continue;
                }
                let eta = if task.remaining <= WORK_EPSILON {
                    0.0
                } else {
                    task.remaining / rate
                };
                match best {
                    Some((_, b)) if eta >= b => {}
                    _ => best = Some((i, eta)),
                }
            }
        }
        best.map(|(i, eta)| (TaskId(i as u32), now + SimDuration::from_secs_f64(eta)))
    }

    /// All tasks whose remaining work is (numerically) exhausted at `now`,
    /// in slot order. The owner removes them with [`GpsCpu::remove_task`].
    pub fn finished_tasks(&mut self, now: SimTime) -> Vec<TaskId> {
        self.advance(now);
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Some(task) if task.remaining <= WORK_EPSILON => Some(TaskId(i as u32)),
                _ => None,
            })
            .collect()
    }

    /// Water-filling rate computation into `rates_scratch`.
    fn compute_rates(&mut self) {
        self.rates_scratch.clear();
        self.rates_scratch.resize(self.slots.len(), 0.0);
        if self.runnable == 0 {
            return;
        }
        let cap = self.params.effective_capacity(self.runnable);

        // Fast path: uniform weights and max_rates (the overwhelmingly common
        // case — OpenWhisk assigns SeBS functions identical memory limits).
        let mut uniform = true;
        let mut first: Option<Task> = None;
        for slot in self.slots.iter().flatten() {
            match first {
                None => first = Some(*slot),
                Some(f) => {
                    if f.weight != slot.weight || f.max_rate != slot.max_rate {
                        uniform = false;
                        break;
                    }
                }
            }
        }
        if uniform {
            let f = first.expect("runnable > 0 implies a task exists");
            let rate = (cap / self.runnable as f64).min(f.max_rate);
            for (i, slot) in self.slots.iter().enumerate() {
                if slot.is_some() {
                    self.rates_scratch[i] = rate;
                }
            }
            return;
        }

        // General water-filling: tasks whose fair share exceeds their cap are
        // pinned at the cap and the surplus redistributed.
        let mut active: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect();
        let mut remaining_cap = cap;
        while !active.is_empty() {
            let total_weight: f64 = active
                .iter()
                .map(|&i| self.slots[i].as_ref().unwrap().weight)
                .sum();
            let per_weight = remaining_cap / total_weight;
            let mut pinned_any = false;
            active.retain(|&i| {
                let task = self.slots[i].as_ref().unwrap();
                if task.weight * per_weight >= task.max_rate {
                    self.rates_scratch[i] = task.max_rate;
                    remaining_cap -= task.max_rate;
                    pinned_any = true;
                    false
                } else {
                    true
                }
            });
            if !pinned_any {
                for &i in &active {
                    let task = self.slots[i].as_ref().unwrap();
                    self.rates_scratch[i] = task.weight * per_weight;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(cores: f64, kappa: f64) -> GpsParams {
        GpsParams {
            cores,
            ctx_switch_penalty: kappa,
            penalty_cap: 100.0,
        }
    }

    #[test]
    fn effective_capacity_penalty_curve() {
        let p = params(10.0, 0.5);
        assert_eq!(p.effective_capacity(5), 10.0);
        assert_eq!(p.effective_capacity(10), 10.0);
        // n = 20: oversub = 1.0 -> capacity / 1.5
        assert!((p.effective_capacity(20) - 10.0 / 1.5).abs() < 1e-12);
        // kappa = 0 disables the penalty entirely.
        assert_eq!(params(10.0, 0.0).effective_capacity(100), 10.0);
    }

    #[test]
    fn single_task_runs_at_one_core() {
        let mut cpu = GpsCpu::new(params(4.0, 0.0));
        let t0 = SimTime::ZERO;
        let id = cpu.add_task(t0, 2.0, 1.0, 1.0);
        let (done_id, at) = cpu.next_completion(t0).unwrap();
        assert_eq!(done_id, id);
        // 2 core-seconds at 1 core (max_rate cap, not the 4-core capacity).
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equal_sharing_when_oversubscribed() {
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let t0 = SimTime::ZERO;
        // Four equal tasks on two cores: each runs at 0.5 cores.
        let ids: Vec<TaskId> = (0..4).map(|_| cpu.add_task(t0, 1.0, 1.0, 1.0)).collect();
        for &id in &ids {
            assert!((cpu.current_rate(id) - 0.5).abs() < 1e-12);
        }
        let (_, at) = cpu.next_completion(t0).unwrap();
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn completion_tie_breaks_to_lowest_slot() {
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let a = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        let _b = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        let (id, _) = cpu.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(id, a);
    }

    #[test]
    fn advance_depletes_work() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let id = cpu.add_task(SimTime::ZERO, 3.0, 1.0, 1.0);
        cpu.advance(SimTime::from_secs(1));
        assert!((cpu.remaining(id) - 2.0).abs() < 1e-9);
        cpu.advance(SimTime::from_secs(2));
        assert!((cpu.remaining(id) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rates_rebalance_after_completion() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let a = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        let b = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        // Both run at 0.5; a completes at t=2.
        let (first, at) = cpu.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(first, a);
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-9);
        cpu.remove_task(at, a);
        // b has 0 remaining? No: b also ran at 0.5 for 2s => done too.
        assert!(cpu.remaining(b) < 1e-9);
    }

    #[test]
    fn weighted_sharing() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let heavy = cpu.add_task(SimTime::ZERO, 1.0, 3.0, 1.0);
        let light = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        assert!((cpu.current_rate(heavy) - 0.75).abs() < 1e-12);
        assert!((cpu.current_rate(light) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn water_filling_redistributes_capped_surplus() {
        // 3 cores, two tasks: one capped at 1 core with huge weight, the
        // other picks up the rest (but is itself capped at 1).
        let mut cpu = GpsCpu::new(params(3.0, 0.0));
        let capped = cpu.add_task(SimTime::ZERO, 1.0, 100.0, 1.0);
        let other = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        assert!((cpu.current_rate(capped) - 1.0).abs() < 1e-12);
        assert!((cpu.current_rate(other) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn water_filling_with_heterogeneous_caps() {
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let slow = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 0.25);
        let fast = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        // slow pinned at 0.25; fast takes min(1.0, remaining 1.75) = 1.0.
        assert!((cpu.current_rate(slow) - 0.25).abs() < 1e-12);
        assert!((cpu.current_rate(fast) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn context_switch_penalty_slows_completion() {
        let mut no_pen = GpsCpu::new(params(1.0, 0.0));
        let mut pen = GpsCpu::new(params(1.0, 1.0));
        for _ in 0..3 {
            no_pen.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
            pen.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        }
        let (_, t_free) = no_pen.next_completion(SimTime::ZERO).unwrap();
        let (_, t_pen) = pen.next_completion(SimTime::ZERO).unwrap();
        assert!(t_pen > t_free, "penalty must delay completions");
        // n=3 on 1 core: oversub 2, capacity 1/3 -> per-task rate 1/9.
        assert!((t_pen.as_secs_f64() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn generation_bumps_on_membership_changes() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let g0 = cpu.generation();
        let id = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        assert!(cpu.generation() > g0);
        let g1 = cpu.generation();
        cpu.remove_task(SimTime::ZERO, id);
        assert!(cpu.generation() > g1);
    }

    #[test]
    fn slots_are_recycled() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let a = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        cpu.remove_task(SimTime::ZERO, a);
        let b = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        assert_eq!(a.index(), b.index(), "slot should be reused");
        assert_eq!(cpu.len(), 1);
    }

    #[test]
    fn work_conservation_under_churn() {
        // Total work done over time must equal total work injected minus
        // residuals, regardless of membership churn.
        let mut cpu = GpsCpu::new(params(2.0, 0.3));
        let mut t = SimTime::ZERO;
        let mut injected = 0.0;
        let mut residual = 0.0;
        let mut live: Vec<TaskId> = Vec::new();
        for step in 0..50 {
            t += SimDuration::from_millis(100);
            let work = 0.05 + (step % 7) as f64 * 0.03;
            injected += work;
            live.push(cpu.add_task(t, work, 1.0, 1.0));
            if step % 3 == 2 {
                let id = live.remove(0);
                residual += cpu.remove_task(t, id);
            }
        }
        // Drain everything.
        let end = t + SimDuration::from_secs(100);
        cpu.advance(end);
        for id in live {
            residual += cpu.remove_task(end, id);
        }
        assert!(
            (cpu.work_done() + residual - injected).abs() < 1e-6,
            "work not conserved: done={} residual={} injected={}",
            cpu.work_done(),
            residual,
            injected
        );
    }

    #[test]
    fn zero_work_task_completes_immediately() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let id = cpu.add_task(SimTime::from_secs(1), 0.0, 1.0, 1.0);
        let (done, at) = cpu.next_completion(SimTime::from_secs(1)).unwrap();
        assert_eq!(done, id);
        assert_eq!(at, SimTime::from_secs(1));
    }

    #[test]
    fn idle_bank_reports_no_completion() {
        let mut cpu = GpsCpu::new(params(4.0, 0.5));
        assert!(cpu.next_completion(SimTime::ZERO).is_none());
        assert!(cpu.is_empty());
    }

    #[test]
    #[should_panic(expected = "dead task")]
    fn double_remove_panics() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let id = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        cpu.remove_task(SimTime::ZERO, id);
        cpu.remove_task(SimTime::ZERO, id);
    }
}
