//! Generalized processor sharing with context-switch overhead: the baseline
//! OpenWhisk CPU regime, implemented as a **virtual-time kernel**.
//!
//! # Model
//!
//! Default OpenWhisk gives each container a CPU share proportional to its
//! memory limit (soft limits) and lets the Linux scheduler time-slice the
//! containers across the cores. We model the long-run effect of CFS with
//! *generalized processor sharing* (GPS): at any instant every CPU-consuming
//! task `i` receives a service rate
//!
//! ```text
//! rate_i = min(max_rate_i, C_eff * weight_i / Σ weights)
//! ```
//!
//! subject to water-filling redistribution of capacity unused by rate-capped
//! tasks. `max_rate` is 1.0 core for a single-threaded function call —
//! OpenWhisk's soft limits let a container exceed its share, but a function
//! executing sequential Python cannot use more than one core.
//!
//! Context switching is not free. §IV-A: "If the number of concurrently
//! executed actions is greater than the number of CPU cores, then multiple
//! context switches might be performed by the OS. Such context switching can
//! have a significant negative impact on the response time." We model this
//! as a capacity loss that grows with oversubscription:
//!
//! ```text
//! C_eff = C / (1 + kappa * max(0, n - C) / C)
//! ```
//!
//! where `n` is the number of runnable tasks and `kappa` the calibrated
//! context-switch penalty. With `n <= C` there is no penalty and GPS
//! degenerates to "every task runs at full speed", matching an idle node.
//!
//! # Virtual-time formulation
//!
//! The interface is driven once per simulation event, and the baseline node
//! oversubscribes hundreds of containers onto a handful of cores — exactly
//! the regime where the naive integrator (deplete every slot on every
//! `advance`, rescan every slot on every `next_completion`) costs
//! O(events × tasks). That integrator survives as
//! [`crate::gps_reference::ReferenceGpsCpu`], the executable specification
//! this kernel is differentially tested against.
//!
//! The production kernel exploits a structural property of GPS: *between
//! membership changes the rate vector is constant*, and in the common
//! uniform case (all tasks share one `(weight, max_rate)` signature — the
//! invoker always uses `(1.0, 1.0)`) every task receives the **same** rate
//! `r = min(C_eff / n, max_rate)`. Define the *virtual time*
//!
//! ```text
//! V(t) = ∫₀ᵗ r(s) ds      (cumulative service per task)
//! ```
//!
//! Then a task that joins at virtual time `V₀` with `w` core-seconds of work
//! finishes exactly when `V` reaches `V₀ + w`, **independently of any later
//! membership changes** — later arrivals merely slow the growth of `V`
//! itself. This turns the kernel into three O(1)/O(log n) pieces:
//!
//! * [`GpsCpu::advance`] is one multiply-add on `V` (plus an amortized
//!   heap drain of tasks whose finish virtual-time was passed);
//! * the per-task rate is memoized on the membership [`GpsCpu::generation`]
//!   and recomputed only when the task set actually changes;
//! * completions live in a min-heap keyed by `(finish_V, slot)`, so
//!   [`GpsCpu::next_completion`] is a heap peek and
//!   [`GpsCpu::finished_tasks`] pops only the tasks that actually finished.
//!   The `(finish_V, slot)` key also preserves the deterministic
//!   lowest-slot tie-break of the reference integrator, because heap order
//!   is membership-invariant in virtual time.
//!
//! # Weighted (general) mode: the incremental capped/uncapped partition
//!
//! Heterogeneous weights or rate caps (weighted containers) break the
//! single-virtual-clock property. The water-filling fixed point has a
//! threshold structure: for the current capacity `C_eff` there is a
//! *water level* `λ` (service per unit weight) such that
//!
//! ```text
//! rate_i = min(max_rate_i, weight_i * λ)
//! ```
//!
//! and a task is **capped** (pinned at its `max_rate`) exactly when its
//! *pin ratio* `r_i = max_rate_i / weight_i` satisfies `r_i <= λ`. The
//! kernel maintains that partition incrementally instead of re-deriving it
//! from scratch on every membership change: two ordered sets keyed by the
//! pin ratio, plus running sums `W = Σ weight` over the uncapped set and
//! `K = Σ max_rate` over the capped set (compensated, so incremental
//! updates do not drift), from which `λ = (C_eff − K) / W`.
//!
//! **Water-level monotonicity.** Moving a boundary task in the direction
//! its ratio demands can only *raise* the level: pinning a task with
//! `r_i <= λ` yields `λ' = (C−K−cap_i)/(W−w_i)` with
//! `λ' − λ ∝ w_i (λ − r_i) >= 0`, and unpinning a task with `r_i > λ`
//! yields `λ' − λ ∝ w_i (r_i − λ) > 0`. Rebalancing after a membership
//! change is therefore two sweeps — unpin from the top of the capped
//! order while `r > λ`, then pin from the bottom of the uncapped order
//! while `r <= λ` — each move `O(log n)`, and neither sweep can
//! re-enable the other because both only raise `λ`. The boundary
//! typically crosses O(1) tasks per event, so the rate refresh is
//! O(log n) amortized where the seed re-ran the full O(n·rounds)
//! water-filling; the O(n log n) partition build happens only on the
//! uniform→general representation switch, which already costs O(n).
//!
//! # The two general-mode clocks
//!
//! The partition makes every *rate* cheap; time progression is made cheap
//! by the observation that between membership changes each side of the
//! partition depletes against its own clock:
//!
//! * An **uncapped** task depletes at `weight_i * λ`. Define the uncapped
//!   virtual clock `U(t) = ∫ λ(s) ds` (service per unit weight —
//!   [`GpsCpu::advance`] adds `λ · dt`). A task that is uncapped with
//!   `rem` core-seconds left at `U = U₀` finishes when `U` reaches the
//!   **fixed coordinate** `U₀ + rem / weight_i`, however `λ` moves in
//!   between: rate changes slow or speed the growth of `U` itself, never
//!   the task's coordinate.
//! * A **capped** task depletes at the constant `max_rate_i`, so plain
//!   real time covers it: with `rem` left at general-mode clock `R₀`
//!   (seconds of general-mode residence), it finishes at the fixed
//!   coordinate `R₀ + rem / max_rate_i`.
//!
//! Each family keeps its unfinished tasks in a min-heap keyed by the
//! *freeze coordinate* `finish − ε/axis` (`axis` = `weight` for the
//! uncapped family, `max_rate` for the capped one), which is exactly the
//! clock value at which the task's remaining work drops to the
//! [`WORK_EPSILON`] "numerically finished" threshold — so draining each
//! heap while `key <= clock` collects precisely the finished set without
//! scanning slots, and an exhausted task surfaces even when its rate is
//! zero-ish (the uniform path's `finished_pending` rule; the freeze
//! coordinate does not involve `λ`). `advance` is then two clock bumps,
//! one compensated `work_done` update from the running unfinished-weight /
//! unfinished-cap sums, and the amortized drain; `next_completion`
//! compares the two family heads (`(finish_U − U)/λ` against
//! `finish_R − R`) in O(log n).
//!
//! **Epoch on boundary crossing.** Heap keys are only valid while the
//! task stays on its side of the partition: a crossing changes the axis
//! (and the clock) its coordinate is expressed in. When a rebalance sweep
//! moves a task across the boundary, the kernel re-derives `rem` from the
//! old coordinate, bumps the slot's epoch (the same slot/epoch discipline
//! the indexed event heap of PR 2 and the uniform heap use), and pushes a
//! fresh key on the other family's heap; the stale entry is discarded
//! lazily when it surfaces, because its epoch no longer matches the slot.
//! Since each sweep move is a boundary crossing and the boundary crosses
//! O(1) tasks per event in steady state, membership churn stays O(log n)
//! amortized end to end — there is no O(n) re-keying, and tasks that do
//! not cross keep their coordinates bit-for-bit.
//!
//! # Dynamic capacity and the capacity-rebase invariant
//!
//! The fault-injection layer (`faas_workload::faults`) degrades and
//! restores node capacity mid-run — cgroup throttling, noisy neighbors,
//! autoscale lag. [`GpsCpu::set_capacity`] supports this in O(log n)
//! amortized because **every stored completion coordinate is
//! capacity-invariant**: uniform-mode tasks finish at a fixed virtual time
//! (capacity only changes how fast `V` grows afterwards), general-mode
//! uncapped tasks finish at a fixed `U`-clock coordinate (λ moves, the
//! coordinate does not), and capped tasks deplete at their constant
//! `max_rate` on the real clock. A capacity change therefore reduces to:
//! settle work under the old capacity, swap the parameter, bump the
//! generation, and in general mode run the two rebalance sweeps — the
//! water level moved, so the boundary-crossing machinery re-keys exactly
//! the tasks whose pin ratio the level crossed. Everything else keeps its
//! coordinate bit-for-bit, which is what the capacity-thrash differential
//! suite (`tests/prop_gps_faults.rs`) pins against the reference
//! integrator.
//!
//! # Multi-resource demands and dominant-share allocation (DRF)
//!
//! Tasks may demand a second resource — memory bandwidth — alongside CPU.
//! A task's [`ResourceVector`] demand is normalized into a *profile*
//! `g = [g_cpu, g_mem]` whose **dominant** component is exactly `1.0` (the
//! other is demand per dominant unit, in `[0, 1]`); `work`, `weight`-shares
//! and `max_rate` are then expressed in dominant-resource units. The
//! water-filling machinery generalizes axis-wise:
//!
//! ```text
//! W_k = Σ_uncapped weight_i · g_ik     K_k = Σ_capped max_rate_i · g_ik
//! λ_k = (C_k − K_k) / W_k             λ  = min_k λ_k
//! rate_i = min(max_rate_i, weight_i · λ)      (dominant units / sec)
//! ```
//!
//! **The dominant-share invariant:** a task is capped exactly when its pin
//! ratio `r_i = max_rate_i / weight_i` satisfies `r_i <= λ`, with `λ` the
//! *minimum* per-axis water level — the level of the binding (saturated)
//! resource. The single-threshold two-sweep structure survives because
//! unpinning a task with `r_i > λ` makes every per-axis level a weighted
//! average of `λ_k` and `r_i` (`λ_k' = (λ_k W_k + r_i w_i g_ik) /
//! (W_k + w_i g_ik)`), so `min_k λ_k` cannot fall below `min(λ, r_i) = λ`,
//! and pinning a task with `r_j <= λ` moves every level away from `r_j`
//! (upward) — both sweeps only raise the minimum level, exactly the
//! monotonicity the scalar proof used. The two-clock progression carries
//! over unchanged with `U = ∫ λ dt` integrating the minimum level. On the
//! binding axis capacity is exactly consumed (`λ·W_b + K_b = C_b`, Pareto
//! efficiency) and `λ >= C_b / Σ w_i` (sharing incentive: no uncapped
//! task's dominant-unit rate falls below its weighted equal split of the
//! contended axis) — both pinned by `tests/prop_gps_drf.rs`.
//!
//! The single-resource path is the degenerate profile `g = [1.0, 0.0]`
//! with the memory axis disabled ([`GpsCpu::set_resource_capacity`] left
//! at the `+∞` default): the axis-1 sums stay exactly `0.0`, the axis-1
//! level is `+∞` and drops out of the `min`, and every floating-point
//! operation sequence reduces bit-for-bit to the scalar kernel's — pinned
//! by the digest-regression and differential suites.
//!
//! The structure is a pure state machine over simulated time. The owner
//! drives it with [`GpsCpu::advance`] and re-queries
//! [`GpsCpu::next_completion`] after every membership change; stale
//! completion events are invalidated by a generation counter.

use faas_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// Identifier of a task inside a [`GpsCpu`]. Slots are recycled; a `TaskId`
/// is only meaningful until the task completes or is removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(u32);

impl TaskId {
    /// Raw slot index (for diagnostics).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Construct from a raw slot index (crate-internal: the reference
    /// kernel mints ids the same way).
    pub(crate) fn from_index(index: u32) -> Self {
        TaskId(index)
    }
}

/// Tuning parameters of the shared-CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsParams {
    /// Number of physical cores available to action containers.
    pub cores: f64,
    /// Context-switch penalty `kappa`: fraction of capacity lost per unit of
    /// oversubscription (`(n - cores) / cores`).
    pub ctx_switch_penalty: f64,
    /// Upper bound on the capacity-loss divisor `1 + kappa * oversub`:
    /// context switching degrades throughput but never collapses it — the
    /// OS still schedules runnable work, just with more overhead. Without
    /// the cap, small nodes (5 cores, 128 runnable containers) would lose
    /// almost all capacity, which the paper's 5-core baseline contradicts.
    pub penalty_cap: f64,
}

impl GpsParams {
    /// Panic unless every field is well-formed: finite positive `cores`,
    /// finite non-negative `ctx_switch_penalty`, and a capacity-loss
    /// divisor cap of at least 1 (a smaller cap would *add* capacity under
    /// oversubscription). Malformed parameters would otherwise silently
    /// poison [`GpsParams::effective_capacity`] — a NaN `kappa` turns every
    /// rate into NaN and the completion heaps into garbage — so both
    /// kernels validate at construction and on every capacity change.
    pub fn validate(&self) {
        assert!(
            self.cores.is_finite() && self.cores > 0.0,
            "GPS needs positive finite capacity, got cores={}",
            self.cores
        );
        assert!(
            self.ctx_switch_penalty.is_finite() && self.ctx_switch_penalty >= 0.0,
            "context-switch penalty must be finite and non-negative, got {}",
            self.ctx_switch_penalty
        );
        assert!(
            self.penalty_cap.is_finite() && self.penalty_cap >= 1.0,
            "capacity-loss divisor cap must be finite and at least 1, got {}",
            self.penalty_cap
        );
    }

    /// Effective capacity given `n` runnable tasks.
    pub fn effective_capacity(&self, runnable: usize) -> f64 {
        let n = runnable as f64;
        if n <= self.cores || self.ctx_switch_penalty == 0.0 {
            return self.cores;
        }
        let oversub = (n - self.cores) / self.cores;
        self.cores / (1.0 + self.ctx_switch_penalty * oversub).min(self.penalty_cap)
    }
}

/// The resource axes a task may demand. [`Resource::Cpu`] is the classic
/// scalar axis; [`Resource::Mem`] is the secondary memory-bandwidth axis,
/// disabled (infinite capacity) until the owner sets it via
/// [`GpsCpu::set_resource_capacity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// CPU cores (subject to the context-switch penalty).
    Cpu,
    /// Memory bandwidth, in arbitrary but consistent bandwidth units
    /// (no oversubscription penalty — bandwidth contention has no
    /// context-switch analogue).
    Mem,
}

impl Resource {
    /// The axis index of this resource in a demand profile.
    pub(crate) fn axis(self) -> usize {
        match self {
            Resource::Cpu => 0,
            Resource::Mem => 1,
        }
    }
}

/// Number of resource axes.
pub(crate) const AXES: usize = 2;

/// A task's demand across the resource axes. Absolute units are arbitrary
/// (only ratios matter): the kernel normalizes the vector into a
/// per-dominant-unit *profile* via [`ResourceVector::profile`], and all
/// `work` / `max_rate` quantities handed to the demand-aware entry points
/// must be expressed in dominant-resource units (see
/// [`ResourceVector::dominant_per_cpu`] for the conversion callers with
/// CPU-denominated work use).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceVector {
    /// CPU demand.
    pub cpu: f64,
    /// Memory-bandwidth demand.
    pub mem: f64,
}

impl ResourceVector {
    /// The classic single-resource demand: all CPU, no memory bandwidth.
    /// Tasks added with this profile take the bit-identical scalar path.
    pub const CPU_ONLY: ResourceVector = ResourceVector { cpu: 1.0, mem: 0.0 };

    /// A demand of one CPU unit plus `mem_per_cpu` memory-bandwidth units
    /// per unit of CPU work. `mem_per_cpu == 0.0` is exactly
    /// [`ResourceVector::CPU_ONLY`]; above `1.0` the task is
    /// memory-dominant.
    pub fn per_cpu(mem_per_cpu: f64) -> Self {
        ResourceVector {
            cpu: 1.0,
            mem: mem_per_cpu,
        }
    }

    /// Panic unless the vector is well-formed: finite non-negative
    /// components, at least one strictly positive.
    pub fn validate(&self) {
        assert!(
            self.cpu.is_finite() && self.cpu >= 0.0,
            "CPU demand must be finite and non-negative, got {}",
            self.cpu
        );
        assert!(
            self.mem.is_finite() && self.mem >= 0.0,
            "memory-bandwidth demand must be finite and non-negative, got {}",
            self.mem
        );
        assert!(
            self.cpu > 0.0 || self.mem > 0.0,
            "demand vector must name at least one resource"
        );
    }

    /// The dominant (largest-demand) resource; CPU wins ties.
    pub fn dominant(&self) -> Resource {
        if self.mem > self.cpu {
            Resource::Mem
        } else {
            Resource::Cpu
        }
    }

    /// The normalized demand profile `[g_cpu, g_mem]`: demand per
    /// *dominant-resource unit*, so the dominant component is exactly
    /// `1.0` and the other lies in `[0, 1]`. Zero components stay exactly
    /// `+0.0` (so the degenerate single-resource profile is bit-exact
    /// `[1.0, 0.0]` and `-0.0` inputs cannot split the uniform-mode
    /// signature).
    pub fn profile(&self) -> [f64; AXES] {
        self.validate();
        let gmax = self.cpu.max(self.mem);
        let norm = |g: f64| if g == 0.0 { 0.0 } else { g / gmax };
        [norm(self.cpu), norm(self.mem)]
    }

    /// Dominant-resource units per CPU unit (`max_component / cpu`):
    /// callers whose work and rate caps are denominated in CPU terms
    /// multiply both by this before handing them to
    /// [`GpsCpu::add_task_demand`]. Exactly `1.0` whenever CPU is the
    /// dominant axis. Panics if the CPU demand is zero.
    pub fn dominant_per_cpu(&self) -> f64 {
        self.validate();
        assert!(
            self.cpu > 0.0,
            "CPU-denominated conversion needs a positive CPU demand"
        );
        self.cpu.max(self.mem) / self.cpu
    }
}

/// Work below this many core-seconds counts as complete; guards against
/// floating-point residue keeping a task alive forever.
pub(crate) const WORK_EPSILON: f64 = 1e-9;

/// Rebase the virtual clock once it exceeds this magnitude (2^14
/// core-seconds of per-task service). The epsilon-finish machinery needs
/// `ulp(vt) << WORK_EPSILON`; left unbounded, a never-idle bank would erode
/// that headroom (`ulp(1e7) ≈ 2e-9`). Rebasing is O(live tasks) and fires
/// at most once per 16384 core-seconds of service, so it is amortized
/// free; as a bonus it discards all stale heap entries.
const VT_REBASE_THRESHOLD: f64 = 16384.0;

/// `(weight, max_rate, g_cpu, g_mem)` signature used to detect the uniform
/// fast path. Bit-level equality matches the reference integrator's `!=`
/// comparison (weights are asserted positive, profile components are
/// normalized with zeros pinned to `+0.0`, so `-0.0`/NaN cannot occur).
type Signature = (u64, u64, u64, u64);

fn signature(weight: f64, max_rate: f64, demand: [f64; AXES]) -> Signature {
    (
        weight.to_bits(),
        max_rate.to_bits(),
        demand[0].to_bits(),
        demand[1].to_bits(),
    )
}

/// Partition-order key: `(pin ratio bits, slot)`. Weights and caps are
/// positive, so the IEEE bit pattern of `max_rate / weight` orders exactly
/// like the ratio itself; the slot index makes ties deterministic.
type PartKey = (u64, u32);

fn pin_ratio_bits(weight: f64, max_rate: f64) -> u64 {
    (max_rate / weight).to_bits()
}

/// Neumaier-compensated running sum: the partition sums see a long stream
/// of incremental `+weight`/`-weight` updates, and plain f64 accumulation
/// would slowly drift away from the freshly-summed value the reference
/// integrator computes.
#[derive(Debug, Clone, Copy, Default)]
struct CompensatedSum {
    sum: f64,
    comp: f64,
}

impl CompensatedSum {
    const ZERO: CompensatedSum = CompensatedSum {
        sum: 0.0,
        comp: 0.0,
    };

    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

#[derive(Debug, Clone, Copy)]
enum Body {
    /// Uniform-mode unfinished task: completes when the virtual clock
    /// reaches `finish_vt`.
    Virtual {
        /// Virtual time at which the task's work is exhausted.
        finish_vt: f64,
    },
    /// Explicit remaining work: tasks (in either mode) whose work is
    /// numerically exhausted and which wait in `finished_pending` for the
    /// owner to remove them.
    Settled {
        /// Remaining CPU work in core-seconds.
        remaining: f64,
    },
    /// General-mode unfinished task on the uncapped side: completes when
    /// the uncapped virtual clock reaches `finish_uvt`.
    GenUncapped {
        /// Uncapped-clock coordinate at which the work is exhausted.
        finish_uvt: f64,
    },
    /// General-mode unfinished task pinned at its rate cap: completes
    /// when the general-mode real clock reaches `finish_rt`.
    GenCapped {
        /// Real-clock coordinate at which the work is exhausted.
        finish_rt: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    weight: f64,
    max_rate: f64,
    /// Normalized demand profile `[g_cpu, g_mem]` (dominant component
    /// exactly `1.0`; single-resource tasks carry `[1.0, 0.0]`).
    demand: [f64; AXES],
    /// Distinguishes reincarnations of a recycled slot in stale heap keys.
    epoch: u64,
    /// General mode: true while the task sits in the capped side of the
    /// water-filling partition (rate pinned at `max_rate`). Meaningless in
    /// uniform mode.
    capped: bool,
    body: Body,
}

/// Min-heap key ordering completions by `(finish_vt, slot)`; the slot
/// component reproduces the reference kernel's lowest-slot tie-break.
#[derive(Debug, Clone, Copy)]
struct HeapKey {
    finish_vt: f64,
    slot: u32,
    epoch: u64,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: BinaryHeap is a max-heap, we want the earliest
        // (finish_vt, slot) on top.
        other
            .finish_vt
            .total_cmp(&self.finish_vt)
            .then_with(|| other.slot.cmp(&self.slot))
    }
}

/// General-mode heap entry: `key` is the *freeze coordinate*
/// `finish − WORK_EPSILON / axis` (the clock value at which remaining work
/// hits the numerically-finished threshold), `finish` the true completion
/// coordinate on the family clock. Min-ordered by `(key, slot)`; the slot
/// component keeps same-signature ties deterministic.
#[derive(Debug, Clone, Copy)]
struct GenKey {
    key: f64,
    finish: f64,
    slot: u32,
    epoch: u64,
}

impl PartialEq for GenKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for GenKey {}
impl PartialOrd for GenKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GenKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted for BinaryHeap: earliest (key, slot) on top.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.slot.cmp(&self.slot))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Single `(weight, max_rate)` signature: O(1) virtual-time advance.
    Uniform,
    /// Heterogeneous signatures: incremental water-filling partition with
    /// per-family clock coordinates.
    General,
}

/// The two general-mode completion families, each with its own clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// Depletes at `weight * λ`; coordinates on the uncapped virtual clock.
    Uncapped,
    /// Depletes at the constant `max_rate`; coordinates on the real clock.
    Capped,
}

/// The GPS processor bank.
#[derive(Debug, Clone)]
pub struct GpsCpu {
    params: GpsParams,
    /// Memory-bandwidth capacity (`+∞` while the axis is disabled —
    /// the degenerate single-resource configuration).
    mem_capacity: f64,
    slots: Vec<Option<Slot>>,
    free_slots: Vec<u32>,
    runnable: usize,
    last_advance: SimTime,
    /// Incremented on every membership change; lets the owner discard stale
    /// completion events, and keys the rate memo.
    generation: u64,
    /// Total core-seconds of work completed, for conservation checks.
    /// Neumaier-compensated: long runs accumulate one blanket update per
    /// `advance` plus overshoot corrections, and plain `+=` would drift
    /// against the freshly-summed reference accounting.
    work_done: CompensatedSum,
    /// Next slot epoch (bumped on every add, never reused).
    next_epoch: u64,
    /// Live-task count per `(weight, max_rate)` signature; a single entry
    /// enables the uniform virtual-time representation.
    sig_counts: HashMap<Signature, usize>,
    mode: Mode,

    // ---- Uniform-mode state ----
    /// The virtual clock: cumulative per-task service since the last rebase.
    vt: f64,
    /// Completion heap over unfinished uniform tasks.
    heap: BinaryHeap<HeapKey>,
    /// Number of live unfinished (`Body::Virtual`) tasks.
    unfinished: usize,
    /// Slots whose work is exhausted but which still occupy the bank until
    /// the owner removes them (unsorted; sorted on query). Shared by both
    /// modes: the general-mode heap drain lands finished tasks here too.
    finished_pending: Vec<u32>,

    // ---- Uniform-rate memo (valid while `rates_generation ==
    // Some(generation)`; general mode keeps its rates implicit in the
    // partition instead) ----
    rates_generation: Option<u64>,
    /// Uniform mode: the common task rate.
    uniform_rate: f64,

    // ---- General-mode partition state ----
    /// Uncapped tasks ordered by pin ratio ascending: the head is the next
    /// task to pin as the water level rises.
    part_uncapped: BTreeSet<PartKey>,
    /// Capped tasks in the same order: the tail is the next task to unpin
    /// as the water level falls.
    part_capped: BTreeSet<PartKey>,
    /// `W_k = Σ weight·g_k` over the uncapped set, per resource axis.
    uncapped_weight: [CompensatedSum; AXES],
    /// `K_k = Σ max_rate·g_k` over the capped set, per resource axis.
    capped_capacity: [CompensatedSum; AXES],
    /// The water level `λ` for the current membership (general mode).
    water_level: f64,

    // ---- General-mode two-clock state ----
    /// The uncapped virtual clock `U = ∫ λ dt`: cumulative service per
    /// unit weight since the last general-mode rebase.
    g_uvt: f64,
    /// The capped real clock `R`: seconds of general-mode residence since
    /// the last rebase (capped tasks deplete at their constant cap).
    g_rt: f64,
    /// Completion heap over unfinished uncapped tasks, keyed by the freeze
    /// coordinate on the `U` axis.
    g_uncapped_heap: BinaryHeap<GenKey>,
    /// Completion heap over unfinished capped tasks, keyed by the freeze
    /// coordinate on the `R` axis.
    g_capped_heap: BinaryHeap<GenKey>,
    /// Σ weight over *unfinished* uncapped tasks (blanket `work_done`
    /// accounting; frozen tasks leave it).
    unf_uncapped_weight: CompensatedSum,
    /// Number of unfinished uncapped tasks (pins the sum to exact zero).
    unf_uncapped_count: usize,
    /// Σ max_rate over *unfinished* capped tasks.
    unf_capped_rate: CompensatedSum,
    /// Number of unfinished capped tasks.
    unf_capped_count: usize,
    /// Total capped/uncapped boundary crossings (test introspection: the
    /// thrash suites assert their schedules actually exercise re-keying).
    boundary_crossings: u64,
}

impl GpsCpu {
    /// Create an empty bank.
    pub fn new(params: GpsParams) -> Self {
        params.validate();
        GpsCpu {
            params,
            mem_capacity: f64::INFINITY,
            slots: Vec::new(),
            free_slots: Vec::new(),
            runnable: 0,
            last_advance: SimTime::ZERO,
            generation: 0,
            work_done: CompensatedSum::ZERO,
            next_epoch: 0,
            sig_counts: HashMap::new(),
            mode: Mode::Uniform,
            vt: 0.0,
            heap: BinaryHeap::new(),
            unfinished: 0,
            finished_pending: Vec::new(),
            rates_generation: None,
            uniform_rate: 0.0,
            part_uncapped: BTreeSet::new(),
            part_capped: BTreeSet::new(),
            uncapped_weight: [CompensatedSum::ZERO; AXES],
            capped_capacity: [CompensatedSum::ZERO; AXES],
            water_level: 0.0,
            g_uvt: 0.0,
            g_rt: 0.0,
            g_uncapped_heap: BinaryHeap::new(),
            g_capped_heap: BinaryHeap::new(),
            unf_uncapped_weight: CompensatedSum::ZERO,
            unf_uncapped_count: 0,
            unf_capped_rate: CompensatedSum::ZERO,
            unf_capped_count: 0,
            boundary_crossings: 0,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> GpsParams {
        self.params
    }

    /// Number of runnable tasks.
    pub fn len(&self) -> usize {
        self.runnable
    }

    /// True if no task is runnable.
    pub fn is_empty(&self) -> bool {
        self.runnable == 0
    }

    /// Current generation; bumped on every add/remove.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total core-seconds of service delivered so far.
    pub fn work_done(&self) -> f64 {
        self.work_done.value()
    }

    /// Total number of capped/uncapped boundary crossings so far (general
    /// mode re-keys exactly the crossing tasks). Test introspection: the
    /// boundary-thrash suites assert their schedules exercise this path.
    pub fn boundary_crossings(&self) -> u64 {
        self.boundary_crossings
    }

    /// True while the bank runs the uniform virtual-time representation
    /// (single `(weight, max_rate)` signature — the invoker's hot path).
    /// Test/introspection hook: homogeneous workloads must never leave it.
    pub fn is_uniform_mode(&self) -> bool {
        self.mode == Mode::Uniform
    }

    /// `(uncapped, capped)` sizes of the general-mode water-filling
    /// partition; both zero in uniform mode, whose fast path never touches
    /// the partition structure.
    pub fn partition_sizes(&self) -> (usize, usize) {
        (self.part_uncapped.len(), self.part_capped.len())
    }

    /// The general-mode water level `λ` (service rate per unit weight);
    /// `None` in uniform mode.
    pub fn water_level(&self) -> Option<f64> {
        (self.mode == Mode::General).then_some(self.water_level)
    }

    /// Instantaneous service rate of `id` under the current task set.
    pub fn current_rate(&mut self, id: TaskId) -> f64 {
        match self.mode {
            Mode::Uniform => {
                if self.slots[id.0 as usize].is_some() {
                    self.refresh_uniform_rate()
                } else {
                    0.0
                }
            }
            Mode::General => match &self.slots[id.0 as usize] {
                Some(slot) => Self::general_rate(slot, self.water_level),
                None => 0.0,
            },
        }
    }

    /// Remaining work of a task (after the last `advance`).
    pub fn remaining(&self, id: TaskId) -> f64 {
        let slot = self.slots[id.0 as usize]
            .as_ref()
            .expect("remaining() on dead task");
        match slot.body {
            Body::Virtual { finish_vt } => (finish_vt - self.vt).max(0.0),
            Body::Settled { remaining } => remaining,
            Body::GenUncapped { finish_uvt } => (finish_uvt - self.g_uvt).max(0.0) * slot.weight,
            Body::GenCapped { finish_rt } => (finish_rt - self.g_rt).max(0.0) * slot.max_rate,
        }
    }

    /// Advance the clock to `now`. In uniform mode this is O(1) arithmetic
    /// on the virtual clock plus an amortized drain of tasks whose finish
    /// virtual-time was passed. Must be called with monotone timestamps.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_advance).as_secs_f64();
        self.last_advance = self.last_advance.max(now);
        if dt <= 0.0 || self.runnable == 0 {
            return;
        }
        match self.mode {
            Mode::Uniform => {
                let rate = self.refresh_uniform_rate();
                self.vt += rate * dt;
                // Every unfinished task consumed `rate * dt`... except the
                // ones that exhausted mid-interval, corrected in the drain.
                self.work_done.add(self.unfinished as f64 * rate * dt);
                self.drain_exhausted();
                if self.vt >= VT_REBASE_THRESHOLD {
                    self.rebase_vt();
                }
            }
            Mode::General => {
                // The partition (and hence the water level) is kept current
                // by the membership operations themselves: advance is two
                // clock bumps, one compensated work update and the
                // amortized drain of passed/frozen coordinates.
                let level = self.water_level;
                // The level is finite and positive whenever the uncapped
                // side is populated (see the rebalance sweeps) — except
                // when subnormal weights overflow `(C−K)/W`; the finite
                // guard keeps the clock (and the blanket charge, whose
                // unfinished sum is then a subnormal residue) unpoisoned.
                if !self.part_uncapped.is_empty() && level.is_finite() {
                    self.g_uvt += level * dt;
                }
                self.g_rt += dt;
                let mut charge = 0.0;
                let uw = self.unf_uncapped_weight.value();
                if uw > 0.0 && level.is_finite() {
                    charge += level * dt * uw;
                }
                let cr = self.unf_capped_rate.value();
                if cr > 0.0 {
                    charge += dt * cr;
                }
                // Single compensated update; tasks that exhausted
                // mid-interval are corrected by the drain's overshoot term.
                self.work_done.add(charge);
                self.drain_gen_finished();
                if self.g_uvt >= VT_REBASE_THRESHOLD || self.g_rt >= VT_REBASE_THRESHOLD {
                    self.rebase_gen();
                }
            }
        }
    }

    /// Change the bank's core capacity at `now` (dynamic capacity: cgroup
    /// throttling, noisy neighbors, autoscale lag). O(log n) amortized.
    ///
    /// The capacity-rebase invariant that makes this cheap: **every stored
    /// completion coordinate is capacity-invariant.** Uniform-mode tasks
    /// finish at a fixed *virtual* time `V₀ + work`, and a capacity change
    /// only alters the future growth rate of `V` itself; general-mode
    /// uncapped tasks finish at a fixed coordinate on the `U = ∫ λ dt`
    /// clock (λ moves, the coordinate does not) and capped tasks deplete at
    /// their constant `max_rate` on the real clock regardless of capacity.
    /// So the operation is: settle served work up to `now` under the *old*
    /// capacity, swap the parameter, bump the generation (invalidating the
    /// memoized uniform rate and any owner-held completion events), and in
    /// general mode run the two rebalance sweeps — the water level moved,
    /// so tasks whose pin ratio the level crossed migrate between the
    /// capped and uncapped families, re-keyed onto the other clock by the
    /// same boundary-crossing machinery membership churn uses. Tasks the
    /// level did not cross keep their coordinates bit-for-bit.
    pub fn set_capacity(&mut self, now: SimTime, cores: f64) {
        self.advance(now);
        if cores == self.params.cores {
            return;
        }
        let params = GpsParams {
            cores,
            ..self.params
        };
        params.validate();
        self.params = params;
        self.generation += 1;
        if self.mode == Mode::General {
            self.rebalance_partition();
        }
    }

    /// Change one resource axis's capacity at `now`. The CPU axis is
    /// exactly [`GpsCpu::set_capacity`]; the memory-bandwidth axis accepts
    /// any positive capacity including `+∞` (which disables the axis).
    /// Same cost and capacity-rebase invariant: coordinates are
    /// capacity-invariant on *every* axis, so only the partition boundary
    /// moves.
    pub fn set_resource_capacity(&mut self, now: SimTime, resource: Resource, capacity: f64) {
        match resource {
            Resource::Cpu => self.set_capacity(now, capacity),
            Resource::Mem => {
                self.advance(now);
                if capacity == self.mem_capacity {
                    return;
                }
                assert!(
                    capacity > 0.0 && !capacity.is_nan(),
                    "memory bandwidth must be positive (+inf disables the axis), got {capacity}"
                );
                self.mem_capacity = capacity;
                self.generation += 1;
                if self.mode == Mode::General {
                    self.rebalance_partition();
                }
            }
        }
    }

    /// The capacity of one resource axis (`Mem` is `+∞` while disabled).
    pub fn resource_capacity(&self, resource: Resource) -> f64 {
        match resource {
            Resource::Cpu => self.params.cores,
            Resource::Mem => self.mem_capacity,
        }
    }

    /// Instantaneous total consumption of `resource` across unfinished
    /// tasks, in that resource's units. O(n) slot scan — introspection for
    /// the fairness/efficiency suites and the per-resource utilization
    /// metrics, not a hot path.
    pub fn resource_consumption(&mut self, resource: Resource) -> f64 {
        let axis = resource.axis();
        if self.runnable == 0 {
            return 0.0;
        }
        let uniform_rate = if self.mode == Mode::Uniform {
            self.refresh_uniform_rate()
        } else {
            0.0
        };
        let level = self.water_level;
        let mut total = 0.0;
        for slot in self.slots.iter().flatten() {
            let rate = match slot.body {
                Body::Virtual { .. } => uniform_rate,
                Body::GenUncapped { .. } | Body::GenCapped { .. } => {
                    Self::general_rate(slot, level)
                }
                Body::Settled { .. } => 0.0,
            };
            total += rate * slot.demand[axis];
        }
        total
    }

    /// Add a single-resource task with `work` core-seconds of demand.
    /// `advance(now)` must already have been called (or be implied by
    /// event ordering). Exactly [`GpsCpu::add_task_demand`] with the
    /// degenerate [`ResourceVector::CPU_ONLY`] profile.
    pub fn add_task(&mut self, now: SimTime, work: f64, weight: f64, max_rate: f64) -> TaskId {
        self.add_task_demand(now, work, weight, max_rate, ResourceVector::CPU_ONLY)
    }

    /// Add a task with a multi-resource demand vector. `work` and
    /// `max_rate` are in *dominant-resource* units (callers with
    /// CPU-denominated quantities scale by
    /// [`ResourceVector::dominant_per_cpu`]); `demand` is normalized into
    /// the per-dominant-unit profile internally.
    pub fn add_task_demand(
        &mut self,
        now: SimTime,
        work: f64,
        weight: f64,
        max_rate: f64,
        demand: ResourceVector,
    ) -> TaskId {
        assert!(work >= 0.0 && work.is_finite(), "invalid work {work}");
        assert!(weight > 0.0, "weight must be positive");
        assert!(max_rate > 0.0, "max_rate must be positive");
        let profile = demand.profile();
        self.advance(now);
        self.generation += 1;
        *self
            .sig_counts
            .entry(signature(weight, max_rate, profile))
            .or_insert(0) += 1;
        self.runnable += 1;
        let epoch = self.next_epoch;
        self.next_epoch += 1;

        let index = match self.free_slots.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        if self.sig_counts.len() > 1 {
            // Heterogeneous signatures: leave (or put) the bank in general
            // mode, splice the task into the water-filling partition, and
            // give it a clock coordinate on whichever side the rebalance
            // leaves it.
            let switched = self.mode == Mode::Uniform;
            self.enter_general_mode();
            self.slots[index as usize] = Some(Slot {
                weight,
                max_rate,
                demand: profile,
                epoch,
                capped: false,
                body: Body::Settled { remaining: work },
            });
            self.partition_insert(index);
            self.rebalance_partition();
            if switched {
                // The representation switch left every carried-over task
                // settled; coordinate them all (O(n), amortized into the
                // O(n) switch itself).
                for i in 0..self.slots.len() as u32 {
                    self.activate_settled(i);
                }
            } else {
                self.activate_settled(index);
            }
        } else {
            // Single signature implies the bank was already uniform (adds
            // cannot shrink the signature set).
            debug_assert_eq!(self.mode, Mode::Uniform);
            let finish_vt = self.vt + work;
            self.slots[index as usize] = Some(Slot {
                weight,
                max_rate,
                demand: profile,
                epoch,
                capped: false,
                body: Body::Virtual { finish_vt },
            });
            self.unfinished += 1;
            self.heap.push(HeapKey {
                finish_vt,
                slot: index,
                epoch,
            });
        }
        TaskId(index)
    }

    /// Remove a task (completed or aborted), returning its residual work.
    pub fn remove_task(&mut self, now: SimTime, id: TaskId) -> f64 {
        self.advance(now);
        self.generation += 1;
        let slot = self.slots[id.0 as usize]
            .take()
            .expect("remove_task on dead task");
        if self.mode == Mode::General {
            self.partition_remove(id.0, &slot);
        }
        self.free_slots.push(id.0);
        self.runnable -= 1;
        let sig = signature(slot.weight, slot.max_rate, slot.demand);
        let count = self
            .sig_counts
            .get_mut(&sig)
            .expect("live task must have a signature count");
        *count -= 1;
        if *count == 0 {
            self.sig_counts.remove(&sig);
        }
        let residual = match slot.body {
            Body::Virtual { finish_vt } => {
                self.unfinished -= 1;
                // The heap entry goes stale and is discarded lazily.
                (finish_vt - self.vt).max(0.0)
            }
            Body::Settled { remaining } => {
                self.finished_pending.retain(|&s| s != id.0);
                remaining
            }
            Body::GenUncapped { finish_uvt } => {
                self.unf_leave_uncapped(slot.weight);
                (finish_uvt - self.g_uvt).max(0.0) * slot.weight
            }
            Body::GenCapped { finish_rt } => {
                self.unf_leave_capped(slot.max_rate);
                (finish_rt - self.g_rt).max(0.0) * slot.max_rate
            }
        };
        if self.runnable == 0 {
            // Rebase the clocks while idle: bounds their magnitude and
            // discards stale heap entries wholesale.
            self.reset_uniform_state();
            self.clear_partition();
            self.reset_gen_state();
            self.mode = Mode::Uniform;
        } else if self.mode == Mode::General {
            if self.sig_counts.len() == 1 {
                self.enter_uniform_mode();
            } else {
                self.rebalance_partition();
            }
        }
        residual
    }

    /// The earliest task completion strictly after `now`, as
    /// `(task, completion time)`. Ties resolve to the lowest slot index for
    /// determinism. Returns `None` when idle.
    pub fn next_completion(&mut self, now: SimTime) -> Option<(TaskId, SimTime)> {
        self.advance(now);
        if self.runnable == 0 {
            return None;
        }
        match self.mode {
            Mode::Uniform => {
                self.freeze_numerically_finished();
                if let Some(&slot) = self.finished_pending.iter().min() {
                    // Exhausted tasks complete "now"; lowest slot wins ties,
                    // exactly like the reference scan's strict-minimum rule.
                    return Some((TaskId(slot), now));
                }
                let top = self.peek_live_top()?;
                let rate = self.refresh_uniform_rate();
                let eta = (top.finish_vt - self.vt) / rate;
                Some((TaskId(top.slot), now + SimDuration::from_secs_f64(eta)))
            }
            Mode::General => {
                self.drain_gen_finished();
                if let Some(&slot) = self.finished_pending.iter().min() {
                    // Exhausted tasks complete "now" regardless of their
                    // rate — a task frozen at a zero-ish water level must
                    // not be starved out of the completion stream (the
                    // uniform path's `finished_pending` rule; the freeze
                    // coordinate never involves the rate).
                    return Some((TaskId(slot), now));
                }
                let level = self.water_level;
                let uncapped = self
                    .peek_live_gen_top(Family::Uncapped)
                    .filter(|_| level > 0.0 && level.is_finite())
                    .map(|top| (top.slot, (top.finish - self.g_uvt).max(0.0) / level));
                let capped = self
                    .peek_live_gen_top(Family::Capped)
                    .map(|top| (top.slot, (top.finish - self.g_rt).max(0.0)));
                let best = match (uncapped, capped) {
                    (Some((us, ue)), Some((cs, ce))) => {
                        // Earliest completion wins; a cross-family tie
                        // resolves to the lowest slot like the reference
                        // scan's strict-minimum rule.
                        if ue < ce || (ue == ce && us < cs) {
                            Some((us, ue))
                        } else {
                            Some((cs, ce))
                        }
                    }
                    (u, c) => u.or(c),
                };
                best.map(|(slot, eta)| (TaskId(slot), now + SimDuration::from_secs_f64(eta)))
            }
        }
    }

    /// All tasks whose remaining work is (numerically) exhausted at `now`,
    /// in slot order. The owner removes them with [`GpsCpu::remove_task`].
    pub fn finished_tasks(&mut self, now: SimTime) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.finished_tasks_into(now, &mut out);
        out
    }

    /// Allocation-free variant of [`GpsCpu::finished_tasks`]: clears `out`
    /// and fills it with the finished tasks in slot order. Event loops call
    /// this once per completion event; reusing the buffer keeps the hot
    /// path allocation-free.
    pub fn finished_tasks_into(&mut self, now: SimTime, out: &mut Vec<TaskId>) {
        out.clear();
        self.advance(now);
        match self.mode {
            Mode::Uniform => {
                self.freeze_numerically_finished();
            }
            Mode::General => {
                // Drain the family heaps instead of scanning slots: every
                // finished task sits in `finished_pending` afterwards.
                self.drain_gen_finished();
            }
        }
        self.finished_pending.sort_unstable();
        out.extend(self.finished_pending.iter().map(|&s| TaskId(s)));
    }

    /// The memoized uniform task rate, recomputed only when the membership
    /// generation moved. In dominant-resource units: `n` identical tasks
    /// each run at `min(max_rate, min_k C_k / (n·g_k))` — the binding axis
    /// is whichever capacity the common profile saturates first. With the
    /// degenerate `[1.0, 0.0]` profile the memory term drops out and this
    /// is bit-identical to the scalar `min(C/n, max_rate)`.
    fn refresh_uniform_rate(&mut self) -> f64 {
        if self.rates_generation != Some(self.generation) {
            let (_, max_rate_bits, g_cpu_bits, g_mem_bits) = *self
                .sig_counts
                .keys()
                .next()
                .expect("uniform rate queried on a non-empty bank");
            let max_rate = f64::from_bits(max_rate_bits);
            let g_cpu = f64::from_bits(g_cpu_bits);
            let g_mem = f64::from_bits(g_mem_bits);
            let cap = self.params.effective_capacity(self.runnable);
            let mut rate = max_rate;
            if g_cpu > 0.0 {
                rate = rate.min(cap / (self.runnable as f64 * g_cpu));
            }
            if g_mem > 0.0 {
                rate = rate.min(self.mem_capacity / (self.runnable as f64 * g_mem));
            }
            self.uniform_rate = rate;
            self.rates_generation = Some(self.generation);
        }
        self.uniform_rate
    }

    /// The general-mode rate of one slot given the water level.
    #[inline]
    fn general_rate(slot: &Slot, level: f64) -> f64 {
        if slot.capped {
            slot.max_rate
        } else {
            slot.weight * level
        }
    }

    /// Insert a live slot into the partition as uncapped (the following
    /// [`GpsCpu::rebalance_partition`] pins it if its ratio sits below the
    /// water level).
    fn partition_insert(&mut self, index: u32) {
        let slot = self.slots[index as usize]
            .as_mut()
            .expect("partition insert of a dead slot");
        slot.capped = false;
        let (weight, max_rate, demand) = (slot.weight, slot.max_rate, slot.demand);
        for (k, &d) in demand.iter().enumerate() {
            if d > 0.0 {
                self.uncapped_weight[k].add(weight * d);
            }
        }
        self.part_uncapped
            .insert((pin_ratio_bits(weight, max_rate), index));
    }

    /// Remove a (just-taken) slot from whichever side of the partition it
    /// occupied.
    fn partition_remove(&mut self, index: u32, slot: &Slot) {
        let key = (pin_ratio_bits(slot.weight, slot.max_rate), index);
        if slot.capped {
            let removed = self.part_capped.remove(&key);
            debug_assert!(removed, "capped task missing from partition");
            for k in 0..AXES {
                if slot.demand[k] > 0.0 {
                    self.capped_capacity[k].add(-(slot.max_rate * slot.demand[k]));
                }
            }
        } else {
            let removed = self.part_uncapped.remove(&key);
            debug_assert!(removed, "uncapped task missing from partition");
            for k in 0..AXES {
                if slot.demand[k] > 0.0 {
                    self.uncapped_weight[k].add(-(slot.weight * slot.demand[k]));
                }
            }
        }
    }

    /// One axis's water level from its sums: `(C_k − K_k) / W_k`. With no
    /// uncapped demand on the axis the level is `+∞` while the caps fit
    /// the capacity (the axis cannot bind) and `−∞` once they exceed it
    /// (forcing the rebalance to unpin from the top).
    fn axis_level(cap: f64, w: f64, k: f64) -> f64 {
        if w > 0.0 {
            (cap - k) / w
        } else if k <= cap {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    }

    /// The water level implied by the current sums: the *minimum* per-axis
    /// level `min_k (C_k − K_k) / W_k` — the binding resource's level.
    /// Disabled axes (no uncapped demand, caps within capacity) contribute
    /// `+∞` and drop out of the `min`, so the degenerate single-resource
    /// configuration reduces bit-for-bit to the scalar `(C_eff − K) / W`.
    fn current_level(&self, cap: f64) -> f64 {
        let caps = [cap, self.mem_capacity];
        let mut level = f64::INFINITY;
        for (k, &axis_cap) in caps.iter().enumerate() {
            level = level.min(Self::axis_level(
                axis_cap,
                self.uncapped_weight[k].value(),
                self.capped_capacity[k].value(),
            ));
        }
        level
    }

    /// Restore the capped/uncapped invariant after a membership change.
    /// Two sweeps suffice (see the module docs): every move — unpinning a
    /// capped task whose ratio exceeds the level, or pinning an uncapped
    /// task whose ratio is at or below it — raises the water level, so
    /// unpins cannot re-enable unpins and pins cannot re-enable either.
    fn rebalance_partition(&mut self) {
        debug_assert_eq!(self.mode, Mode::General);
        let cap = self.params.effective_capacity(self.runnable);
        // Sweep 1: unpin from the top of the capped order.
        while let Some(&(rb, index)) = self.part_capped.last() {
            if f64::from_bits(rb) <= self.current_level(cap) {
                break;
            }
            self.part_capped.remove(&(rb, index));
            let slot = self.slots[index as usize]
                .as_mut()
                .expect("partition holds only live slots");
            slot.capped = false;
            let (weight, max_rate, demand) = (slot.weight, slot.max_rate, slot.demand);
            for (k, &d) in demand.iter().enumerate() {
                if d > 0.0 {
                    self.capped_capacity[k].add(-(max_rate * d));
                    self.uncapped_weight[k].add(weight * d);
                }
            }
            self.part_uncapped.insert((rb, index));
            self.cross_boundary(index);
        }
        // Sweep 2: pin from the bottom of the uncapped order.
        while let Some(&(rb, index)) = self.part_uncapped.first() {
            if f64::from_bits(rb) > self.current_level(cap) {
                break;
            }
            self.part_uncapped.remove(&(rb, index));
            let slot = self.slots[index as usize]
                .as_mut()
                .expect("partition holds only live slots");
            slot.capped = true;
            let (weight, max_rate, demand) = (slot.weight, slot.max_rate, slot.demand);
            for (k, &d) in demand.iter().enumerate() {
                if d > 0.0 {
                    self.uncapped_weight[k].add(-(weight * d));
                    self.capped_capacity[k].add(max_rate * d);
                }
            }
            self.part_capped.insert((rb, index));
            self.cross_boundary(index);
        }
        // Pin the sums back to exact zero whenever a side empties, so
        // residual compensation cannot accumulate across mode episodes.
        if self.part_uncapped.is_empty() {
            self.uncapped_weight = [CompensatedSum::ZERO; AXES];
        }
        if self.part_capped.is_empty() {
            self.capped_capacity = [CompensatedSum::ZERO; AXES];
        }
        self.water_level = self.current_level(cap);
        #[cfg(debug_assertions)]
        self.debug_validate_partition();
    }

    /// Debug-build invariant check: partition membership matches the
    /// per-slot flags, the running sums match fresh summation, and no task
    /// sits more than a rounding margin on the wrong side of the level.
    #[cfg(debug_assertions)]
    fn debug_validate_partition(&self) {
        let mut w = [0.0f64; AXES];
        let mut k = [0.0f64; AXES];
        let mut live = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            live += 1;
            let key = (pin_ratio_bits(slot.weight, slot.max_rate), i as u32);
            if slot.capped {
                debug_assert!(self.part_capped.contains(&key));
                for (axis, &d) in slot.demand.iter().enumerate() {
                    k[axis] += slot.max_rate * d;
                }
            } else {
                debug_assert!(self.part_uncapped.contains(&key));
                for (axis, &d) in slot.demand.iter().enumerate() {
                    w[axis] += slot.weight * d;
                }
            }
            let ratio = slot.max_rate / slot.weight;
            let margin = 1e-9 * (1.0 + ratio.abs() + self.water_level.abs());
            if slot.capped {
                debug_assert!(
                    ratio <= self.water_level + margin,
                    "capped task {i} above the water level: r={ratio} λ={}",
                    self.water_level
                );
            } else {
                debug_assert!(
                    ratio >= self.water_level - margin,
                    "uncapped task {i} below the water level: r={ratio} λ={}",
                    self.water_level
                );
            }
        }
        debug_assert_eq!(live, self.part_uncapped.len() + self.part_capped.len());
        for a in 0..AXES {
            debug_assert!(
                (w[a] - self.uncapped_weight[a].value()).abs() <= 1e-9 * (1.0 + w[a].abs())
            );
            debug_assert!(
                (k[a] - self.capped_capacity[a].value()).abs() <= 1e-9 * (1.0 + k[a].abs())
            );
        }
        // The unfinished sums cover exactly the coordinate bodies.
        let mut uw = 0.0;
        let mut uc = 0usize;
        let mut cr = 0.0;
        let mut cc = 0usize;
        for slot in self.slots.iter().flatten() {
            match slot.body {
                Body::GenUncapped { .. } => {
                    uw += slot.weight;
                    uc += 1;
                }
                Body::GenCapped { .. } => {
                    cr += slot.max_rate;
                    cc += 1;
                }
                _ => {}
            }
        }
        debug_assert_eq!(uc, self.unf_uncapped_count);
        debug_assert_eq!(cc, self.unf_capped_count);
        debug_assert!((uw - self.unf_uncapped_weight.value()).abs() <= 1e-9 * (1.0 + uw.abs()));
        debug_assert!((cr - self.unf_capped_rate.value()).abs() <= 1e-9 * (1.0 + cr.abs()));
    }

    fn clear_partition(&mut self) {
        self.part_uncapped.clear();
        self.part_capped.clear();
        self.uncapped_weight = [CompensatedSum::ZERO; AXES];
        self.capped_capacity = [CompensatedSum::ZERO; AXES];
        self.water_level = 0.0;
    }

    fn reset_gen_state(&mut self) {
        self.g_uvt = 0.0;
        self.g_rt = 0.0;
        self.g_uncapped_heap.clear();
        self.g_capped_heap.clear();
        self.unf_uncapped_weight = CompensatedSum::ZERO;
        self.unf_uncapped_count = 0;
        self.unf_capped_rate = CompensatedSum::ZERO;
        self.unf_capped_count = 0;
    }

    fn unf_join_uncapped(&mut self, weight: f64) {
        self.unf_uncapped_weight.add(weight);
        self.unf_uncapped_count += 1;
    }

    fn unf_leave_uncapped(&mut self, weight: f64) {
        self.unf_uncapped_weight.add(-weight);
        self.unf_uncapped_count -= 1;
        if self.unf_uncapped_count == 0 {
            // Pin the sum back to exact zero so residual compensation
            // cannot leak into later blanket charges.
            self.unf_uncapped_weight = CompensatedSum::ZERO;
        }
    }

    fn unf_join_capped(&mut self, max_rate: f64) {
        self.unf_capped_rate.add(max_rate);
        self.unf_capped_count += 1;
    }

    fn unf_leave_capped(&mut self, max_rate: f64) {
        self.unf_capped_rate.add(-max_rate);
        self.unf_capped_count -= 1;
        if self.unf_capped_count == 0 {
            self.unf_capped_rate = CompensatedSum::ZERO;
        }
    }

    /// Give an unfinished task a fresh coordinate (and heap key) on the
    /// family its `capped` flag names. The freeze key is the clock value
    /// at which the remaining work hits [`WORK_EPSILON`].
    ///
    /// Subnormal axes can overflow `remaining / axis` (or the
    /// `ε / axis` freeze offset) past f64 range, turning the key into
    /// inf−inf = NaN — which would defeat every heap comparison and
    /// spuriously settle the task. Such a task's completion is
    /// astronomically far away, so it is **parked** instead: it keeps its
    /// exact `Settled` remaining, never joins the heap or the unfinished
    /// sums (it depletes at an effectively-zero rate), and never reports
    /// finished — the starved-task behaviour the reference's zero-rate
    /// skip produces. A boundary crossing re-attempts the coordinate on
    /// the other axis.
    fn push_gen_coordinate(&mut self, index: u32, remaining: f64) {
        let slot = self.slots[index as usize]
            .as_mut()
            .expect("coordinate push on a dead slot");
        let epoch = slot.epoch;
        if slot.capped {
            let max_rate = slot.max_rate;
            let finish = self.g_rt + remaining / max_rate;
            let key = finish - WORK_EPSILON / max_rate;
            if !(key.is_finite() && finish.is_finite()) {
                slot.body = Body::Settled { remaining };
                return;
            }
            slot.body = Body::GenCapped { finish_rt: finish };
            self.g_capped_heap.push(GenKey {
                key,
                finish,
                slot: index,
                epoch,
            });
            self.unf_join_capped(max_rate);
        } else {
            let weight = slot.weight;
            let finish = self.g_uvt + remaining / weight;
            let key = finish - WORK_EPSILON / weight;
            if !(key.is_finite() && finish.is_finite()) {
                slot.body = Body::Settled { remaining };
                return;
            }
            slot.body = Body::GenUncapped { finish_uvt: finish };
            self.g_uncapped_heap.push(GenKey {
                key,
                finish,
                slot: index,
                epoch,
            });
            self.unf_join_uncapped(weight);
        }
    }

    /// Coordinate a task whose body is still `Settled` (a fresh add, or a
    /// carry-over from the representation switch): numerically-exhausted
    /// work goes straight to `finished_pending`, the rest onto the family
    /// heap the rebalance left it on. No-op for dead slots and tasks that
    /// already carry a coordinate.
    fn activate_settled(&mut self, index: u32) {
        let Some(slot) = self.slots[index as usize].as_ref() else {
            return;
        };
        let Body::Settled { remaining } = slot.body else {
            return;
        };
        if remaining <= WORK_EPSILON {
            self.finished_pending.push(index);
        } else {
            self.push_gen_coordinate(index, remaining);
        }
    }

    /// Re-key a task the rebalance just moved across the capped/uncapped
    /// boundary: its coordinate was expressed on the old family's clock,
    /// so re-derive the remaining work, bump the slot epoch (invalidating
    /// the old heap entry lazily) and push a fresh key on the new family's
    /// heap. Frozen (`Settled`) tasks only flip sides for rate accounting
    /// and need no re-key.
    fn cross_boundary(&mut self, index: u32) {
        self.boundary_crossings += 1;
        let slot = self.slots[index as usize]
            .as_mut()
            .expect("boundary crossing on a dead slot");
        let remaining = match slot.body {
            Body::GenUncapped { finish_uvt } => {
                debug_assert!(slot.capped, "crossing must have flipped the flag");
                let weight = slot.weight;
                slot.epoch = self.next_epoch;
                self.next_epoch += 1;
                let remaining = (finish_uvt - self.g_uvt).max(0.0) * weight;
                self.unf_leave_uncapped(weight);
                remaining
            }
            Body::GenCapped { finish_rt } => {
                debug_assert!(!slot.capped, "crossing must have flipped the flag");
                let max_rate = slot.max_rate;
                slot.epoch = self.next_epoch;
                self.next_epoch += 1;
                let remaining = (finish_rt - self.g_rt).max(0.0) * max_rate;
                self.unf_leave_capped(max_rate);
                remaining
            }
            // Frozen tasks only flip sides for rate accounting; a parked
            // task (coordinate not representable on the old axis) gets a
            // fresh attempt on the new one.
            Body::Settled { remaining } => {
                if remaining > WORK_EPSILON {
                    self.push_gen_coordinate(index, remaining);
                }
                return;
            }
            Body::Virtual { .. } => unreachable!("general mode holds no virtual bodies"),
        };
        if remaining <= WORK_EPSILON {
            let slot = self.slots[index as usize]
                .as_mut()
                .expect("boundary crossing on a dead slot");
            slot.body = Body::Settled { remaining };
            self.finished_pending.push(index);
        } else {
            self.push_gen_coordinate(index, remaining);
        }
    }

    /// Discard stale keys and return the earliest live entry of a family
    /// heap. An entry is live while the slot exists, the epoch matches
    /// (no boundary crossing or reincarnation since the push) and the body
    /// still carries that family's coordinate.
    fn peek_live_gen_top(&mut self, family: Family) -> Option<GenKey> {
        let (heap, slots) = match family {
            Family::Uncapped => (&mut self.g_uncapped_heap, &self.slots),
            Family::Capped => (&mut self.g_capped_heap, &self.slots),
        };
        while let Some(top) = heap.peek() {
            let live = match (&slots[top.slot as usize], family) {
                (Some(slot), Family::Uncapped) => {
                    slot.epoch == top.epoch && matches!(slot.body, Body::GenUncapped { .. })
                }
                (Some(slot), Family::Capped) => {
                    slot.epoch == top.epoch && matches!(slot.body, Body::GenCapped { .. })
                }
                (None, _) => false,
            };
            if live {
                return Some(*top);
            }
            heap.pop();
        }
        None
    }

    /// Drain every task whose freeze coordinate was reached: remaining
    /// work is at or below [`WORK_EPSILON`], so the task settles (keeping
    /// its true sub-epsilon residual) and joins `finished_pending`. Tasks
    /// whose *finish* coordinate was strictly passed over-consumed in the
    /// blanket `advance` charge; the overshoot is corrected here, exactly
    /// like the uniform drain.
    fn drain_gen_finished(&mut self) {
        while let Some(top) = self.peek_live_gen_top(Family::Uncapped) {
            if top.key > self.g_uvt {
                break;
            }
            self.g_uncapped_heap.pop();
            let weight = self.slots[top.slot as usize]
                .as_ref()
                .expect("live top on a dead slot")
                .weight;
            let residual = (top.finish - self.g_uvt).max(0.0) * weight;
            if top.finish < self.g_uvt {
                self.work_done.add(-((self.g_uvt - top.finish) * weight));
            }
            self.unf_leave_uncapped(weight);
            self.settle_gen_finished(top.slot, residual);
        }
        while let Some(top) = self.peek_live_gen_top(Family::Capped) {
            if top.key > self.g_rt {
                break;
            }
            self.g_capped_heap.pop();
            let max_rate = self.slots[top.slot as usize]
                .as_ref()
                .expect("live top on a dead slot")
                .max_rate;
            let residual = (top.finish - self.g_rt).max(0.0) * max_rate;
            if top.finish < self.g_rt {
                self.work_done.add(-((self.g_rt - top.finish) * max_rate));
            }
            self.unf_leave_capped(max_rate);
            self.settle_gen_finished(top.slot, residual);
        }
    }

    fn settle_gen_finished(&mut self, slot: u32, remaining: f64) {
        self.slots[slot as usize]
            .as_mut()
            .expect("settling a dead slot")
            .body = Body::Settled { remaining };
        self.finished_pending.push(slot);
    }

    /// Shift both general-mode clocks back to zero, subtracting the old
    /// values from every in-flight coordinate (differences — remaining
    /// work — are preserved to within one rounding each) and rebuilding
    /// the family heaps, dropping stale keys wholesale. Same amortization
    /// argument as [`GpsCpu::rebase_vt`].
    fn rebase_gen(&mut self) {
        let du = self.g_uvt;
        let dr = self.g_rt;
        self.g_uvt = 0.0;
        self.g_rt = 0.0;
        self.g_uncapped_heap.clear();
        self.g_capped_heap.clear();
        for i in 0..self.slots.len() {
            let Some(slot) = &mut self.slots[i] else {
                continue;
            };
            match &mut slot.body {
                Body::GenUncapped { finish_uvt } => {
                    *finish_uvt = (*finish_uvt - du).max(0.0);
                    self.g_uncapped_heap.push(GenKey {
                        key: *finish_uvt - WORK_EPSILON / slot.weight,
                        finish: *finish_uvt,
                        slot: i as u32,
                        epoch: slot.epoch,
                    });
                }
                Body::GenCapped { finish_rt } => {
                    *finish_rt = (*finish_rt - dr).max(0.0);
                    self.g_capped_heap.push(GenKey {
                        key: *finish_rt - WORK_EPSILON / slot.max_rate,
                        finish: *finish_rt,
                        slot: i as u32,
                        epoch: slot.epoch,
                    });
                }
                _ => {}
            }
        }
    }

    /// Discard stale heap keys and return the earliest live unfinished one.
    fn peek_live_top(&mut self) -> Option<HeapKey> {
        while let Some(top) = self.heap.peek() {
            let live = matches!(
                self.slots[top.slot as usize],
                Some(Slot {
                    epoch,
                    body: Body::Virtual { .. },
                    ..
                }) if epoch == top.epoch
            );
            if live {
                return Some(*top);
            }
            self.heap.pop();
        }
        None
    }

    /// Settle every task whose finish virtual-time was strictly passed:
    /// remaining drops to exactly zero, and the blanket `rate * dt` service
    /// charged in `advance` is corrected by the overshoot.
    fn drain_exhausted(&mut self) {
        while let Some(top) = self.peek_live_top() {
            if top.finish_vt > self.vt {
                break;
            }
            self.heap.pop();
            self.work_done.add(-(self.vt - top.finish_vt));
            self.settle_finished(top.slot, 0.0);
        }
    }

    /// Settle tasks within `WORK_EPSILON` of their finish virtual-time:
    /// they report as finished (the reference treats `remaining <= ε` as
    /// complete) but keep their true sub-epsilon residual.
    fn freeze_numerically_finished(&mut self) {
        while let Some(top) = self.peek_live_top() {
            if top.finish_vt > self.vt + WORK_EPSILON {
                break;
            }
            self.heap.pop();
            self.settle_finished(top.slot, (top.finish_vt - self.vt).max(0.0));
        }
    }

    fn settle_finished(&mut self, slot: u32, remaining: f64) {
        self.unfinished -= 1;
        self.finished_pending.push(slot);
        self.slots[slot as usize]
            .as_mut()
            .expect("settling a dead slot")
            .body = Body::Settled { remaining };
    }

    /// Switch to the general representation (heterogeneous signatures):
    /// settle every uniform task at its remaining work and build the
    /// water-filling partition from the live tasks. O(n log n), amortized
    /// free: the switch only happens on a membership change that already
    /// costs O(n); the caller rebalances and then coordinates every
    /// settled task onto the family clocks.
    fn enter_general_mode(&mut self) {
        if self.mode == Mode::General {
            return;
        }
        for slot in self.slots.iter_mut().flatten() {
            if let Body::Virtual { finish_vt } = slot.body {
                slot.body = Body::Settled {
                    remaining: (finish_vt - self.vt).max(0.0),
                };
            }
        }
        self.reset_uniform_state();
        self.mode = Mode::General;
        debug_assert!(self.part_uncapped.is_empty() && self.part_capped.is_empty());
        debug_assert!(self.g_uncapped_heap.is_empty() && self.g_capped_heap.is_empty());
        for i in 0..self.slots.len() as u32 {
            if self.slots[i as usize].is_some() {
                self.partition_insert(i);
            }
        }
        // The caller (add_task) rebalances after inserting the new task,
        // then activates the settled bodies onto the family clocks
        // (rebuilding `finished_pending`, which reset_uniform_state just
        // cleared).
    }

    /// Re-enter the uniform virtual-time representation (single signature
    /// left). Rebases the virtual clock to zero and drops the partition
    /// and the general-mode clocks.
    fn enter_uniform_mode(&mut self) {
        debug_assert_eq!(self.mode, Mode::General);
        // Capture the clocks before resetting: the coordinate bodies are
        // still expressed on them.
        let g_uvt = self.g_uvt;
        let g_rt = self.g_rt;
        self.reset_uniform_state();
        self.clear_partition();
        self.reset_gen_state();
        self.mode = Mode::Uniform;
        for i in 0..self.slots.len() {
            let Some(slot) = &mut self.slots[i] else {
                continue;
            };
            let remaining = match slot.body {
                Body::Settled { remaining } => remaining,
                Body::GenUncapped { finish_uvt } => (finish_uvt - g_uvt).max(0.0) * slot.weight,
                Body::GenCapped { finish_rt } => (finish_rt - g_rt).max(0.0) * slot.max_rate,
                Body::Virtual { .. } => unreachable!("general mode holds no virtual bodies"),
            };
            if remaining <= WORK_EPSILON {
                slot.body = Body::Settled { remaining };
                self.finished_pending.push(i as u32);
            } else {
                let finish_vt = self.vt + remaining;
                let epoch = slot.epoch;
                slot.body = Body::Virtual { finish_vt };
                self.unfinished += 1;
                self.heap.push(HeapKey {
                    finish_vt,
                    slot: i as u32,
                    epoch,
                });
            }
        }
    }

    fn reset_uniform_state(&mut self) {
        self.vt = 0.0;
        self.heap.clear();
        self.unfinished = 0;
        self.finished_pending.clear();
    }

    /// Shift the virtual clock back to zero, subtracting the old `vt` from
    /// every in-flight finish virtual-time. Differences (`finish_vt - vt`,
    /// i.e. remaining work) are preserved to within one rounding each, and
    /// future accumulation happens at small-magnitude ulps again. The heap
    /// is rebuilt from the live tasks, dropping stale keys wholesale.
    fn rebase_vt(&mut self) {
        let delta = self.vt;
        self.vt = 0.0;
        self.heap.clear();
        for i in 0..self.slots.len() {
            let Some(slot) = &mut self.slots[i] else {
                continue;
            };
            if let Body::Virtual { finish_vt } = &mut slot.body {
                *finish_vt = (*finish_vt - delta).max(0.0);
                let key = HeapKey {
                    finish_vt: *finish_vt,
                    slot: i as u32,
                    epoch: slot.epoch,
                };
                self.heap.push(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(cores: f64, kappa: f64) -> GpsParams {
        GpsParams {
            cores,
            ctx_switch_penalty: kappa,
            penalty_cap: 100.0,
        }
    }

    #[test]
    fn effective_capacity_penalty_curve() {
        let p = params(10.0, 0.5);
        assert_eq!(p.effective_capacity(5), 10.0);
        assert_eq!(p.effective_capacity(10), 10.0);
        // n = 20: oversub = 1.0 -> capacity / 1.5
        assert!((p.effective_capacity(20) - 10.0 / 1.5).abs() < 1e-12);
        // kappa = 0 disables the penalty entirely.
        assert_eq!(params(10.0, 0.0).effective_capacity(100), 10.0);
    }

    #[test]
    fn single_task_runs_at_one_core() {
        let mut cpu = GpsCpu::new(params(4.0, 0.0));
        let t0 = SimTime::ZERO;
        let id = cpu.add_task(t0, 2.0, 1.0, 1.0);
        let (done_id, at) = cpu.next_completion(t0).unwrap();
        assert_eq!(done_id, id);
        // 2 core-seconds at 1 core (max_rate cap, not the 4-core capacity).
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equal_sharing_when_oversubscribed() {
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let t0 = SimTime::ZERO;
        // Four equal tasks on two cores: each runs at 0.5 cores.
        let ids: Vec<TaskId> = (0..4).map(|_| cpu.add_task(t0, 1.0, 1.0, 1.0)).collect();
        for &id in &ids {
            assert!((cpu.current_rate(id) - 0.5).abs() < 1e-12);
        }
        let (_, at) = cpu.next_completion(t0).unwrap();
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn completion_tie_breaks_to_lowest_slot() {
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let a = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        let _b = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        let (id, _) = cpu.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(id, a);
    }

    #[test]
    fn advance_depletes_work() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let id = cpu.add_task(SimTime::ZERO, 3.0, 1.0, 1.0);
        cpu.advance(SimTime::from_secs(1));
        assert!((cpu.remaining(id) - 2.0).abs() < 1e-9);
        cpu.advance(SimTime::from_secs(2));
        assert!((cpu.remaining(id) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rates_rebalance_after_completion() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let a = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        let b = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        // Both run at 0.5; a completes at t=2.
        let (first, at) = cpu.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(first, a);
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-9);
        cpu.remove_task(at, a);
        // b has 0 remaining? No: b also ran at 0.5 for 2s => done too.
        assert!(cpu.remaining(b) < 1e-9);
    }

    #[test]
    fn weighted_sharing() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let heavy = cpu.add_task(SimTime::ZERO, 1.0, 3.0, 1.0);
        let light = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        assert!((cpu.current_rate(heavy) - 0.75).abs() < 1e-12);
        assert!((cpu.current_rate(light) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn water_filling_redistributes_capped_surplus() {
        // 3 cores, two tasks: one capped at 1 core with huge weight, the
        // other picks up the rest (but is itself capped at 1).
        let mut cpu = GpsCpu::new(params(3.0, 0.0));
        let capped = cpu.add_task(SimTime::ZERO, 1.0, 100.0, 1.0);
        let other = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        assert!((cpu.current_rate(capped) - 1.0).abs() < 1e-12);
        assert!((cpu.current_rate(other) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn water_filling_with_heterogeneous_caps() {
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let slow = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 0.25);
        let fast = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        // slow pinned at 0.25; fast takes min(1.0, remaining 1.75) = 1.0.
        assert!((cpu.current_rate(slow) - 0.25).abs() < 1e-12);
        assert!((cpu.current_rate(fast) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn context_switch_penalty_slows_completion() {
        let mut no_pen = GpsCpu::new(params(1.0, 0.0));
        let mut pen = GpsCpu::new(params(1.0, 1.0));
        for _ in 0..3 {
            no_pen.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
            pen.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        }
        let (_, t_free) = no_pen.next_completion(SimTime::ZERO).unwrap();
        let (_, t_pen) = pen.next_completion(SimTime::ZERO).unwrap();
        assert!(t_pen > t_free, "penalty must delay completions");
        // n=3 on 1 core: oversub 2, capacity 1/3 -> per-task rate 1/9.
        assert!((t_pen.as_secs_f64() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn generation_bumps_on_membership_changes() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let g0 = cpu.generation();
        let id = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        assert!(cpu.generation() > g0);
        let g1 = cpu.generation();
        cpu.remove_task(SimTime::ZERO, id);
        assert!(cpu.generation() > g1);
    }

    #[test]
    fn slots_are_recycled() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let a = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        cpu.remove_task(SimTime::ZERO, a);
        let b = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        assert_eq!(a.index(), b.index(), "slot should be reused");
        assert_eq!(cpu.len(), 1);
    }

    #[test]
    fn work_conservation_under_churn() {
        // Total work done over time must equal total work injected minus
        // residuals, regardless of membership churn.
        let mut cpu = GpsCpu::new(params(2.0, 0.3));
        let mut t = SimTime::ZERO;
        let mut injected = 0.0;
        let mut residual = 0.0;
        let mut live: Vec<TaskId> = Vec::new();
        for step in 0..50 {
            t += SimDuration::from_millis(100);
            let work = 0.05 + (step % 7) as f64 * 0.03;
            injected += work;
            live.push(cpu.add_task(t, work, 1.0, 1.0));
            if step % 3 == 2 {
                let id = live.remove(0);
                residual += cpu.remove_task(t, id);
            }
        }
        // Drain everything.
        let end = t + SimDuration::from_secs(100);
        cpu.advance(end);
        for id in live {
            residual += cpu.remove_task(end, id);
        }
        assert!(
            (cpu.work_done() + residual - injected).abs() < 1e-6,
            "work not conserved: done={} residual={} injected={}",
            cpu.work_done(),
            residual,
            injected
        );
    }

    #[test]
    fn work_conservation_with_heterogeneous_weights() {
        // Same churn but with varying weights/caps, exercising the general
        // mode and both representation switches.
        let mut cpu = GpsCpu::new(params(4.0, 0.2));
        let mut t = SimTime::ZERO;
        let mut injected = 0.0;
        let mut residual = 0.0;
        let mut live: Vec<TaskId> = Vec::new();
        for step in 0..60 {
            t += SimDuration::from_millis(80);
            let work = 0.05 + (step % 5) as f64 * 0.04;
            let weight = 1.0 + (step % 3) as f64;
            let max_rate = if step % 4 == 0 { 0.5 } else { 1.0 };
            injected += work;
            live.push(cpu.add_task(t, work, weight, max_rate));
            if step % 2 == 1 {
                let id = live.remove(0);
                residual += cpu.remove_task(t, id);
            }
        }
        let end = t + SimDuration::from_secs(100);
        cpu.advance(end);
        for id in live {
            residual += cpu.remove_task(end, id);
        }
        assert!(
            (cpu.work_done() + residual - injected).abs() < 1e-6,
            "work not conserved: done={} residual={} injected={}",
            cpu.work_done(),
            residual,
            injected
        );
    }

    #[test]
    fn zero_work_task_completes_immediately() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let id = cpu.add_task(SimTime::from_secs(1), 0.0, 1.0, 1.0);
        let (done, at) = cpu.next_completion(SimTime::from_secs(1)).unwrap();
        assert_eq!(done, id);
        assert_eq!(at, SimTime::from_secs(1));
    }

    #[test]
    fn idle_bank_reports_no_completion() {
        let mut cpu = GpsCpu::new(params(4.0, 0.5));
        assert!(cpu.next_completion(SimTime::ZERO).is_none());
        assert!(cpu.is_empty());
    }

    #[test]
    #[should_panic(expected = "dead task")]
    fn double_remove_panics() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let id = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        cpu.remove_task(SimTime::ZERO, id);
        cpu.remove_task(SimTime::ZERO, id);
    }

    #[test]
    fn mode_switches_preserve_remaining_work() {
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let t0 = SimTime::ZERO;
        // Uniform phase: two equal tasks at 1 core each... capped to 1.0.
        let a = cpu.add_task(t0, 4.0, 1.0, 1.0);
        let b = cpu.add_task(t0, 4.0, 1.0, 1.0);
        let t1 = SimTime::from_secs(1);
        cpu.advance(t1);
        assert!((cpu.remaining(a) - 3.0).abs() < 1e-9);
        // Heterogeneous task forces general mode.
        let c = cpu.add_task(t1, 1.0, 5.0, 1.0);
        assert!(
            (cpu.remaining(a) - 3.0).abs() < 1e-9,
            "settling is lossless"
        );
        // Removing it re-enters uniform mode.
        let t2 = SimTime::from_secs(2);
        let res = cpu.remove_task(t2, c);
        assert!(res >= 0.0);
        cpu.advance(SimTime::from_secs(3));
        let ra = cpu.remaining(a);
        let rb = cpu.remaining(b);
        assert!((ra - rb).abs() < 1e-9, "equal tasks stay in lockstep");
        assert!(ra < 3.0, "work continues depleting after the switch back");
    }

    #[test]
    fn long_running_bank_stays_precise_across_vt_rebase() {
        // Drive the virtual clock far past VT_REBASE_THRESHOLD without the
        // bank ever going idle: a long-lived background task pins
        // `runnable > 0` while short tasks churn through. Conservation and
        // completion correctness must survive the rebases.
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let mut t = SimTime::ZERO;
        let background = cpu.add_task(t, 1e9, 1.0, 1.0);
        let mut injected = 1e9;
        let mut completed = 0.0;
        for k in 0..400 {
            let work = 90.0 + (k % 7) as f64;
            injected += work;
            let id = cpu.add_task(t, work, 1.0, 1.0);
            let (done, at) = cpu.next_completion(t).expect("two tasks runnable");
            assert_eq!(done, id, "short task finishes before the background");
            // Two equal-weight tasks on 2 cores: both run at 1 core.
            assert!((at.saturating_since(t).as_secs_f64() - work).abs() < 1e-6);
            t = at;
            completed += work - cpu.remove_task(t, id);
        }
        // 400 completions x ~93 s of per-task service ≈ 37_000 core-seconds
        // of virtual time: the threshold (16384) was crossed repeatedly.
        let residual = cpu.remove_task(t, background);
        assert!(
            (cpu.work_done() + residual - injected).abs() < 1e-4,
            "conservation across rebases: done={} residual={residual} injected={injected}",
            cpu.work_done()
        );
        assert!((cpu.work_done() - 2.0 * completed).abs() < 1e-4);
    }

    #[test]
    fn all_tasks_capped_leaves_surplus_unused() {
        // 8 cores, three tasks whose caps sum to 1.5: every task is pinned
        // at its cap (fair shares far exceed the caps) and the remaining
        // 6.5 cores stay idle, exactly like the reference.
        let mut cpu = GpsCpu::new(params(8.0, 0.0));
        let a = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 0.5);
        let b = cpu.add_task(SimTime::ZERO, 1.0, 2.0, 0.5);
        let c = cpu.add_task(SimTime::ZERO, 1.0, 4.0, 0.5);
        for id in [a, b, c] {
            assert!((cpu.current_rate(id) - 0.5).abs() < 1e-12);
        }
        let (uncapped, capped) = cpu.partition_sizes();
        assert_eq!((uncapped, capped), (0, 3), "all tasks on the capped side");
        assert_eq!(cpu.water_level(), Some(f64::INFINITY));
        // 1 core-second each at 0.5 cores: all three finish at t=2.
        let (_, at) = cpu.next_completion(SimTime::ZERO).unwrap();
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cap_exactly_at_fair_share_is_a_boundary_tie() {
        // 2 cores, two weight-1 tasks, one capped at exactly its 1.0 fair
        // share. Whether the tied task sits on the capped or uncapped side
        // of the partition, both rates must be exactly 1.0 (the reference
        // pins on `>=`, so it treats the tie as capped).
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let tied = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        let free = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 2.0);
        assert!(!cpu.is_uniform_mode(), "two signatures force general mode");
        assert!((cpu.current_rate(tied) - 1.0).abs() < 1e-12);
        assert!((cpu.current_rate(free) - 1.0).abs() < 1e-12);
        let level = cpu.water_level().unwrap();
        assert!((level - 1.0).abs() < 1e-12, "water level sits on the tie");
    }

    #[test]
    fn single_uncapped_task_absorbs_all_surplus() {
        // 4 cores: three tasks pinned at 0.25 leave 3.25 cores for the one
        // uncapped task (its own 10.0 cap never binds).
        let mut cpu = GpsCpu::new(params(4.0, 0.0));
        let mut pinned = Vec::new();
        for _ in 0..3 {
            pinned.push(cpu.add_task(SimTime::ZERO, 1.0, 1.0, 0.25));
        }
        let big = cpu.add_task(SimTime::ZERO, 1.0, 1.0, 10.0);
        for &id in &pinned {
            assert!((cpu.current_rate(id) - 0.25).abs() < 1e-12);
        }
        assert!((cpu.current_rate(big) - 3.25).abs() < 1e-12);
        assert_eq!(cpu.partition_sizes(), (1, 3));
    }

    #[test]
    fn mode_flips_keep_partition_and_remaining_consistent() {
        // Repeated uniform -> general -> uniform flips: remaining work is
        // preserved across every representation switch, and the partition
        // structure drains completely on each return to uniform.
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let t0 = SimTime::ZERO;
        let a = cpu.add_task(t0, 10.0, 1.0, 1.0);
        let mut t = t0;
        for round in 0..4 {
            cpu.advance(t);
            let before = cpu.remaining(a);
            let hetero = cpu.add_task(t, 0.5, 3.0, 0.5 + round as f64 * 0.25);
            assert!(!cpu.is_uniform_mode());
            assert_ne!(cpu.partition_sizes(), (0, 0));
            assert!(
                (cpu.remaining(a) - before).abs() < 1e-9,
                "settling is lossless (round {round})"
            );
            t += SimDuration::from_millis(250);
            let before = {
                cpu.advance(t);
                cpu.remaining(a)
            };
            cpu.remove_task(t, hetero);
            assert!(cpu.is_uniform_mode(), "single signature re-enters uniform");
            assert_eq!(cpu.partition_sizes(), (0, 0), "partition fully drained");
            assert_eq!(cpu.water_level(), None);
            assert!(
                (cpu.remaining(a) - before).abs() < 1e-9,
                "un-settling is lossless (round {round})"
            );
            t += SimDuration::from_millis(250);
        }
        // The long task kept depleting through all four flips.
        cpu.advance(t);
        assert!(cpu.remaining(a) < 10.0);
    }

    #[test]
    fn general_mode_stays_precise_across_clock_rebases() {
        // Drive both general-mode clocks far past VT_REBASE_THRESHOLD
        // without the bank leaving general mode: a capped task pins the
        // real clock's family, an uncapped one the virtual clock's, and
        // both deplete at exactly 1 core/s, so remaining work stays a
        // linear function of time through every rebase.
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let t0 = SimTime::ZERO;
        let work = 50_000.0;
        // Uncapped: ratio 2 > λ = 1 (see below), rate = weight * λ = 1.
        let a = cpu.add_task(t0, work, 1.0, 2.0);
        // Capped: ratio 0.5 <= λ, pinned at max_rate = 1.
        let b = cpu.add_task(t0, work, 2.0, 1.0);
        assert!(!cpu.is_uniform_mode());
        assert_eq!(cpu.water_level(), Some(1.0));
        let mut t = t0;
        for step in 1..=30 {
            t += SimDuration::from_secs(1_000);
            cpu.advance(t);
            let expect = work - 1_000.0 * step as f64;
            // One rounding per rebase is the promise; 1e-5 over 30 Mcs of
            // clock travel leaves plenty of slack under it.
            assert!(
                (cpu.remaining(a) - expect).abs() < 1e-5,
                "uncapped drift at step {step}: {} vs {expect}",
                cpu.remaining(a)
            );
            assert!((cpu.remaining(b) - expect).abs() < 1e-5);
        }
        // 30_000 s consumed; both finish together at t = 50_000 s.
        let (_, at) = cpu.next_completion(t).unwrap();
        assert!((at.as_secs_f64() - 50_000.0).abs() < 1e-4);
        let end = SimTime::from_secs(60_000);
        cpu.advance(end);
        let finished = cpu.finished_tasks(end);
        assert_eq!(finished, vec![a, b]);
        let residual: f64 = cpu.remove_task(end, a) + cpu.remove_task(end, b);
        assert!(
            (cpu.work_done() + residual - 2.0 * work).abs() < 1e-4,
            "conservation across rebases: done={} residual={residual}",
            cpu.work_done()
        );
    }

    #[test]
    fn exhausted_task_completes_now_even_at_zero_rate() {
        // Regression: an exhausted task whose water-filling rate underflows
        // to exactly 0.0 used to be skipped by the general-mode completion
        // scan (`rate <= 0.0 -> continue`) while `finished_tasks` kept
        // reporting it — the owner's completion tick would never fire.
        // Exhausted tasks must complete "now" regardless of rate, matching
        // the uniform path's `finished_pending` rule.
        //
        // Two huge-weight companions drive the water level down to
        // ~1e-307; the tiny subnormal weight then underflows `w * λ` to
        // exactly zero.
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let mut reference = crate::gps_reference::ReferenceGpsCpu::new(params(2.0, 0.0));
        let t0 = SimTime::ZERO;
        for kernel_add in [
            (1.0, 1e307, 2.0),  // companion B: rate 1.0
            (1.0, 1e307, 2.0),  // companion C: rate 1.0
            (0.0, 5e-324, 1.0), // exhausted task A: rate underflows to 0.0
        ] {
            let (work, weight, cap) = kernel_add;
            cpu.add_task(t0, work, weight, cap);
            reference.add_task(t0, work, weight, cap);
        }
        let a = TaskId(2);
        assert_eq!(reference.current_rate(a), 0.0, "rate must underflow");
        assert_eq!(cpu.current_rate(a), 0.0, "rate must underflow");
        // Both kernels: the exhausted zero-rate task is the next
        // completion, at `now`, and the finished set reports it.
        assert_eq!(cpu.next_completion(t0), Some((a, t0)));
        assert_eq!(reference.next_completion(t0), Some((a, t0)));
        assert_eq!(cpu.finished_tasks(t0), vec![a]);
        assert_eq!(reference.finished_tasks(t0), vec![a]);
        // Removing it unblocks the stream: the companions complete at t=1.
        cpu.remove_task(t0, a);
        reference.remove_task(t0, a);
        let (_, at) = cpu.next_completion(t0).unwrap();
        let (_, at_ref) = reference.next_completion(t0).unwrap();
        assert!((at.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((at_ref.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unrepresentable_coordinate_parks_instead_of_finishing() {
        // A subnormal weight overflows `remaining / weight` past f64 range
        // (finish = inf, freeze key = inf - inf = NaN): the task must be
        // parked — starved like the reference's zero-rate skip — not
        // spuriously settled as finished with an infinite residual.
        let mut cpu = GpsCpu::new(params(2.0, 0.0));
        let mut reference = crate::gps_reference::ReferenceGpsCpu::new(params(2.0, 0.0));
        let t0 = SimTime::ZERO;
        // Two unit-weight companions (uncapped, rate exactly 1) and the
        // subnormal-weight task whose uncapped coordinate overflows.
        for kernel_add in [(1.0, 1.0, 2.0), (1.0, 1.0, 2.0), (1.0, 5e-324, 1.0)] {
            let (work, weight, cap) = kernel_add;
            cpu.add_task(t0, work, weight, cap);
            reference.add_task(t0, work, weight, cap);
        }
        let parked = TaskId(2);
        // Both kernels: nothing is finished, a companion is next at t=1.
        assert!(cpu.finished_tasks(t0).is_empty());
        assert!(reference.finished_tasks(t0).is_empty());
        let (next, at) = cpu.next_completion(t0).unwrap();
        assert_eq!(next, TaskId(0));
        assert!((at.as_secs_f64() - 1.0).abs() < 1e-9);
        let (next_ref, at_ref) = reference.next_completion(t0).unwrap();
        assert_eq!(next_ref, TaskId(0));
        assert!((at_ref.as_secs_f64() - 1.0).abs() < 1e-9);
        // The parked task keeps its exact remaining through time and
        // removal — no infinities leak into the accounting.
        cpu.advance(SimTime::from_secs(5));
        assert_eq!(cpu.remaining(parked), 1.0);
        assert!(!cpu.finished_tasks(SimTime::from_secs(5)).contains(&parked));
        let residual = cpu.remove_task(SimTime::from_secs(5), parked);
        assert_eq!(residual, 1.0);
        assert!(cpu.work_done().is_finite());
    }

    #[test]
    fn finished_tasks_into_reuses_buffer() {
        let mut cpu = GpsCpu::new(params(1.0, 0.0));
        let a = cpu.add_task(SimTime::ZERO, 0.5, 1.0, 1.0);
        let b = cpu.add_task(SimTime::ZERO, 0.5, 1.0, 1.0);
        let mut buf = vec![TaskId(99)];
        cpu.finished_tasks_into(SimTime::from_secs(1), &mut buf);
        assert_eq!(buf, vec![a, b], "both finished, slot order, buffer cleared");
    }

    #[test]
    #[should_panic(expected = "positive finite capacity")]
    fn non_finite_cores_rejected() {
        GpsCpu::new(params(f64::INFINITY, 0.0));
    }

    #[test]
    #[should_panic(expected = "positive finite capacity")]
    fn nan_cores_rejected() {
        GpsCpu::new(params(f64::NAN, 0.0));
    }

    #[test]
    #[should_panic(expected = "context-switch penalty")]
    fn nan_kappa_rejected() {
        GpsCpu::new(params(4.0, f64::NAN));
    }

    #[test]
    #[should_panic(expected = "context-switch penalty")]
    fn negative_kappa_rejected() {
        GpsCpu::new(params(4.0, -0.1));
    }

    #[test]
    #[should_panic(expected = "capacity-loss divisor cap")]
    fn penalty_cap_below_one_rejected() {
        GpsCpu::new(GpsParams {
            cores: 4.0,
            ctx_switch_penalty: 0.1,
            penalty_cap: 0.5,
        });
    }

    #[test]
    #[should_panic(expected = "capacity-loss divisor cap")]
    fn reference_rejects_malformed_params_too() {
        crate::gps_reference::ReferenceGpsCpu::new(GpsParams {
            cores: 4.0,
            ctx_switch_penalty: 0.1,
            penalty_cap: f64::NAN,
        });
    }

    #[test]
    #[should_panic(expected = "positive finite capacity")]
    fn set_capacity_rejects_invalid_cores() {
        let mut cpu = GpsCpu::new(params(4.0, 0.0));
        cpu.set_capacity(SimTime::ZERO, 0.0);
    }

    #[test]
    fn set_capacity_changes_uniform_rate_going_forward() {
        let mut cpu = GpsCpu::new(params(4.0, 0.0));
        let t0 = SimTime::ZERO;
        // Eight unit tasks on four cores: each runs at 0.5.
        let ids: Vec<TaskId> = (0..8).map(|_| cpu.add_task(t0, 2.0, 1.0, 1.0)).collect();
        assert!((cpu.current_rate(ids[0]) - 0.5).abs() < 1e-12);
        // One second of service at the old capacity, then halve the node.
        let t1 = SimTime::from_secs(1);
        cpu.set_capacity(t1, 2.0);
        assert!((cpu.current_rate(ids[0]) - 0.25).abs() < 1e-12);
        // Work served before the change was under the old capacity...
        assert!((cpu.remaining(ids[0]) - 1.5).abs() < 1e-9);
        // ...and the completion reflects the degraded rate: 1.5 core-s
        // left at 0.25 cores = 6 more seconds.
        let (_, at) = cpu.next_completion(t1).unwrap();
        assert!((at.as_secs_f64() - 7.0).abs() < 1e-9);
        // The bank never left the uniform fast path.
        assert!(cpu.is_uniform_mode());
    }

    #[test]
    fn set_capacity_is_generation_visible_and_idempotent() {
        let mut cpu = GpsCpu::new(params(4.0, 0.0));
        cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        let g0 = cpu.generation();
        cpu.set_capacity(SimTime::ZERO, 2.0);
        assert!(cpu.generation() > g0, "owners must see stale completions");
        let g1 = cpu.generation();
        // Re-asserting the same capacity is a no-op (fault plans may emit
        // redundant restoration events).
        cpu.set_capacity(SimTime::ZERO, 2.0);
        assert_eq!(cpu.generation(), g1);
    }

    #[test]
    fn set_capacity_rebalances_the_weighted_partition() {
        // Capped ladder on generous capacity: everyone uncapped... then a
        // degradation pins the low-ratio rungs, and a restoration unpins
        // them — both via the boundary-crossing machinery, matching the
        // reference integrator's freshly-computed rates throughout.
        let mut cpu = GpsCpu::new(params(8.0, 0.0));
        let mut reference = crate::gps_reference::ReferenceGpsCpu::new(params(8.0, 0.0));
        let t0 = SimTime::ZERO;
        let sigs = [(1.0, 0.25), (1.0, 0.5), (1.0, 1.0), (2.0, 1.0)];
        let mut ids = Vec::new();
        for &(w, c) in &sigs {
            ids.push(cpu.add_task(t0, 10.0, w, c));
            reference.add_task(t0, 10.0, w, c);
        }
        assert!(!cpu.is_uniform_mode());
        let before = cpu.boundary_crossings();
        let t1 = SimTime::from_secs(1);
        cpu.set_capacity(t1, 1.0);
        reference.set_capacity(t1, 1.0);
        assert!(
            cpu.boundary_crossings() > before,
            "degradation must move the capped/uncapped boundary"
        );
        for &id in &ids {
            assert!(
                (cpu.current_rate(id) - reference.current_rate(id)).abs() < 1e-9,
                "degraded rate diverged for {id:?}"
            );
            assert!((cpu.remaining(id) - reference.remaining(id)).abs() < 1e-9);
        }
        let t2 = SimTime::from_secs(2);
        cpu.set_capacity(t2, 8.0);
        reference.set_capacity(t2, 8.0);
        for &id in &ids {
            assert!(
                (cpu.current_rate(id) - reference.current_rate(id)).abs() < 1e-9,
                "restored rate diverged for {id:?}"
            );
        }
        // Drain to completion under one more mid-stream capacity flip.
        let t3 = SimTime::from_secs(3);
        cpu.set_capacity(t3, 2.0);
        reference.set_capacity(t3, 2.0);
        let mut now = t3;
        while !reference.is_empty() {
            let (id, at) = reference.next_completion(now).unwrap();
            let (id_opt, at_opt) = cpu.next_completion(now).unwrap();
            assert_eq!(id, id_opt);
            assert!((at.as_secs_f64() - at_opt.as_secs_f64()).abs() < 1e-6);
            now = now.max(at);
            for done in reference.finished_tasks(now) {
                let ra = cpu.remove_task(now, done);
                let rb = reference.remove_task(now, done);
                assert!((ra - rb).abs() < 1e-6);
            }
        }
        assert!(cpu.is_empty());
        assert!((cpu.work_done() - reference.work_done()).abs() < 1e-6);
    }

    #[test]
    fn profile_normalizes_to_dominant_units() {
        assert_eq!(ResourceVector::CPU_ONLY.profile(), [1.0, 0.0]);
        assert_eq!(ResourceVector::CPU_ONLY.dominant(), Resource::Cpu);
        // CPU-dominant: mem expressed per CPU unit.
        let v = ResourceVector::per_cpu(0.5);
        assert_eq!(v.profile(), [1.0, 0.5]);
        assert_eq!(v.dominant(), Resource::Cpu);
        assert_eq!(v.dominant_per_cpu(), 1.0);
        // Memory-dominant: the profile flips, CPU becomes the fraction.
        let v = ResourceVector::per_cpu(4.0);
        assert_eq!(v.profile(), [0.25, 1.0]);
        assert_eq!(v.dominant(), Resource::Mem);
        assert_eq!(v.dominant_per_cpu(), 4.0);
        // An exact tie is CPU-dominant; -0.0 mem is sanitized to +0.0.
        assert_eq!(
            ResourceVector { cpu: 2.0, mem: 2.0 }.dominant(),
            Resource::Cpu
        );
        let z = ResourceVector {
            cpu: 1.0,
            mem: -0.0,
        };
        assert_eq!(z.profile()[1].to_bits(), 0.0f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn all_zero_demand_rejected() {
        ResourceVector { cpu: 0.0, mem: 0.0 }.profile();
    }

    #[test]
    fn cpu_only_demand_is_bit_identical_to_scalar_path() {
        // The degenerate profile must reduce to the scalar kernel exactly:
        // drive a weighted churn through `add_task` and through
        // `add_task_demand(CPU_ONLY)` and require bit-equality on every
        // observable after every step.
        let sigs = [(1.0, 1.0), (2.5, 1.0), (1.0, 0.5), (4.0, 0.25)];
        let mut scalar = GpsCpu::new(params(3.0, 0.2));
        let mut demand = GpsCpu::new(params(3.0, 0.2));
        let mut t = SimTime::ZERO;
        let mut live = Vec::new();
        for step in 0..120u64 {
            t += SimDuration::from_millis(37 + step % 91);
            let (w, c) = sigs[(step % 4) as usize];
            let work = 0.05 + (step % 11) as f64 * 0.07;
            let a = scalar.add_task(t, work, w, c);
            let b = demand.add_task_demand(t, work, w, c, ResourceVector::CPU_ONLY);
            assert_eq!(a, b, "slot allocation diverged");
            live.push(a);
            if step % 3 == 2 {
                let id = live.remove(0);
                let ra = scalar.remove_task(t, id);
                let rb = demand.remove_task(t, id);
                assert_eq!(ra.to_bits(), rb.to_bits(), "residual diverged");
            }
            assert_eq!(scalar.work_done().to_bits(), demand.work_done().to_bits());
            for &id in &live {
                assert_eq!(
                    scalar.remaining(id).to_bits(),
                    demand.remaining(id).to_bits(),
                    "remaining diverged at step {step}"
                );
            }
            assert_eq!(scalar.next_completion(t), demand.next_completion(t));
        }
    }

    #[test]
    fn dominant_share_allocation_on_two_axes() {
        // 4 cores, 2 bandwidth units. A demands both axes equally, B is
        // CPU-only; both uncapped. W_cpu = 2, W_mem = 1, so
        // λ = min(4/2, 2/1) = 2 and both axes are exactly saturated.
        let mut cpu = GpsCpu::new(params(4.0, 0.0));
        cpu.set_resource_capacity(SimTime::ZERO, Resource::Mem, 2.0);
        let a = cpu.add_task_demand(SimTime::ZERO, 1.0, 1.0, 10.0, ResourceVector::per_cpu(1.0));
        let b = cpu.add_task_demand(SimTime::ZERO, 1.0, 1.0, 10.0, ResourceVector::CPU_ONLY);
        assert!(
            !cpu.is_uniform_mode(),
            "distinct profiles force general mode"
        );
        assert_eq!(cpu.water_level(), Some(2.0));
        assert!((cpu.current_rate(a) - 2.0).abs() < 1e-12);
        assert!((cpu.current_rate(b) - 2.0).abs() < 1e-12);
        assert!((cpu.resource_consumption(Resource::Cpu) - 4.0).abs() < 1e-12);
        assert!((cpu.resource_consumption(Resource::Mem) - 2.0).abs() < 1e-12);
        // Halve the bandwidth: the memory axis binds, λ drops to 1, and
        // the CPU axis is left with slack (Pareto: the *binding* axis is
        // consumed).
        let t1 = SimTime::from_secs(0);
        cpu.set_resource_capacity(t1, Resource::Mem, 1.0);
        assert_eq!(cpu.water_level(), Some(1.0));
        assert!((cpu.current_rate(a) - 1.0).abs() < 1e-12);
        assert!((cpu.current_rate(b) - 1.0).abs() < 1e-12);
        assert!((cpu.resource_consumption(Resource::Mem) - 1.0).abs() < 1e-12);
        assert!((cpu.resource_consumption(Resource::Cpu) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_uniform_mode_binds_on_bandwidth() {
        // Two identical tasks demanding bandwidth 1:1 with CPU on a node
        // with 4 cores but 1 bandwidth unit: the common rate is
        // min(max_rate, 4/2, 1/2) = 0.5, on the uniform fast path.
        let mut cpu = GpsCpu::new(params(4.0, 0.0));
        cpu.set_resource_capacity(SimTime::ZERO, Resource::Mem, 1.0);
        let a = cpu.add_task_demand(SimTime::ZERO, 1.0, 1.0, 1.0, ResourceVector::per_cpu(1.0));
        let _b = cpu.add_task_demand(SimTime::ZERO, 1.0, 1.0, 1.0, ResourceVector::per_cpu(1.0));
        assert!(cpu.is_uniform_mode(), "identical profiles stay uniform");
        assert!((cpu.current_rate(a) - 0.5).abs() < 1e-12);
        let (_, at) = cpu.next_completion(SimTime::ZERO).unwrap();
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-9);
        // Restoring infinite bandwidth re-binds on the CPU axis (rate 1.0
        // via the max_rate cap).
        cpu.set_resource_capacity(SimTime::ZERO, Resource::Mem, f64::INFINITY);
        assert!((cpu.current_rate(a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_dominant_task_runs_in_bandwidth_units() {
        // One task demanding 4 bandwidth units per CPU unit: work and
        // max_rate are handed over in dominant (bandwidth) units. With 8
        // bandwidth units and plenty of CPU it depletes at its 2.0
        // bandwidth-unit cap: 4 dominant units of work take 2 s, and the
        // CPU consumed is a quarter of the bandwidth.
        let mut cpu = GpsCpu::new(params(4.0, 0.0));
        cpu.set_resource_capacity(SimTime::ZERO, Resource::Mem, 8.0);
        let v = ResourceVector::per_cpu(4.0);
        let scale = v.dominant_per_cpu();
        assert_eq!(scale, 4.0);
        let cpu_work = 1.0;
        let cpu_cap = 0.5;
        let id = cpu.add_task_demand(SimTime::ZERO, cpu_work * scale, 1.0, cpu_cap * scale, v);
        assert!((cpu.current_rate(id) - 2.0).abs() < 1e-12);
        assert!((cpu.resource_consumption(Resource::Mem) - 2.0).abs() < 1e-12);
        assert!((cpu.resource_consumption(Resource::Cpu) - 0.5).abs() < 1e-12);
        let (_, at) = cpu.next_completion(SimTime::ZERO).unwrap();
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn set_mem_capacity_is_generation_visible_and_idempotent() {
        let mut cpu = GpsCpu::new(params(4.0, 0.0));
        assert_eq!(cpu.resource_capacity(Resource::Mem), f64::INFINITY);
        assert_eq!(cpu.resource_capacity(Resource::Cpu), 4.0);
        cpu.add_task(SimTime::ZERO, 1.0, 1.0, 1.0);
        let g0 = cpu.generation();
        cpu.set_resource_capacity(SimTime::ZERO, Resource::Mem, 2.0);
        assert!(cpu.generation() > g0);
        let g1 = cpu.generation();
        cpu.set_resource_capacity(SimTime::ZERO, Resource::Mem, 2.0);
        assert_eq!(cpu.generation(), g1, "re-asserting is a no-op");
    }

    #[test]
    #[should_panic(expected = "memory bandwidth must be positive")]
    fn non_positive_mem_capacity_rejected() {
        let mut cpu = GpsCpu::new(params(4.0, 0.0));
        cpu.set_resource_capacity(SimTime::ZERO, Resource::Mem, 0.0);
    }
}
