//! Shared driver for the GPS kernel benchmarks and differential harnesses.
//!
//! The interesting regime is the paper's baseline node under load: hundreds
//! of concurrent tasks on a handful of cores, with completion-driven churn
//! (every event queries the next completion, collects finishers, removes
//! them, and admits replacements). [`run_churn`] reproduces that access
//! pattern against any [`GpsKernel`], so the virtual-time kernel and the
//! reference integrator can be timed on identical work.

use crate::gps::{GpsCpu, GpsParams, TaskId};
use crate::gps_reference::ReferenceGpsCpu;
use faas_simcore::time::SimTime;

/// The kernel operations the churn driver needs; implemented by both the
/// production and the reference GPS banks.
pub trait GpsKernel {
    /// See [`GpsCpu::add_task`].
    fn add_task(&mut self, now: SimTime, work: f64, weight: f64, max_rate: f64) -> TaskId;
    /// See [`GpsCpu::remove_task`].
    fn remove_task(&mut self, now: SimTime, id: TaskId) -> f64;
    /// See [`GpsCpu::next_completion`].
    fn next_completion(&mut self, now: SimTime) -> Option<(TaskId, SimTime)>;
    /// See [`GpsCpu::finished_tasks`].
    fn finished_tasks(&mut self, now: SimTime) -> Vec<TaskId>;
    /// See [`GpsCpu::work_done`].
    fn work_done(&self) -> f64;
}

impl GpsKernel for GpsCpu {
    fn add_task(&mut self, now: SimTime, work: f64, weight: f64, max_rate: f64) -> TaskId {
        GpsCpu::add_task(self, now, work, weight, max_rate)
    }
    fn remove_task(&mut self, now: SimTime, id: TaskId) -> f64 {
        GpsCpu::remove_task(self, now, id)
    }
    fn next_completion(&mut self, now: SimTime) -> Option<(TaskId, SimTime)> {
        GpsCpu::next_completion(self, now)
    }
    fn finished_tasks(&mut self, now: SimTime) -> Vec<TaskId> {
        GpsCpu::finished_tasks(self, now)
    }
    fn work_done(&self) -> f64 {
        GpsCpu::work_done(self)
    }
}

impl GpsKernel for ReferenceGpsCpu {
    fn add_task(&mut self, now: SimTime, work: f64, weight: f64, max_rate: f64) -> TaskId {
        ReferenceGpsCpu::add_task(self, now, work, weight, max_rate)
    }
    fn remove_task(&mut self, now: SimTime, id: TaskId) -> f64 {
        ReferenceGpsCpu::remove_task(self, now, id)
    }
    fn next_completion(&mut self, now: SimTime) -> Option<(TaskId, SimTime)> {
        ReferenceGpsCpu::next_completion(self, now)
    }
    fn finished_tasks(&mut self, now: SimTime) -> Vec<TaskId> {
        ReferenceGpsCpu::finished_tasks(self, now)
    }
    fn work_done(&self) -> f64 {
        ReferenceGpsCpu::work_done(self)
    }
}

/// The paper's baseline-node shape: `cores` physical cores with the
/// calibrated context-switch penalty.
pub fn churn_params(cores: f64) -> GpsParams {
    GpsParams {
        cores,
        ctx_switch_penalty: 0.5,
        penalty_cap: 100.0,
    }
}

/// Completion-driven churn: keep `tasks` uniform tasks runnable for
/// `completions` completion events. Every event performs the same kernel
/// calls the baseline invoker's GPS tick performs (`next_completion`,
/// `finished_tasks`, `remove_task`, `add_task` for the replacement), so the
/// measured cost is the kernel's per-event cost at concurrency `tasks`.
///
/// Returns `work_done` as a checksum so callers can black-box it (and so
/// differential callers can compare the two kernels).
pub fn run_churn<K: GpsKernel>(kernel: &mut K, tasks: usize, completions: usize) -> f64 {
    let mut now = SimTime::ZERO;
    // Deterministic work pattern: spread out so completions rarely tie.
    let work = |k: usize| 0.5 + (k % 97) as f64 * 0.013;
    for k in 0..tasks {
        kernel.add_task(now, work(k), 1.0, 1.0);
    }
    let mut spawned = tasks;
    for _ in 0..completions {
        let Some((_, at)) = kernel.next_completion(now) else {
            break;
        };
        now = now.max(at);
        for id in kernel.finished_tasks(now) {
            kernel.remove_task(now, id);
            kernel.add_task(now, work(spawned), 1.0, 1.0);
            spawned += 1;
        }
    }
    kernel.work_done()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_matches_between_kernels() {
        let mut optimized = GpsCpu::new(churn_params(10.0));
        let mut reference = ReferenceGpsCpu::new(churn_params(10.0));
        let a = run_churn(&mut optimized, 64, 200);
        let b = run_churn(&mut reference, 64, 200);
        assert!(
            (a - b).abs() < 1e-6,
            "churn checksum diverged: optimized={a} reference={b}"
        );
    }
}
