//! Shared driver for the GPS kernel benchmarks and differential harnesses.
//!
//! The interesting regime is the paper's baseline node under load: hundreds
//! of concurrent tasks on a handful of cores, with completion-driven churn
//! (every event queries the next completion, collects finishers, removes
//! them, and admits replacements). [`run_churn`] reproduces that access
//! pattern against any [`GpsKernel`], so the virtual-time kernel and the
//! reference integrator can be timed on identical work.

use crate::gps::{GpsCpu, GpsParams, Resource, ResourceVector, TaskId};
use crate::gps_reference::ReferenceGpsCpu;
use faas_simcore::time::SimTime;

/// The kernel operations the churn driver needs; implemented by both the
/// production and the reference GPS banks.
pub trait GpsKernel {
    /// See [`GpsCpu::add_task`].
    fn add_task(&mut self, now: SimTime, work: f64, weight: f64, max_rate: f64) -> TaskId;
    /// See [`GpsCpu::remove_task`].
    fn remove_task(&mut self, now: SimTime, id: TaskId) -> f64;
    /// See [`GpsCpu::advance`].
    fn advance(&mut self, now: SimTime);
    /// See [`GpsCpu::next_completion`].
    fn next_completion(&mut self, now: SimTime) -> Option<(TaskId, SimTime)>;
    /// See [`GpsCpu::finished_tasks`].
    fn finished_tasks(&mut self, now: SimTime) -> Vec<TaskId>;
    /// See [`GpsCpu::work_done`].
    fn work_done(&self) -> f64;
    /// See [`GpsCpu::set_capacity`].
    fn set_capacity(&mut self, now: SimTime, cores: f64);
    /// See [`GpsCpu::add_task_demand`].
    fn add_task_demand(
        &mut self,
        now: SimTime,
        work: f64,
        weight: f64,
        max_rate: f64,
        demand: ResourceVector,
    ) -> TaskId;
    /// See [`GpsCpu::set_resource_capacity`].
    fn set_resource_capacity(&mut self, now: SimTime, resource: Resource, capacity: f64);
}

impl GpsKernel for GpsCpu {
    fn add_task(&mut self, now: SimTime, work: f64, weight: f64, max_rate: f64) -> TaskId {
        GpsCpu::add_task(self, now, work, weight, max_rate)
    }
    fn remove_task(&mut self, now: SimTime, id: TaskId) -> f64 {
        GpsCpu::remove_task(self, now, id)
    }
    fn advance(&mut self, now: SimTime) {
        GpsCpu::advance(self, now)
    }
    fn next_completion(&mut self, now: SimTime) -> Option<(TaskId, SimTime)> {
        GpsCpu::next_completion(self, now)
    }
    fn finished_tasks(&mut self, now: SimTime) -> Vec<TaskId> {
        GpsCpu::finished_tasks(self, now)
    }
    fn work_done(&self) -> f64 {
        GpsCpu::work_done(self)
    }
    fn set_capacity(&mut self, now: SimTime, cores: f64) {
        GpsCpu::set_capacity(self, now, cores)
    }
    fn add_task_demand(
        &mut self,
        now: SimTime,
        work: f64,
        weight: f64,
        max_rate: f64,
        demand: ResourceVector,
    ) -> TaskId {
        GpsCpu::add_task_demand(self, now, work, weight, max_rate, demand)
    }
    fn set_resource_capacity(&mut self, now: SimTime, resource: Resource, capacity: f64) {
        GpsCpu::set_resource_capacity(self, now, resource, capacity)
    }
}

impl GpsKernel for ReferenceGpsCpu {
    fn add_task(&mut self, now: SimTime, work: f64, weight: f64, max_rate: f64) -> TaskId {
        ReferenceGpsCpu::add_task(self, now, work, weight, max_rate)
    }
    fn remove_task(&mut self, now: SimTime, id: TaskId) -> f64 {
        ReferenceGpsCpu::remove_task(self, now, id)
    }
    fn advance(&mut self, now: SimTime) {
        ReferenceGpsCpu::advance(self, now)
    }
    fn next_completion(&mut self, now: SimTime) -> Option<(TaskId, SimTime)> {
        ReferenceGpsCpu::next_completion(self, now)
    }
    fn finished_tasks(&mut self, now: SimTime) -> Vec<TaskId> {
        ReferenceGpsCpu::finished_tasks(self, now)
    }
    fn work_done(&self) -> f64 {
        ReferenceGpsCpu::work_done(self)
    }
    fn set_capacity(&mut self, now: SimTime, cores: f64) {
        ReferenceGpsCpu::set_capacity(self, now, cores)
    }
    fn add_task_demand(
        &mut self,
        now: SimTime,
        work: f64,
        weight: f64,
        max_rate: f64,
        demand: ResourceVector,
    ) -> TaskId {
        ReferenceGpsCpu::add_task_demand(self, now, work, weight, max_rate, demand)
    }
    fn set_resource_capacity(&mut self, now: SimTime, resource: Resource, capacity: f64) {
        ReferenceGpsCpu::set_resource_capacity(self, now, resource, capacity)
    }
}

/// The paper's baseline-node shape: `cores` physical cores with the
/// calibrated context-switch penalty.
pub fn churn_params(cores: f64) -> GpsParams {
    GpsParams {
        cores,
        ctx_switch_penalty: 0.5,
        penalty_cap: 100.0,
    }
}

/// Completion-driven churn: keep `tasks` uniform tasks runnable for
/// `completions` completion events. Every event performs the same kernel
/// calls the baseline invoker's GPS tick performs (`next_completion`,
/// `finished_tasks`, `remove_task`, `add_task` for the replacement), so the
/// measured cost is the kernel's per-event cost at concurrency `tasks`.
///
/// Returns `work_done` as a checksum so callers can black-box it (and so
/// differential callers can compare the two kernels).
pub fn run_churn<K: GpsKernel>(kernel: &mut K, tasks: usize, completions: usize) -> f64 {
    run_churn_with(kernel, tasks, completions, |_| (1.0, 1.0))
}

/// The churn loop shared by the uniform and weighted benchmarks: identical
/// access pattern, with the `k`-th spawned task's `(weight, max_rate)`
/// supplied by `sig`. Keeping one loop is what makes the two BENCH
/// trajectories comparable.
pub fn run_churn_with<K: GpsKernel>(
    kernel: &mut K,
    tasks: usize,
    completions: usize,
    sig: impl Fn(usize) -> (f64, f64),
) -> f64 {
    let mut now = SimTime::ZERO;
    // Deterministic work pattern: spread out so completions rarely tie.
    let work = |k: usize| 0.5 + (k % 97) as f64 * 0.013;
    for k in 0..tasks {
        let (weight, max_rate) = sig(k);
        kernel.add_task(now, work(k), weight, max_rate);
    }
    let mut spawned = tasks;
    for _ in 0..completions {
        let Some((_, at)) = kernel.next_completion(now) else {
            break;
        };
        now = now.max(at);
        for id in kernel.finished_tasks(now) {
            kernel.remove_task(now, id);
            let (weight, max_rate) = sig(spawned);
            kernel.add_task(now, work(spawned), weight, max_rate);
            spawned += 1;
        }
    }
    kernel.work_done()
}

/// Weighted-container churn tiers: weight tiers crossed with rate caps,
/// spanning four distinct pin ratios (`max_rate / weight` from 0.125 to
/// 1.0) so the capped/uncapped boundary is populated on both sides and the
/// seed water-filling runs multiple pinning rounds per refresh.
pub const WEIGHTED_CHURN_SIGNATURES: [(f64, f64); 6] = [
    (1.0, 1.0),
    (2.0, 1.0),
    (4.0, 1.0),
    (1.0, 0.5),
    (2.0, 0.25),
    (8.0, 2.0),
];

/// The shape the weighted churn benchmarks run at: enough cores relative
/// to the task count that a sizeable fraction of the tiers is rate-capped
/// (the regime where water-filling actually iterates), with the same
/// context-switch penalty as [`churn_params`].
pub fn weighted_churn_params(tasks: usize) -> GpsParams {
    GpsParams {
        cores: (tasks as f64 * 0.75).max(1.0),
        ctx_switch_penalty: 0.5,
        penalty_cap: 100.0,
    }
}

/// Completion-driven churn over the weighted tiers: identical access
/// pattern to [`run_churn`], but every task cycles through
/// [`WEIGHTED_CHURN_SIGNATURES`], keeping the bank permanently in general
/// (heterogeneous) mode. This is the workload `BENCH_weighted_gps.json`
/// times the incremental partition against the O(n) reference refresh on.
pub fn run_weighted_churn<K: GpsKernel>(kernel: &mut K, tasks: usize, completions: usize) -> f64 {
    run_churn_with(kernel, tasks, completions, |k| {
        WEIGHTED_CHURN_SIGNATURES[k % WEIGHTED_CHURN_SIGNATURES.len()]
    })
}

/// Advance/next_completion-heavy weighted churn: the same weighted
/// completion-driven loop as [`run_weighted_churn`], but with `probes`
/// intermediate `advance` + `next_completion` calls between consecutive
/// completion events (the access pattern of an owner that re-queries the
/// bank on every event — monitoring ticks, arrivals that end up queueing,
/// sibling completions on the node). Membership is unchanged between
/// probes, so the two-clock kernel answers each probe in O(1)/O(log n)
/// where the per-slot integrator re-deplets and re-scans all `tasks`
/// slots: this is the workload that measures the *end-to-end* general-mode
/// win, not just the rate-refresh win.
/// Capacity factors a [`run_capacity_churn`] cycle walks through: a
/// degradation ramp to a 0.4 trough and back up past nominal — the shape
/// of the fault subsystem's `CapacityRamp` events.
pub const CAPACITY_CHURN_FACTORS: [f64; 6] = [0.8, 0.6, 0.4, 0.6, 1.0, 1.4];

/// Completion-driven weighted churn with dynamic capacity: identical to
/// [`run_weighted_churn`], but every `resize_every` completion events a
/// `set_capacity` call rescales the bank through
/// [`CAPACITY_CHURN_FACTORS`] — the access pattern of the fault
/// subsystem's degradation ramps landing on a loaded baseline node. The
/// incremental kernel re-anchors its virtual clocks in O(log n) per
/// resize; the reference integrator re-deplets all `tasks` slots.
pub fn run_capacity_churn<K: GpsKernel>(
    kernel: &mut K,
    tasks: usize,
    completions: usize,
    resize_every: usize,
) -> f64 {
    let base = (tasks as f64 * 0.75).max(1.0);
    let mut now = SimTime::ZERO;
    let work = |k: usize| 0.5 + (k % 97) as f64 * 0.013;
    for k in 0..tasks {
        let (weight, max_rate) = WEIGHTED_CHURN_SIGNATURES[k % WEIGHTED_CHURN_SIGNATURES.len()];
        kernel.add_task(now, work(k), weight, max_rate);
    }
    let mut spawned = tasks;
    let mut resizes = 0usize;
    for event in 0..completions {
        let Some((_, at)) = kernel.next_completion(now) else {
            break;
        };
        now = now.max(at);
        for id in kernel.finished_tasks(now) {
            kernel.remove_task(now, id);
            let (weight, max_rate) =
                WEIGHTED_CHURN_SIGNATURES[spawned % WEIGHTED_CHURN_SIGNATURES.len()];
            kernel.add_task(now, work(spawned), weight, max_rate);
            spawned += 1;
        }
        if (event + 1) % resize_every == 0 {
            let factor = CAPACITY_CHURN_FACTORS[resizes % CAPACITY_CHURN_FACTORS.len()];
            kernel.set_capacity(now, base * factor);
            resizes += 1;
        }
    }
    kernel.work_done()
}

/// Multi-resource churn tiers: the weighted `(weight, max_rate)` tiers
/// crossed with memory-per-CPU demand ratios spanning CPU-dominant
/// (`0.0`, `0.25`) through balanced (`1.0`) to memory-dominant (`2.0`,
/// `4.0`), so a DRF churn run keeps tasks on both sides of the dominant
/// axis and the per-axis water levels compete.
pub const DRF_CHURN_SIGNATURES: [(f64, f64, f64); 6] = [
    (1.0, 1.0, 0.0),
    (2.0, 1.0, 0.5),
    (4.0, 1.0, 2.0),
    (1.0, 0.5, 1.0),
    (2.0, 0.25, 4.0),
    (8.0, 2.0, 0.25),
];

/// Memory-bandwidth capacity the DRF churn runs at: scaled to the CPU
/// capacity of [`weighted_churn_params`] so that with the
/// [`DRF_CHURN_SIGNATURES`] demand mix the memory axis genuinely binds
/// part of the pool (its aggregate demand per CPU unit exceeds this
/// ratio for the memory-dominant tiers).
pub fn drf_mem_capacity(tasks: usize) -> f64 {
    (tasks as f64 * 0.5).max(1.0)
}

/// Completion-driven churn over the multi-resource tiers: the
/// [`run_churn`] access pattern with every task carrying a
/// [`DRF_CHURN_SIGNATURES`] demand vector and a finite memory-bandwidth
/// capacity installed up front. This is the workload `BENCH_drf.json`
/// times the incremental dominant-share partition against the O(n)
/// reference re-derivation on.
pub fn run_drf_churn<K: GpsKernel>(kernel: &mut K, tasks: usize, completions: usize) -> f64 {
    let mut now = SimTime::ZERO;
    kernel.set_resource_capacity(now, Resource::Mem, drf_mem_capacity(tasks));
    let work = |k: usize| 0.5 + (k % 97) as f64 * 0.013;
    let sig = |k: usize| {
        let (weight, max_rate, mem_per_cpu) = DRF_CHURN_SIGNATURES[k % DRF_CHURN_SIGNATURES.len()];
        let demand = ResourceVector::per_cpu(mem_per_cpu);
        // Work and rate cap are in dominant-resource units, as the invoker
        // scales them (see the baseline node's share conversion).
        let scale = demand.dominant_per_cpu();
        (weight, max_rate * scale, scale, demand)
    };
    for k in 0..tasks {
        let (weight, max_rate, scale, demand) = sig(k);
        kernel.add_task_demand(now, work(k) * scale, weight, max_rate, demand);
    }
    let mut spawned = tasks;
    for _ in 0..completions {
        let Some((_, at)) = kernel.next_completion(now) else {
            break;
        };
        now = now.max(at);
        for id in kernel.finished_tasks(now) {
            kernel.remove_task(now, id);
            let (weight, max_rate, scale, demand) = sig(spawned);
            kernel.add_task_demand(now, work(spawned) * scale, weight, max_rate, demand);
            spawned += 1;
        }
    }
    kernel.work_done()
}

pub fn run_weighted_probe_churn<K: GpsKernel>(
    kernel: &mut K,
    tasks: usize,
    completions: usize,
    probes: usize,
) -> f64 {
    let mut now = SimTime::ZERO;
    let work = |k: usize| 0.5 + (k % 97) as f64 * 0.013;
    for k in 0..tasks {
        let (weight, max_rate) = WEIGHTED_CHURN_SIGNATURES[k % WEIGHTED_CHURN_SIGNATURES.len()];
        kernel.add_task(now, work(k), weight, max_rate);
    }
    let mut spawned = tasks;
    for _ in 0..completions {
        let Some((_, at)) = kernel.next_completion(now) else {
            break;
        };
        let at = at.max(now);
        // Probe strictly inside the interval: each probe advances the
        // clock and re-queries the next completion without changing
        // membership.
        let span = at.saturating_since(now).as_nanos();
        for p in 1..=probes as u64 {
            let t =
                now + faas_simcore::time::SimDuration::from_nanos(span * p / (probes as u64 + 1));
            kernel.advance(t);
            kernel.next_completion(t);
        }
        now = at;
        for id in kernel.finished_tasks(now) {
            kernel.remove_task(now, id);
            let (weight, max_rate) =
                WEIGHTED_CHURN_SIGNATURES[spawned % WEIGHTED_CHURN_SIGNATURES.len()];
            kernel.add_task(now, work(spawned), weight, max_rate);
            spawned += 1;
        }
    }
    kernel.work_done()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_matches_between_kernels() {
        let mut optimized = GpsCpu::new(churn_params(10.0));
        let mut reference = ReferenceGpsCpu::new(churn_params(10.0));
        let a = run_churn(&mut optimized, 64, 200);
        let b = run_churn(&mut reference, 64, 200);
        assert!(
            (a - b).abs() < 1e-6,
            "churn checksum diverged: optimized={a} reference={b}"
        );
    }

    #[test]
    fn weighted_churn_matches_between_kernels() {
        let params = weighted_churn_params(64);
        let mut optimized = GpsCpu::new(params);
        let mut reference = ReferenceGpsCpu::new(params);
        let a = run_weighted_churn(&mut optimized, 64, 200);
        let b = run_weighted_churn(&mut reference, 64, 200);
        assert!(
            (a - b).abs() < 1e-4,
            "weighted churn checksum diverged: optimized={a} reference={b}"
        );
    }

    #[test]
    fn weighted_probe_churn_matches_between_kernels() {
        let params = weighted_churn_params(64);
        let mut optimized = GpsCpu::new(params);
        let mut reference = ReferenceGpsCpu::new(params);
        let a = run_weighted_probe_churn(&mut optimized, 64, 120, 6);
        let b = run_weighted_probe_churn(&mut reference, 64, 120, 6);
        assert!(
            (a - b).abs() < 1e-4,
            "weighted probe churn checksum diverged: optimized={a} reference={b}"
        );
    }

    #[test]
    fn capacity_churn_matches_between_kernels() {
        let params = weighted_churn_params(64);
        let mut optimized = GpsCpu::new(params);
        let mut reference = ReferenceGpsCpu::new(params);
        let a = run_capacity_churn(&mut optimized, 64, 200, 4);
        let b = run_capacity_churn(&mut reference, 64, 200, 4);
        assert!(
            (a - b).abs() < 1e-4,
            "capacity churn checksum diverged: optimized={a} reference={b}"
        );
    }

    #[test]
    fn drf_churn_matches_between_kernels() {
        let params = weighted_churn_params(64);
        let mut optimized = GpsCpu::new(params);
        let mut reference = ReferenceGpsCpu::new(params);
        let a = run_drf_churn(&mut optimized, 64, 200);
        let b = run_drf_churn(&mut reference, 64, 200);
        assert!(
            (a - b).abs() < 1e-4,
            "DRF churn checksum diverged: optimized={a} reference={b}"
        );
    }

    #[test]
    fn drf_churn_signatures_span_both_dominant_axes() {
        // The demand mix must keep tasks on both sides of the dominant
        // axis, or the benchmark degenerates to single-resource churn.
        let cpu_dominant = DRF_CHURN_SIGNATURES
            .iter()
            .filter(|&&(_, _, m)| m < 1.0)
            .count();
        let mem_dominant = DRF_CHURN_SIGNATURES
            .iter()
            .filter(|&&(_, _, m)| m > 1.0)
            .count();
        assert!(cpu_dominant > 0 && mem_dominant > 0);
    }

    #[test]
    fn weighted_churn_populates_both_partition_sides() {
        // The benchmark shape must actually exercise the boundary: after
        // the initial fill, both sides of the partition are non-empty.
        let tasks = 120;
        let mut kernel = GpsCpu::new(weighted_churn_params(tasks));
        for k in 0..tasks {
            let (w, c) = WEIGHTED_CHURN_SIGNATURES[k % WEIGHTED_CHURN_SIGNATURES.len()];
            kernel.add_task(SimTime::ZERO, 1.0, w, c);
        }
        let (uncapped, capped) = kernel.partition_sizes();
        assert!(uncapped > 0 && capped > 0, "({uncapped}, {capped})");
    }
}
