//! Differential tests: the virtual-time `GpsCpu` must reproduce the seed
//! integrator (`ReferenceGpsCpu`) — same completion order, completion times
//! within 1e-6 s, same per-task remaining work, and the same `work_done`
//! accounting — over random add/remove/advance/complete schedules, in both
//! the uniform fast path and the heterogeneous water-filling path.
//!
//! Two harnesses share one driver:
//!
//! * a proptest property over random op sequences (shrinking-friendly
//!   op encoding);
//! * a seeded sweep of 1000+ random schedules, providing the volume the
//!   acceptance criteria ask for at a fixed, reproducible cost.

use faas_cpu::gps_reference::ReferenceGpsCpu;
use faas_cpu::{GpsCpu, GpsParams, TaskId};
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

const TIME_TOL: f64 = 1e-6;
const WORK_TOL: f64 = 1e-6;

/// One schedule step. Work is in milliseconds of core-time; `sig` selects a
/// `(weight, max_rate)` signature (0 is the invoker's uniform signature).
#[derive(Debug, Clone, Copy)]
enum Op {
    Add { work_ms: u64, sig: u8 },
    Remove { pick: u64 },
    Advance { dt_ms: u64 },
    CompleteNext,
}

fn signature(sig: u8) -> (f64, f64) {
    match sig % 4 {
        0 => (1.0, 1.0),
        1 => (2.5, 1.0),
        2 => (1.0, 0.5),
        _ => (4.0, 0.25),
    }
}

struct Pair {
    opt: GpsCpu,
    reference: ReferenceGpsCpu,
    live: Vec<TaskId>,
    now: SimTime,
}

impl Pair {
    fn new(cores: f64, kappa: f64) -> Self {
        let params = GpsParams {
            cores,
            ctx_switch_penalty: kappa,
            penalty_cap: 100.0,
        };
        Pair {
            opt: GpsCpu::new(params),
            reference: ReferenceGpsCpu::new(params),
            live: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    fn check_state(&self) {
        assert_eq!(self.opt.len(), self.reference.len(), "live-count mismatch");
        assert!(
            (self.opt.work_done() - self.reference.work_done()).abs() < WORK_TOL,
            "work_done diverged: optimized={} reference={}",
            self.opt.work_done(),
            self.reference.work_done()
        );
        for &id in &self.live {
            let a = self.opt.remaining(id);
            let b = self.reference.remaining(id);
            assert!(
                (a - b).abs() < WORK_TOL,
                "remaining diverged for {id:?}: optimized={a} reference={b}"
            );
        }
    }

    fn check_next_completion(&mut self) {
        let a = self.opt.next_completion(self.now);
        let b = self.reference.next_completion(self.now);
        match (a, b) {
            (None, None) => {}
            (Some((ida, ta)), Some((idb, tb))) => {
                assert!(
                    (ta.as_secs_f64() - tb.as_secs_f64()).abs() < TIME_TOL,
                    "completion time diverged: optimized=({ida:?}, {ta}) reference=({idb:?}, {tb})"
                );
                if ida != idb {
                    // The kernels may only disagree on a genuine tie: two
                    // tasks whose remaining work is equal in real arithmetic
                    // (floating-point noise breaks the tie differently in
                    // the two algebraic formulations). Certify the tie; the
                    // finished-set comparison after the completion keeps the
                    // kernels in lockstep because tied tasks finish
                    // together.
                    let tie = (self.reference.remaining(ida) - self.reference.remaining(idb)).abs()
                        < WORK_TOL;
                    assert!(
                        tie,
                        "completion order diverged beyond a tie at {:?}: \
                         optimized={ida:?} reference={idb:?} (ref remainings {} vs {})",
                        self.now,
                        self.reference.remaining(ida),
                        self.reference.remaining(idb)
                    );
                }
            }
            (a, b) => panic!("completion presence diverged: optimized={a:?} reference={b:?}"),
        }
    }

    fn apply(&mut self, op: Op) {
        match op {
            Op::Add { work_ms, sig } => {
                let work = work_ms as f64 / 1000.0;
                let (weight, max_rate) = signature(sig);
                let ida = self.opt.add_task(self.now, work, weight, max_rate);
                let idb = self.reference.add_task(self.now, work, weight, max_rate);
                assert_eq!(ida, idb, "slot allocation diverged");
                self.live.push(ida);
            }
            Op::Remove { pick } => {
                if self.live.is_empty() {
                    return;
                }
                let id = self.live.remove((pick % self.live.len() as u64) as usize);
                let ra = self.opt.remove_task(self.now, id);
                let rb = self.reference.remove_task(self.now, id);
                assert!(
                    (ra - rb).abs() < WORK_TOL,
                    "residual diverged for {id:?}: optimized={ra} reference={rb}"
                );
            }
            Op::Advance { dt_ms } => {
                self.now += SimDuration::from_millis(dt_ms);
                self.opt.advance(self.now);
                self.reference.advance(self.now);
            }
            Op::CompleteNext => {
                let Some((id, at)) = self.reference.next_completion(self.now) else {
                    assert!(self.opt.next_completion(self.now).is_none());
                    return;
                };
                self.check_next_completion();
                self.now = self.now.max(at);
                let fa = self.opt.finished_tasks(self.now);
                let fb = self.reference.finished_tasks(self.now);
                assert_eq!(fa, fb, "finished sets diverged at {:?}", self.now);
                assert!(
                    fb.contains(&id) || self.reference.remaining(id) > 0.0,
                    "predicted completion {id:?} neither finished nor pending"
                );
                for done in fb {
                    self.live.retain(|&l| l != done);
                    let ra = self.opt.remove_task(self.now, done);
                    let rb = self.reference.remove_task(self.now, done);
                    assert!((ra - rb).abs() < WORK_TOL, "finished residual diverged");
                }
            }
        }
        self.check_state();
        self.check_next_completion();
    }

    /// Drive every remaining task to completion, comparing the full
    /// completion order.
    fn drain(&mut self) {
        let mut guard = 0usize;
        while !self.reference.is_empty() {
            self.apply(Op::CompleteNext);
            guard += 1;
            assert!(guard < 100_000, "drain did not converge");
        }
        assert!(self.opt.is_empty(), "optimized kernel retained tasks");
    }
}

proptest! {
    /// Uniform-signature schedules (the invoker's regime): every observable
    /// matches the reference after every operation.
    #[test]
    fn uniform_schedules_match_reference(
        cores in 1u32..16,
        kappa in 0.0f64..1.0,
        ops in prop::collection::vec((0u8..4, 1u64..5_000, any::<u64>()), 1..60)
    ) {
        let mut pair = Pair::new(cores as f64, kappa);
        for (kind, magnitude, pick) in ops {
            let op = match kind {
                0 | 1 => Op::Add { work_ms: magnitude, sig: 0 },
                2 => Op::Advance { dt_ms: magnitude % 1_500 + 1 },
                _ => if pick % 3 == 0 {
                    Op::Remove { pick }
                } else {
                    Op::CompleteNext
                },
            };
            pair.apply(op);
        }
        pair.drain();
    }

    /// Heterogeneous schedules exercise the water-filling fallback and both
    /// representation switches.
    #[test]
    fn heterogeneous_schedules_match_reference(
        cores in 1u32..8,
        ops in prop::collection::vec((0u8..4, 1u64..3_000, any::<u64>()), 1..50)
    ) {
        let mut pair = Pair::new(cores as f64, 0.3);
        for (kind, magnitude, pick) in ops {
            let op = match kind {
                0 | 1 => Op::Add { work_ms: magnitude, sig: (pick % 4) as u8 },
                2 => Op::Advance { dt_ms: magnitude % 1_000 + 1 },
                _ => if pick % 3 == 0 {
                    Op::Remove { pick }
                } else {
                    Op::CompleteNext
                },
            };
            pair.apply(op);
        }
        pair.drain();
    }
}

/// The volume test the acceptance criteria call for: 1200 random schedules
/// (mixed uniform/heterogeneous), each driven to completion with the full
/// per-step observable comparison. Seeded, so failures reproduce exactly.
fn run_schedule(seed: u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xD1FF_5EED);
    let cores = 1.0 + (rng.next_u64() % 12) as f64;
    let kappa = (rng.next_u64() % 100) as f64 / 100.0;
    let uniform_only = !seed.is_multiple_of(3);
    let mut pair = Pair::new(cores, kappa);
    let steps = 20 + (rng.next_u64() % 60) as usize;
    for _ in 0..steps {
        let op = match rng.next_u64() % 10 {
            0..=3 => Op::Add {
                work_ms: 1 + rng.next_u64() % 4_000,
                sig: if uniform_only {
                    0
                } else {
                    (rng.next_u64() % 4) as u8
                },
            },
            4..=5 => Op::Advance {
                dt_ms: 1 + rng.next_u64() % 1_200,
            },
            6 => Op::Remove {
                pick: rng.next_u64(),
            },
            _ => Op::CompleteNext,
        };
        pair.apply(op);
    }
    pair.drain();
}

#[test]
fn differential_1200_random_schedules() {
    for seed in 0..1200u64 {
        if let Err(e) = std::panic::catch_unwind(|| run_schedule(seed)) {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!("schedule seed {seed} diverged: {msg}");
        }
    }
}
