//! Differential tests: the virtual-time `GpsCpu` must reproduce the seed
//! integrator (`ReferenceGpsCpu`) — same completion order, completion times
//! within 1e-6 s, same per-task remaining work, and the same `work_done`
//! accounting — over random add/remove/advance/complete schedules, in both
//! the uniform fast path and the heterogeneous water-filling path.
//!
//! The schedule vocabulary and the lockstep driver live in
//! `faas_cpu::schedule` (shared with the weighted-partition suite in
//! `prop_gps_weighted.rs`). Two harnesses consume them here:
//!
//! * a proptest property over random op sequences (shrinking-friendly
//!   op encoding);
//! * a seeded sweep of 1200 random schedules, providing the volume the
//!   acceptance criteria ask for at a fixed, reproducible cost.

use faas_cpu::schedule::{random_schedule, ChurnOp, DifferentialPair, SignaturePool};
use faas_simcore::rng::Xoshiro256;
use proptest::prelude::*;

proptest! {
    /// Uniform-signature schedules (the invoker's regime): every observable
    /// matches the reference after every operation.
    #[test]
    fn uniform_schedules_match_reference(
        cores in 1u32..16,
        kappa in 0.0f64..1.0,
        ops in prop::collection::vec((0u8..4, 1u64..5_000, any::<u64>()), 1..60)
    ) {
        let mut pair = DifferentialPair::new(cores as f64, kappa, SignaturePool::uniform());
        for (kind, magnitude, pick) in ops {
            let op = match kind {
                0 | 1 => ChurnOp::Add { work_ms: magnitude, sig: 0 },
                2 => ChurnOp::Advance { dt_ms: magnitude % 1_500 + 1 },
                _ => if pick % 3 == 0 {
                    ChurnOp::Remove { pick }
                } else {
                    ChurnOp::CompleteNext
                },
            };
            pair.apply(op);
        }
        pair.drain();
    }

    /// Heterogeneous schedules exercise the water-filling partition and
    /// both representation switches.
    #[test]
    fn heterogeneous_schedules_match_reference(
        cores in 1u32..8,
        ops in prop::collection::vec((0u8..4, 1u64..3_000, any::<u64>()), 1..50)
    ) {
        let mut pair = DifferentialPair::new(cores as f64, 0.3, SignaturePool::paper_mixed());
        for (kind, magnitude, pick) in ops {
            let op = match kind {
                0 | 1 => ChurnOp::Add { work_ms: magnitude, sig: (pick % 4) as u8 },
                2 => ChurnOp::Advance { dt_ms: magnitude % 1_000 + 1 },
                _ => if pick % 3 == 0 {
                    ChurnOp::Remove { pick }
                } else {
                    ChurnOp::CompleteNext
                },
            };
            pair.apply(op);
        }
        pair.drain();
    }
}

/// The volume test the acceptance criteria call for: 1200 random schedules
/// (mixed uniform/heterogeneous), each driven to completion with the full
/// per-step observable comparison. Seeded, so failures reproduce exactly.
fn run_schedule(seed: u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xD1FF_5EED);
    let cores = 1.0 + (rng.next_u64() % 12) as f64;
    let kappa = (rng.next_u64() % 100) as f64 / 100.0;
    let uniform_only = !seed.is_multiple_of(3);
    let pool = if uniform_only {
        SignaturePool::uniform()
    } else {
        SignaturePool::paper_mixed()
    };
    let steps = 20 + (rng.next_u64() % 60) as usize;
    let ops = random_schedule(&mut rng, steps, pool.len() as u8, 4_000, 1_200);
    let mut pair = DifferentialPair::new(cores, kappa, pool);
    for op in ops {
        pair.apply(op);
    }
    pair.drain();
}

#[test]
fn differential_1200_random_schedules() {
    for seed in 0..1200u64 {
        if let Err(e) = std::panic::catch_unwind(|| run_schedule(seed)) {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!("schedule seed {seed} diverged: {msg}");
        }
    }
}
