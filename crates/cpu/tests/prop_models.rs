//! Property tests of the processor models.

use faas_cpu::{CorePool, GpsCpu, GpsParams, TaskId};
use faas_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Dedicated cores: busy + free == total under any operation sequence.
    #[test]
    fn core_pool_conserves_cores(
        total in 1u32..64,
        ops in prop::collection::vec(any::<bool>(), 0..300)
    ) {
        let mut pool = CorePool::new(total);
        for acquire in ops {
            if acquire {
                let had_free = pool.has_free();
                let got = pool.try_acquire();
                prop_assert_eq!(got, had_free);
            } else if pool.busy() > 0 {
                pool.release();
            }
            prop_assert_eq!(pool.busy() + pool.free(), pool.total());
            prop_assert!(pool.peak_busy() <= pool.total());
        }
    }

    /// GPS with weights: rates order like weights (heavier never slower).
    #[test]
    fn gps_weighted_rates_are_monotone_in_weight(
        cores in 1u32..8,
        weights in prop::collection::vec(0.1f64..8.0, 2..20)
    ) {
        let mut cpu = GpsCpu::new(GpsParams {
            cores: cores as f64,
            ctx_switch_penalty: 0.0,
            penalty_cap: 2.0,
        });
        let ids: Vec<(TaskId, f64)> = weights
            .iter()
            .map(|&w| (cpu.add_task(SimTime::ZERO, 100.0, w, 1.0), w))
            .collect();
        let rates: Vec<(f64, f64)> = ids
            .iter()
            .map(|&(id, w)| (w, cpu.current_rate(id)))
            .collect();
        for &(wa, ra) in &rates {
            for &(wb, rb) in &rates {
                if wa > wb {
                    prop_assert!(ra >= rb - 1e-9, "weight {wa} rate {ra} vs {wb}/{rb}");
                }
            }
        }
    }

    /// Completions predicted by next_completion actually drain the task.
    #[test]
    fn predicted_completion_is_exact(
        cores in 1u32..4,
        works in prop::collection::vec(1u64..5_000, 1..20)
    ) {
        let mut cpu = GpsCpu::new(GpsParams {
            cores: cores as f64,
            ctx_switch_penalty: 0.3,
            penalty_cap: 2.0,
        });
        for &w in &works {
            cpu.add_task(SimTime::ZERO, w as f64 / 1000.0, 1.0, 1.0);
        }
        // Drain completions one by one; each predicted ETA must leave the
        // predicted task with (numerically) zero remaining work.
        let mut now = SimTime::ZERO;
        while let Some((id, at)) = cpu.next_completion(now) {
            prop_assert!(at >= now);
            now = at;
            cpu.advance(now);
            prop_assert!(cpu.remaining(id) < 1e-6, "residual {}", cpu.remaining(id));
            cpu.remove_task(now, id);
        }
        prop_assert!(cpu.is_empty());
        let total: f64 = works.iter().map(|&w| w as f64 / 1000.0).sum();
        prop_assert!((cpu.work_done() - total).abs() < 1e-5);
        let _ = SimDuration::ZERO;
    }

    /// Capacity penalty is monotone: more runnable tasks never increase
    /// effective capacity.
    #[test]
    fn effective_capacity_is_monotone(
        cores in 1.0f64..32.0,
        kappa in 0.0f64..1.0,
        cap in 1.0f64..4.0
    ) {
        let p = GpsParams { cores, ctx_switch_penalty: kappa, penalty_cap: cap };
        let mut last = f64::INFINITY;
        for n in 0..200 {
            let c = p.effective_capacity(n);
            prop_assert!(c <= last + 1e-12);
            prop_assert!(c >= cores / cap - 1e-12, "cap floor");
            last = c;
        }
    }
}
