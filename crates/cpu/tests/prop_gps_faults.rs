//! Dynamic-capacity differential tests: `GpsCpu::set_capacity` pinned to
//! the seed integrator (`gps_reference`) across seeded capacity-churn
//! schedules — degradation/restoration ramps interleaved with membership
//! churn, boundary crossings and uniform↔general mode flips.
//!
//! Three suites:
//!
//! * a proptest property over random op sequences that include capacity
//!   changes (shrinking encoding, weighted signature pools);
//! * a seeded sweep of 520 capacity-thrash schedules — the ≥500-schedule
//!   volume the acceptance criteria require — which must also actually
//!   cross the capped/uncapped boundary (a ramp that never re-keys is
//!   testing nothing);
//! * the uniform fast-path regression: capacity changes on a homogeneous
//!   workload must never leave the virtual-time representation.

use faas_cpu::schedule::{
    capacity_thrash_schedule, run_capacity_thrash_schedule, ChurnOp, DifferentialPair,
    SignaturePool,
};
use faas_simcore::rng::Xoshiro256;
use proptest::prelude::*;

proptest! {
    /// Random schedules mixing adds/advances/removes/completions with
    /// capacity steps between 10% and 300% of the base node: every
    /// observable matches the reference after every operation.
    #[test]
    fn capacity_churn_matches_reference(
        cores in 1u32..10,
        pool_seed in 0u64..64,
        ops in prop::collection::vec((0u8..5, 1u64..3_000, any::<u64>()), 1..50)
    ) {
        let pool = SignaturePool::weighted(pool_seed);
        let mut pair = DifferentialPair::new(cores as f64, 0.4, pool.clone());
        for (kind, magnitude, pick) in ops {
            let op = match kind {
                0 | 1 => ChurnOp::Add {
                    work_ms: magnitude,
                    sig: (pick % pool.len() as u64) as u8,
                },
                2 => ChurnOp::Advance { dt_ms: magnitude % 1_000 + 1 },
                3 => ChurnOp::SetCapacity {
                    // 10%..300% of the base capacity, in centi-cores.
                    cores_centi: cores as u64 * (10 + magnitude % 291),
                },
                _ => if pick % 3 == 0 {
                    ChurnOp::Remove { pick }
                } else {
                    ChurnOp::CompleteNext
                },
            };
            pair.apply(op);
        }
        pair.drain();
    }
}

/// The acceptance-criteria volume: 520 seeded capacity-thrash schedules
/// (ramps + membership churn + mode flips over the boundary-ladder pool),
/// each driven to completion under the full per-step observable
/// comparison, and collectively required to exercise the re-keying path.
#[test]
fn differential_520_capacity_thrash_schedules() {
    let mut total_crossings = 0u64;
    for seed in 0..520u64 {
        match std::panic::catch_unwind(|| run_capacity_thrash_schedule(seed, 4)) {
            Ok(crossings) => total_crossings += crossings,
            Err(e) => {
                let msg = e
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic>".into());
                panic!("capacity-thrash seed {seed} diverged: {msg}");
            }
        }
    }
    assert!(
        total_crossings > 1_000,
        "capacity sweep barely crossed the boundary ({total_crossings} crossings)"
    );
}

/// Capacity thrash on a homogeneous workload: the bank must ride out every
/// degradation and restoration on the uniform fast path — `set_capacity`
/// in uniform mode is a parameter swap plus a rate-memo invalidation,
/// never a partition build.
#[test]
fn homogeneous_capacity_churn_stays_on_fast_path() {
    for seed in 0..60u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xFA57_CAFE);
        let cores = 1 + rng.next_u64() % 12;
        let mut pair = DifferentialPair::new(cores as f64, 0.3, SignaturePool::uniform());
        for step in 0..60 {
            let op = match rng.next_u64() % 10 {
                0..=3 => ChurnOp::Add {
                    work_ms: 1 + rng.next_u64() % 2_000,
                    sig: 0,
                },
                4..=5 => ChurnOp::Advance {
                    dt_ms: 1 + rng.next_u64() % 800,
                },
                6..=7 => ChurnOp::SetCapacity {
                    cores_centi: cores * (10 + rng.next_u64() % 291),
                },
                _ => ChurnOp::CompleteNext,
            };
            pair.apply(op);
            assert!(
                pair.opt.is_uniform_mode(),
                "capacity change left the fast path at seed {seed} step {step}"
            );
            assert_eq!(pair.opt.partition_sizes(), (0, 0));
        }
        pair.drain();
    }
}

/// The thrash generator's ramps land in both representations: schedules
/// must apply capacity changes while the bank is in general mode *and*
/// while it is uniform (the every-other-block drain).
#[test]
fn capacity_thrash_hits_both_modes() {
    let mut general_hits = 0usize;
    let mut uniform_hits = 0usize;
    for seed in 0..10u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x0DD5_EED5);
        let pool = SignaturePool::boundary_ladder();
        let ops = capacity_thrash_schedule(&mut rng, 6, pool.len() as u8, 400);
        let mut pair = DifferentialPair::new(4.0, 0.2, pool);
        for op in ops {
            if matches!(op, ChurnOp::SetCapacity { .. }) && !pair.opt.is_empty() {
                if pair.opt.is_uniform_mode() {
                    uniform_hits += 1;
                } else {
                    general_hits += 1;
                }
            }
            pair.apply(op);
        }
        pair.drain();
    }
    assert!(
        general_hits > 10,
        "no general-mode capacity changes ({general_hits})"
    );
    assert!(
        uniform_hits > 5,
        "no uniform-mode capacity changes ({uniform_hits})"
    );
}
