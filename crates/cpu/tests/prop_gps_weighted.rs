//! Weighted-partition differential tests: the incremental capped/uncapped
//! water-filling in `GpsCpu` pinned to the seed integrator
//! (`gps_reference`) over randomized *weighted* churn schedules —
//! heterogeneous weights and rate caps, the regime PR 4's partition
//! rewrite targets. Built on the reusable harness in `faas_cpu::schedule`.
//!
//! Three suites:
//!
//! * a proptest property over random weighted op sequences (shrinking
//!   encoding, seeded signature pools);
//! * a seeded sweep of 600 weighted churn schedules — the ≥500-schedule
//!   volume the acceptance criteria require, at fixed reproducible cost;
//! * the uniform fast-path regression: signature-homogeneous schedules
//!   must never leave the virtual-time representation or touch the
//!   partition structure, keeping the invoker's O(1) path O(1).

use faas_cpu::schedule::{
    boundary_thrash_schedule, random_schedule, run_boundary_thrash_schedule, ChurnOp,
    DifferentialPair, SignaturePool,
};
use faas_cpu::{GpsCpu, GpsParams};
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::SimTime;
use proptest::prelude::*;

proptest! {
    /// Weighted churn schedules over seeded heterogeneous pools: every
    /// observable matches the reference after every operation.
    #[test]
    fn weighted_schedules_match_reference(
        cores in 1u32..10,
        pool_seed in 0u64..64,
        ops in prop::collection::vec((0u8..4, 1u64..3_000, any::<u64>()), 1..50)
    ) {
        let pool = SignaturePool::weighted(pool_seed);
        let mut pair = DifferentialPair::new(cores as f64, 0.4, pool.clone());
        for (kind, magnitude, pick) in ops {
            let op = match kind {
                0 | 1 => ChurnOp::Add {
                    work_ms: magnitude,
                    sig: (pick % pool.len() as u64) as u8,
                },
                2 => ChurnOp::Advance { dt_ms: magnitude % 1_000 + 1 },
                _ => if pick % 3 == 0 {
                    ChurnOp::Remove { pick }
                } else {
                    ChurnOp::CompleteNext
                },
            };
            pair.apply(op);
        }
        pair.drain();
    }
}

/// The acceptance-criteria volume: 600 seeded weighted churn schedules,
/// each with its own heterogeneous signature pool and node shape, driven
/// to completion under the full per-step observable comparison.
#[test]
fn differential_600_weighted_schedules() {
    for seed in 0..600u64 {
        let pool = SignaturePool::weighted(seed);
        if let Err(e) = std::panic::catch_unwind(|| {
            faas_cpu::schedule::run_differential_schedule(seed, &pool, 80)
        }) {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!("weighted schedule seed {seed} diverged: {msg}");
        }
    }
}

/// Boundary-thrash differential sweep: seeded schedules built to slam the
/// heavy swing signature in and out of the boundary-ladder pool (each move
/// re-keys a batch of tasks across the capped/uncapped boundary) and to
/// drain whole signature classes mid-completion-stream (uniform↔general
/// mode flips while completions are being consumed). Every observable is
/// pinned to `gps_reference` after every operation, and the sweep as a
/// whole must actually cross the boundary — a thrash suite that never
/// re-keys is testing nothing.
#[test]
fn differential_boundary_thrash_schedules() {
    let mut total_crossings = 0u64;
    for seed in 0..200u64 {
        match std::panic::catch_unwind(|| run_boundary_thrash_schedule(seed, 6)) {
            Ok(crossings) => total_crossings += crossings,
            Err(e) => {
                let msg = e
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic>".into());
                panic!("boundary-thrash seed {seed} diverged: {msg}");
            }
        }
    }
    assert!(
        total_crossings > 1_000,
        "thrash sweep barely crossed the boundary ({total_crossings} crossings)"
    );
}

/// The thrash schedules must flip the representation both ways while the
/// completion stream is live: general→uniform (signature classes drained
/// mid-stream) and uniform→general (the next block re-populates the
/// ladder), several times per schedule.
#[test]
fn thrash_schedules_flip_modes_mid_stream() {
    let mut total_flips = 0usize;
    for seed in 0..20u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xF11B);
        let pool = SignaturePool::boundary_ladder();
        let ops = boundary_thrash_schedule(&mut rng, 6, pool.len() as u8);
        let mut pair = DifferentialPair::new(4.0, 0.2, pool);
        let mut was_uniform = true;
        for op in ops {
            pair.apply(op);
            let uniform = pair.opt.is_uniform_mode();
            if uniform != was_uniform {
                total_flips += 1;
                was_uniform = uniform;
            }
        }
        pair.drain();
    }
    assert!(
        total_flips >= 20 * 4,
        "thrash schedules must flip modes repeatedly, saw {total_flips}"
    );
}

/// The weighted sweep must actually exercise the partition: across the
/// seeds, schedules reach general mode with tasks on both sides of the
/// capped/uncapped boundary.
#[test]
fn weighted_schedules_populate_the_partition() {
    let mut saw_general = false;
    let mut saw_both_sides = false;
    for seed in 0..40u64 {
        let pool = SignaturePool::weighted(seed);
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xBEEF);
        let ops = random_schedule(&mut rng, 60, pool.len() as u8, 2_000, 800);
        let mut cpu = GpsCpu::new(GpsParams {
            cores: 4.0,
            ctx_switch_penalty: 0.2,
            penalty_cap: 100.0,
        });
        let mut live = Vec::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                ChurnOp::Add { work_ms, sig } => {
                    let (w, c) = pool.get(sig);
                    live.push(cpu.add_task(now, work_ms as f64 / 1000.0, w, c));
                }
                ChurnOp::Remove { pick } => {
                    if !live.is_empty() {
                        let id = live.remove((pick % live.len() as u64) as usize);
                        cpu.remove_task(now, id);
                    }
                }
                // random_schedule never emits the signature-targeted or
                // capacity ops.
                ChurnOp::RemoveSig { .. }
                | ChurnOp::DrainSig { .. }
                | ChurnOp::SetCapacity { .. }
                | ChurnOp::SetMemCapacity { .. } => {}
                ChurnOp::Advance { dt_ms } => {
                    now += faas_simcore::time::SimDuration::from_millis(dt_ms);
                    cpu.advance(now);
                }
                ChurnOp::CompleteNext => {
                    if let Some((_, at)) = cpu.next_completion(now) {
                        now = now.max(at);
                        for id in cpu.finished_tasks(now) {
                            live.retain(|&l| l != id);
                            cpu.remove_task(now, id);
                        }
                    }
                }
            }
            if !cpu.is_uniform_mode() {
                saw_general = true;
                let (uncapped, capped) = cpu.partition_sizes();
                if uncapped > 0 && capped > 0 {
                    saw_both_sides = true;
                }
            }
        }
    }
    assert!(saw_general, "weighted schedules never reached general mode");
    assert!(
        saw_both_sides,
        "weighted schedules never split the partition across the boundary"
    );
}

/// Uniform fast-path regression: a signature-homogeneous workload must
/// never enter the partition structure — the bank stays in the
/// virtual-time representation after every single operation, so the
/// invoker's O(1) advance stays O(1).
#[test]
fn homogeneous_schedules_never_touch_the_partition() {
    for seed in 0..50u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x0511_F0A5);
        let cores = 1.0 + (rng.next_u64() % 12) as f64;
        let kappa = (rng.next_u64() % 100) as f64 / 100.0;
        let ops = random_schedule(&mut rng, 80, 1, 4_000, 1_200);
        let mut pair = DifferentialPair::new(cores, kappa, SignaturePool::uniform());
        for op in ops {
            pair.apply(op);
            pair.assert_uniform_fast_path();
        }
        pair.drain();
        pair.assert_uniform_fast_path();
    }
}

/// Mode flips under churn: generation moves on every membership change and
/// the partition drains exactly when the signature set collapses back to
/// one — the introspection surface the fast-path regression relies on.
#[test]
fn generation_and_mode_introspection_track_membership() {
    let mut cpu = GpsCpu::new(GpsParams {
        cores: 2.0,
        ctx_switch_penalty: 0.0,
        penalty_cap: 100.0,
    });
    let t = SimTime::ZERO;
    let g0 = cpu.generation();
    let a = cpu.add_task(t, 5.0, 1.0, 1.0);
    assert!(cpu.generation() > g0);
    assert!(cpu.is_uniform_mode());
    let b = cpu.add_task(t, 5.0, 2.0, 0.5);
    assert!(!cpu.is_uniform_mode());
    assert_eq!(
        {
            let (u, c) = cpu.partition_sizes();
            u + c
        },
        2,
        "both live tasks sit in the partition"
    );
    cpu.remove_task(t, b);
    assert!(cpu.is_uniform_mode(), "single signature re-enters uniform");
    assert_eq!(cpu.partition_sizes(), (0, 0));
    cpu.remove_task(t, a);
    assert!(cpu.is_empty());
    assert!(cpu.is_uniform_mode());
}
