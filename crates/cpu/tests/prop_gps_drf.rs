//! DRF invariant suites for the multi-resource dominant-share kernel.
//!
//! Three angles:
//!
//! * **Sharing incentive** — no unfinished task's rate falls below
//!   `min(its cap, its weighted share of the tightest axis)`: splitting
//!   the cluster per-weight could never give a task more than
//!   `w_i · C_k / Σw` on any axis it demands, so the dominant-share
//!   water-filling never leaves a task worse off than the static split.
//! * **Pareto efficiency** — whenever some unfinished task is below its
//!   rate cap, at least one resource axis is exactly saturated (the
//!   binding axis of the water level); if every task is capped, each runs
//!   at its cap. Either way no rate can be raised without lowering
//!   another.
//! * **Differential volume** — a 520-seed multi-resource churn sweep
//!   (memory-bandwidth capacity churn included) pinning every observable
//!   of the dominant-share kernel to the per-axis reference integrator,
//!   plus a shrink-friendly proptest over DRF op sequences.

use faas_cpu::schedule::{run_drf_differential_schedule, ChurnOp, DifferentialPair, SignaturePool};
use faas_cpu::{GpsCpu, GpsParams, Resource, ResourceVector};
use faas_simcore::time::SimTime;
use proptest::prelude::*;

const WEIGHTS: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
const CAPS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 1e6];
const MEMS: [f64; 6] = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0];

fn bank(cores: f64, mem: f64) -> GpsCpu {
    let mut cpu = GpsCpu::new(GpsParams {
        cores,
        // κ = 0 keeps the effective CPU capacity at `cores` exactly, so
        // the invariants below are spec-level arithmetic.
        ctx_switch_penalty: 0.0,
        penalty_cap: 100.0,
    });
    cpu.set_resource_capacity(SimTime::ZERO, Resource::Mem, mem);
    cpu
}

/// Populate a bank from lattice indices; returns per-task
/// `(id, weight, max_rate, profile)` with `max_rate` already in dominant
/// units. Work is huge so nothing finishes and rates are inspected at t=0.
fn populate(
    cpu: &mut GpsCpu,
    tasks: &[(usize, usize, usize)],
) -> Vec<(faas_cpu::TaskId, f64, f64, [f64; 2])> {
    tasks
        .iter()
        .map(|&(wi, ci, mi)| {
            let w = WEIGHTS[wi];
            let v = ResourceVector::per_cpu(MEMS[mi]);
            let cap = CAPS[ci] * v.dominant_per_cpu();
            let id = cpu.add_task_demand(SimTime::ZERO, 1e9, w, cap, v);
            (id, w, cap, v.profile())
        })
        .collect()
}

proptest! {
    /// Sharing incentive: every task's dominant-unit rate is at least
    /// `min(max_rate_i, w_i · min_k C_k / Σw)`. The water level satisfies
    /// λ ≥ C_b / Σw on the binding axis b (the capped tasks' ratios are
    /// ≤ λ, so C_b = λ·W_b + K_b ≤ λ·Σw), and C_b ≥ min_k C_k; uncapped
    /// tasks run at w_i·λ and capped ones at their cap.
    #[test]
    fn sharing_incentive_holds_under_dominant_share_allocation(
        cores in 1u32..9,
        mem_deci in 5u64..100,
        tasks in prop::collection::vec((0usize..6, 0usize..5, 0usize..6), 2..24),
    ) {
        let cores = cores as f64;
        let mem = mem_deci as f64 / 10.0;
        let mut cpu = bank(cores, mem);
        let placed = populate(&mut cpu, &tasks);
        let total_w: f64 = placed.iter().map(|p| p.1).sum();
        let tightest = cores.min(mem);
        for &(id, w, cap, _) in &placed {
            let floor = cap.min(w * tightest / total_w);
            let rate = cpu.current_rate(id);
            prop_assert!(
                rate >= floor - 1e-6 * floor.max(1.0),
                "task below its weighted split: rate={rate} floor={floor} (w={w}, cap={cap})"
            );
        }
    }

    /// Pareto efficiency: unless every unfinished task is pinned at its
    /// own rate cap, the binding axis is exactly saturated — no spare
    /// capacity exists on every axis a rate increase would consume.
    #[test]
    fn pareto_efficiency_saturates_the_binding_axis(
        cores in 1u32..9,
        mem_deci in 5u64..100,
        tasks in prop::collection::vec((0usize..6, 0usize..5, 0usize..6), 2..24),
    ) {
        let cores = cores as f64;
        let mem = mem_deci as f64 / 10.0;
        let mut cpu = bank(cores, mem);
        let placed = populate(&mut cpu, &tasks);
        let all_capped = placed
            .iter()
            .all(|&(id, _, cap, _)| cpu.current_rate(id) >= cap - 1e-6 * cap.max(1.0));
        if !all_capped {
            let used_cpu = cpu.resource_consumption(Resource::Cpu);
            let used_mem = cpu.resource_consumption(Resource::Mem);
            let cpu_sat = used_cpu >= cores - 1e-6 * cores;
            let mem_sat = used_mem >= mem - 1e-6 * mem;
            prop_assert!(
                cpu_sat || mem_sat,
                "uncapped demand left every axis slack: cpu {used_cpu}/{cores}, mem {used_mem}/{mem}"
            );
        }
    }

    /// Multi-resource churn op sequences (shrinking encoding): every
    /// observable matches the per-axis reference after every operation,
    /// including memory-bandwidth capacity churn.
    #[test]
    fn drf_schedules_match_reference(
        cores in 1u32..10,
        mem_deci in 5u64..80,
        pool_seed in 0u64..64,
        ops in prop::collection::vec((0u8..5, 1u64..3_000, any::<u64>()), 1..50)
    ) {
        let pool = SignaturePool::drf_weighted(pool_seed);
        let mut pair = DifferentialPair::new_with_mem(
            cores as f64,
            0.4,
            mem_deci as f64 / 10.0,
            pool.clone(),
        );
        for (kind, magnitude, pick) in ops {
            let op = match kind {
                0 | 1 => ChurnOp::Add {
                    work_ms: magnitude,
                    sig: (pick % pool.len() as u64) as u8,
                },
                2 => ChurnOp::Advance { dt_ms: magnitude % 1_000 + 1 },
                3 => ChurnOp::SetMemCapacity { mem_centi: magnitude },
                _ => if pick % 3 == 0 {
                    ChurnOp::Remove { pick }
                } else {
                    ChurnOp::CompleteNext
                },
            };
            pair.apply(op);
        }
        pair.drain();
    }
}

/// The acceptance-criteria volume: 520 seeded multi-resource churn
/// schedules — alternating the fixed mixed-demand pool and seeded
/// heterogeneous DRF pools, with memory-bandwidth churn in the op mix —
/// driven to completion under the full per-step observable comparison
/// against `gps_reference`.
#[test]
fn differential_520_drf_schedules() {
    for seed in 0..520u64 {
        let pool = if seed % 2 == 0 {
            SignaturePool::drf_weighted(seed)
        } else {
            SignaturePool::drf_mixed()
        };
        if let Err(e) = std::panic::catch_unwind(|| run_drf_differential_schedule(seed, &pool, 80))
        {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!("DRF schedule seed {seed} diverged: {msg}");
        }
    }
}

/// The DRF sweep must actually exercise the memory axis: across seeds,
/// schedules reach general mode with the memory axis binding the water
/// level (the level set by bandwidth, not cores).
#[test]
fn drf_schedules_bind_the_memory_axis() {
    let mut saw_mem_bound = false;
    for seed in 0..40u64 {
        let pool = SignaturePool::drf_mixed();
        let mut pair = DifferentialPair::new_with_mem(8.0, 0.0, 1.0, pool.clone());
        let mut rng = faas_simcore::rng::Xoshiro256::seed_from_u64(seed ^ 0x3E3E);
        let ops = faas_cpu::schedule::drf_schedule(&mut rng, 60, pool.len() as u8, 2_000, 800, 300);
        for op in ops {
            pair.apply(op);
            // With 8 cores and ≤3 bandwidth units, a memory-saturated
            // general-mode bank means the level came from the mem axis.
            if !pair.opt.is_uniform_mode() {
                let mem_cap = pair.opt.resource_capacity(Resource::Mem);
                let used = pair.opt.resource_consumption(Resource::Mem);
                if mem_cap.is_finite() && used >= mem_cap * (1.0 - 1e-6) {
                    saw_mem_bound = true;
                }
            }
        }
        pair.drain();
    }
    assert!(
        saw_mem_bound,
        "40 seeded DRF schedules never saturated the memory axis"
    );
}
