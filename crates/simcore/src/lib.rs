//! # faas-simcore
//!
//! Deterministic discrete-event simulation kernel shared by every other crate
//! in the workspace.
//!
//! The crate provides four building blocks:
//!
//! * [`time`] — integer-nanosecond simulated time ([`SimTime`], [`SimDuration`])
//!   with saturating arithmetic, so a simulation can never observe negative
//!   time or silently wrap.
//! * [`rng`] — a self-contained xoshiro256++ PRNG ([`rng::Xoshiro256`]) seeded
//!   via SplitMix64. Every random draw in the workspace flows through this
//!   generator, which makes every experiment bit-for-bit reproducible from a
//!   single `u64` seed.
//! * [`dist`] — the distributions used to model FaaS service times:
//!   log-normal (fitted from the 5th/50th/95th percentiles published in the
//!   paper's Table I), uniform, exponential and deterministic.
//! * [`events`] — a monotonic event queue ([`events::EventQueue`]) with a
//!   stable tie-break, built on a slot-indexed binary heap: handles support
//!   true O(log n) cancellation (entries are removed, not tombstoned) and
//!   in-place reschedule, so queue memory is bounded by the live event
//!   count even under cancellation-heavy workloads.
//! * [`stats`] — percentile / box-plot / summary statistics used to aggregate
//!   response times and stretch exactly the way the paper reports them.
//!
//! The kernel is intentionally free of threads: a single simulation run is a
//! sequential event loop. Parallelism lives one level up (the experiment
//! harness runs independent seeds/configurations on a rayon pool), which keeps
//! the hot loop allocation-free and the results deterministic.

pub mod dist;
pub mod events;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{Distribution, LogNormal, Sampler};
pub use events::{EventHandle, EventQueue};
pub use rng::Xoshiro256;
pub use stats::{Percentiles, Summary};
pub use time::{SimDuration, SimTime};
