//! Summary statistics matching the paper's reporting conventions.
//!
//! The paper reports, per configuration: the average, the 50th/75th/95th/99th
//! percentiles, and the maximum completion time; box plots use the
//! 25th/50th/75th percentiles with 1.5·IQR whiskers and the mean marked
//! separately. This module implements exactly those aggregations.

use serde::{Deserialize, Serialize};

/// Linear-interpolation percentile on a pre-sorted slice (the same estimator
/// NumPy uses by default, which is what the paper's plotting stack used).
///
/// `q` is in `[0, 1]`. Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Sort a copy of the data and return it; NaNs are rejected with a panic
/// because they always indicate an upstream modelling bug.
pub fn sorted_copy(data: &[f64]) -> Vec<f64> {
    let mut v = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("statistics input contained NaN"));
    v
}

/// Compensated (Neumaier) summation: the running error of each addition is
/// tracked and folded back in at the end, so the result is correct to one
/// rounding of the true sum regardless of length or magnitude mix. The
/// grid experiments average hundreds of thousands of response times; naive
/// left-to-right summation loses small addends against the accumulated
/// total.
pub fn compensated_sum(data: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut compensation = 0.0;
    for &x in data {
        let t = sum + x;
        compensation += if sum.abs() >= x.abs() {
            (sum - t) + x
        } else {
            (x - t) + sum
        };
        sum = t;
    }
    sum + compensation
}

/// Arithmetic mean via [`compensated_sum`]. Panics on empty input.
pub fn mean(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "mean of empty data");
    compensated_sum(data) / data.len() as f64
}

/// The percentile set the paper's tables report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// 25th percentile (box-plot lower hinge).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile (box-plot upper hinge).
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Full summary of one metric over one experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Percentile set.
    pub percentiles: Percentiles,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Compute a summary from unsorted data. Panics on empty input or NaNs.
    pub fn from_data(data: &[f64]) -> Summary {
        let sorted = sorted_copy(data);
        Summary::from_sorted(&sorted)
    }

    /// Compute a summary from data already sorted ascending.
    pub fn from_sorted(sorted: &[f64]) -> Summary {
        assert!(!sorted.is_empty(), "summary of empty data");
        Summary {
            count: sorted.len(),
            mean: mean(sorted),
            percentiles: Percentiles {
                p25: percentile_sorted(sorted, 0.25),
                p50: percentile_sorted(sorted, 0.50),
                p75: percentile_sorted(sorted, 0.75),
                p95: percentile_sorted(sorted, 0.95),
                p99: percentile_sorted(sorted, 0.99),
            },
            min: sorted[0],
            max: *sorted.last().unwrap(),
        }
    }

    /// Median shorthand.
    pub fn median(&self) -> f64 {
        self.percentiles.p50
    }
}

/// The five-number box-plot summary used by the paper's figures:
/// hinges at the quartiles, whiskers at the most extreme data point within
/// 1.5 × IQR of the hinges, mean marked separately.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// Lower whisker: smallest observation ≥ `p25 - 1.5*IQR`.
    pub whisker_lo: f64,
    /// Lower hinge (25th percentile).
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// Upper hinge (75th percentile).
    pub p75: f64,
    /// Upper whisker: largest observation ≤ `p75 + 1.5*IQR`.
    pub whisker_hi: f64,
    /// Arithmetic mean (the green triangle in the paper's plots).
    pub mean: f64,
    /// Number of observations outside the whiskers.
    pub outliers: usize,
}

impl BoxPlot {
    /// Compute box-plot statistics from unsorted data.
    pub fn from_data(data: &[f64]) -> BoxPlot {
        let sorted = sorted_copy(data);
        BoxPlot::from_sorted(&sorted)
    }

    /// Compute box-plot statistics from data sorted ascending.
    pub fn from_sorted(sorted: &[f64]) -> BoxPlot {
        assert!(!sorted.is_empty(), "boxplot of empty data");
        let p25 = percentile_sorted(sorted, 0.25);
        let p75 = percentile_sorted(sorted, 0.75);
        let iqr = p75 - p25;
        let lo_fence = p25 - 1.5 * iqr;
        let hi_fence = p75 + 1.5 * iqr;
        // Most extreme data points within the fences, clamped to the hinges
        // (with sparse data no observation may fall between fence and the
        // interpolated hinge; the whisker then collapses onto the hinge).
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(sorted[0])
            .min(p25);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(*sorted.last().unwrap())
            .max(p75);
        let outliers = sorted
            .iter()
            .filter(|&&x| x < whisker_lo || x > whisker_hi)
            .count();
        BoxPlot {
            whisker_lo,
            p25,
            median: percentile_sorted(sorted, 0.50),
            p75,
            whisker_hi,
            mean: mean(sorted),
            outliers,
        }
    }
}

/// Incremental mean/variance accumulator (Welford's algorithm) for streaming
/// contexts where storing all observations is wasteful.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (zero when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&data, 0.0), 1.0);
        assert_eq!(percentile_sorted(&data, 1.0), 4.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [0.0, 10.0];
        assert!((percentile_sorted(&data, 0.25) - 2.5).abs() < 1e-12);
        assert!((percentile_sorted(&data, 0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile_sorted(&[7.0], 0.5), 7.0);
        assert_eq!(percentile_sorted(&[7.0], 0.99), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_input_panics() {
        sorted_copy(&[1.0, f64::NAN]);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::from_data(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.percentiles.p25, 2.0);
        assert_eq!(s.percentiles.p75, 4.0);
    }

    #[test]
    fn summary_percentiles_monotone() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let s = Summary::from_data(&data);
        let p = s.percentiles;
        assert!(p.p25 <= p.p50 && p.p50 <= p.p75 && p.p75 <= p.p95 && p.p95 <= p.p99);
        assert!(s.min <= p.p25 && p.p99 <= s.max);
    }

    #[test]
    fn boxplot_no_outliers_on_uniform_data() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = BoxPlot::from_data(&data);
        assert_eq!(b.outliers, 0);
        assert_eq!(b.whisker_lo, 0.0);
        assert_eq!(b.whisker_hi, 99.0);
        assert!((b.mean - 49.5).abs() < 1e-12);
    }

    #[test]
    fn boxplot_detects_outlier() {
        let mut data: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        data.push(1000.0);
        let b = BoxPlot::from_data(&data);
        assert_eq!(b.outliers, 1);
        assert!(b.whisker_hi < 1000.0);
    }

    #[test]
    fn boxplot_constant_data() {
        // All-equal data: IQR is zero, both fences coincide with the value,
        // whiskers collapse onto the hinges, nothing is an outlier.
        let b = BoxPlot::from_data(&[5.0; 10]);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.p25, 5.0);
        assert_eq!(b.p75, 5.0);
        assert_eq!(b.whisker_lo, 5.0);
        assert_eq!(b.whisker_hi, 5.0);
        assert_eq!(b.mean, 5.0);
        assert_eq!(b.outliers, 0);
    }

    #[test]
    fn boxplot_single_element() {
        // Degenerate but legal (a grid cell with one observation): every
        // statistic collapses onto that observation.
        let b = BoxPlot::from_sorted(&[7.25]);
        assert_eq!(b.whisker_lo, 7.25);
        assert_eq!(b.p25, 7.25);
        assert_eq!(b.median, 7.25);
        assert_eq!(b.p75, 7.25);
        assert_eq!(b.whisker_hi, 7.25);
        assert_eq!(b.mean, 7.25);
        assert_eq!(b.outliers, 0);
    }

    #[test]
    fn mean_survives_catastrophic_cancellation() {
        // Regression: the naive left-to-right sum of the sorted data
        // [-1e16, 1.0, 1e16] loses the 1.0 entirely (-1e16 + 1.0 == -1e16
        // in f64) and reports a mean of 0. Compensated summation recovers
        // the exact sum of 1.0.
        let s = Summary::from_data(&[1e16, 1.0, -1e16]);
        assert_eq!(s.mean, 1.0 / 3.0);
        let b = BoxPlot::from_data(&[1e16, 1.0, -1e16]);
        assert_eq!(b.mean, 1.0 / 3.0);
    }

    #[test]
    fn mean_of_many_small_values_is_exact() {
        // Regression: summing 1e6 copies of 0.1 naively accumulates ~1e-11
        // of rounding drift against ulp-of-100000-sized addend steps; the
        // compensated sum keeps the mean within one rounding of 0.1.
        let data = vec![0.1; 1_000_000];
        let s = Summary::from_sorted(&data);
        assert!(
            (s.mean - 0.1).abs() < 1e-15,
            "mean drifted to {:.17}",
            s.mean
        );
        assert_eq!(s.count, 1_000_000);
        assert_eq!(s.min, 0.1);
        assert_eq!(s.max, 0.1);
    }

    #[test]
    fn compensated_sum_matches_naive_on_benign_data() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 * 0.25).collect();
        let naive: f64 = data.iter().sum();
        assert!((compensated_sum(&data) - naive).abs() < 1e-9);
        assert_eq!(compensated_sum(&[]), 0.0);
    }

    #[test]
    fn welford_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i * i) as f64 * 0.1).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn welford_empty_defaults() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
    }
}
