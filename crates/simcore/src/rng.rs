//! Deterministic pseudo-random number generation.
//!
//! The workspace uses a self-contained xoshiro256++ implementation rather
//! than a trait-object PRNG so that (a) every experiment is reproducible from
//! a single `u64` seed regardless of crate versions, and (b) the generator
//! can be freely embedded in simulation state without generic parameters.
//!
//! xoshiro256++ is the general-purpose generator recommended by its authors
//! (Blackman & Vigna) for simulation workloads; seeding goes through
//! SplitMix64 as they prescribe, which guarantees that no all-zero state can
//! be produced from any seed.

/// SplitMix64 step, used for seeding and for cheap hash-like stream derivation.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure; intended purely for simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed.
    ///
    /// The seed is expanded through SplitMix64, so nearby seeds produce
    /// unrelated streams and the all-zero state is unreachable.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Derive an independent child stream for a named sub-component.
    ///
    /// Mixing the parent's next output with a stream tag through SplitMix64
    /// gives each simulation component (arrival process, service times,
    /// cold-start model, ...) its own decorrelated generator while keeping
    /// everything derivable from the experiment's root seed.
    pub fn derive_stream(&mut self, tag: u64) -> Xoshiro256 {
        let mut mix = self.next_u64() ^ tag.wrapping_mul(0x9E3779B97F4A7C15);
        let s = [
            splitmix64(&mut mix),
            splitmix64(&mut mix),
            splitmix64(&mut mix),
            splitmix64(&mut mix),
        ];
        Xoshiro256 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; dividing by 2^53 yields [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in the half-open interval `[lo, hi)`.
    ///
    /// Returns `lo` when the interval is empty or inverted.
    #[inline]
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        // `!(hi > lo)` also catches NaN bounds, returning `lo` defensively.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(hi > lo) {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Unbiased bounded generation (Lemire 2019).
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let threshold = bound.wrapping_neg() % bound;
            while l < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Standard normal draw via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = Xoshiro256::seed_from_u64(0);
        // SplitMix64 expansion must avoid the forbidden all-zero state.
        assert_ne!(rng.s, [0; 4]);
        let x = rng.next_u64();
        let y = rng.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds_and_degenerate_interval() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.uniform_f64(3.0, 5.0);
            assert!((3.0..5.0).contains(&x));
        }
        assert_eq!(rng.uniform_f64(2.0, 2.0), 2.0);
        assert_eq!(rng.uniform_f64(5.0, 1.0), 5.0);
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow generous 10% tolerance.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Xoshiro256::seed_from_u64(1).below(0);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = rng.standard_normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = Xoshiro256::seed_from_u64(19);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42u8];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn derived_streams_are_decorrelated() {
        let mut root = Xoshiro256::seed_from_u64(23);
        let mut a = root.derive_stream(1);
        let mut b = root.derive_stream(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_stream_is_deterministic() {
        let mut r1 = Xoshiro256::seed_from_u64(5);
        let mut r2 = Xoshiro256::seed_from_u64(5);
        let mut a = r1.derive_stream(99);
        let mut b = r2.derive_stream(99);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = Xoshiro256::seed_from_u64(29);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
