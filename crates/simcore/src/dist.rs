//! Service-time distributions.
//!
//! The paper characterises each SeBS function by the 5th percentile, median
//! and 95th percentile of its idle-system response time (Table I). We model
//! per-call processing times with a log-normal distribution fitted to that
//! triple: the log-normal is the standard heavy-tailed model for service
//! times, is fully determined by two of the three published quantiles, and
//! lets the third act as a fit sanity check.

use crate::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// z-score of the 95th percentile of the standard normal (and, negated, of
/// the 5th percentile).
pub const Z_95: f64 = 1.6448536269514722;

/// Something that can draw `f64` samples from a PRNG.
pub trait Sampler {
    /// Draw one sample.
    fn sample(&self, rng: &mut Xoshiro256) -> f64;
}

/// The distribution kinds used across the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Always returns the same value.
    Deterministic(f64),
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean.
    Exponential { mean: f64 },
    /// Log-normal with the given parameters of the underlying normal.
    LogNormal(LogNormal),
}

impl Sampler for Distribution {
    fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        match *self {
            Distribution::Deterministic(v) => v,
            Distribution::Uniform { lo, hi } => rng.uniform_f64(lo, hi),
            Distribution::Exponential { mean } => {
                // Inverse CDF; 1 - u avoids ln(0).
                -mean * (1.0 - rng.next_f64()).ln()
            }
            Distribution::LogNormal(ln) => ln.sample(rng),
        }
    }
}

impl Distribution {
    /// The analytic mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Deterministic(v) => v,
            Distribution::Uniform { lo, hi } => 0.5 * (lo + hi),
            Distribution::Exponential { mean } => mean,
            Distribution::LogNormal(ln) => ln.mean(),
        }
    }
}

/// Log-normal distribution parameterised by the mean (`mu`) and standard
/// deviation (`sigma`) of the underlying normal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X`; non-negative.
    pub sigma: f64,
}

impl LogNormal {
    /// Construct directly from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        LogNormal { mu, sigma }
    }

    /// Fit a log-normal from the median and 95th percentile.
    ///
    /// `median` must be positive and `p95 >= median`. The median of a
    /// log-normal is `exp(mu)`, and `p95 = exp(mu + Z_95 * sigma)`.
    pub fn from_median_p95(median: f64, p95: f64) -> Self {
        assert!(median > 0.0, "median must be positive, got {median}");
        assert!(
            p95 >= median,
            "p95 ({p95}) must not be below the median ({median})"
        );
        let mu = median.ln();
        let sigma = (p95.ln() - mu) / Z_95;
        LogNormal { mu, sigma }
    }

    /// Fit a log-normal from the (5th percentile, median, 95th percentile)
    /// triple published in the paper's Table I.
    ///
    /// A two-parameter distribution cannot match all three quantiles exactly;
    /// we take `mu = ln(median)` (exact median match) and average the sigma
    /// implied by each tail quantile, which splits the asymmetry of the
    /// published triple evenly.
    pub fn from_quantile_triple(p5: f64, median: f64, p95: f64) -> Self {
        assert!(
            p5 > 0.0 && median >= p5 && p95 >= median,
            "quantiles must be ordered and positive: {p5}, {median}, {p95}"
        );
        let mu = median.ln();
        let sigma_hi = (p95.ln() - mu) / Z_95;
        let sigma_lo = (mu - p5.ln()) / Z_95;
        LogNormal {
            mu,
            sigma: 0.5 * (sigma_hi + sigma_lo),
        }
    }

    /// The median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The analytic mean, `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// The quantile function (inverse CDF) at probability `p` in `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0,1)");
        (self.mu + self.sigma * inverse_standard_normal_cdf(p)).exp()
    }
}

impl Sampler for LogNormal {
    fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
}

/// Acklam's rational approximation to the inverse standard-normal CDF.
///
/// Max absolute error ~1.15e-9 over (0,1): far below anything the simulation
/// can resolve.
pub fn inverse_standard_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_quantile(samples: &mut [f64], q: f64) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[((samples.len() as f64 - 1.0) * q) as usize]
    }

    #[test]
    fn deterministic_is_constant() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let d = Distribution::Deterministic(4.2);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 4.2);
        }
        assert_eq!(d.mean(), 4.2);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let d = Distribution::Uniform { lo: 0.5, hi: 2.0 };
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!((0.5..2.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - d.mean()).abs() < 0.01);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let d = Distribution::Exponential { mean: 3.0 };
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn lognormal_median_matches_fit() {
        let ln = LogNormal::from_median_p95(0.120, 0.240);
        assert!((ln.median() - 0.120).abs() < 1e-12);
        // p95 should reproduce the input.
        assert!((ln.quantile(0.95) - 0.240).abs() < 1e-9);
    }

    #[test]
    fn lognormal_triple_fit_brackets_tails() {
        // Asymmetric triple like uploader in Table I: 184/192/405 ms.
        let ln = LogNormal::from_quantile_triple(0.184, 0.192, 0.405);
        assert!((ln.median() - 0.192).abs() < 1e-12);
        // The averaged sigma must put the fitted tails between the implied
        // one-sided fits.
        let p95 = ln.quantile(0.95);
        assert!(p95 > 0.192 && p95 < 0.405 * 1.5, "p95 {p95}");
        let p5 = ln.quantile(0.05);
        assert!(p5 < 0.192 && p5 > 0.05, "p5 {p5}");
    }

    #[test]
    fn lognormal_samples_match_quantiles() {
        let ln = LogNormal::from_median_p95(1.0, 2.0);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut samples: Vec<f64> = (0..100_000).map(|_| ln.sample(&mut rng)).collect();
        let med = sample_quantile(&mut samples, 0.5);
        let p95 = sample_quantile(&mut samples, 0.95);
        assert!((med - 1.0).abs() < 0.02, "median {med}");
        assert!((p95 - 2.0).abs() < 0.05, "p95 {p95}");
    }

    #[test]
    fn lognormal_mean_formula() {
        let ln = LogNormal::new(0.0, 0.5);
        assert!((ln.mean() - (0.125f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn zero_sigma_lognormal_is_constant() {
        let ln = LogNormal::from_median_p95(2.0, 2.0);
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..10 {
            assert!((ln.sample(&mut rng) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_cdf_known_points() {
        assert!(inverse_standard_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_standard_normal_cdf(0.95) - Z_95).abs() < 1e-7);
        assert!((inverse_standard_normal_cdf(0.05) + Z_95).abs() < 1e-7);
        // Deep tail should be monotone and finite.
        let q = inverse_standard_normal_cdf(1e-6);
        assert!(q < -4.0 && q.is_finite());
    }

    #[test]
    #[should_panic(expected = "median must be positive")]
    fn lognormal_rejects_zero_median() {
        LogNormal::from_median_p95(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must not be below")]
    fn lognormal_rejects_inverted_quantiles() {
        LogNormal::from_median_p95(2.0, 1.0);
    }
}
