//! Simulated time.
//!
//! All simulation time in the workspace is kept as an integer number of
//! nanoseconds since the start of the experiment. Integer time makes event
//! ordering exact (no float comparison fuzz) and keeps every experiment
//! reproducible across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Number of nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;

/// An instant in simulated time, measured in nanoseconds from the start of
/// the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Raw nanosecond value.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative values clamp to zero; NaN
    /// clamps to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Raw nanosecond value.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Value in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating duration subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, saturating. NaN maps to zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(secs_to_nanos(self.as_secs_f64() * factor))
    }
}

/// Convert fractional seconds to saturating nanoseconds, clamping negatives
/// and NaN to zero.
fn secs_to_nanos(secs: f64) -> u64 {
    // `!(secs > 0.0)` catches NaN, zero and negatives in one comparison.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(secs > 0.0) {
        return 0;
    }
    let nanos = secs * NANOS_PER_SEC as f64;
    if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Saturating difference; panics are never acceptable in the hot loop.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < NANOS_PER_MILLI {
            write!(f, "{}ns", self.0)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_nanos(3_000_000));
        assert_eq!(SimDuration::from_secs(1).as_nanos(), NANOS_PER_SEC);
    }

    #[test]
    fn f64_roundtrip() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-5.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_arithmetic() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late - early, SimDuration::from_secs(4));
        // Subtracting a later time saturates instead of wrapping.
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_secs(4)));
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn duration_mul_f64() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(3000));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(999) < SimTime::from_secs(1));
        assert!(SimDuration::from_nanos(1) > SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(1);
        t += SimDuration::from_millis(2);
        assert_eq!(t, SimTime::from_millis(3));
        let mut d = SimDuration::ZERO;
        d += SimDuration::from_secs(1);
        assert_eq!(d, SimDuration::from_secs(1));
    }
}
