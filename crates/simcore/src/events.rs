//! A monotonic event queue for discrete-event simulation.
//!
//! The queue orders events by `(time, sequence number)`; the sequence number
//! is assigned at push time, so events scheduled for the same instant fire in
//! FIFO order. This stable tie-break is what makes simulations reproducible:
//! two runs with the same seed push the same events in the same order and
//! therefore pop them in the same order.
//!
//! # Indexed-heap design
//!
//! The queue is a binary heap stored in a `Vec`, augmented with a *slot
//! table* that maps every [`EventHandle`] to the current position of its
//! entry in the heap array. Sift operations keep the table in sync, which
//! makes three operations possible that a plain `BinaryHeap` cannot offer:
//!
//! * [`EventQueue::cancel`] physically removes the entry (swap with the last
//!   element, then sift to restore the heap property). There are no lazily
//!   discarded tombstones: after a cancel, [`EventQueue::len`] *is* the
//!   number of entries in the heap array, and memory is bounded by the live
//!   event count however cancellation-heavy the workload is.
//! * [`EventQueue::reschedule`] moves an event to a new time in place
//!   (decrease/increase-key), assigning a fresh sequence number so the
//!   operation is observably identical to cancel-plus-schedule — a
//!   rescheduled event fires after events already scheduled at its new
//!   timestamp, preserving the FIFO tie-break.
//! * [`EventQueue::peek_time`] is a true `&self` read of the heap root —
//!   there are no cancelled heads to discard.
//!
//! Handles stay cheap and `Copy`: a handle packs a slot index and an epoch;
//! the slot's epoch is bumped whenever its event pops or is cancelled, so a
//! dead handle (including one whose slot was since reused) is recognised and
//! `cancel` stays a true no-op for it. The per-event hash map the previous
//! lazy-cancellation design kept on the schedule/pop hot path is gone.

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled or rescheduled.
///
/// A handle is *live* from [`EventQueue::schedule`] until its event pops or
/// is cancelled; afterwards it is *dead* — [`EventQueue::cancel`] becomes a
/// no-op and [`EventQueue::reschedule`] a panic. Slot reuse cannot
/// resurrect a dead handle: each reuse bumps the slot's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    epoch: u32,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    slot: u32,
    payload: E,
}

/// Per-handle slot state: where the entry currently sits in the heap array,
/// and which incarnation of the slot outstanding handles refer to.
#[derive(Debug, Clone, Copy)]
struct Slot {
    pos: u32,
    epoch: u32,
}

/// Priority queue of timestamped events with stable FIFO tie-break, true
/// cancellation and in-place reschedule (see the module docs).
pub struct EventQueue<E> {
    /// Heap-ordered entries; `heap[0]` is the earliest `(time, seq)`.
    heap: Vec<Entry<E>>,
    /// Slot table indexed by `EventHandle::slot`.
    slots: Vec<Slot>,
    /// Slots whose event popped or was cancelled, available for reuse.
    free_slots: Vec<u32>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live events. Cancellation removes entries physically, so
    /// this is exactly the heap's size — no stale entries are counted (or
    /// kept).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// Panics if `time` is before the current clock — scheduling into the
    /// past is always a simulation bug and silently reordering it would
    /// corrupt causality.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventHandle {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={} event={}",
            self.now,
            time
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free_slots.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(Slot { pos: 0, epoch: 0 });
                (self.slots.len() - 1) as u32
            }
        };
        let pos = self.heap.len();
        let state = &mut self.slots[slot as usize];
        state.pos = pos as u32;
        let epoch = state.epoch;
        self.heap.push(Entry {
            time,
            seq,
            slot,
            payload,
        });
        self.sift_up(pos);
        EventHandle { slot, epoch }
    }

    /// True while `handle`'s event is still queued (not popped, not
    /// cancelled).
    pub fn is_scheduled(&self, handle: EventHandle) -> bool {
        self.resolve(handle).is_some()
    }

    /// Cancel a previously scheduled event, removing it from the heap.
    /// Idempotent; cancelling an already-popped event has no effect.
    pub fn cancel(&mut self, handle: EventHandle) {
        if let Some(pos) = self.resolve(handle) {
            self.remove_at(pos);
        }
    }

    /// Move a live event to a new absolute time in place. The event gets a
    /// fresh sequence number, so this is observably identical to
    /// cancel-plus-schedule (FIFO tie-break included) while keeping
    /// `handle` valid.
    ///
    /// Panics if `handle` is dead (already popped or cancelled) or `time`
    /// is in the past — both are simulation bugs.
    pub fn reschedule(&mut self, handle: EventHandle, time: SimTime) {
        assert!(
            time >= self.now,
            "cannot reschedule into the past: now={} event={}",
            self.now,
            time
        );
        let pos = self
            .resolve(handle)
            .expect("reschedule of a dead event (already popped or cancelled)");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap[pos].time = time;
        self.heap[pos].seq = seq;
        self.restore_at(pos);
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.remove_at(0);
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Timestamp of the earliest live event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|entry| entry.time)
    }

    /// Pop the earliest live event only if its timestamp is at or before
    /// `horizon`; otherwise leave the queue — and the clock — untouched.
    ///
    /// This is the window primitive of conservative time-stepped
    /// simulation: a simulator advancing to a horizon drains exactly the
    /// events inside the window `(now, horizon]` and stops with every
    /// later event still queued, so it can be resumed with a larger
    /// horizon without ever popping an event out of order.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= horizon {
            self.pop()
        } else {
            None
        }
    }

    /// Heap position of a live handle's entry, `None` if the handle is dead.
    fn resolve(&self, handle: EventHandle) -> Option<usize> {
        let slot = self.slots.get(handle.slot as usize)?;
        (slot.epoch == handle.epoch).then_some(slot.pos as usize)
    }

    /// Remove the entry at heap position `pos`, retiring its slot and
    /// restoring the heap property. Returns the removed entry.
    fn remove_at(&mut self, pos: usize) -> Entry<E> {
        let entry = self.heap.swap_remove(pos);
        let slot = &mut self.slots[entry.slot as usize];
        // Kill outstanding handles to this slot before it is reused.
        slot.epoch = slot.epoch.wrapping_add(1);
        self.free_slots.push(entry.slot);
        if pos < self.heap.len() {
            self.sift_down_to_bottom(pos);
        }
        entry
    }

    /// Re-establish the heap property for an entry whose key changed; it may
    /// need to move either towards the root or towards the leaves.
    fn restore_at(&mut self, pos: usize) {
        if pos > 0 && self.before(pos, (pos - 1) / 2) {
            self.sift_up(pos);
        } else {
            self.sift_down(pos);
        }
    }

    /// `(time, seq)` ordering between two heap positions.
    fn before(&self, a: usize, b: usize) -> bool {
        let (ea, eb) = (&self.heap[a], &self.heap[b]);
        (ea.time, ea.seq) < (eb.time, eb.seq)
    }

    /// Sift towards the root via swap-chains. Only the *displaced* entry's
    /// slot position is updated per level; the moving entry's slot is
    /// written once at its final position.
    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if !self.before(pos, parent) {
                break;
            }
            self.heap.swap(pos, parent);
            self.slots[self.heap[pos].slot as usize].pos = pos as u32;
            pos = parent;
        }
        self.slots[self.heap[pos].slot as usize].pos = pos as u32;
    }

    /// Drag the entry at `pos` (the relocated last leaf after a removal)
    /// to the bottom along the min-child path without comparing against it,
    /// then sift it back up. A displaced leaf almost always belongs near
    /// the bottom again, so skipping the per-level entry comparison beats
    /// [`EventQueue::sift_down`] on the pop hot path — the same strategy
    /// `std`'s `BinaryHeap` uses.
    fn sift_down_to_bottom(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child = if right < len && self.before(right, left) {
                right
            } else {
                left
            };
            self.heap.swap(pos, child);
            self.slots[self.heap[pos].slot as usize].pos = pos as u32;
            pos = child;
        }
        self.slots[self.heap[pos].slot as usize].pos = pos as u32;
        self.sift_up(pos);
    }

    /// Sift towards the leaves (see [`EventQueue::sift_up`]).
    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child = if right < len && self.before(right, left) {
                right
            } else {
                left
            };
            if !self.before(child, pos) {
                break;
            }
            self.heap.swap(pos, child);
            self.slots[self.heap[pos].slot as usize].pos = pos as u32;
            pos = child;
        }
        self.slots[self.heap[pos].slot as usize].pos = pos as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 1);
        q.pop();
        q.schedule(SimTime::from_secs(5), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), 2)));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let _a = q.schedule(SimTime::from_millis(1), "a");
        let b = q.schedule(SimTime::from_millis(2), "b");
        let _c = q.schedule(SimTime::from_millis(3), "c");
        q.cancel(b);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "c"]);
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_pop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        q.cancel(a);
        q.cancel(a);
        assert!(q.pop().is_none());
        let b = q.schedule(SimTime::from_millis(2), "b");
        assert!(q.pop().is_some());
        q.cancel(b); // already popped: no effect
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn cancel_after_pop_does_not_underflow_len() {
        // Regression: cancelling an already-popped event used to leave a
        // stale entry in the cancelled set, so `heap.len() - cancelled.len()`
        // underflowed (panicking in debug builds) once the queue drained.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        q.cancel(a); // already popped: must be a true no-op
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // The queue keeps working normally afterwards.
        q.schedule(SimTime::from_millis(2), "b");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), "b")));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn cancel_popped_then_cancel_queued_keeps_len_exact() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), ());
        let b = q.schedule(SimTime::from_millis(2), ());
        let c = q.schedule(SimTime::from_millis(3), ());
        q.pop();
        q.cancel(a); // popped: no-op
        q.cancel(b); // queued: counts
        q.cancel(b); // idempotent
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        q.cancel(c);
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_is_a_shared_read() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(2), ());
        q.cancel(a);
        // peek_time borrows &self: two simultaneous peeks are fine.
        let peek: &EventQueue<()> = &q;
        assert_eq!(peek.peek_time(), peek.peek_time());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), ())));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_at_or_before_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        q.schedule(SimTime::from_millis(30), "c");
        // Horizon before everything: nothing pops, clock untouched.
        assert_eq!(q.pop_at_or_before(SimTime::from_millis(5)), None);
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 3);
        // Inclusive horizon: events at exactly the horizon pop.
        assert_eq!(
            q.pop_at_or_before(SimTime::from_millis(20)),
            Some((SimTime::from_millis(10), "a"))
        );
        assert_eq!(
            q.pop_at_or_before(SimTime::from_millis(20)),
            Some((SimTime::from_millis(20), "b"))
        );
        assert_eq!(q.pop_at_or_before(SimTime::from_millis(20)), None);
        assert_eq!(
            q.now(),
            SimTime::from_millis(20),
            "clock stops at the window edge"
        );
        // Resuming with a larger horizon drains the rest in order.
        assert_eq!(
            q.pop_at_or_before(SimTime::MAX),
            Some((SimTime::from_millis(30), "c"))
        );
        assert_eq!(q.pop_at_or_before(SimTime::MAX), None, "empty queue");
    }

    #[test]
    fn windowed_draining_matches_a_single_run() {
        // Popping through a staircase of horizons yields the same sequence
        // as draining in one go — the property the resumable node
        // simulators rely on.
        let schedule = |q: &mut EventQueue<u64>| {
            let mut state = 0x9E3779B97F4A7C15u64;
            for _ in 0..200 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                q.schedule(SimTime::from_millis(state % 500), state);
            }
        };
        let mut whole = EventQueue::new();
        schedule(&mut whole);
        let one_go: Vec<(SimTime, u64)> = std::iter::from_fn(|| whole.pop()).collect();

        let mut stepped = EventQueue::new();
        schedule(&mut stepped);
        let mut windows = Vec::new();
        for h in (0..=500)
            .step_by(37)
            .map(SimTime::from_millis)
            .chain([SimTime::MAX])
        {
            while let Some(ev) = stepped.pop_at_or_before(h) {
                windows.push(ev);
            }
        }
        assert_eq!(one_go, windows);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        let (t, _) = q.pop().unwrap();
        q.schedule(t + SimDuration::from_secs(1), 2);
        q.schedule(t + SimDuration::from_millis(500), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn handle_reuse_cannot_cancel_the_new_tenant() {
        // `a` pops, freeing its slot; `b` reuses it. The dead handle `a`
        // must not be able to cancel (or report as) `b`.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        let b = q.schedule(SimTime::from_millis(2), "b");
        assert!(!q.is_scheduled(a));
        assert!(q.is_scheduled(b));
        q.cancel(a);
        assert_eq!(q.len(), 1, "dead handle must not evict the reused slot");
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), "b")));
    }

    #[test]
    fn reschedule_moves_event_in_both_directions() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        q.schedule(SimTime::from_millis(30), "c");
        // Increase-key: a jumps past both.
        q.reschedule(a, SimTime::from_millis(40));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(20)));
        // Decrease-key: a comes back to the front.
        q.reschedule(a, SimTime::from_millis(5));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn reschedule_takes_fresh_fifo_position_at_equal_time() {
        // Rescheduling onto an occupied timestamp must behave exactly like
        // cancel + schedule: the moved event fires after events that were
        // already scheduled there.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "moved");
        q.schedule(SimTime::from_millis(5), "first");
        q.reschedule(a, SimTime::from_millis(5));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "moved"]);
    }

    #[test]
    fn reschedule_keeps_handle_valid() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), ());
        for k in 2..100u64 {
            q.reschedule(a, SimTime::from_millis(k));
            assert!(q.is_scheduled(a));
            assert_eq!(q.len(), 1);
        }
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "dead event")]
    fn reschedule_after_pop_panics() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), ());
        q.pop();
        q.reschedule(a, SimTime::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "cannot reschedule into the past")]
    fn reschedule_into_the_past_panics() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(10), ());
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.reschedule(a, SimTime::from_secs(1));
    }

    #[test]
    fn reschedule_burst_keeps_len_bounded_by_live_events() {
        // Regression for the invoker tick pattern: the lazy queue forced
        // callers to schedule a fresh generation-stamped tick on every
        // change (no true cancel), so a burst of N reschedules grew the
        // heap to N dead entries. With in-place reschedule the queue never
        // holds more than the live events.
        let mut q = EventQueue::new();
        let live = 10u64;
        for i in 0..live {
            q.schedule(SimTime::from_secs(1000 + i), i);
        }
        let tick = q.schedule(SimTime::from_millis(1), u64::MAX);
        for k in 0..5000u64 {
            q.reschedule(tick, SimTime::from_millis(2 + k));
            assert_eq!(q.len() as u64, live + 1, "no stale entries may pile up");
        }
        q.cancel(tick);
        assert_eq!(q.len() as u64, live);
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..live).collect::<Vec<_>>());
    }

    #[test]
    fn heavy_interleaving_maintains_heap_order() {
        // Deterministic stress: schedule/cancel/reschedule/pop driven by a
        // cheap LCG, validated by ordered pops at the end.
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            match rng() % 4 {
                0 | 1 => {
                    let t = q.now() + SimDuration::from_millis(rng() % 50);
                    handles.push(q.schedule(t, ()));
                }
                2 => {
                    if !handles.is_empty() {
                        let h = handles[(rng() % handles.len() as u64) as usize];
                        if q.is_scheduled(h) {
                            q.reschedule(h, q.now() + SimDuration::from_millis(rng() % 50));
                        }
                    }
                }
                _ => {
                    if rng() % 2 == 0 {
                        if !handles.is_empty() {
                            let h = handles[(rng() % handles.len() as u64) as usize];
                            q.cancel(h);
                        }
                    } else {
                        q.pop();
                    }
                }
            }
        }
        let mut last = q.now();
        while let Some((t, ())) = q.pop() {
            assert!(t >= last, "pops must stay time-ordered");
            last = t;
        }
        assert_eq!(q.len(), 0);
    }
}
