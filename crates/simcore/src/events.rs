//! A monotonic event queue for discrete-event simulation.
//!
//! The queue orders events by `(time, sequence number)`; the sequence number
//! is assigned at push time, so events scheduled for the same instant fire in
//! FIFO order. This stable tie-break is what makes simulations reproducible:
//! two runs with the same seed push the same events in the same order and
//! therefore pop them in the same order.
//!
//! Events can be cancelled through [`EventHandle`]s without touching the
//! heap; cancelled entries are lazily discarded on pop.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Hasher for sequence numbers. Sequence numbers are dense consecutive
/// integers, so a multiplicative mix is a perfect hash here and avoids
/// paying SipHash on the schedule/pop hot path (every simulation event
/// passes through the `queued` map).
#[derive(Default)]
struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("SeqHasher only hashes u64 sequence numbers");
    }
    fn write_u64(&mut self, seq: u64) {
        // Fibonacci hashing: spreads consecutive integers across buckets.
        self.0 = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timestamped events with stable FIFO tie-break and lazy
/// cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers still in the heap, mapped to their cancellation
    /// state. Tracking queued-ness makes `cancel` of an already-popped
    /// event a true no-op — without it, a stale entry would make `len()`
    /// undercount (and underflow in debug builds).
    queued: HashMap<u64, bool, BuildHasherDefault<SeqHasher>>,
    /// Number of entries in the heap that are cancelled but not yet lazily
    /// discarded.
    cancelled_in_heap: usize,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            queued: HashMap::default(),
            cancelled_in_heap: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled_in_heap
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// Panics if `time` is before the current clock — scheduling into the
    /// past is always a simulation bug and silently reordering it would
    /// corrupt causality.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventHandle {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={} event={}",
            self.now,
            time
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.queued.insert(seq, false);
        EventHandle(seq)
    }

    /// Cancel a previously scheduled event. Idempotent; cancelling an
    /// already-popped event has no effect.
    pub fn cancel(&mut self, handle: EventHandle) {
        if let Some(cancelled) = self.queued.get_mut(&handle.0) {
            if !*cancelled {
                *cancelled = true;
                self.cancelled_in_heap += 1;
            }
        }
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.queued.remove(&entry.seq) == Some(true) {
                self.cancelled_in_heap -= 1;
                continue;
            }
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the earliest live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Discard cancelled heads so peek reflects the next live event.
        while let Some(entry) = self.heap.peek() {
            if self.queued.get(&entry.seq) == Some(&true) {
                let seq = entry.seq;
                self.heap.pop();
                self.queued.remove(&seq);
                self.cancelled_in_heap -= 1;
            } else {
                return Some(entry.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 1);
        q.pop();
        q.schedule(SimTime::from_secs(5), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), 2)));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let _a = q.schedule(SimTime::from_millis(1), "a");
        let b = q.schedule(SimTime::from_millis(2), "b");
        let _c = q.schedule(SimTime::from_millis(3), "c");
        q.cancel(b);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "c"]);
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_pop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        q.cancel(a);
        q.cancel(a);
        assert!(q.pop().is_none());
        let b = q.schedule(SimTime::from_millis(2), "b");
        assert!(q.pop().is_some());
        q.cancel(b); // already popped: no effect
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn cancel_after_pop_does_not_underflow_len() {
        // Regression: cancelling an already-popped event used to leave a
        // stale entry in the cancelled set, so `heap.len() - cancelled.len()`
        // underflowed (panicking in debug builds) once the queue drained.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        q.cancel(a); // already popped: must be a true no-op
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // The queue keeps working normally afterwards.
        q.schedule(SimTime::from_millis(2), "b");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), "b")));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn cancel_popped_then_cancel_queued_keeps_len_exact() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), ());
        let b = q.schedule(SimTime::from_millis(2), ());
        let c = q.schedule(SimTime::from_millis(3), ());
        q.pop();
        q.cancel(a); // popped: no-op
        q.cancel(b); // queued: counts
        q.cancel(b); // idempotent
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        q.cancel(c);
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), ())));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        let (t, _) = q.pop().unwrap();
        q.schedule(t + SimDuration::from_secs(1), 2);
        q.schedule(t + SimDuration::from_millis(500), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.is_empty());
    }
}
