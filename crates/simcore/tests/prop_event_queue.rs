//! Differential property test of the indexed event heap.
//!
//! The reference model is a naive `Vec` scan: schedule pushes `(time, seq,
//! id)`, cancel retains, reschedule rewrites time and takes a fresh
//! sequence number, pop scans for the minimum `(time, seq)`. Every
//! operation's observable effect (pop results, length, handle liveness,
//! peek) must match the indexed heap exactly — including the FIFO
//! tie-break at equal timestamps, which the tiny time range below forces
//! constantly.

use faas_simcore::events::EventQueue;
use faas_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// One operation of the random interleaving. Indices are resolved modulo
/// the number of handles issued so far.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + dt` milliseconds.
    Schedule(u64),
    /// Cancel the k-th issued handle (dead handles exercise the no-op path).
    Cancel(usize),
    /// Reschedule the k-th issued handle to `now + dt` ms, if still live.
    Reschedule(usize, u64),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // dt in 0..6 ms over hundreds of events forces equal-timestamp ties.
    prop_oneof![
        (0u64..6).prop_map(Op::Schedule),
        (0usize..512).prop_map(Op::Cancel),
        ((0usize..512), (0u64..6)).prop_map(|(k, dt)| Op::Reschedule(k, dt)),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

/// The executable specification: a flat vector scanned on every pop.
#[derive(Default)]
struct VecModel {
    live: Vec<(SimTime, u64, usize)>,
    next_seq: u64,
    now: SimTime,
}

impl VecModel {
    fn schedule(&mut self, time: SimTime, id: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.push((time, seq, id));
    }

    fn cancel(&mut self, id: usize) {
        self.live.retain(|&(_, _, i)| i != id);
    }

    fn is_live(&self, id: usize) -> bool {
        self.live.iter().any(|&(_, _, i)| i == id)
    }

    fn reschedule(&mut self, id: usize, time: SimTime) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = self
            .live
            .iter_mut()
            .find(|(_, _, i)| *i == id)
            .expect("reschedule of a dead id");
        entry.0 = time;
        entry.1 = seq;
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.live.iter().map(|&(t, _, _)| t).min()
    }

    fn pop(&mut self) -> Option<(SimTime, usize)> {
        let best = self
            .live
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, s, _))| (t, s))
            .map(|(k, _)| k)?;
        let (time, _, id) = self.live.swap_remove(best);
        self.now = time;
        Some((time, id))
    }
}

proptest! {
    /// Arbitrary schedule/cancel/reschedule/pop interleavings agree with
    /// the Vec-scan model on every observable.
    #[test]
    fn indexed_heap_matches_vec_scan_model(
        ops in prop::collection::vec(op_strategy(), 1..400)
    ) {
        let mut q = EventQueue::new();
        let mut model = VecModel::default();
        // Every handle ever issued, with its model id (= issue index).
        let mut handles = Vec::new();
        for op in ops {
            match op {
                Op::Schedule(dt) => {
                    let t = q.now() + SimDuration::from_millis(dt);
                    let id = handles.len();
                    handles.push(q.schedule(t, id));
                    model.schedule(t, id);
                }
                Op::Cancel(k) if !handles.is_empty() => {
                    let id = k % handles.len();
                    q.cancel(handles[id]);
                    model.cancel(id);
                }
                Op::Reschedule(k, dt) if !handles.is_empty() => {
                    let id = k % handles.len();
                    prop_assert_eq!(q.is_scheduled(handles[id]), model.is_live(id));
                    if q.is_scheduled(handles[id]) {
                        let t = q.now() + SimDuration::from_millis(dt);
                        q.reschedule(handles[id], t);
                        model.reschedule(id, t);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(q.pop(), model.pop());
                    prop_assert_eq!(q.now(), model.now);
                }
                Op::Cancel(_) | Op::Reschedule(_, _) => {}
            }
            prop_assert_eq!(q.len(), model.live.len());
            prop_assert_eq!(q.peek_time(), model.peek_time());
        }
        // Drain: the full remaining pop sequence (FIFO ties included) must
        // agree element for element.
        loop {
            let (got, want) = (q.pop(), model.pop());
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
        for (id, &h) in handles.iter().enumerate() {
            prop_assert!(!q.is_scheduled(h), "drained queue kept handle {id} live");
        }
    }

    /// Equal-timestamp storms pop in exact issue order, with rescheduled
    /// events taking their *new* FIFO position.
    #[test]
    fn fifo_tie_break_survives_reschedules(
        moved in prop::collection::vec(0usize..64, 1..32)
    ) {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        let mut handles = Vec::new();
        for i in 0..64usize {
            handles.push(q.schedule(t, i));
        }
        // Rescheduling to the same timestamp re-queues behind the rest —
        // exactly what cancel + schedule would do.
        let mut order: Vec<usize> = (0..64).collect();
        for &k in &moved {
            q.reschedule(handles[k], t);
            order.retain(|&i| i != k);
            order.push(k);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
        prop_assert_eq!(popped, order);
    }
}
