//! Property tests of the simulation kernel.

use faas_simcore::dist::{LogNormal, Sampler};
use faas_simcore::events::EventQueue;
use faas_simcore::rng::Xoshiro256;
use faas_simcore::stats::Welford;
use faas_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// The event queue pops in exact (time, insertion) order whatever the
    /// schedule order, including cancellations.
    #[test]
    fn event_queue_total_order(
        events in prop::collection::vec((0u64..10_000, any::<bool>()), 1..300)
    ) {
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut handles = Vec::new();
        for (i, &(t, keep)) in events.iter().enumerate() {
            let h = q.schedule(SimTime::from_millis(t), i);
            handles.push(h);
            if keep {
                expected.push((t, i));
            } else {
                q.cancel(h);
            }
        }
        expected.sort_by_key(|&(t, i)| (t, i));
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, i)| (t.as_nanos() / 1_000_000, i)))
                .collect();
        prop_assert_eq!(got, expected);
    }

    /// Clock monotonicity: pops never go back in time.
    #[test]
    fn event_queue_clock_is_monotone(
        times in prop::collection::vec(0u64..1_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_millis(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last);
            prop_assert_eq!(q.now(), t);
            last = t;
        }
    }

    /// Log-normal sample quantiles converge to the analytic quantiles.
    #[test]
    fn lognormal_samples_match_quantile_function(
        median_ms in 10.0f64..10_000.0,
        spread in 1.0f64..3.0,
        seed in any::<u64>()
    ) {
        let ln = LogNormal::from_median_p95(median_ms, median_ms * spread);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut samples: Vec<f64> = (0..4000).map(|_| ln.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let emp_median = samples[2000];
        prop_assert!((emp_median / median_ms - 1.0).abs() < 0.15,
            "median {emp_median} vs {median_ms}");
        let emp_p95 = samples[3800];
        prop_assert!((emp_p95 / ln.quantile(0.95) - 1.0).abs() < 0.25);
    }

    /// Welford merging is associative with sequential accumulation.
    #[test]
    fn welford_merge_any_split(
        data in prop::collection::vec(-1e3f64..1e3, 2..100),
        split in any::<prop::sample::Index>()
    ) {
        let cut = split.index(data.len());
        let mut whole = Welford::new();
        data.iter().for_each(|&x| whole.push(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        data[..cut].iter().for_each(|&x| a.push(x));
        data[cut..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4);
    }

    /// Bounded integer generation is always in range.
    #[test]
    fn below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Duration arithmetic never wraps.
    #[test]
    fn duration_arithmetic_saturates(a in any::<u64>(), b in any::<u64>()) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!(da.saturating_add(db).as_nanos(), a.saturating_add(b));
        prop_assert_eq!(da.saturating_sub(db).as_nanos(), a.saturating_sub(b));
        let t = SimTime::from_nanos(a);
        prop_assert!(t + db >= t);
    }
}
