//! Property tests of the scheduling policies against abstract models.

use faas_core::{PendingQueue, Policy, SchedulerConfig, SchedulerState};
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::sebs::FuncId;
use proptest::prelude::*;

proptest! {
    /// EECT's starvation bound, stated abstractly (§IV): for any history,
    /// if call j is received after `priority(i)` (i.e. after r'(i)+E(p(i))),
    /// then j's priority exceeds i's — j can never overtake i.
    #[test]
    fn eect_bound_holds_for_any_history(
        history in prop::collection::vec((0u16..5, 1u64..20_000), 0..120),
        r_i_ms in 0u64..100_000,
        func_i in 0u16..5,
        func_j in 0u16..5,
        extra_ms in 1u64..1_000_000
    ) {
        let mut s = SchedulerState::new(5, SchedulerConfig::paper(Policy::Eect));
        let mut t = SimTime::ZERO;
        for &(f, p_ms) in &history {
            t += SimDuration::from_millis(1);
            s.on_complete(FuncId(f), SimDuration::from_millis(p_ms), t);
        }
        let r_i = t + SimDuration::from_millis(r_i_ms);
        let p_i = s.on_receive(FuncId(func_i), r_i);
        // j arrives strictly after i's expected completion time.
        let r_j = SimTime::from_secs_f64(p_i) + SimDuration::from_millis(extra_ms);
        prop_assume!(r_j > r_i);
        let p_j = s.on_receive(FuncId(func_j), r_j);
        prop_assert!(p_j > p_i, "j={p_j} must exceed i={p_i}");
    }

    /// RECT priorities never decrease across successive calls of the same
    /// function (the paper's monotonicity argument for starvation-freedom),
    /// as long as the estimate is stable.
    #[test]
    fn rect_is_monotone_per_function_with_stable_estimates(
        p_ms in 1u64..10_000,
        gaps in prop::collection::vec(1u64..60_000, 1..50)
    ) {
        let mut s = SchedulerState::new(1, SchedulerConfig::paper(Policy::Rect));
        // Stable estimate: all completions have the same processing time.
        for k in 0..10u64 {
            s.on_complete(FuncId(0), SimDuration::from_millis(p_ms), SimTime::from_millis(k));
        }
        let mut t = SimTime::from_secs(1);
        let mut last = f64::NEG_INFINITY;
        for &gap in &gaps {
            t += SimDuration::from_millis(gap);
            let p = s.on_receive(FuncId(0), t);
            prop_assert!(p >= last - 1e-9, "RECT must be monotone: {p} < {last}");
            last = p;
        }
    }

    /// SEPT ranks any two functions by their current estimates, for any
    /// completion history.
    #[test]
    fn sept_ranks_by_estimate(
        history in prop::collection::vec((0u16..3, 1u64..50_000), 1..100)
    ) {
        let mut s = SchedulerState::new(3, SchedulerConfig::paper(Policy::Sept));
        let mut t = SimTime::ZERO;
        for &(f, p_ms) in &history {
            t += SimDuration::from_millis(1);
            s.on_complete(FuncId(f), SimDuration::from_millis(p_ms), t);
        }
        let now = t + SimDuration::from_secs(1);
        let mut prios = Vec::new();
        for f in 0..3u16 {
            prios.push((s.estimate_secs(FuncId(f)), s.on_receive(FuncId(f), now)));
        }
        for &(ea, pa) in &prios {
            for &(eb, pb) in &prios {
                if ea < eb {
                    prop_assert!(pa < pb + 1e-12);
                }
            }
        }
    }

    /// The pending queue sorted with FIFO priorities reproduces arrival
    /// order exactly (FIFO-as-a-policy correctness, end to end).
    #[test]
    fn fifo_policy_through_queue_preserves_arrival_order(
        arrivals in prop::collection::vec((0u16..11, 1u64..5_000), 1..200)
    ) {
        let mut s = SchedulerState::new(11, SchedulerConfig::paper(Policy::Fifo));
        let mut q = PendingQueue::new();
        let mut t = SimTime::ZERO;
        for (i, &(f, gap)) in arrivals.iter().enumerate() {
            t += SimDuration::from_millis(gap);
            let prio = s.on_receive(FuncId(f), t);
            q.push(prio, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        prop_assert_eq!(order, (0..arrivals.len()).collect::<Vec<_>>());
    }

    /// Fair-Choice priorities are bounded by window-count x estimate, and
    /// zero for unknown functions, for any interleaving.
    #[test]
    fn fc_priority_bounds(
        events in prop::collection::vec((0u16..4, 1u64..10_000, any::<bool>()), 1..150)
    ) {
        let mut s = SchedulerState::new(4, SchedulerConfig::paper(Policy::FairChoice));
        let mut t = SimTime::ZERO;
        let mut arrivals_in_window = [0usize; 4];
        for &(f, dt, complete) in &events {
            t += SimDuration::from_millis(dt);
            if complete {
                s.on_complete(FuncId(f), SimDuration::from_millis(dt), t);
            } else {
                // Count all arrivals ever as a loose upper bound on the
                // windowed count.
                arrivals_in_window[f as usize] += 1;
                let p = s.on_receive(FuncId(f), t);
                let bound = arrivals_in_window[f as usize] as f64
                    * s.estimate_secs(FuncId(f)).max(0.0);
                prop_assert!(p <= bound + 1e-9, "priority {p} above bound {bound}");
                prop_assert!(p >= 0.0);
            }
        }
    }
}
