//! Processing-time estimation from recent history.
//!
//! §IV: "we estimate the expected processing time of an action by the
//! average processing time of at most 10 recent executions of the same
//! action. It has been proven empirically that such a number is sufficient
//! \[18\]." And: "if a function has never been executed, we set its estimated
//! execution time to 0."
//!
//! The estimate is maintained per function in a fixed-capacity ring buffer
//! with an incremental sum, so both recording and querying are O(1).

use faas_simcore::time::SimDuration;
use faas_workload::sebs::FuncId;

/// Ring buffer of the most recent processing times of one function.
#[derive(Debug, Clone)]
pub struct RecentWindow {
    buf: Vec<f64>,
    capacity: usize,
    next: usize,
    filled: usize,
    sum: f64,
}

impl RecentWindow {
    /// Create a window keeping at most `capacity` observations.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        RecentWindow {
            buf: vec![0.0; capacity],
            capacity,
            next: 0,
            filled: 0,
            sum: 0.0,
        }
    }

    /// Record one observation (seconds), evicting the oldest if full.
    pub fn record(&mut self, secs: f64) {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "invalid observation {secs}"
        );
        if self.filled == self.capacity {
            self.sum -= self.buf[self.next];
        } else {
            self.filled += 1;
        }
        self.buf[self.next] = secs;
        self.sum += secs;
        self.next = (self.next + 1) % self.capacity;
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True when no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Mean of the stored observations; 0 when empty (the paper's
    /// never-executed convention).
    pub fn mean(&self) -> f64 {
        if self.filled == 0 {
            0.0
        } else {
            // Guard against tiny negative drift from incremental updates.
            (self.sum / self.filled as f64).max(0.0)
        }
    }

    /// Recompute the sum from scratch (used by tests to bound drift).
    pub fn exact_mean(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        let take = self.filled.min(self.capacity);
        self.buf
            .iter()
            .take(if self.filled < self.capacity {
                self.filled
            } else {
                take
            })
            .sum::<f64>()
            / self.filled as f64
    }
}

/// Per-function processing-time estimator.
#[derive(Debug, Clone)]
pub struct ProcTimeEstimator {
    windows: Vec<RecentWindow>,
    window_size: usize,
}

impl ProcTimeEstimator {
    /// Create an estimator for `num_functions` functions with the paper's
    /// default window of 10 recent executions.
    pub fn new(num_functions: usize) -> Self {
        Self::with_window(num_functions, 10)
    }

    /// Create an estimator with an explicit window size (used by the
    /// window-size ablation).
    pub fn with_window(num_functions: usize, window_size: usize) -> Self {
        ProcTimeEstimator {
            windows: (0..num_functions)
                .map(|_| RecentWindow::new(window_size))
                .collect(),
            window_size,
        }
    }

    /// The configured window size.
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// Record a finished execution of `func`.
    pub fn record(&mut self, func: FuncId, processing: SimDuration) {
        self.windows[func.index()].record(processing.as_secs_f64());
    }

    /// Expected processing time `E(p)` of `func`, seconds. Zero when the
    /// function has never been executed on this node.
    pub fn estimate_secs(&self, func: FuncId) -> f64 {
        self.windows[func.index()].mean()
    }

    /// `E(p)` as a duration.
    pub fn estimate(&self, func: FuncId) -> SimDuration {
        SimDuration::from_secs_f64(self.estimate_secs(func))
    }

    /// Number of recorded executions of `func` (capped at the window size).
    pub fn observations(&self, func: FuncId) -> usize {
        self.windows[func.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimate_is_zero() {
        let est = ProcTimeEstimator::new(3);
        assert_eq!(est.estimate_secs(FuncId(0)), 0.0);
        assert_eq!(est.estimate(FuncId(2)), SimDuration::ZERO);
        assert_eq!(est.observations(FuncId(1)), 0);
    }

    #[test]
    fn mean_of_partial_window() {
        let mut est = ProcTimeEstimator::new(1);
        est.record(FuncId(0), SimDuration::from_secs(1));
        est.record(FuncId(0), SimDuration::from_secs(3));
        assert!((est.estimate_secs(FuncId(0)) - 2.0).abs() < 1e-12);
        assert_eq!(est.observations(FuncId(0)), 2);
    }

    #[test]
    fn window_evicts_oldest_beyond_ten() {
        let mut est = ProcTimeEstimator::new(1);
        // Ten 1-second runs, then ten 2-second runs: estimate must converge
        // to exactly 2.0 once the old observations are evicted.
        for _ in 0..10 {
            est.record(FuncId(0), SimDuration::from_secs(1));
        }
        assert!((est.estimate_secs(FuncId(0)) - 1.0).abs() < 1e-12);
        for _ in 0..10 {
            est.record(FuncId(0), SimDuration::from_secs(2));
        }
        assert!((est.estimate_secs(FuncId(0)) - 2.0).abs() < 1e-9);
        assert_eq!(est.observations(FuncId(0)), 10);
    }

    #[test]
    fn sliding_mean_mid_eviction() {
        let mut w = RecentWindow::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.record(v);
        }
        // Window now holds [2, 3, 4].
        assert!((w.mean() - 3.0).abs() < 1e-12);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn functions_are_independent() {
        let mut est = ProcTimeEstimator::new(2);
        est.record(FuncId(0), SimDuration::from_secs(5));
        assert_eq!(est.estimate_secs(FuncId(1)), 0.0);
        assert!((est.estimate_secs(FuncId(0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn custom_window_size() {
        let mut est = ProcTimeEstimator::with_window(1, 2);
        assert_eq!(est.window_size(), 2);
        est.record(FuncId(0), SimDuration::from_secs(1));
        est.record(FuncId(0), SimDuration::from_secs(1));
        est.record(FuncId(0), SimDuration::from_secs(4));
        // Window of 2: [1, 4] -> 2.5.
        assert!((est.estimate_secs(FuncId(0)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn incremental_sum_does_not_drift() {
        let mut w = RecentWindow::new(10);
        for i in 0..100_000 {
            w.record(0.001 + (i % 997) as f64 * 1e-6);
        }
        assert!((w.mean() - w.exact_mean()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        RecentWindow::new(0);
    }

    #[test]
    #[should_panic(expected = "invalid observation")]
    fn nan_observation_rejected() {
        RecentWindow::new(3).record(f64::NAN);
    }
}
