//! The scheduler state machine embedded in the invoker.
//!
//! Combines the estimator, the arrival history and the policy into the two
//! hooks the invoker pipeline calls (§IV-B):
//!
//! * [`SchedulerState::on_receive`] — when a request is pulled from Kafka:
//!   record the arrival and compute the call's (immutable) priority;
//! * [`SchedulerState::on_complete`] — when the container returns the
//!   result: store the measured processing time in the per-function buffer.

use crate::config::{FcCountMode, SchedulerConfig};
use crate::estimator::ProcTimeEstimator;
use crate::history::CallHistory;
use crate::policy::{priority, Policy, PriorityInputs};
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::sebs::FuncId;

/// Per-node scheduler state.
#[derive(Debug, Clone)]
pub struct SchedulerState {
    config: SchedulerConfig,
    estimator: ProcTimeEstimator,
    history: CallHistory,
}

impl SchedulerState {
    /// Create the state for a node hosting `num_functions` functions.
    pub fn new(num_functions: usize, config: SchedulerConfig) -> Self {
        SchedulerState {
            config,
            estimator: ProcTimeEstimator::with_window(num_functions, config.estimate_window),
            history: CallHistory::new(num_functions, config.fc_window),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> SchedulerConfig {
        self.config
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.config.policy
    }

    /// Read-only access to the estimator (diagnostics, tests).
    pub fn estimator(&self) -> &ProcTimeEstimator {
        &self.estimator
    }

    /// Handle a request of `func` received by the invoker at `received`
    /// (`r'(i)`), returning its priority.
    ///
    /// Order matters: RECT's `r̄(i)` is the receive time of the *previous*
    /// call, so it is read before this arrival is recorded; Fair-Choice's
    /// arrival count is read after (it includes the current call).
    pub fn on_receive(&mut self, func: FuncId, received: SimTime) -> f64 {
        let prev_received = self.history.prev_arrival(func);
        self.history.note_arrival(func, received);
        let recent_count = match self.config.fc_count_mode {
            FcCountMode::Arrivals => self.history.count_recent(func, received),
            FcCountMode::Completions => self.history.count_recent_completions(func, received),
        };
        let inputs = PriorityInputs {
            received,
            expected_processing: self.estimator.estimate_secs(func),
            prev_received,
            recent_count,
        };
        priority(self.config.policy, &inputs)
    }

    /// Record the measured processing time of a call completed at `now`.
    pub fn on_complete(&mut self, func: FuncId, processing: SimDuration, now: SimTime) {
        self.estimator.record(func, processing);
        self.history.note_completion(func, now);
    }

    /// Current `E(p)` of a function, seconds.
    pub fn estimate_secs(&self, func: FuncId) -> f64 {
        self.estimator.estimate_secs(func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(policy: Policy) -> SchedulerState {
        SchedulerState::new(3, SchedulerConfig::paper(policy))
    }

    #[test]
    fn fifo_priorities_increase_with_time() {
        let mut s = state(Policy::Fifo);
        let p1 = s.on_receive(FuncId(0), SimTime::from_secs(1));
        let p2 = s.on_receive(FuncId(1), SimTime::from_secs(2));
        assert!(p1 < p2);
    }

    #[test]
    fn sept_uses_learned_estimates() {
        let mut s = state(Policy::Sept);
        s.on_complete(FuncId(0), SimDuration::from_secs(8), SimTime::ZERO);
        s.on_complete(FuncId(1), SimDuration::from_millis(12), SimTime::ZERO);
        let long = s.on_receive(FuncId(0), SimTime::from_secs(10));
        let short = s.on_receive(FuncId(1), SimTime::from_secs(10));
        assert!(short < long);
    }

    #[test]
    fn estimates_update_with_completions() {
        let mut s = state(Policy::Sept);
        assert_eq!(s.estimate_secs(FuncId(0)), 0.0);
        s.on_complete(FuncId(0), SimDuration::from_secs(2), SimTime::ZERO);
        s.on_complete(FuncId(0), SimDuration::from_secs(4), SimTime::ZERO);
        assert!((s.estimate_secs(FuncId(0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rect_uses_previous_arrival_not_current() {
        let mut s = state(Policy::Rect);
        s.on_complete(FuncId(0), SimDuration::from_secs(2), SimTime::ZERO);
        // First call: falls back to r' + E = 10 + 2.
        let first = s.on_receive(FuncId(0), SimTime::from_secs(10));
        assert!((first - 12.0).abs() < 1e-9);
        // Second call at t=20: r̄ = 10, priority = 10 + 2 = 12 again.
        let second = s.on_receive(FuncId(0), SimTime::from_secs(20));
        assert!((second - 12.0).abs() < 1e-9);
    }

    #[test]
    fn rect_priority_is_monotone_over_function_calls() {
        // §IV: "the value of r̄(i) is increasing in time", which is what
        // prevents starvation.
        let mut s = state(Policy::Rect);
        s.on_complete(FuncId(0), SimDuration::from_secs(1), SimTime::ZERO);
        let mut last = f64::NEG_INFINITY;
        for t in [5u64, 8, 13, 21, 34] {
            let p = s.on_receive(FuncId(0), SimTime::from_secs(t));
            assert!(p >= last, "RECT priority must not decrease");
            last = p;
        }
    }

    #[test]
    fn fc_default_counts_arrivals_including_current() {
        let mut s = state(Policy::FairChoice);
        s.on_complete(FuncId(0), SimDuration::from_secs(1), SimTime::ZERO);
        // First arrival: count = 1 -> priority = E(p).
        let p1 = s.on_receive(FuncId(0), SimTime::from_secs(1));
        assert!((p1 - 1.0).abs() < 1e-9);
        // Second arrival shortly after: count = 2 -> 2 E(p).
        let p2 = s.on_receive(FuncId(0), SimTime::from_secs(2));
        assert!((p2 - 2.0).abs() < 1e-9);
        // 120 s later the 60 s window has emptied again.
        let p3 = s.on_receive(FuncId(0), SimTime::from_secs(125));
        assert!((p3 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fc_completion_mode_counts_concluded_calls_only() {
        let mut cfg = SchedulerConfig::paper(Policy::FairChoice);
        cfg.fc_count_mode = crate::config::FcCountMode::Completions;
        let mut s = SchedulerState::new(3, cfg);
        s.on_complete(FuncId(0), SimDuration::from_secs(1), SimTime::from_secs(1));
        // One concluded call: priority = 1 x E(p), regardless of arrivals.
        let p1 = s.on_receive(FuncId(0), SimTime::from_secs(2));
        assert!((p1 - 1.0).abs() < 1e-9);
        let p2 = s.on_receive(FuncId(0), SimTime::from_secs(3));
        assert!((p2 - 1.0).abs() < 1e-9, "arrivals must not raise the count");
        s.on_complete(FuncId(0), SimDuration::from_secs(1), SimTime::from_secs(4));
        let p3 = s.on_receive(FuncId(0), SimTime::from_secs(5));
        assert!((p3 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_function_has_zero_priority_under_sept_and_fc() {
        let mut s = state(Policy::Sept);
        assert_eq!(s.on_receive(FuncId(2), SimTime::from_secs(9)), 0.0);
        let mut s = state(Policy::FairChoice);
        assert_eq!(s.on_receive(FuncId(2), SimTime::from_secs(9)), 0.0);
    }

    #[test]
    fn eect_priority_exceeds_receive_time() {
        let mut s = state(Policy::Eect);
        s.on_complete(FuncId(0), SimDuration::from_secs(3), SimTime::ZERO);
        let p = s.on_receive(FuncId(0), SimTime::from_secs(7));
        assert!((p - 10.0).abs() < 1e-9);
    }
}
