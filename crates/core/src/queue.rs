//! The pending-call priority queue.
//!
//! Replaces the invoker's simple FIFO queue (§IV-B: "We also replace the
//! invoker's simple queue by a priority queue"). Lower priority values run
//! first; ties break in arrival order, which both keeps FIFO-as-a-policy
//! exact and makes every policy deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Total-ordered wrapper over an `f64` priority plus an arrival sequence
/// number.
#[derive(Debug, Clone, Copy)]
struct Key {
    priority: f64,
    seq: u64,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.priority.total_cmp(&other.priority) == Ordering::Equal && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

struct Entry<T> {
    key: Key,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the minimum key on top.
        other.key.cmp(&self.key)
    }
}

/// Min-priority queue of pending calls with stable FIFO tie-break.
pub struct PendingQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    peak_len: usize,
}

impl<T> Default for PendingQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PendingQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        PendingQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            peak_len: 0,
        }
    }

    /// Number of pending calls.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest queue length observed (diagnostics).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Insert an item with the given priority. Panics on NaN priorities —
    /// a NaN priority always means a bug in the estimate pipeline.
    pub fn push(&mut self, priority: f64, item: T) {
        assert!(!priority.is_nan(), "NaN priority");
        let key = Key {
            priority,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Entry { key, item });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Remove and return the lowest-priority item.
    pub fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|e| e.item)
    }

    /// Priority of the item that would pop next.
    pub fn peek_priority(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key.priority)
    }

    /// Drain everything in priority order (used at simulation teardown).
    pub fn drain_ordered(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_lowest_priority_first() {
        let mut q = PendingQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = PendingQueue::new();
        for i in 0..50 {
            q.push(7.0, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn fifo_policy_via_equal_priorities_is_exact() {
        // Using receive time as priority with equal times degenerates to
        // insertion order — the FIFO policy contract.
        let mut q = PendingQueue::new();
        q.push(1.0, "first");
        q.push(1.0, "second");
        q.push(0.5, "urgent");
        assert_eq!(q.pop(), Some("urgent"));
        assert_eq!(q.pop(), Some("first"));
        assert_eq!(q.pop(), Some("second"));
    }

    #[test]
    fn zero_priorities_run_first() {
        // Never-executed functions have E(p)=0 under SEPT: they must come
        // out ahead of everything with positive estimates.
        let mut q = PendingQueue::new();
        q.push(0.5, "known");
        q.push(0.0, "unknown");
        assert_eq!(q.pop(), Some("unknown"));
    }

    #[test]
    fn negative_and_infinite_priorities_are_total_ordered() {
        let mut q = PendingQueue::new();
        q.push(f64::INFINITY, "inf");
        q.push(-1.0, "neg");
        q.push(0.0, "zero");
        assert_eq!(q.pop(), Some("neg"));
        assert_eq!(q.pop(), Some("zero"));
        assert_eq!(q.pop(), Some("inf"));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_priority_panics() {
        PendingQueue::new().push(f64::NAN, ());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = PendingQueue::new();
        q.push(2.0, "b");
        q.push(1.0, "a");
        assert_eq!(q.peek_priority(), Some(1.0));
        q.pop();
        assert_eq!(q.peek_priority(), Some(2.0));
    }

    #[test]
    fn peak_len_tracks_high_water() {
        let mut q = PendingQueue::new();
        q.push(1.0, ());
        q.push(2.0, ());
        q.pop();
        q.push(3.0, ());
        assert_eq!(q.peak_len(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_ordered_returns_priority_order() {
        let mut q = PendingQueue::new();
        for p in [5.0, 1.0, 3.0, 2.0, 4.0] {
            q.push(p, p as i32);
        }
        assert_eq!(q.drain_ordered(), vec![1, 2, 3, 4, 5]);
        assert!(q.is_empty());
    }
}
