//! # faas-core
//!
//! The paper's primary contribution: node-level call-scheduling policies for
//! a FaaS worker, driven by locally gathered historical data.
//!
//! §IV of the paper replaces OpenWhisk's FIFO run queue with a priority
//! queue. The priority of a call is computed **once, on arrival at the
//! invoker**, from three locally observable quantities:
//!
//! * `E(p(i))` — the expected processing time of the function, estimated as
//!   the mean of (at most) the 10 most recent completed executions of the
//!   same function on this node ([`estimator`]);
//! * `r'(i)` — the moment the call was pulled from the queue by the invoker;
//! * the recent call history of the function: the previous call's receive
//!   time (for RECT) and the number of calls in the last `T = 60 s`
//!   (for Fair-Choice) ([`history`]).
//!
//! The five policies (plus the unmodified-OpenWhisk baseline, which is a
//! container-management mode rather than a queue policy) live in [`policy`];
//! the priority queue with deterministic FIFO tie-breaking lives in
//! [`queue`]; [`scheduler`] glues the pieces into the state machine the
//! invoker embeds.

pub mod config;
pub mod estimator;
pub mod history;
pub mod policy;
pub mod queue;
pub mod scheduler;

pub use config::{FcCountMode, SchedulerConfig};
pub use estimator::ProcTimeEstimator;
pub use history::CallHistory;
pub use policy::Policy;
pub use queue::PendingQueue;
pub use scheduler::SchedulerState;
