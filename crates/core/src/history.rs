//! Per-function call-arrival history.
//!
//! Two policies need arrival history in addition to processing-time
//! estimates:
//!
//! * **RECT** uses `r̄(i)` — the moment the *previous* call of the same
//!   function was received;
//! * **Fair-Choice** uses `#(f(i), −T)` — the number of *recently
//!   concluded* calls of the function (§IV: "we prioritize actions based on
//!   the estimation of the total processing time of the recently concluded
//!   calls of the same function"), over the last `T = 60 s`.
//!
//! Arrivals are recorded at `r'(i)` (invoker receive time, logged when the
//! request is pulled from Kafka, §IV-B); completions are recorded when the
//! invoker receives the container's response. Counting *concluded* rather
//! than received calls is what keeps a backlogged function's priority low —
//! the mechanism behind Fair-Choice's fairness in Fig. 5.

use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::sebs::FuncId;
use std::collections::VecDeque;

/// Sliding-window arrival history for every function on the node.
#[derive(Debug, Clone)]
pub struct CallHistory {
    window: SimDuration,
    arrivals: Vec<VecDeque<SimTime>>,
    completions: Vec<VecDeque<SimTime>>,
    last_arrival: Vec<Option<SimTime>>,
}

impl CallHistory {
    /// Create a history with the Fair-Choice window `T`.
    pub fn new(num_functions: usize, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "FC window must be positive");
        CallHistory {
            window,
            arrivals: (0..num_functions).map(|_| VecDeque::new()).collect(),
            completions: (0..num_functions).map(|_| VecDeque::new()).collect(),
            last_arrival: vec![None; num_functions],
        }
    }

    /// The configured window `T`.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The receive time of the most recent *previous* call of `func`
    /// (`r̄(i)` for a call arriving now). `None` before the first call.
    pub fn prev_arrival(&self, func: FuncId) -> Option<SimTime> {
        self.last_arrival[func.index()]
    }

    /// Record a call of `func` received at `now`. Must be called with
    /// non-decreasing timestamps.
    pub fn note_arrival(&mut self, func: FuncId, now: SimTime) {
        if let Some(prev) = self.last_arrival[func.index()] {
            debug_assert!(now >= prev, "arrivals must be monotone per function");
        }
        self.last_arrival[func.index()] = Some(now);
        let q = &mut self.arrivals[func.index()];
        q.push_back(now);
        Self::expire(q, self.window, now);
    }

    /// Number of calls of `func` received during the last `T` seconds,
    /// including any call recorded exactly at `now`.
    pub fn count_recent(&mut self, func: FuncId, now: SimTime) -> usize {
        let q = &mut self.arrivals[func.index()];
        Self::expire(q, self.window, now);
        q.len()
    }

    /// Record a completed call of `func` at `now`.
    pub fn note_completion(&mut self, func: FuncId, now: SimTime) {
        let q = &mut self.completions[func.index()];
        q.push_back(now);
        Self::expire(q, self.window, now);
    }

    /// Number of calls of `func` *concluded* during the last `T` seconds
    /// (the Fair-Choice count).
    pub fn count_recent_completions(&mut self, func: FuncId, now: SimTime) -> usize {
        let q = &mut self.completions[func.index()];
        Self::expire(q, self.window, now);
        q.len()
    }

    fn expire(q: &mut VecDeque<SimTime>, window: SimDuration, now: SimTime) {
        let cutoff = SimTime::from_nanos(now.as_nanos().saturating_sub(window.as_nanos()));
        while let Some(&front) = q.front() {
            if front < cutoff {
                q.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> CallHistory {
        CallHistory::new(2, SimDuration::from_secs(60))
    }

    #[test]
    fn prev_arrival_starts_none() {
        let h = hist();
        assert_eq!(h.prev_arrival(FuncId(0)), None);
    }

    #[test]
    fn prev_arrival_tracks_latest() {
        let mut h = hist();
        h.note_arrival(FuncId(0), SimTime::from_secs(1));
        h.note_arrival(FuncId(0), SimTime::from_secs(3));
        assert_eq!(h.prev_arrival(FuncId(0)), Some(SimTime::from_secs(3)));
        // Other functions unaffected.
        assert_eq!(h.prev_arrival(FuncId(1)), None);
    }

    #[test]
    fn count_includes_window_only() {
        let mut h = hist();
        h.note_arrival(FuncId(0), SimTime::from_secs(0));
        h.note_arrival(FuncId(0), SimTime::from_secs(30));
        h.note_arrival(FuncId(0), SimTime::from_secs(59));
        assert_eq!(h.count_recent(FuncId(0), SimTime::from_secs(59)), 3);
        // At t=90 the t=0 arrival has expired (90-60=30 cutoff keeps t>=30).
        assert_eq!(h.count_recent(FuncId(0), SimTime::from_secs(90)), 2);
        // At t=200 everything expired.
        assert_eq!(h.count_recent(FuncId(0), SimTime::from_secs(200)), 0);
    }

    #[test]
    fn boundary_arrival_exactly_at_cutoff_is_kept() {
        let mut h = hist();
        h.note_arrival(FuncId(0), SimTime::from_secs(10));
        // now - T == 10: the arrival at exactly the cutoff still counts.
        assert_eq!(h.count_recent(FuncId(0), SimTime::from_secs(70)), 1);
        // One nanosecond later it expires.
        assert_eq!(
            h.count_recent(FuncId(0), SimTime::from_nanos(70 * 1_000_000_000 + 1)),
            0
        );
    }

    #[test]
    fn functions_count_independently() {
        let mut h = hist();
        for i in 0..5 {
            h.note_arrival(FuncId(0), SimTime::from_secs(i));
        }
        h.note_arrival(FuncId(1), SimTime::from_secs(5));
        assert_eq!(h.count_recent(FuncId(0), SimTime::from_secs(5)), 5);
        assert_eq!(h.count_recent(FuncId(1), SimTime::from_secs(5)), 1);
    }

    #[test]
    fn early_times_do_not_underflow() {
        let mut h = hist();
        h.note_arrival(FuncId(0), SimTime::from_secs(1));
        // now < window: cutoff saturates at zero, arrival stays.
        assert_eq!(h.count_recent(FuncId(0), SimTime::from_secs(2)), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        CallHistory::new(1, SimDuration::ZERO);
    }
}
