//! The node-level scheduling policies of §IV.
//!
//! Each policy maps a newly received call to a scalar priority; the pending
//! queue executes lower priorities first. Priorities are computed once, on
//! arrival, and never change ("To simplify implementation, once a priority
//! of a particular action call is computed, it does not change").
//!
//! | Policy | Priority of call `i` |
//! |--------|----------------------|
//! | FIFO   | `r'(i)` |
//! | SEPT   | `E(p(i))` |
//! | EECT   | `r'(i) + E(p(i))` |
//! | RECT   | `r̄(i) + E(p(i))` |
//! | FC     | `#(f(i), −T) · E(p(i))` |
//!
//! where `r'(i)` is the invoker receive time, `E(p(i))` the windowed mean of
//! recent processing times, `r̄(i)` the receive time of the previous call of
//! the same function, and `#(f, −T)` the number of calls of `f` in the last
//! `T` seconds.

use faas_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The queue-sequencing policies evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// First-in first-out: priority is the invoker receive time. This is the
    /// paper's FIFO *variant of the new container-management scheme*, not
    /// the OpenWhisk baseline.
    Fifo,
    /// Shortest expected processing time.
    Sept,
    /// Earliest expected completion time (`r' + E(p)`); starvation-free.
    Eect,
    /// Recent expected completion time (`r̄ + E(p)`); starvation-free.
    Rect,
    /// Fair-Choice: prioritises functions with low recent total resource
    /// consumption (`#(f,−T) · E(p)`).
    FairChoice,
}

impl Policy {
    /// All policies, in the order the paper's figures list them.
    pub const ALL: [Policy; 5] = [
        Policy::Fifo,
        Policy::Sept,
        Policy::Eect,
        Policy::Rect,
        Policy::FairChoice,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "FIFO",
            Policy::Sept => "SEPT",
            Policy::Eect => "EECT",
            Policy::Rect => "RECT",
            Policy::FairChoice => "FC",
        }
    }

    /// Parse the paper's name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Policy> {
        match name.to_ascii_uppercase().as_str() {
            "FIFO" => Some(Policy::Fifo),
            "SEPT" => Some(Policy::Sept),
            "EECT" => Some(Policy::Eect),
            "RECT" => Some(Policy::Rect),
            "FC" | "FAIR-CHOICE" | "FAIRCHOICE" => Some(Policy::FairChoice),
            _ => None,
        }
    }

    /// True for the policies the paper proves starvation-free (§IV).
    pub fn is_starvation_free(self) -> bool {
        matches!(self, Policy::Fifo | Policy::Eect | Policy::Rect)
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a policy may look at when computing a priority.
#[derive(Debug, Clone, Copy)]
pub struct PriorityInputs {
    /// `r'(i)`: the moment the invoker received the call.
    pub received: SimTime,
    /// `E(p(i))` in seconds; 0 for never-executed functions.
    pub expected_processing: f64,
    /// `r̄(i)`: receive time of the previous call of the same function;
    /// `None` if this is the first call.
    pub prev_received: Option<SimTime>,
    /// `#(f(i), −T)`: calls of the function *concluded* in the last `T`
    /// seconds (§IV: "recently concluded calls").
    pub recent_count: usize,
}

/// Compute the scalar priority (lower runs first).
///
/// All priorities are expressed in seconds so that time-based and
/// estimate-based policies share one code path. For RECT's first call of a
/// function, `r̄(i)` falls back to `r'(i)` (equivalently EECT), which is the
/// natural continuous extension — before any history exists the two
/// definitions coincide.
pub fn priority(policy: Policy, inputs: &PriorityInputs) -> f64 {
    let r_prime = inputs.received.as_secs_f64();
    let e_p = inputs.expected_processing;
    debug_assert!(e_p >= 0.0 && e_p.is_finite(), "bad estimate {e_p}");
    match policy {
        Policy::Fifo => r_prime,
        Policy::Sept => e_p,
        Policy::Eect => r_prime + e_p,
        Policy::Rect => {
            let r_bar = inputs
                .prev_received
                .map(|t| t.as_secs_f64())
                .unwrap_or(r_prime);
            r_bar + e_p
        }
        Policy::FairChoice => inputs.recent_count as f64 * e_p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_simcore::time::SimDuration;

    fn inputs(received_s: f64, e_p: f64) -> PriorityInputs {
        PriorityInputs {
            received: SimTime::from_secs_f64(received_s),
            expected_processing: e_p,
            prev_received: None,
            recent_count: 1,
        }
    }

    #[test]
    fn fifo_orders_by_receive_time() {
        let early = priority(Policy::Fifo, &inputs(1.0, 100.0));
        let late = priority(Policy::Fifo, &inputs(2.0, 0.0));
        assert!(early < late, "FIFO must ignore estimates");
    }

    #[test]
    fn sept_orders_by_estimate() {
        let short = priority(Policy::Sept, &inputs(100.0, 0.01));
        let long = priority(Policy::Sept, &inputs(1.0, 8.5));
        assert!(short < long, "SEPT must ignore receive times");
    }

    #[test]
    fn sept_unknown_function_runs_first() {
        // E(p) = 0 for never-executed functions: they jump the queue.
        let unknown = priority(Policy::Sept, &inputs(5.0, 0.0));
        let known = priority(Policy::Sept, &inputs(5.0, 0.001));
        assert!(unknown < known);
    }

    #[test]
    fn eect_is_receive_plus_estimate() {
        let p = priority(Policy::Eect, &inputs(10.0, 2.5));
        assert!((p - 12.5).abs() < 1e-12);
    }

    #[test]
    fn rect_uses_previous_arrival() {
        let mut i = inputs(10.0, 2.0);
        i.prev_received = Some(SimTime::from_secs(4));
        assert!((priority(Policy::Rect, &i) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rect_first_call_falls_back_to_eect() {
        let i = inputs(10.0, 2.0);
        assert_eq!(priority(Policy::Rect, &i), priority(Policy::Eect, &i));
    }

    #[test]
    fn fc_scales_with_recent_count() {
        let mut rare = inputs(0.0, 8.5);
        rare.recent_count = 1;
        let mut frequent = inputs(0.0, 0.012);
        frequent.recent_count = 1000;
        // A single 8.5 s call beats a thousand 12 ms calls (8.5 < 12.0):
        // this is exactly the fairness of Fig. 5.
        assert!(priority(Policy::FairChoice, &rare) < priority(Policy::FairChoice, &frequent));
    }

    #[test]
    fn fc_prefers_cheap_functions_at_equal_frequency() {
        let mut a = inputs(0.0, 0.012);
        a.recent_count = 50;
        let mut b = inputs(0.0, 8.5);
        b.recent_count = 50;
        assert!(priority(Policy::FairChoice, &a) < priority(Policy::FairChoice, &b));
    }

    #[test]
    fn eect_bounds_delay_of_waiting_call() {
        // §IV starvation argument: if r'(j) > r'(i) + E(p(i)) then j runs
        // after i, whatever j's estimate is.
        let i = inputs(0.0, 3.0);
        let p_i = priority(Policy::Eect, &i);
        for e_p in [0.0, 0.1, 10.0, 1000.0] {
            let j = inputs(3.0001, e_p);
            assert!(priority(Policy::Eect, &j) > p_i);
        }
    }

    #[test]
    fn names_round_trip() {
        for p in Policy::ALL {
            assert_eq!(Policy::from_name(p.name()), Some(p));
        }
        assert_eq!(Policy::from_name("fair-choice"), Some(Policy::FairChoice));
        assert_eq!(Policy::from_name("bogus"), None);
    }

    #[test]
    fn starvation_free_set_matches_paper() {
        assert!(Policy::Eect.is_starvation_free());
        assert!(Policy::Rect.is_starvation_free());
        assert!(Policy::Fifo.is_starvation_free());
        assert!(!Policy::Sept.is_starvation_free());
        assert!(!Policy::FairChoice.is_starvation_free());
    }

    #[test]
    fn all_lists_five_policies() {
        assert_eq!(Policy::ALL.len(), 5);
        let _ = SimDuration::ZERO; // keep import used in this cfg(test) module
    }
}
