//! Scheduler configuration.

use crate::policy::Policy;
use faas_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// What Fair-Choice's `#(f, −T)` counts.
///
/// §IV defines the FC priority as "the estimation of the total processing
/// time of the recently concluded calls", computed as `#(f,−T) · E(p)` where
/// `#` is "the number of calls of function f during last T seconds". We read
/// `#` as counting *received* calls (the product is then an estimate of the
/// work those calls imply); counting *concluded* calls is the alternative
/// reading, which turns FC into per-function fair queueing. The ablation
/// bench compares both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FcCountMode {
    /// Count calls received in the window (default; SEPT-like bulk
    /// behaviour with frequency-based fairness).
    Arrivals,
    /// Count calls concluded in the window (equalises completed work per
    /// function).
    Completions,
}

/// Configuration of the node scheduler (the paper's new OpenWhisk
/// configuration option plus the two history hyper-parameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// The sequencing policy.
    pub policy: Policy,
    /// Processing-time estimation window: number of recent executions
    /// averaged. The paper uses 10 (following its reference \[18\]).
    pub estimate_window: usize,
    /// Fair-Choice frequency window `T`. The paper suggests 60 s.
    pub fc_window: SimDuration,
    /// What the Fair-Choice count tallies (see [`FcCountMode`]).
    pub fc_count_mode: FcCountMode,
}

impl SchedulerConfig {
    /// The paper's configuration for a given policy: 10-call estimation
    /// window, 60-second FC window.
    pub fn paper(policy: Policy) -> Self {
        SchedulerConfig {
            policy,
            estimate_window: 10,
            fc_window: SimDuration::from_secs(60),
            fc_count_mode: FcCountMode::Arrivals,
        }
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig::paper(Policy::Fifo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SchedulerConfig::paper(Policy::Sept);
        assert_eq!(c.policy, Policy::Sept);
        assert_eq!(c.estimate_window, 10);
        assert_eq!(c.fc_window, SimDuration::from_secs(60));
    }

    #[test]
    fn default_is_fifo_paper_config() {
        let c = SchedulerConfig::default();
        assert_eq!(c, SchedulerConfig::paper(Policy::Fifo));
    }
}
