//! Node configuration and simulator calibration.
//!
//! The calibration constants are the bridge between the simulator and the
//! paper's physical testbed. Each constant is anchored to a number the paper
//! itself reports; `Calibration::paper()` documents the anchor next to each
//! value. EXPERIMENTS.md records how well the calibrated simulator tracks
//! every table and figure.

use faas_core::SchedulerConfig;
use faas_simcore::dist::Distribution;
use faas_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Which resource-management regime the node runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeMode {
    /// Unmodified OpenWhisk: greedy container creation, memory-proportional
    /// CPU shares, OS preemption, FIFO overflow queue.
    Baseline,
    /// The paper's container management plus one of the five queue policies.
    Scheduled(SchedulerConfig),
}

impl NodeMode {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            NodeMode::Baseline => "baseline".to_string(),
            NodeMode::Scheduled(cfg) => cfg.policy.name().to_string(),
        }
    }
}

/// Calibration constants of the node model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// One-way client→invoker latency (NGINX + controller + Kafka).
    /// Table I's caption attributes ~10 ms of round-trip overhead to this
    /// path; we split it evenly.
    pub hop_request: SimDuration,
    /// One-way invoker→client latency.
    pub hop_response: SimDuration,
    /// CPU work of a full cold start (docker pull/create/init), in
    /// core-seconds. §VI: "It takes 500 ms on the average \[21\] (and, in our
    /// measurements, up to 2 s) to fully initialize a new container".
    pub coldstart_work: Distribution,
    /// Fraction of the full cold-start work still needed when promoting a
    /// prewarmed runtime container (function code injection only).
    pub prewarm_init_fraction: f64,
    /// Per-call container-management cost (docker pause/unpause, log
    /// collection, result plumbing), expressed in *seconds of management per
    /// second of processing per node core*. A call with processing time `p`
    /// on a node with `c` action cores keeps its container (and, under the
    /// paper's one-core-per-container regime, its core) busy for an extra
    /// `mgmt_per_core · c · p` seconds after the response is sent.
    ///
    /// Two observations in the paper pin this form down. (a) §V-B: container
    /// management "may require more time, on average per call, than
    /// executing the function itself", and the FIFO medians across 5/10/20
    /// cores (Table III) fit an overhead that scales with the core count —
    /// the management stack (dockerd, containerd, invoker JVM) degrades with
    /// the container population, which §V-A's warm-up makes proportional to
    /// `cores`. (b) SEPT's sub-second medians under overload (Table III)
    /// rule out a *constant* per-call cost: short calls must occupy their
    /// core only briefly, so the cost must scale with the call's duration
    /// (log volume and memory to reconcile grow with runtime).
    pub mgmt_per_core: f64,
    /// Duration-independent part of the per-call management cost under the
    /// paper's regime, in seconds: docker pause/unpause and activation
    /// bookkeeping have a fixed cost even for millisecond calls. Pinned by
    /// SEPT's ~1 s response medians under overload (Table III), which stay
    /// sub-second even on 20 cores at intensity 120 — so the floor must NOT
    /// grow with the core count (pause/unpause of one container is a
    /// constant-cost docker operation).
    pub mgmt_floor: f64,
    /// Context-switch capacity penalty `kappa` of the baseline's shared-CPU
    /// regime (see `faas_cpu::gps`). Calibrated against the baseline's
    /// 20-core collapse in Fig. 3/Table III.
    pub ctx_switch_penalty: f64,
    /// Cap on the GPS capacity-loss divisor (see `faas_cpu::GpsParams`).
    pub ctx_switch_penalty_cap: f64,
    /// How much heavier per-call container management is on the *baseline*
    /// node than under the paper's regime. The baseline's free pool churns
    /// (greedy creation, evictions, pause/unpause of a large fluctuating
    /// population — SSVI and Fig. 2a), so each call's docker housekeeping
    /// costs a multiple of the disciplined pool's. Calibrated against the
    /// baseline's knife-edge between intensity 30 and 40 on 10 cores
    /// (median 2.8 s -> 61 s, Table III).
    pub baseline_mgmt_multiplier: f64,
    /// Additional load-dependence of the baseline's management hold: the
    /// hold is scaled by `1 + penalty * (leased / cores)^exponent`,
    /// modelling dockerd degradation as the live-container population
    /// grows. Calibrated against the superlinear growth of the baseline's
    /// medians with intensity (Table III) and its 20-core collapse.
    pub baseline_churn_penalty: f64,
    /// Exponent of the churn law (see `baseline_churn_penalty`).
    pub baseline_churn_exponent: f64,
    /// Duration-independent part of the baseline's per-call management hold,
    /// in seconds per node core: docker pause/unpause and activation
    /// bookkeeping cost roughly the same for a 10 ms call as for a 10 s one.
    pub baseline_mgmt_floor_per_core: f64,
    /// Upper bound on the churn scale factor, *per core*: dockerd
    /// degradation saturates once the pool is fully thrashing, and larger
    /// nodes saturate later (more dockerd/containerd parallelism). The
    /// effective cap is `baseline_churn_cap_per_core * cores`.
    pub baseline_churn_cap_per_core: f64,
    /// Delay before a consumed prewarm container is replaced by a fresh one.
    pub prewarm_replacement_delay: SimDuration,
}

impl Calibration {
    /// The calibration used for every reproduction run.
    pub fn paper() -> Self {
        Calibration {
            hop_request: SimDuration::from_millis(5),
            hop_response: SimDuration::from_millis(5),
            coldstart_work: Distribution::Uniform { lo: 0.5, hi: 2.0 },
            prewarm_init_fraction: 0.35,
            mgmt_per_core: 0.27,
            mgmt_floor: 0.35,
            ctx_switch_penalty: 0.12,
            ctx_switch_penalty_cap: 2.0,
            baseline_mgmt_multiplier: 4.4,
            baseline_churn_penalty: 1.3,
            baseline_churn_exponent: 1.0,
            baseline_mgmt_floor_per_core: 0.10,
            baseline_churn_cap_per_core: 1.2,
            prewarm_replacement_delay: SimDuration::from_secs(1),
        }
    }

    /// Management (cleanup) time after a call with processing time
    /// `processing_secs` on a node with `cores` action cores, in seconds:
    /// a per-call floor plus a duration-proportional part, both scaling
    /// with the node's container population (~ cores).
    pub fn mgmt_secs(&self, cores: u32, processing_secs: f64) -> f64 {
        self.mgmt_floor + self.mgmt_per_core * cores as f64 * processing_secs
    }

    /// Baseline-node management hold for one call, given the number of
    /// currently leased containers (load-dependent churn).
    ///
    /// The duration-proportional part saturates at 10 cores: dockerd's
    /// per-call cost stops growing with node size once its own parallelism
    /// is exhausted (the paper's 20-core baseline is ~1.8x worse than its
    /// FIFO at every intensity, not 3.6x).
    pub fn baseline_mgmt_secs(&self, cores: u32, processing_secs: f64, leased: usize) -> f64 {
        let oversub = leased as f64 / cores as f64;
        let churn = (1.0
            + self.baseline_churn_penalty * oversub.powf(self.baseline_churn_exponent))
        .min(self.baseline_churn_cap_per_core * cores as f64);
        let effective_cores = (cores as f64).min(10.0);
        (self.baseline_mgmt_floor_per_core * cores as f64
            + self.baseline_mgmt_multiplier
                * (self.mgmt_per_core * effective_cores * processing_secs))
            * churn
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::paper()
    }
}

/// Static configuration of one worker node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// CPU cores available to action containers (`c`).
    pub cores: u32,
    /// Memory pool available to action containers, MiB. The paper settles on
    /// 32 GiB after the Fig. 2 sweep.
    pub memory_mb: u64,
    /// Number of prewarmed runtime (stemcell) containers kept ready;
    /// OpenWhisk defaults to 2 per runtime kind.
    pub prewarm_count: u32,
    /// Busy-container limit as a multiple of the core count. The paper
    /// fixes 1.0 ("we limit the number of busy containers with the number
    /// of available CPU cores") but explicitly flags the trade-off for
    /// I/O-intensive actions, whose dedicated cores sit idle (§IV-A). A
    /// factor above 1.0 admits more concurrent containers; CPU-bound work
    /// then slows proportionally to the oversubscription (see
    /// `faas_invoker::ours` for the approximation used).
    pub busy_limit_factor: f64,
    /// Memory bandwidth available to action containers, in bandwidth
    /// units (one unit saturates the working set of one fully CPU-bound
    /// container of the reference footprint). `0.0` means the memory axis
    /// is *unmodeled* — the sentinel rather than infinity, because the
    /// config is serialized as JSON, which cannot represent infinities.
    /// With `0.0` every simulation is bit-identical to the pre-DRF,
    /// CPU-only model; a positive value enables dominant-share (DRF)
    /// scheduling on the baseline node's GPS bank and the
    /// bandwidth-pressure slowdown on the scheduled node.
    pub mem_bandwidth: f64,
    /// Calibration constants.
    pub calibration: Calibration,
}

impl NodeConfig {
    /// The paper's standard node: given cores, 32 GiB memory pool.
    pub fn paper(cores: u32) -> Self {
        NodeConfig {
            cores,
            memory_mb: 32 * 1024,
            prewarm_count: 2,
            busy_limit_factor: 1.0,
            mem_bandwidth: 0.0,
            calibration: Calibration::paper(),
        }
    }

    /// Same node with a different memory pool (Fig. 2 sweep).
    pub fn with_memory_mb(mut self, memory_mb: u64) -> Self {
        self.memory_mb = memory_mb;
        self
    }

    /// Same node with an oversubscribed busy-container limit (§IV-A
    /// ablation).
    pub fn with_busy_limit_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "busy limit cannot be below the core count");
        self.busy_limit_factor = factor;
        self
    }

    /// Same node with a modeled memory-bandwidth capacity (DRF axis).
    /// The capacity must be positive and finite; pass it in bandwidth
    /// units (see [`NodeConfig::mem_bandwidth`]).
    pub fn with_mem_bandwidth(mut self, bandwidth: f64) -> Self {
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "memory bandwidth must be positive and finite (0.0 in the \
             field itself means unmodeled)"
        );
        self.mem_bandwidth = bandwidth;
        self
    }

    /// The busy-container limit in containers.
    pub fn busy_limit(&self) -> u32 {
        ((self.cores as f64 * self.busy_limit_factor).round() as u32).max(self.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_core::Policy;

    #[test]
    fn paper_node_defaults() {
        let n = NodeConfig::paper(10);
        assert_eq!(n.cores, 10);
        assert_eq!(n.memory_mb, 32 * 1024);
        assert_eq!(n.prewarm_count, 2);
    }

    #[test]
    fn busy_limit_scales_with_factor() {
        let n = NodeConfig::paper(10);
        assert_eq!(n.busy_limit(), 10);
        assert_eq!(n.with_busy_limit_factor(1.5).busy_limit(), 15);
        assert_eq!(n.with_busy_limit_factor(2.0).busy_limit(), 20);
    }

    #[test]
    #[should_panic(expected = "below the core count")]
    fn busy_limit_below_one_rejected() {
        NodeConfig::paper(4).with_busy_limit_factor(0.5);
    }

    #[test]
    fn paper_node_leaves_the_memory_axis_unmodeled() {
        let n = NodeConfig::paper(10);
        assert_eq!(n.mem_bandwidth, 0.0, "0.0 is the unmodeled sentinel");
        assert_eq!(n.with_mem_bandwidth(6.5).mem_bandwidth, 6.5);
    }

    #[test]
    #[should_panic(expected = "memory bandwidth must be positive")]
    fn zero_mem_bandwidth_rejected_by_builder() {
        NodeConfig::paper(4).with_mem_bandwidth(0.0);
    }

    #[test]
    fn memory_override() {
        let n = NodeConfig::paper(10).with_memory_mb(2048);
        assert_eq!(n.memory_mb, 2048);
        assert_eq!(n.cores, 10);
    }

    #[test]
    fn mgmt_scales_with_cores_and_duration() {
        let c = Calibration::paper();
        // The paper's mean function (~1.042 s) costs ~3 s of management on a
        // 10-core node: management comparable to execution (SSV-B).
        assert!((c.mgmt_secs(10, 1.042) - 3.16).abs() < 0.05);
        // The proportional part doubles with the cores; the floor does not.
        let prop10 = c.mgmt_secs(10, 1.0) - c.mgmt_floor;
        let prop20 = c.mgmt_secs(20, 1.0) - c.mgmt_floor;
        assert!((prop20 - 2.0 * prop10).abs() < 1e-12);
        // Short calls pay the floor, not the proportional part.
        assert!(c.mgmt_secs(10, 0.002) < 0.7);
        assert!(c.mgmt_secs(20, 0.002) < 0.7);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(NodeMode::Baseline.label(), "baseline");
        assert_eq!(
            NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)).label(),
            "FC"
        );
    }

    #[test]
    fn hop_overhead_totals_ten_ms() {
        let c = Calibration::paper();
        let total = c.hop_request + c.hop_response;
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
