//! Per-run result collection.

use crate::pool::PoolStats;
use faas_simcore::time::SimTime;
use faas_workload::trace::CallOutcome;
use serde::{Deserialize, Serialize};

/// Everything a node simulation produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeResult {
    /// One outcome per call (warm-up calls included, flagged by kind).
    pub outcomes: Vec<CallOutcome>,
    /// Container-pool statistics accumulated over the *measured* phase
    /// (from the first measured arrival on), which is what Fig. 2 counts.
    pub measured_pool_stats: PoolStats,
    /// Container-pool statistics over the whole run (warm-up included).
    pub total_pool_stats: PoolStats,
    /// Largest pending-queue length observed.
    pub peak_queue: usize,
    /// Largest number of simultaneously leased containers observed.
    pub peak_concurrency: usize,
    /// Largest number of live entries in the simulator's event queue. This
    /// is a simulator-health metric, not a modelled quantity: it bounds the
    /// event heap's memory and guards against stale-event buildup.
    pub peak_events: usize,
    /// Completion time of the last measured call.
    pub last_completion: SimTime,
}

impl NodeResult {
    /// Outcomes of measured (non-warm-up) calls only.
    pub fn measured(&self) -> impl Iterator<Item = &CallOutcome> {
        self.outcomes.iter().filter(|o| o.is_measured())
    }

    /// Number of measured calls.
    pub fn measured_len(&self) -> usize {
        self.measured().count()
    }

    /// Cold starts among measured calls (what Fig. 2 reports).
    pub fn measured_cold_starts(&self) -> usize {
        self.measured().filter(|o| o.start_kind.is_cold()).count()
    }

    /// Merge outcomes of several nodes (multi-node experiments).
    pub fn merge(results: Vec<NodeResult>) -> NodeResult {
        assert!(!results.is_empty(), "merge of zero results");
        let mut outcomes = Vec::new();
        let mut measured_pool_stats = PoolStats::default();
        let mut total_pool_stats = PoolStats::default();
        let mut peak_queue = 0;
        let mut peak_concurrency = 0;
        let mut peak_events = 0;
        let mut last_completion = SimTime::ZERO;
        for r in results {
            outcomes.extend(r.outcomes);
            measured_pool_stats = add_stats(measured_pool_stats, r.measured_pool_stats);
            total_pool_stats = add_stats(total_pool_stats, r.total_pool_stats);
            peak_queue = peak_queue.max(r.peak_queue);
            peak_concurrency = peak_concurrency.max(r.peak_concurrency);
            peak_events = peak_events.max(r.peak_events);
            last_completion = last_completion.max(r.last_completion);
        }
        outcomes.sort_by_key(|o| (o.release, o.id));
        NodeResult {
            outcomes,
            measured_pool_stats,
            total_pool_stats,
            peak_queue,
            peak_concurrency,
            peak_events,
            last_completion,
        }
    }
}

fn add_stats(a: PoolStats, b: PoolStats) -> PoolStats {
    PoolStats {
        warm_hits: a.warm_hits + b.warm_hits,
        prewarm_hits: a.prewarm_hits + b.prewarm_hits,
        cold_creates: a.cold_creates + b.cold_creates,
        evictions: a.evictions + b.evictions,
        placement_failures: a.placement_failures + b.placement_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_simcore::time::SimDuration;
    use faas_workload::sebs::FuncId;
    use faas_workload::trace::{CallId, CallKind, ColdStartKind};

    fn outcome(id: u32, kind: CallKind, cold: ColdStartKind, node: u16) -> CallOutcome {
        let t = SimTime::from_secs(id as u64);
        CallOutcome {
            id: CallId(id),
            func: FuncId(0),
            kind,
            release: t,
            invoker_receive: t,
            exec_start: t,
            exec_end: t + SimDuration::from_secs(1),
            completion: t + SimDuration::from_secs(1),
            processing: SimDuration::from_secs(1),
            start_kind: cold,
            node,
        }
    }

    fn result(outcomes: Vec<CallOutcome>) -> NodeResult {
        let last = outcomes
            .iter()
            .map(|o| o.completion)
            .max()
            .unwrap_or(SimTime::ZERO);
        NodeResult {
            outcomes,
            measured_pool_stats: PoolStats::default(),
            total_pool_stats: PoolStats::default(),
            peak_queue: 3,
            peak_concurrency: 2,
            peak_events: 5,
            last_completion: last,
        }
    }

    #[test]
    fn measured_filters_warmup() {
        let r = result(vec![
            outcome(0, CallKind::Warmup, ColdStartKind::Cold, 0),
            outcome(1, CallKind::Measured, ColdStartKind::Warm, 0),
            outcome(2, CallKind::Measured, ColdStartKind::Cold, 0),
        ]);
        assert_eq!(r.measured_len(), 2);
        assert_eq!(r.measured_cold_starts(), 1, "warm-up colds excluded");
    }

    #[test]
    fn merge_combines_and_sorts() {
        let a = result(vec![outcome(3, CallKind::Measured, ColdStartKind::Warm, 0)]);
        let b = result(vec![outcome(1, CallKind::Measured, ColdStartKind::Warm, 1)]);
        let m = NodeResult::merge(vec![a, b]);
        assert_eq!(m.outcomes.len(), 2);
        assert_eq!(m.outcomes[0].id, CallId(1), "sorted by release");
        assert_eq!(m.last_completion, SimTime::from_secs(4));
        assert_eq!(m.peak_queue, 3);
    }

    #[test]
    #[should_panic(expected = "zero results")]
    fn merge_empty_panics() {
        NodeResult::merge(vec![]);
    }
}
