//! Per-run result collection.

use crate::pool::PoolStats;
use faas_simcore::time::SimTime;
use faas_workload::faults::DropReason;
use faas_workload::sebs::FuncId;
use faas_workload::trace::{CallId, CallOutcome};
use serde::{Deserialize, Serialize};

/// A call that never completed: every retry attempt was consumed (node
/// crash or transient failure on each) or the pending timeout fired on the
/// final attempt. Dropped calls are excluded from `outcomes` — latency
/// statistics describe goodput — and reported here with their reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DroppedCall {
    /// The call's id.
    pub id: CallId,
    /// Function invoked.
    pub func: FuncId,
    /// Release (arrival) time of the call.
    pub release: SimTime,
    /// Node that dropped it.
    pub node: u16,
    /// Why the call was given up on.
    pub reason: DropReason,
    /// Attempts consumed (equals the policy's `max_attempts` for
    /// [`DropReason::ExhaustedRetries`]).
    pub attempts: u32,
}

/// Robustness counters a faulted node simulation accumulates. All zero on
/// a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Node crash events processed.
    pub crashes: u64,
    /// Dynamic-capacity events processed (degradation and restoration).
    pub capacity_events: u64,
    /// Attempts whose response was lost to a transient failure.
    pub transient_failures: u64,
    /// In-flight attempts killed by a node crash.
    pub crash_kills: u64,
    /// Attempts abandoned by the pending timeout.
    pub timeouts: u64,
    /// Retry attempts scheduled (attempt ≥ 2 dispatches).
    pub retries: u64,
    /// Calls dropped (matches the length of [`NodeResult::drops`]).
    pub dropped: u64,
    /// Failed attempts handed off to another node for their retry
    /// (cross-node failover; always zero outside the coupled cluster
    /// engine). Counted on the node the attempt failed on.
    pub failovers: u64,
}

impl FaultStats {
    fn add(self, b: FaultStats) -> FaultStats {
        FaultStats {
            crashes: self.crashes + b.crashes,
            capacity_events: self.capacity_events + b.capacity_events,
            transient_failures: self.transient_failures + b.transient_failures,
            crash_kills: self.crash_kills + b.crash_kills,
            timeouts: self.timeouts + b.timeouts,
            retries: self.retries + b.retries,
            dropped: self.dropped + b.dropped,
            failovers: self.failovers + b.failovers,
        }
    }
}

/// Everything a node simulation produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeResult {
    /// One outcome per call (warm-up calls included, flagged by kind).
    pub outcomes: Vec<CallOutcome>,
    /// Container-pool statistics accumulated over the *measured* phase
    /// (from the first measured arrival on), which is what Fig. 2 counts.
    pub measured_pool_stats: PoolStats,
    /// Container-pool statistics over the whole run (warm-up included).
    pub total_pool_stats: PoolStats,
    /// Largest pending-queue length observed.
    pub peak_queue: usize,
    /// Largest number of simultaneously leased containers observed.
    pub peak_concurrency: usize,
    /// Largest number of live entries in the simulator's event queue. This
    /// is a simulator-health metric, not a modelled quantity: it bounds the
    /// event heap's memory and guards against stale-event buildup.
    pub peak_events: usize,
    /// Largest number of calls resident in the ingestion window buffers of
    /// a trace-streamed run — the bounded-memory RSS proxy. Zero for runs
    /// that materialize their call list up front. Unlike the other peaks,
    /// cluster merges *sum* this field: the cluster's resident set is the
    /// sum of its nodes' windows, which is what the `chunk × nodes` bound
    /// is stated against.
    pub peak_resident_calls: u64,
    /// Completion time of the last measured call.
    pub last_completion: SimTime,
    /// CPU work served by the node's processor model, in core-seconds.
    /// On the baseline node this is the GPS bank's completed work across
    /// every CPU phase (cold-start init, execution, warm-up included);
    /// on the scheduled node it is the intrinsic CPU work of completed
    /// executions. Cluster merges sum it.
    pub served_cpu_secs: f64,
    /// Memory-bandwidth work served, in bandwidth-unit-seconds. Zero
    /// whenever the memory axis is unmodeled
    /// (`NodeConfig::mem_bandwidth == 0.0`) or no task demanded it.
    /// Cluster merges sum it.
    pub served_mem_units: f64,
    /// Calls that never completed (fault runs only; empty otherwise).
    pub drops: Vec<DroppedCall>,
    /// Robustness counters (all zero on fault-free runs).
    pub fault_stats: FaultStats,
}

impl NodeResult {
    /// Outcomes of measured (non-warm-up) calls only.
    pub fn measured(&self) -> impl Iterator<Item = &CallOutcome> {
        self.outcomes.iter().filter(|o| o.is_measured())
    }

    /// Number of measured calls.
    pub fn measured_len(&self) -> usize {
        self.measured().count()
    }

    /// Cold starts among measured calls (what Fig. 2 reports).
    pub fn measured_cold_starts(&self) -> usize {
        self.measured().filter(|o| o.start_kind.is_cold()).count()
    }

    /// Fold `other` into `self` without allocating: outcome vectors are
    /// appended in place, pool stats summed, peaks and the last completion
    /// maxed (except `peak_resident_calls`, which sums — see its doc).
    /// The accumulated outcome order is unspecified until
    /// [`NodeResult::sort_outcomes`] is called.
    pub fn merge_from(&mut self, other: NodeResult) {
        self.outcomes.extend(other.outcomes);
        self.measured_pool_stats = add_stats(self.measured_pool_stats, other.measured_pool_stats);
        self.total_pool_stats = add_stats(self.total_pool_stats, other.total_pool_stats);
        self.peak_queue = self.peak_queue.max(other.peak_queue);
        self.peak_concurrency = self.peak_concurrency.max(other.peak_concurrency);
        self.peak_events = self.peak_events.max(other.peak_events);
        self.peak_resident_calls += other.peak_resident_calls;
        self.last_completion = self.last_completion.max(other.last_completion);
        self.served_cpu_secs += other.served_cpu_secs;
        self.served_mem_units += other.served_mem_units;
        self.drops.extend(other.drops);
        self.fault_stats = self.fault_stats.add(other.fault_stats);
    }

    /// Restore the canonical `(release, id)` outcome order after one or
    /// more [`NodeResult::merge_from`] calls.
    pub fn sort_outcomes(&mut self) {
        self.outcomes.sort_unstable_by_key(|o| (o.release, o.id));
        self.drops.sort_unstable_by_key(|d| (d.release, d.id));
    }

    /// Merge outcomes of several nodes (multi-node experiments).
    ///
    /// Merges in place into the first result — the only allocation is the
    /// one `reserve_exact` growing its outcome vector to the merged size,
    /// so grid/sweep experiments with thousands of runs do not reallocate
    /// per node.
    pub fn merge(results: Vec<NodeResult>) -> NodeResult {
        assert!(!results.is_empty(), "merge of zero results");
        let total: usize = results.iter().map(|r| r.outcomes.len()).sum();
        let mut iter = results.into_iter();
        let mut acc = iter.next().expect("non-empty");
        acc.outcomes.reserve_exact(total - acc.outcomes.len());
        for r in iter {
            acc.merge_from(r);
        }
        acc.sort_outcomes();
        acc
    }
}

fn add_stats(a: PoolStats, b: PoolStats) -> PoolStats {
    PoolStats {
        warm_hits: a.warm_hits + b.warm_hits,
        prewarm_hits: a.prewarm_hits + b.prewarm_hits,
        cold_creates: a.cold_creates + b.cold_creates,
        evictions: a.evictions + b.evictions,
        placement_failures: a.placement_failures + b.placement_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_simcore::time::SimDuration;
    use faas_workload::sebs::FuncId;
    use faas_workload::trace::{CallId, CallKind, ColdStartKind};

    fn outcome(id: u64, kind: CallKind, cold: ColdStartKind, node: u16) -> CallOutcome {
        let t = SimTime::from_secs(id);
        CallOutcome {
            id: CallId(id),
            func: FuncId(0),
            kind,
            release: t,
            invoker_receive: t,
            exec_start: t,
            exec_end: t + SimDuration::from_secs(1),
            completion: t + SimDuration::from_secs(1),
            processing: SimDuration::from_secs(1),
            start_kind: cold,
            node,
        }
    }

    fn result(outcomes: Vec<CallOutcome>) -> NodeResult {
        let last = outcomes
            .iter()
            .map(|o| o.completion)
            .max()
            .unwrap_or(SimTime::ZERO);
        NodeResult {
            outcomes,
            measured_pool_stats: PoolStats::default(),
            total_pool_stats: PoolStats::default(),
            peak_queue: 3,
            peak_concurrency: 2,
            peak_events: 5,
            peak_resident_calls: 7,
            last_completion: last,
            served_cpu_secs: 1.5,
            served_mem_units: 0.5,
            drops: Vec::new(),
            fault_stats: FaultStats::default(),
        }
    }

    #[test]
    fn measured_filters_warmup() {
        let r = result(vec![
            outcome(0, CallKind::Warmup, ColdStartKind::Cold, 0),
            outcome(1, CallKind::Measured, ColdStartKind::Warm, 0),
            outcome(2, CallKind::Measured, ColdStartKind::Cold, 0),
        ]);
        assert_eq!(r.measured_len(), 2);
        assert_eq!(r.measured_cold_starts(), 1, "warm-up colds excluded");
    }

    #[test]
    fn merge_combines_and_sorts() {
        let a = result(vec![outcome(3, CallKind::Measured, ColdStartKind::Warm, 0)]);
        let b = result(vec![outcome(1, CallKind::Measured, ColdStartKind::Warm, 1)]);
        let m = NodeResult::merge(vec![a, b]);
        assert_eq!(m.outcomes.len(), 2);
        assert_eq!(m.outcomes[0].id, CallId(1), "sorted by release");
        assert_eq!(m.last_completion, SimTime::from_secs(4));
        assert_eq!(m.peak_queue, 3);
    }

    #[test]
    #[should_panic(expected = "zero results")]
    fn merge_empty_panics() {
        NodeResult::merge(vec![]);
    }

    #[test]
    fn merge_from_accumulates_in_place() {
        let mut acc = result(vec![outcome(2, CallKind::Measured, ColdStartKind::Warm, 0)]);
        let extra = result(vec![outcome(1, CallKind::Measured, ColdStartKind::Cold, 1)]);
        acc.merge_from(extra);
        acc.sort_outcomes();
        assert_eq!(acc.outcomes.len(), 2);
        assert_eq!(acc.outcomes[0].id, CallId(1), "sorted after merge_from");
        assert_eq!(acc.last_completion, SimTime::from_secs(3));
        assert_eq!(acc.peak_events, 5, "event peak maxes across nodes");
        assert_eq!(
            acc.peak_resident_calls, 14,
            "resident peak sums across nodes"
        );
        assert_eq!(acc.served_cpu_secs, 3.0, "served CPU work sums");
        assert_eq!(acc.served_mem_units, 1.0, "served bandwidth work sums");
    }

    #[test]
    fn merge_accumulates_drops_and_fault_stats() {
        let drop = |id: u64, node: u16| DroppedCall {
            id: CallId(id),
            func: FuncId(0),
            release: SimTime::from_secs(id),
            node,
            reason: DropReason::ExhaustedRetries,
            attempts: 3,
        };
        let mut a = result(vec![outcome(0, CallKind::Measured, ColdStartKind::Warm, 0)]);
        a.drops.push(drop(7, 0));
        a.fault_stats.retries = 2;
        a.fault_stats.dropped = 1;
        let mut b = result(vec![outcome(1, CallKind::Measured, ColdStartKind::Warm, 1)]);
        b.drops.push(drop(3, 1));
        b.fault_stats.crashes = 1;
        b.fault_stats.dropped = 1;
        let m = NodeResult::merge(vec![a, b]);
        assert_eq!(m.drops.len(), 2);
        assert_eq!(m.drops[0].id, CallId(3), "drops sorted by release");
        assert_eq!(m.fault_stats.retries, 2);
        assert_eq!(m.fault_stats.crashes, 1);
        assert_eq!(m.fault_stats.dropped, 2);
    }

    #[test]
    fn merge_matches_pairwise_merge_from() {
        let a = result(vec![outcome(5, CallKind::Measured, ColdStartKind::Warm, 0)]);
        let b = result(vec![outcome(4, CallKind::Warmup, ColdStartKind::Cold, 1)]);
        let merged = NodeResult::merge(vec![a.clone(), b.clone()]);
        let mut manual = a;
        manual.merge_from(b);
        manual.sort_outcomes();
        assert_eq!(merged.outcomes, manual.outcomes);
        assert_eq!(merged.peak_events, manual.peak_events);
    }
}
