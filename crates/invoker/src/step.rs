//! The resumable step API shared by both node simulators.
//!
//! # Contract
//!
//! Both [`crate::baseline::NodeSim`] and [`crate::ours::NodeSim`] expose the
//! same lifecycle:
//!
//! ```text
//! new(..) ──▶ inject(calls)* ──▶ [ advance_to(horizon) ]* ──▶ finish()
//!                  ▲                      │
//!                  └── inject_handoff ◀───┘ (between windows, via the
//!                                            cluster engine)
//! ```
//!
//! * `new` builds an empty simulator and schedules the node's fault
//!   timeline (nothing else).
//! * `inject` appends a release-sorted batch of calls and schedules their
//!   arrivals. Calls may only be injected at (or after) the node's current
//!   clock: the event queue rejects scheduling into the past, so a caller
//!   must hand a node every call whose release falls inside a window
//!   *before* advancing through that window.
//! * `advance_to(horizon)` drains exactly the events with `time <=
//!   horizon` ([`faas_simcore::events::EventQueue::pop_at_or_before`]) and
//!   reports a [`NodeProgress`] snapshot. The node's clock never passes the
//!   horizon, so the caller can interleave any number of nodes in
//!   lock-step windows. `advance_to(SimTime::MAX)` runs to completion.
//! * `finish` checks the conservation invariant (every injected call
//!   completed XOR dropped XOR was handed off) and assembles the
//!   [`crate::result::NodeResult`].
//!
//! Calling the legacy `simulate_*` entry points is *defined* as `new`,
//! then one `inject` of the whole call list, then
//! `advance_to(SimTime::MAX)`, then `finish`; the step extraction is
//! pinned bit-identical to the old run-to-completion loops (same event
//! order, same RNG consumption, same `peak_events` accounting — see the
//! cluster crate's digest regression tests).
//!
//! # Cross-node failover
//!
//! With failover enabled (`new(.., failover: true)`, cluster runs only), a
//! failed attempt that still has retries left is not retried locally:
//! the call leaves the node as a [`Handoff`] carrying the attempts
//! consumed so far and the instant its retry backoff expires. The cluster
//! engine collects outboxes at each window barrier and re-injects every
//! handoff on the least-loaded healthy node via `inject_handoff`, which
//! charges one fresh dispatch hop (`hop_request`) like any arrival —
//! failover goes back through the controller, unlike a local retry. The
//! call's attempt counter carries across nodes, so a policy of `n`
//! attempts spends `n` attempts cluster-wide, wherever they ran.

use faas_simcore::time::SimTime;
use faas_workload::trace::Call;

/// Snapshot returned by every `advance_to` call: what the load balancer is
/// allowed to observe about a node between windows (plus simulator-health
/// counters for tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeProgress {
    /// The node's clock: timestamp of the last event processed (never past
    /// the horizon).
    pub now: SimTime,
    /// Timestamp of the earliest still-queued event, `None` when the node
    /// is fully drained.
    pub next_event: Option<SimTime>,
    /// Calls waiting in the node's pending structure (baseline FIFO /
    /// scheduled priority queue). The scheduled queue reaps stale entries
    /// lazily, so under faults this is an upper bound — exactly the noisy
    /// signal a real controller polls.
    pub queue_depth: usize,
    /// Calls currently holding a container (admitted, not yet cleaned up).
    pub inflight: usize,
    /// False between a crash and its restart.
    pub alive: bool,
    /// Dominant-share resource consumption at the last snapshot, in
    /// thousandths: the maximum over modeled resource axes (CPU always;
    /// memory bandwidth when [`crate::NodeConfig::mem_bandwidth`] is set)
    /// of `consumption / capacity`, rounded to milli-units. Integer so the
    /// snapshot stays `Eq`-comparable; `1000` means some axis is
    /// saturated, and values above `1000` are possible transiently on the
    /// scheduled node (queued work oversubscribing the busy limit).
    pub dominant_milli: u32,
    /// Outcomes written so far.
    pub completed: usize,
    /// Calls dropped so far.
    pub dropped: usize,
    /// Handoffs waiting in the node's outbox.
    pub handoffs: usize,
}

impl NodeProgress {
    /// The queue-depth signal feedback balancers route on: queued plus
    /// in-flight calls — the node's total backlog.
    pub fn backlog(&self) -> usize {
        self.queue_depth + self.inflight
    }
}

/// A call leaving a node for cross-node failover: one failed attempt's
/// retry, redirected to another node by the cluster engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Handoff {
    /// The call to re-deliver (original id, func and release).
    pub call: Call,
    /// Attempts consumed so far (the receiving node continues the count).
    pub attempts: u32,
    /// When the retry backoff expires: the earliest instant the next
    /// attempt may be dispatched.
    pub due: SimTime,
    /// Node the attempt failed on.
    pub from: u16,
}
