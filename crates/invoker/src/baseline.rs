//! The unmodified-OpenWhisk baseline node (§III).
//!
//! Semantics reproduced from the paper's description of the stock invoker:
//!
//! * **Greedy admission**: a request that finds no pending queue is placed
//!   immediately — warm free-pool container, else prewarm, else a newly
//!   created container (evicting idle containers if memory is short). Only
//!   when placement is impossible does the request join a FIFO queue.
//! * **Memory-based limits**: the number of simultaneously busy containers
//!   is bounded by the memory pool, *not* by the core count.
//! * **OS preemption**: all CPU phases (cold-start initialisation, function
//!   execution, per-call container management) share the cores under
//!   generalized processor sharing with a context-switch capacity penalty
//!   (`faas_cpu::gps`). I/O phases hold the container but no CPU.
//!
//! Call phase machine:
//!
//! ```text
//! Arrive ─(queue empty? place : enqueue)─▶ [Init (GPS)] ─▶ CpuPhase (GPS)
//!     ─▶ IoPhase (timer) ─▶ respond ─▶ Cleanup (GPS, container held)
//!     ─▶ container idle → drain FIFO queue
//! ```
//!
//! # Fault semantics ([`simulate_faulted`])
//!
//! A non-trivial [`FaultSpec`] merges the node's compiled fault timeline
//! into the event queue (before the arrivals, so a same-instant fault
//! fires first):
//!
//! * **Capacity** events rebase the GPS bank via
//!   [`GpsCpu::set_capacity`] — running calls keep their served work and
//!   share the new capacity.
//! * **Crash** kills every in-flight attempt (init, CPU or I/O phase) and
//!   retries it per policy; queued calls survive in the FIFO — OpenWhisk's
//!   load balancer has already committed them to the invoker's Kafka
//!   topic, so they wait for the restart. Every container is lost; the
//!   node restarts cold. Timer events scheduled before the crash
//!   (I/O, cleanup, prewarm) are invalidated by an incarnation counter
//!   carried in the event payload — correct because no attempt survives a
//!   crash, so every pre-crash timer is dead by construction.
//! * **Transient failures** are drawn per attempt at I/O completion: the
//!   work was consumed and the container still cleans up, but the
//!   response is lost and the attempt fails.
//! * The **pending timeout** abandons an attempt still queued after the
//!   policy's deadline (the FIFO entry is removed eagerly).
//!
//! A call whose attempts are exhausted is dropped — excluded from
//! `outcomes`, reported in [`NodeResult::drops`] — so every call resolves
//! exactly once: completed XOR dropped. On [`FaultSpec::none`] every one
//! of these paths is gated off and the simulation is bit-identical to
//! [`simulate_weighted`] before fault injection existed.

use crate::config::NodeConfig;
use crate::fault_rt::{FaultCall, FaultPhase};
use crate::pool::{ContainerId, ContainerPool};
use crate::result::{DroppedCall, FaultStats, NodeResult};
use crate::step::{Handoff, NodeProgress};
use faas_cpu::{GpsCpu, GpsParams, Resource, ResourceVector, TaskId};
use faas_simcore::dist::Sampler;
use faas_simcore::events::{EventHandle, EventQueue};
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::faults::{DropReason, FaultEvent, FaultKind, FaultSpec};
use faas_workload::sebs::Catalogue;
use faas_workload::trace::{Call, CallKind, CallOutcome, ColdStartKind};
use faas_workload::weight::{CallPhase, TaskShare, WeightTable};
use std::collections::HashMap;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A call reaches the invoker.
    Arrive(u32),
    /// The earliest GPS task completion is due. There is at most one live
    /// tick at any time: membership changes move it in place via
    /// [`EventQueue::reschedule`].
    GpsTick,
    /// A call's I/O phase finishes. The second field is the node
    /// incarnation the attempt ran under: a crash bumps the counter, so
    /// timers of killed attempts are recognisably stale.
    IoDone(u32, u32),
    /// A container finishes post-response cleanup (incarnation-guarded).
    /// Carries the container, not the call: a retried call may already
    /// hold a *new* container when its failed attempt's cleanup fires.
    CleanupDone(ContainerId, u32),
    /// A prewarm replacement becomes ready (incarnation-guarded).
    PrewarmReady(u32),
    /// Fault-timeline event at this index fires (fault runs only).
    Fault(u32),
    /// A failed call's retry backoff expired: re-deliver the next attempt.
    Retry(u32),
    /// The pending timeout of `(call, attempt)` fired: abandon the attempt
    /// if it is still queued.
    PendingTimeout(u32, u32),
}

/// What a GPS task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Owner {
    /// Cold-start initialisation of call `i`.
    Init(u32),
    /// CPU phase of call `i`.
    Exec(u32),
}

#[derive(Debug, Clone, Copy)]
struct CallRuntime {
    invoker_receive: SimTime,
    exec_start: SimTime,
    io_secs: f64,
    /// Intrinsic processing time drawn for the call (contention-free).
    p_intrinsic: f64,
    start_kind: ColdStartKind,
    container: Option<ContainerId>,
}

impl CallRuntime {
    fn empty() -> Self {
        CallRuntime {
            invoker_receive: SimTime::ZERO,
            exec_start: SimTime::ZERO,
            io_secs: 0.0,
            p_intrinsic: 0.0,
            start_kind: ColdStartKind::Warm,
            container: None,
        }
    }
}

/// The baseline node as a resumable simulator (see [`crate::step`] for the
/// lifecycle contract). The legacy `simulate_*` entry points are thin
/// wrappers: `new` + `inject` + `advance_to(SimTime::MAX)` + `finish`,
/// pinned bit-identical to the pre-refactor run-to-completion loop.
pub struct NodeSim<'a> {
    catalogue: &'a Catalogue,
    calls: Vec<Call>,
    cfg: &'a NodeConfig,
    /// Per-function GPS weights/caps (weighted containers). The uniform
    /// table keeps every task on the GPS fast path.
    weights: &'a WeightTable,
    node_index: u16,
    events: EventQueue<Ev>,
    cpu: GpsCpu,
    fifo: VecDeque<u32>,
    pool: ContainerPool,
    /// Each live GPS task's owner and demand profile (per dominant-resource
    /// unit, from `ResourceVector::profile`), so removals can settle the
    /// per-resource served-work counters.
    owners: HashMap<TaskId, (Owner, [f64; 2])>,
    /// Per-resource work served by the GPS bank, in axis units:
    /// `[core-seconds, bandwidth-unit-seconds]`. Accumulated as offered
    /// work at task entry minus the residual returned at removal, so
    /// crash-killed work counts only what actually ran.
    served_work: [f64; 2],
    /// Cached dominant-share consumption in milli-units, refreshed at the
    /// end of every `advance_to` window (see [`NodeProgress::dominant_milli`]).
    dominant_milli: u32,
    runtime: Vec<CallRuntime>,
    outcomes: Vec<CallOutcome>,
    /// Slots of `outcomes` already overwritten with a real completion.
    outcomes_filled: usize,
    rng_service: Xoshiro256,
    rng_cold: Xoshiro256,
    peak_queue: usize,
    leased: usize,
    peak_leased: usize,
    measured_snapshot: Option<crate::pool::PoolStats>,
    last_completion: SimTime,
    peak_events: usize,
    /// The one pending [`Ev::GpsTick`], rescheduled in place on every GPS
    /// membership change instead of abandoning stale copies in the queue.
    tick: Option<EventHandle>,
    /// Reused buffer for completion collection: the GPS tick is the hottest
    /// event, and `finished_tasks_into` keeps it allocation-free.
    finished_scratch: Vec<TaskId>,
    /// The fault plan (the inert [`FaultSpec::none`] on fault-free runs).
    faults: &'a FaultSpec,
    /// This node's compiled fault timeline, indexed by [`Ev::Fault`].
    timeline: Vec<FaultEvent>,
    /// False iff `faults.is_none()`: every fault code path is gated on
    /// this, keeping the fault-free run bit-identical to the pre-fault
    /// simulator.
    fault_on: bool,
    /// False between a crash and its restart.
    alive: bool,
    /// Bumped on every crash; timer events carry the value they were
    /// scheduled under and are dropped when stale.
    incarnation: u32,
    /// Per-call attempt/phase state (empty on fault-free runs).
    fstate: Vec<FaultCall>,
    fault_stats: FaultStats,
    drops: Vec<DroppedCall>,
    /// Cross-node failover enabled (coupled cluster runs only): a failed
    /// attempt with retries left leaves the node as a [`Handoff`] instead
    /// of scheduling a local [`Ev::Retry`].
    failover: bool,
    /// Outbox of pending handoffs, drained by the cluster engine at each
    /// window barrier.
    handoffs: Vec<Handoff>,
    /// Calls that left this node via failover (their pending outcome slot
    /// is discarded at `finish`).
    migrated: usize,
}

/// Run the baseline node over `calls` (sorted by release time) with the
/// uniform `(1, 1)` container shares — the paper's regime and the GPS
/// fast path.
pub fn simulate(
    catalogue: &Catalogue,
    calls: &[Call],
    cfg: &NodeConfig,
    seed: u64,
    node_index: u16,
) -> NodeResult {
    let weights = WeightTable::uniform(catalogue.len());
    simulate_weighted(catalogue, calls, cfg, &weights, seed, node_index)
}

/// Run the baseline node with per-function container weights and rate
/// caps: each CPU phase (cold-start init and execution) enters the GPS
/// bank with the share [`WeightTable::phase_share`] assigns it —
/// the function's [`faas_workload::weight::TaskShare`] for measured
/// calls, with optional per-phase overrides for warm-up calls (cgroup
/// update latency: a fresh container initialises under the default share
/// until its cgroup update lands). A uniform table reduces exactly to
/// [`simulate`].
pub fn simulate_weighted(
    catalogue: &Catalogue,
    calls: &[Call],
    cfg: &NodeConfig,
    weights: &WeightTable,
    seed: u64,
    node_index: u16,
) -> NodeResult {
    simulate_faulted(
        catalogue,
        calls,
        cfg,
        weights,
        &FaultSpec::none(),
        seed,
        node_index,
    )
}

/// Run the baseline node under a fault plan: dynamic capacity, crash and
/// restart, transient failures and the retry/timeout/backoff policy (see
/// the module docs for the semantics). With [`FaultSpec::none`] this *is*
/// [`simulate_weighted`] — bit-for-bit.
pub fn simulate_faulted(
    catalogue: &Catalogue,
    calls: &[Call],
    cfg: &NodeConfig,
    weights: &WeightTable,
    faults: &FaultSpec,
    seed: u64,
    node_index: u16,
) -> NodeResult {
    let mut sim = NodeSim::new(catalogue, cfg, weights, faults, seed, node_index, false);
    sim.inject(calls);
    sim.advance_to(SimTime::MAX);
    sim.finish()
}

impl<'a> NodeSim<'a> {
    /// Build an empty baseline node: no calls yet, only the node's fault
    /// timeline scheduled (before any arrival, so a same-instant fault
    /// fires first).
    pub fn new(
        catalogue: &'a Catalogue,
        cfg: &'a NodeConfig,
        weights: &'a WeightTable,
        faults: &'a FaultSpec,
        seed: u64,
        node_index: u16,
        failover: bool,
    ) -> NodeSim<'a> {
        assert_eq!(
            weights.len(),
            catalogue.len(),
            "weight table must cover the catalogue"
        );
        faults.validate();
        let fault_on = !faults.is_none();
        assert!(!failover || fault_on, "failover needs a fault plan");
        let timeline = if fault_on {
            faults.timeline_for_node(node_index).events
        } else {
            Vec::new()
        };
        let mut root = Xoshiro256::seed_from_u64(seed);
        let rng_service = root.derive_stream(0xB001);
        let rng_cold = root.derive_stream(0xB002);

        let mut sim = NodeSim {
            catalogue,
            calls: Vec::new(),
            cfg,
            weights,
            node_index,
            events: EventQueue::new(),
            cpu: GpsCpu::new(GpsParams {
                cores: cfg.cores as f64,
                ctx_switch_penalty: cfg.calibration.ctx_switch_penalty,
                penalty_cap: cfg.calibration.ctx_switch_penalty_cap,
            }),
            fifo: VecDeque::new(),
            pool: ContainerPool::new(
                cfg.memory_mb,
                catalogue.len(),
                cfg.prewarm_count,
                catalogue
                    .iter()
                    .map(|(_, f)| f.memory_mb as u64)
                    .min()
                    .unwrap_or(256),
            ),
            owners: HashMap::new(),
            served_work: [0.0; 2],
            dominant_milli: 0,
            runtime: Vec::new(),
            outcomes: Vec::new(),
            outcomes_filled: 0,
            rng_service,
            rng_cold,
            peak_queue: 0,
            leased: 0,
            peak_leased: 0,
            measured_snapshot: None,
            last_completion: SimTime::ZERO,
            peak_events: 0,
            tick: None,
            finished_scratch: Vec::new(),
            faults,
            timeline,
            fault_on,
            alive: true,
            incarnation: 0,
            fstate: Vec::new(),
            fault_stats: FaultStats::default(),
            drops: Vec::new(),
            failover,
            handoffs: Vec::new(),
            migrated: 0,
        };

        // A modeled memory-bandwidth capacity enters the GPS bank before
        // any task exists; with the 0.0 sentinel the bank never hears
        // about the axis and stays bit-identical to the CPU-only model.
        if cfg.mem_bandwidth > 0.0 {
            sim.cpu
                .set_resource_capacity(SimTime::ZERO, Resource::Mem, cfg.mem_bandwidth);
        }

        // Fault-timeline events go in before the arrivals: a fault at the
        // same instant as an arrival gets the smaller sequence number and
        // fires first. A no-op loop on fault-free runs (empty timeline),
        // so arrival sequence numbers are unchanged.
        for k in 0..sim.timeline.len() {
            let at = sim.timeline[k].at;
            sim.events.schedule(at, Ev::Fault(k as u32));
        }
        sim
    }

    /// Append a release-sorted batch of calls and schedule their arrivals.
    /// Every release must be at or after the node's clock (events cannot be
    /// scheduled into the past).
    pub fn inject(&mut self, calls: &[Call]) {
        self.calls.reserve(calls.len());
        self.runtime.reserve(calls.len());
        self.outcomes.reserve(calls.len());
        if self.fault_on {
            self.fstate.reserve(calls.len());
        }
        for (k, call) in calls.iter().enumerate() {
            debug_assert!(
                k == 0 || calls[k - 1].release <= call.release,
                "calls must be sorted by release"
            );
            let idx = self.calls.len() as u32;
            self.calls.push(*call);
            self.runtime.push(CallRuntime::empty());
            self.outcomes
                .push(CallOutcome::pending(call, self.node_index));
            if self.fault_on {
                self.fstate.push(FaultCall::default());
            }
            self.events.schedule(
                call.release + self.cfg.calibration.hop_request,
                Ev::Arrive(idx),
            );
        }
    }

    /// Re-inject a call another node failed over: the attempt counter
    /// carries across, and the delivery is a fresh dispatch through the
    /// controller — one `hop_request` after `deliver_at` (the backoff
    /// expiry, barrier-aligned by the cluster engine).
    pub fn inject_handoff(&mut self, h: &Handoff, deliver_at: SimTime) {
        assert!(self.fault_on, "handoffs only exist under a fault plan");
        let idx = self.calls.len() as u32;
        self.calls.push(h.call);
        self.runtime.push(CallRuntime::empty());
        self.outcomes
            .push(CallOutcome::pending(&h.call, self.node_index));
        self.fstate.push(FaultCall {
            attempt: h.attempts,
            phase: FaultPhase::Idle,
        });
        self.events.schedule(
            deliver_at + self.cfg.calibration.hop_request,
            Ev::Arrive(idx),
        );
    }

    /// Drain every event with `time <= horizon`, then report progress.
    /// `advance_to(SimTime::MAX)` runs to completion.
    pub fn advance_to(&mut self, horizon: SimTime) -> NodeProgress {
        loop {
            self.peak_events = self.peak_events.max(self.events.len());
            let Some((now, ev)) = self.events.pop_at_or_before(horizon) else {
                break;
            };
            match ev {
                Ev::Arrive(i) => self.on_arrive(now, i),
                Ev::GpsTick => self.on_gps_tick(now),
                Ev::IoDone(i, inc) => self.on_io_done(now, i, inc),
                Ev::CleanupDone(c, inc) => self.on_cleanup_done(now, c, inc),
                Ev::PrewarmReady(inc) => {
                    if inc == self.incarnation {
                        self.pool.replenish_prewarm();
                        self.drain_queue(now);
                    }
                }
                Ev::Fault(k) => self.on_fault(now, k),
                Ev::Retry(i) => self.on_retry(now, i),
                Ev::PendingTimeout(i, attempt) => self.on_pending_timeout(now, i, attempt),
            }
        }
        self.refresh_dominant_share();
        self.progress()
    }

    /// Recompute the cached dominant-share signal: the maximum over
    /// modeled resource axes of the GPS bank's `consumption / capacity`.
    /// One O(live tasks) scan per `advance_to` window; `progress()` then
    /// reads the cache, so the snapshot itself stays `&self`.
    fn refresh_dominant_share(&mut self) {
        let mut share: f64 = 0.0;
        for r in [Resource::Cpu, Resource::Mem] {
            let cap = self.cpu.resource_capacity(r);
            if cap.is_finite() && cap > 0.0 {
                share = share.max(self.cpu.resource_consumption(r) / cap);
            }
        }
        self.dominant_milli = (share * 1000.0).round() as u32;
    }

    /// The [`NodeProgress`] snapshot `advance_to` returns.
    pub fn progress(&self) -> NodeProgress {
        NodeProgress {
            now: self.events.now(),
            next_event: self.events.peek_time(),
            queue_depth: self.fifo.len(),
            inflight: self.leased,
            alive: self.alive,
            dominant_milli: self.dominant_milli,
            completed: self.outcomes_filled,
            dropped: self.drops.len(),
            handoffs: self.handoffs.len(),
        }
    }

    /// Timestamp of the earliest still-queued event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Take the pending failover outbox (cluster engine, between windows).
    pub fn take_handoffs(&mut self) -> Vec<Handoff> {
        std::mem::take(&mut self.handoffs)
    }

    /// Check conservation and assemble the [`NodeResult`]. Call after the
    /// final `advance_to` has drained the node (`next_event_time() ==
    /// None`).
    pub fn finish(mut self) -> NodeResult {
        assert!(
            self.events.is_empty(),
            "finish with {} events still queued",
            self.events.len()
        );
        assert!(
            self.handoffs.is_empty(),
            "finish with {} handoffs not collected",
            self.handoffs.len()
        );
        assert!(
            self.fifo.is_empty(),
            "baseline ended with {} stuck calls",
            self.fifo.len()
        );
        debug_assert!(self.cpu.is_empty(), "GPS bank must drain");
        assert_eq!(
            self.outcomes_filled + self.drops.len() + self.migrated,
            self.calls.len(),
            "every call must resolve exactly once: completed XOR dropped XOR handed off"
        );
        if !self.drops.is_empty() || self.migrated > 0 {
            // Dropped and migrated calls never overwrote their pending
            // slot: remove them so `outcomes` contains completions only
            // (goodput; a migrated call's outcome is owned by the node
            // that resolved it).
            self.outcomes.retain(|o| o.completion != SimTime::ZERO);
        }
        self.drops.sort_unstable_by_key(|d| (d.release, d.id));

        let total_stats = self.pool.stats();
        let snapshot = self.measured_snapshot.unwrap_or(total_stats);
        NodeResult {
            outcomes: self.outcomes,
            measured_pool_stats: crate::pool::PoolStats {
                warm_hits: total_stats.warm_hits - snapshot.warm_hits,
                prewarm_hits: total_stats.prewarm_hits - snapshot.prewarm_hits,
                cold_creates: total_stats.cold_creates - snapshot.cold_creates,
                evictions: total_stats.evictions - snapshot.evictions,
                placement_failures: total_stats.placement_failures - snapshot.placement_failures,
            },
            total_pool_stats: total_stats,
            peak_queue: self.peak_queue,
            peak_concurrency: self.peak_leased,
            peak_events: self.peak_events,
            peak_resident_calls: 0,
            last_completion: self.last_completion,
            // Compensated entry/exit accounting can leave a ±ulp residue
            // around zero; served work is non-negative by construction.
            served_cpu_secs: self.served_work[0].max(0.0),
            served_mem_units: self.served_work[1].max(0.0),
            drops: self.drops,
            fault_stats: self.fault_stats,
        }
    }

    fn on_arrive(&mut self, now: SimTime, i: u32) {
        let idx = i as usize;
        if self.measured_snapshot.is_none() && self.calls[idx].kind == CallKind::Measured {
            self.measured_snapshot = Some(self.pool.stats());
        }
        self.runtime[idx].invoker_receive = now;
        if self.fault_on {
            self.begin_attempt(now, i);
        }
        // §III: "When an invoker receives a new request and there are
        // pending requests, the request is added to the queue." A dead
        // node's requests queue too: the LB committed them to the topic.
        let dead = self.fault_on && !self.alive;
        if dead || !self.fifo.is_empty() || !self.try_place(now, i) {
            self.fifo.push_back(i);
            self.peak_queue = self.peak_queue.max(self.fifo.len());
        }
    }

    /// Start the next delivery attempt of call `i` (fault runs only):
    /// bump the attempt counter and arm the pending timeout.
    fn begin_attempt(&mut self, now: SimTime, i: u32) {
        let idx = i as usize;
        self.fstate[idx].attempt += 1;
        self.fstate[idx].phase = FaultPhase::Queued;
        if self.fstate[idx].attempt > 1 {
            self.fault_stats.retries += 1;
        }
        if let Some(timeout) = self.faults.retry.pending_timeout {
            self.events.schedule(
                now + timeout,
                Ev::PendingTimeout(i, self.fstate[idx].attempt),
            );
        }
    }

    /// Attempt immediate placement; returns false if the call must queue.
    fn try_place(&mut self, now: SimTime, i: u32) -> bool {
        let idx = i as usize;
        let func = self.calls[idx].func;
        let spec = self.catalogue.spec(func);
        let Some(placement) = self.pool.place(func, spec.memory_mb as u64, now) else {
            return false;
        };
        self.leased += 1;
        self.peak_leased = self.peak_leased.max(self.leased);
        self.runtime[idx].start_kind = placement.kind;
        self.runtime[idx].container = Some(placement.container);
        if self.fault_on {
            self.fstate[idx].phase = FaultPhase::Running;
        }
        if placement.kind == ColdStartKind::Prewarm && self.pool.prewarm_deficit() > 0 {
            self.events.schedule(
                now + self.cfg.calibration.prewarm_replacement_delay,
                Ev::PrewarmReady(self.incarnation),
            );
        }
        let init_work = match placement.kind {
            ColdStartKind::Warm => 0.0,
            ColdStartKind::Prewarm => {
                self.cfg
                    .calibration
                    .coldstart_work
                    .sample(&mut self.rng_cold)
                    * self.cfg.calibration.prewarm_init_fraction
            }
            ColdStartKind::Cold => self
                .cfg
                .calibration
                .coldstart_work
                .sample(&mut self.rng_cold),
        };
        if init_work > 0.0 {
            // Per-phase lookup: warm-up cold-start init can run at a
            // different share than the function's (cgroup update latency).
            let share = self
                .weights
                .phase_share(func, self.calls[idx].kind, CallPhase::Init);
            let (tid, profile) = self.add_share_task(now, init_work, &share);
            self.owners.insert(tid, (Owner::Init(i), profile));
        } else {
            self.start_exec(now, i);
        }
        self.reschedule_tick(now);
        true
    }

    /// Begin the execution phases: CPU work under GPS, then I/O.
    fn start_exec(&mut self, now: SimTime, i: u32) {
        let idx = i as usize;
        let func = self.calls[idx].func;
        let spec = self.catalogue.spec(func);
        let p = spec.service_dist().sample(&mut self.rng_service);
        let cpu_work = spec.cpu_fraction * p;
        self.runtime[idx].exec_start = now;
        self.runtime[idx].io_secs = (1.0 - spec.cpu_fraction) * p;
        self.runtime[idx].p_intrinsic = p;
        let share = self
            .weights
            .phase_share(func, self.calls[idx].kind, CallPhase::Exec);
        let (tid, profile) = self.add_share_task(now, cpu_work, &share);
        self.owners.insert(tid, (Owner::Exec(i), profile));
    }

    /// Enter a CPU phase of `cpu_work` core-seconds into the GPS bank
    /// under `share`, returning the task and its demand profile. CPU-only
    /// shares take the scalar `add_task` path — bit-identical to the
    /// pre-DRF model. Shares with a memory-bandwidth demand convert work
    /// and rate cap into dominant-resource units
    /// (`ResourceVector::dominant_per_cpu`) so the bank's water-filling
    /// allocates by dominant share (see `faas_cpu::gps`). Offered work is
    /// credited to the per-resource served counters here; removals debit
    /// the unserved residual.
    fn add_share_task(
        &mut self,
        now: SimTime,
        cpu_work: f64,
        share: &TaskShare,
    ) -> (TaskId, [f64; 2]) {
        if share.is_cpu_only() {
            self.served_work[0] += cpu_work;
            let tid = self
                .cpu
                .add_task(now, cpu_work, share.weight, share.max_rate);
            (tid, [1.0, 0.0])
        } else {
            let demand = ResourceVector::per_cpu(share.mem_per_cpu);
            let scale = demand.dominant_per_cpu();
            let profile = demand.profile();
            let work = cpu_work * scale;
            self.served_work[0] += work * profile[0];
            self.served_work[1] += work * profile[1];
            let tid =
                self.cpu
                    .add_task_demand(now, work, share.weight, share.max_rate * scale, demand);
            (tid, profile)
        }
    }

    /// Remove a GPS task and debit the unserved residual from the
    /// per-resource served-work counters.
    fn remove_gps_task(&mut self, now: SimTime, tid: TaskId, profile: [f64; 2]) {
        let residual = self.cpu.remove_task(now, tid);
        self.served_work[0] -= residual * profile[0];
        self.served_work[1] -= residual * profile[1];
    }

    fn on_gps_tick(&mut self, now: SimTime) {
        // The tick just fired; its handle is dead until rescheduled below.
        self.tick = None;
        // Collect every task that finished by now (several can tie) into the
        // reused scratch buffer, snapshotting the set before membership
        // changes below can alter it.
        let mut finished = std::mem::take(&mut self.finished_scratch);
        self.cpu.finished_tasks_into(now, &mut finished);
        for &tid in &finished {
            let (owner, profile) = *self
                .owners
                .get(&tid)
                .expect("finished GPS task must have an owner");
            self.owners.remove(&tid);
            self.remove_gps_task(now, tid, profile);
            match owner {
                Owner::Init(i) => self.start_exec(now, i),
                Owner::Exec(i) => {
                    let io = self.runtime[i as usize].io_secs;
                    self.events.schedule(
                        now + SimDuration::from_secs_f64(io),
                        Ev::IoDone(i, self.incarnation),
                    );
                }
            }
        }
        self.finished_scratch = finished;
        self.reschedule_tick(now);
    }

    fn on_io_done(&mut self, now: SimTime, i: u32, inc: u32) {
        if inc != self.incarnation {
            return; // the attempt was killed by a crash; timer is stale
        }
        let idx = i as usize;
        let call = &self.calls[idx];
        let rt = self.runtime[idx];
        // Post-response cleanup holds the container (docker pause, log
        // collection) but burns no CPU: with containers oversubscribing the
        // cores the OS overlaps this work, unlike the paper's dedicated-core
        // regime where it idles the call's core. It happens whether or not
        // the response survives the transient-failure draw below — the work
        // was consumed either way.
        let mgmt =
            self.cfg
                .calibration
                .baseline_mgmt_secs(self.cfg.cores, rt.p_intrinsic, self.leased);
        self.events.schedule(
            now + SimDuration::from_secs_f64(mgmt),
            Ev::CleanupDone(
                rt.container.expect("completed call must hold a container"),
                self.incarnation,
            ),
        );
        if self.fault_on && self.faults.attempt_fails(call.id, self.fstate[idx].attempt) {
            self.fault_stats.transient_failures += 1;
            self.fail_attempt(now, i, DropReason::ExhaustedRetries);
            return;
        }
        let completion = now + self.cfg.calibration.hop_response;
        let processing = now.saturating_since(rt.exec_start);
        // A hard assert (one branch per call, negligible next to the event
        // loop): together with the final filled-count check it guarantees
        // every slot is written exactly once, in release builds too.
        assert_eq!(
            self.outcomes[idx].completion,
            SimTime::ZERO,
            "outcome written twice"
        );
        self.outcomes_filled += 1;
        if self.fault_on {
            self.fstate[idx].phase = FaultPhase::Done;
        }
        self.outcomes[idx] = CallOutcome {
            id: call.id,
            func: call.func,
            kind: call.kind,
            release: call.release,
            invoker_receive: rt.invoker_receive,
            exec_start: rt.exec_start,
            exec_end: now,
            completion,
            processing,
            start_kind: rt.start_kind,
            node: self.node_index,
        };
        if call.kind == CallKind::Measured {
            self.last_completion = self.last_completion.max(completion);
        }
    }

    fn on_cleanup_done(&mut self, now: SimTime, container: ContainerId, inc: u32) {
        if inc != self.incarnation {
            return; // container died with the crashed node
        }
        self.pool.release_idle(container, now);
        self.leased -= 1;
        self.drain_queue(now);
    }

    /// A delivery attempt of call `i` just failed (transient failure,
    /// crash kill, or pending timeout): schedule the retry per policy —
    /// locally, or as a cross-node handoff when failover is on — or drop
    /// the call with `exhausted_reason` when no attempts remain.
    fn fail_attempt(&mut self, now: SimTime, i: u32, exhausted_reason: DropReason) {
        let idx = i as usize;
        let attempt = self.fstate[idx].attempt;
        if attempt < self.faults.retry.max_attempts {
            let wait = self
                .faults
                .retry
                .backoff(self.faults.seed, self.calls[idx].id, attempt);
            if self.failover {
                // The retry leaves the node: the cluster engine re-routes
                // it to the least-loaded healthy node at the next barrier.
                self.fstate[idx].phase = FaultPhase::Migrated;
                self.migrated += 1;
                self.fault_stats.failovers += 1;
                self.handoffs.push(Handoff {
                    call: self.calls[idx],
                    attempts: attempt,
                    due: now + wait,
                    from: self.node_index,
                });
                return;
            }
            self.fstate[idx].phase = FaultPhase::Backoff;
            self.events.schedule(now + wait, Ev::Retry(i));
        } else {
            assert_eq!(
                self.outcomes[idx].completion,
                SimTime::ZERO,
                "dropped a call that already completed"
            );
            self.fstate[idx].phase = FaultPhase::Dropped;
            self.fault_stats.dropped += 1;
            self.drops.push(DroppedCall {
                id: self.calls[idx].id,
                func: self.calls[idx].func,
                release: self.calls[idx].release,
                node: self.node_index,
                reason: exhausted_reason,
                attempts: attempt,
            });
        }
    }

    /// A failed attempt's backoff expired: re-deliver the call.
    fn on_retry(&mut self, now: SimTime, i: u32) {
        let idx = i as usize;
        debug_assert_eq!(self.fstate[idx].phase, FaultPhase::Backoff);
        self.runtime[idx].invoker_receive = now;
        self.begin_attempt(now, i);
        if !self.alive || !self.fifo.is_empty() || !self.try_place(now, i) {
            self.fifo.push_back(i);
            self.peak_queue = self.peak_queue.max(self.fifo.len());
        }
    }

    /// The pending timeout of `(i, attempt)` fired. If that attempt is
    /// still waiting in the FIFO the client has given up on it: remove the
    /// entry eagerly and fail the attempt. Stale timeouts (the attempt
    /// started executing, resolved, or a later attempt is current) no-op.
    fn on_pending_timeout(&mut self, now: SimTime, i: u32, attempt: u32) {
        let idx = i as usize;
        if self.fstate[idx].phase != FaultPhase::Queued || self.fstate[idx].attempt != attempt {
            return;
        }
        let pos = self
            .fifo
            .iter()
            .position(|&c| c == i)
            .expect("a Queued call must sit in the FIFO");
        self.fifo.remove(pos);
        self.fault_stats.timeouts += 1;
        self.fail_attempt(now, i, DropReason::TimedOut);
    }

    fn on_fault(&mut self, now: SimTime, k: u32) {
        match self.timeline[k as usize].kind {
            FaultKind::SetCapacityFactor(f) => {
                self.fault_stats.capacity_events += 1;
                // Capacity-rebase invariant (see `GpsCpu::set_capacity`):
                // served work up to `now` is settled under the old
                // capacity before the parameter swap, then the completion
                // tick moves to the new earliest finisher.
                self.cpu.set_capacity(now, self.cfg.cores as f64 * f);
                self.reschedule_tick(now);
            }
            FaultKind::Crash => self.on_crash(now),
            FaultKind::Restart => self.on_restart(now),
        }
    }

    fn on_crash(&mut self, now: SimTime) {
        assert!(self.alive, "crash on a node that is already down");
        self.alive = false;
        self.incarnation += 1;
        self.fault_stats.crashes += 1;
        // Tear down the GPS bank. `owners` is a HashMap whose iteration
        // order is arbitrary: collect and sort the task ids first so the
        // bank's float accumulation stays deterministic across runs.
        let mut tasks: Vec<TaskId> = self.owners.keys().copied().collect();
        tasks.sort_unstable();
        for tid in tasks {
            let profile = self.owners[&tid].1;
            self.remove_gps_task(now, tid, profile);
        }
        self.owners.clear();
        // Kill every in-flight attempt (init, CPU or I/O phase). Their
        // pending IoDone/CleanupDone timers are stale under the bumped
        // incarnation. Queued calls stay in the FIFO.
        for i in 0..self.calls.len() as u32 {
            if self.fstate[i as usize].phase == FaultPhase::Running {
                self.fault_stats.crash_kills += 1;
                self.fail_attempt(now, i, DropReason::ExhaustedRetries);
            }
        }
        self.pool.crash();
        self.leased = 0;
        self.reschedule_tick(now); // the bank is empty: cancels the tick
    }

    fn on_restart(&mut self, now: SimTime) {
        assert!(!self.alive, "restart on a live node");
        self.alive = true;
        // Cold boot: rebuild the prewarm stock at once, exactly like
        // `ContainerPool::new` does at time zero.
        while self.pool.replenish_prewarm() {}
        self.drain_queue(now);
    }

    /// Serve queued requests in FIFO order until one cannot be placed.
    fn drain_queue(&mut self, now: SimTime) {
        while let Some(&head) = self.fifo.front() {
            if self.try_place(now, head) {
                self.fifo.pop_front();
            } else {
                break;
            }
        }
    }

    /// Keep the single tick event aligned with the next GPS completion:
    /// moved in place when the completion time shifts, cancelled when the
    /// bank drains. The queue never holds stale ticks.
    fn reschedule_tick(&mut self, now: SimTime) {
        match self.cpu.next_completion(now) {
            Some((_, at)) => {
                let at = at.max(now);
                match self.tick {
                    Some(handle) => self.events.reschedule(handle, at),
                    None => self.tick = Some(self.events.schedule(at, Ev::GpsTick)),
                }
            }
            None => {
                if let Some(handle) = self.tick.take() {
                    self.events.cancel(handle);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_workload::scenario::BurstScenario;
    use faas_workload::trace::CallId;

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    fn run(cores: u32, intensity: u32, seed: u64) -> NodeResult {
        let cat = catalogue();
        let scenario = BurstScenario::standard(cores, intensity).generate(&cat, seed);
        simulate(
            &cat,
            &scenario.all_calls(),
            &NodeConfig::paper(cores),
            seed,
            0,
        )
    }

    #[test]
    fn every_call_completes() {
        let r = run(10, 30, 1);
        assert_eq!(r.measured_len(), 330);
        for o in r.measured() {
            assert!(o.completion > o.release);
            assert!(o.exec_end >= o.exec_start);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(10, 30, 2);
        let b = run(10, 30, 2);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn concurrency_exceeds_cores_under_load() {
        // The defining property of the baseline: memory-bounded concurrency,
        // far beyond the core count (§IV-A motivation).
        let r = run(10, 60, 3);
        assert!(
            r.peak_concurrency > 10,
            "baseline should oversubscribe: peak {}",
            r.peak_concurrency
        );
    }

    #[test]
    fn greedy_creation_causes_cold_starts_under_load() {
        // Fig. 2a: the baseline keeps creating containers as load grows.
        let r = run(10, 90, 4);
        assert!(
            r.measured_cold_starts() > 100,
            "greedy baseline must cold-start heavily: got {}",
            r.measured_cold_starts()
        );
    }

    #[test]
    fn short_calls_stay_fast_at_moderate_load() {
        // Processor sharing favours short jobs: at intensity 30 on 10 cores
        // the median response must stay in single-digit seconds even though
        // the tail is long (paper Table III: median 2.82 s, avg 14.78 s).
        let r = run(10, 30, 5);
        let mut resp: Vec<f64> = r
            .measured()
            .map(|o| o.response_time().as_secs_f64())
            .collect();
        resp.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = resp[resp.len() / 2];
        let mean = resp.iter().sum::<f64>() / resp.len() as f64;
        assert!(median < 15.0, "median {median}");
        assert!(mean > median, "PS must skew the mean above the median");
    }

    #[test]
    fn node_index_is_propagated() {
        let cat = catalogue();
        let calls = vec![Call {
            id: CallId(0),
            func: cat.by_name("graph-bfs").unwrap(),
            release: SimTime::ZERO,
            kind: CallKind::Measured,
        }];
        let r = simulate(&cat, &calls, &NodeConfig::paper(4), 1, 9);
        assert_eq!(r.outcomes[0].node, 9);
    }

    #[test]
    fn io_heavy_function_is_insensitive_to_contention() {
        // sleep(1s) has cpu_fraction 0.02: its processing time barely grows
        // even under heavy sharing.
        let r = run(10, 60, 6);
        let cat = catalogue();
        let sleep = cat.by_name("sleep").unwrap();
        let mut times: Vec<f64> = r
            .measured()
            .filter(|o| o.func == sleep && o.start_kind == ColdStartKind::Warm)
            .map(|o| o.processing.as_secs_f64())
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(!times.is_empty());
        let median = times[times.len() / 2];
        assert!(
            median < 3.0,
            "warm sleep executions should stay near 1s, got median {median}"
        );
    }

    #[test]
    fn weighted_simulation_is_deterministic_and_complete() {
        use faas_workload::weight::WeightSpec;
        let cat = catalogue();
        let scenario = BurstScenario::standard(10, 30).generate(&cat, 8);
        let weights = WeightSpec::paper_tiers().table(&cat);
        let run = || {
            simulate_weighted(
                &cat,
                &scenario.all_calls(),
                &NodeConfig::paper(10),
                &weights,
                8,
                0,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcomes, b.outcomes, "weighted runs are deterministic");
        assert_eq!(a.measured_len(), 330, "every call completes");
    }

    #[test]
    fn uniform_weight_table_reproduces_the_unweighted_run() {
        use faas_workload::weight::WeightTable;
        let cat = catalogue();
        let scenario = BurstScenario::standard(10, 30).generate(&cat, 9);
        let calls = scenario.all_calls();
        let plain = simulate(&cat, &calls, &NodeConfig::paper(10), 9, 0);
        let uniform = simulate_weighted(
            &cat,
            &calls,
            &NodeConfig::paper(10),
            &WeightTable::uniform(cat.len()),
            9,
            0,
        );
        assert_eq!(plain.outcomes, uniform.outcomes);
    }

    #[test]
    fn tiered_weights_change_the_contended_outcome() {
        use faas_workload::weight::WeightSpec;
        let cat = catalogue();
        let scenario = BurstScenario::standard(10, 60).generate(&cat, 10);
        let calls = scenario.all_calls();
        let plain = simulate(&cat, &calls, &NodeConfig::paper(10), 10, 0);
        let weights = WeightSpec::paper_tiers().table(&cat);
        let tiered = simulate_weighted(&cat, &calls, &NodeConfig::paper(10), &weights, 10, 0);
        assert_ne!(
            plain.outcomes, tiered.outcomes,
            "weighted shares must shift completions under contention"
        );
        assert_eq!(tiered.outcomes.len(), plain.outcomes.len());
    }

    #[test]
    fn warmup_phase_shares_change_overlapping_outcomes() {
        // Cgroup-update latency: with `paper_tiers_cgroup_lag`, a warm-up
        // call's cold-start init runs at the default (1, 1) share instead
        // of the function's tier share. Overlap a warm-up and a measured
        // cold start of a weight-4 function on one core: the banks differ
        // (uniform vs heterogeneous), so the measured completion moves.
        use faas_workload::weight::WeightSpec;
        let cat = catalogue();
        let func = cat.ids().next().unwrap(); // tier index 0: weight 4.0
        let calls = vec![
            Call {
                id: CallId(0),
                func,
                release: SimTime::ZERO,
                kind: CallKind::Warmup,
            },
            Call {
                id: CallId(1),
                func,
                release: SimTime::ZERO,
                kind: CallKind::Measured,
            },
        ];
        let cfg = NodeConfig::paper(1);
        let run =
            |spec: WeightSpec| simulate_weighted(&cat, &calls, &cfg, &spec.table(&cat), 11, 0);
        let plain = run(WeightSpec::paper_tiers());
        let lagged = run(WeightSpec::paper_tiers_cgroup_lag());
        assert_ne!(
            plain.outcomes, lagged.outcomes,
            "warm-up init at the default share must shift the overlap"
        );
        // The override only touches warm-up phases: without warm-up calls
        // the two tables are indistinguishable.
        let measured_only = &calls[1..];
        let plain = simulate_weighted(
            &cat,
            measured_only,
            &cfg,
            &WeightSpec::paper_tiers().table(&cat),
            12,
            0,
        );
        let lagged = simulate_weighted(
            &cat,
            measured_only,
            &cfg,
            &WeightSpec::paper_tiers_cgroup_lag().table(&cat),
            12,
            0,
        );
        assert_eq!(plain.outcomes, lagged.outcomes);
    }

    fn faulted(cores: u32, intensity: u32, seed: u64, faults: &FaultSpec) -> NodeResult {
        let cat = catalogue();
        let scenario = BurstScenario::standard(cores, intensity).generate(&cat, seed);
        simulate_faulted(
            &cat,
            &scenario.all_calls(),
            &NodeConfig::paper(cores),
            &WeightTable::uniform(cat.len()),
            faults,
            seed,
            0,
        )
    }

    use faas_workload::faults::{CapacityRamp, RetryPolicy};

    #[test]
    fn inert_fault_machinery_reproduces_the_plain_run() {
        // A non-trivial spec whose events cannot change the simulation — a
        // capacity ramp whose floor is 1.0 — exercises every fault gate
        // (timeline merge, per-call state, transient draws at zero
        // probability) and must still produce the plain run's outcomes.
        let spec = FaultSpec {
            seed: 99,
            capacity: vec![CapacityRamp {
                node: None,
                start: SimTime::from_secs(130),
                floor: 1.0,
                steps_down: 2,
                step_every: SimDuration::from_secs(2),
                hold: SimDuration::from_secs(5),
                steps_up: 2,
            }],
            crashes: Vec::new(),
            transient_failure: 0.0,
            retry: RetryPolicy::standard(),
        };
        assert!(!spec.is_none(), "the gate must actually engage");
        let plain = run(10, 30, 14);
        let gated = faulted(10, 30, 14, &spec);
        assert_eq!(plain.outcomes, gated.outcomes);
        assert!(gated.drops.is_empty());
        assert_eq!(gated.fault_stats.capacity_events, 4);
        assert_eq!(gated.fault_stats.retries, 0);
    }

    #[test]
    fn capacity_degradation_slows_the_contended_run() {
        let cat = catalogue();
        let scenario = BurstScenario::standard(10, 60).generate(&cat, 15);
        let spec = FaultSpec::degradation(15, scenario.burst_start, SimDuration::from_secs(60));
        let plain = run(10, 60, 15);
        let degraded = faulted(10, 60, 15, &spec);
        assert!(degraded.drops.is_empty(), "degradation drops nothing");
        assert_eq!(degraded.outcomes.len(), plain.outcomes.len());
        assert_ne!(plain.outcomes, degraded.outcomes, "capacity must bite");
        assert!(
            degraded.last_completion > plain.last_completion,
            "losing capacity mid-burst must delay the drain: {:?} vs {:?}",
            degraded.last_completion,
            plain.last_completion
        );
    }

    #[test]
    fn crash_kills_in_flight_calls_and_restart_drains_the_rest() {
        let cat = catalogue();
        let scenario = BurstScenario::standard(10, 60).generate(&cat, 16);
        let total = scenario.all_calls().len();
        let spec = FaultSpec::crash_restart(16, scenario.burst_start, SimDuration::from_secs(60));
        let r = faulted(10, 60, 16, &spec);
        assert_eq!(r.fault_stats.crashes, 1);
        assert!(
            r.fault_stats.crash_kills > 0,
            "a loaded node has in-flight calls"
        );
        assert_eq!(
            r.outcomes.len() + r.drops.len(),
            total,
            "call conservation: completed XOR dropped"
        );
        assert_eq!(r.fault_stats.dropped, r.drops.len() as u64);
        // The standard policy retries crash-killed attempts: with 3
        // attempts and one crash, every kill should eventually complete.
        assert!(
            r.drops.is_empty(),
            "one crash under 3 attempts drops nothing"
        );
        assert!(r.fault_stats.retries >= r.fault_stats.crash_kills);
        // Bit-identical reproduction.
        let again = faulted(10, 60, 16, &spec);
        assert_eq!(r.outcomes, again.outcomes);
        assert_eq!(r.drops, again.drops);
        assert_eq!(r.fault_stats, again.fault_stats);
    }

    #[test]
    fn retry_storm_drops_only_fully_exhausted_calls() {
        let cat = catalogue();
        let scenario = BurstScenario::standard(10, 30).generate(&cat, 17);
        let total = scenario.all_calls().len();
        let spec = FaultSpec::retry_storm(17);
        let r = faulted(10, 30, 17, &spec);
        assert!(r.fault_stats.transient_failures > 0);
        assert!(r.fault_stats.retries > 0);
        assert_eq!(r.outcomes.len() + r.drops.len(), total);
        // p_drop = 0.15^5 ≈ 8e-5: with ~360 calls, drops are possible but
        // every drop must be a genuine exhaustion.
        for d in &r.drops {
            assert_eq!(d.reason, DropReason::ExhaustedRetries);
            assert_eq!(d.attempts, spec.retry.max_attempts);
        }
        // The survivors dominate: goodput stays near 1.
        assert!(r.drops.len() < total / 20);
    }

    #[test]
    fn pending_timeout_abandons_queued_calls() {
        // Starve the node (tiny memory, one container at a time) so the
        // FIFO backs up, with a tight no-retry timeout: queued calls are
        // abandoned with `TimedOut`.
        let cat = catalogue();
        let scenario = BurstScenario::standard(4, 60).generate(&cat, 18);
        let calls = scenario.all_calls();
        let total = calls.len();
        let mut spec = FaultSpec::none();
        spec.retry = RetryPolicy {
            max_attempts: 1,
            pending_timeout: Some(SimDuration::from_secs(5)),
            backoff_base: SimDuration::ZERO,
            backoff_factor: 1.0,
            jitter: 0.0,
        };
        let cfg = NodeConfig::paper(4).with_memory_mb(1024);
        let r = simulate_faulted(
            &cat,
            &calls,
            &cfg,
            &WeightTable::uniform(cat.len()),
            &spec,
            18,
            0,
        );
        assert!(!r.drops.is_empty(), "a starved queue must time calls out");
        assert!(r.drops.iter().all(|d| d.reason == DropReason::TimedOut));
        assert_eq!(r.fault_stats.timeouts, r.drops.len() as u64);
        assert_eq!(r.outcomes.len() + r.drops.len(), total);
    }

    #[test]
    fn queue_forms_when_memory_exhausted() {
        let cat = catalogue();
        let scenario = BurstScenario::standard(10, 60).generate(&cat, 7);
        let cfg = NodeConfig::paper(10).with_memory_mb(4 * 1024);
        let r = simulate(&cat, &scenario.all_calls(), &cfg, 7, 0);
        assert!(r.peak_queue > 0, "4 GiB at intensity 60 must queue");
        assert_eq!(r.measured_len(), 660);
    }
}
