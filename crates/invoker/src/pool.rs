//! The container pool (§III of the paper).
//!
//! A node hosts *action containers*. A container is either **idle** in the
//! free pool (initialised for one function, ready for a warm start),
//! **prewarmed** (runtime initialised, no function yet), or **leased** to a
//! running call (busy executing, initialising, or being cleaned up — the
//! pool only tracks that the memory is held).
//!
//! Placement follows OpenWhisk's documented order: free-pool match →
//! prewarm → create new → evict idle free-pool containers to make room →
//! fail (caller queues the request).

use faas_simcore::time::SimTime;
use faas_workload::sebs::FuncId;
use faas_workload::trace::ColdStartKind;
use serde::{Deserialize, Serialize};

/// Identifies a container within one node simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(u32);

impl ContainerId {
    /// Raw index, for diagnostics.
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    /// Unused slot (recyclable).
    Dead,
    /// Idle in the free pool, initialised for a function.
    Idle {
        func: FuncId,
        since: SimTime,
        mem_mb: u64,
    },
    /// Leased to a call (busy / initialising / cleanup).
    Leased { func: FuncId, mem_mb: u64 },
}

/// Counters the experiments report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Placements served by an idle warm container.
    pub warm_hits: u64,
    /// Placements served by promoting a prewarm container.
    pub prewarm_hits: u64,
    /// Placements that created a container from scratch.
    pub cold_creates: u64,
    /// Idle containers evicted to free memory.
    pub evictions: u64,
    /// Placements that failed for lack of memory.
    pub placement_failures: u64,
}

impl PoolStats {
    /// Fig. 2's "coldstarts": every placement that had to initialise the
    /// function (prewarm promotion included).
    pub fn cold_starts(&self) -> u64 {
        self.prewarm_hits + self.cold_creates
    }
}

/// The result of a successful placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// The leased container.
    pub container: ContainerId,
    /// Warm / prewarm / cold.
    pub kind: ColdStartKind,
}

/// The node's container pool with memory accounting.
#[derive(Debug, Clone)]
pub struct ContainerPool {
    mem_total_mb: u64,
    mem_used_mb: u64,
    prewarm_mem_mb: u64,
    prewarm_ready: u32,
    prewarm_target: u32,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    /// Idle containers per function, most-recently-used last.
    idle_by_func: Vec<Vec<ContainerId>>,
    stats: PoolStats,
}

impl ContainerPool {
    /// Create a pool with `memory_mb` MiB for `num_functions` functions.
    ///
    /// `prewarm_target` stemcell containers of `prewarm_mem_mb` each are
    /// allocated immediately (OpenWhisk starts its prewarm pool at boot).
    pub fn new(
        memory_mb: u64,
        num_functions: usize,
        prewarm_target: u32,
        prewarm_mem_mb: u64,
    ) -> Self {
        let mut pool = ContainerPool {
            mem_total_mb: memory_mb,
            mem_used_mb: 0,
            prewarm_mem_mb,
            prewarm_ready: 0,
            prewarm_target,
            slots: Vec::new(),
            free_slots: Vec::new(),
            idle_by_func: (0..num_functions).map(|_| Vec::new()).collect(),
            stats: PoolStats::default(),
        };
        for _ in 0..prewarm_target {
            if pool.mem_used_mb + prewarm_mem_mb <= pool.mem_total_mb {
                pool.mem_used_mb += prewarm_mem_mb;
                pool.prewarm_ready += 1;
            }
        }
        pool
    }

    /// Current memory in use (all container kinds), MiB.
    pub fn mem_used_mb(&self) -> u64 {
        self.mem_used_mb
    }

    /// Total memory, MiB.
    pub fn mem_total_mb(&self) -> u64 {
        self.mem_total_mb
    }

    /// Number of live containers (idle + leased + prewarm).
    pub fn container_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s, Slot::Dead))
            .count()
            + self.prewarm_ready as usize
    }

    /// Number of idle containers of `func`.
    pub fn idle_count(&self, func: FuncId) -> usize {
        self.idle_by_func[func.index()].len()
    }

    /// Number of ready prewarm containers.
    pub fn prewarm_ready(&self) -> u32 {
        self.prewarm_ready
    }

    /// How many prewarm replacements are owed (consumed but not replaced).
    pub fn prewarm_deficit(&self) -> u32 {
        self.prewarm_target.saturating_sub(self.prewarm_ready)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Try to place a call of `func` needing `mem_mb` MiB, at time `now`.
    ///
    /// Follows the OpenWhisk placement order. On failure (no warm container,
    /// no prewarm, and not enough memory even after evicting every idle
    /// container) returns `None` and the caller must queue the request.
    pub fn place(&mut self, func: FuncId, mem_mb: u64, now: SimTime) -> Option<Placement> {
        // 1. Free-pool container already initialised for this function.
        if let Some(cid) = self.idle_by_func[func.index()].pop() {
            let slot = &mut self.slots[cid.0 as usize];
            debug_assert!(matches!(slot, Slot::Idle { func: f, .. } if *f == func));
            let mem = match *slot {
                Slot::Idle { mem_mb, .. } => mem_mb,
                _ => unreachable!("idle_by_func points at a non-idle slot"),
            };
            *slot = Slot::Leased { func, mem_mb: mem };
            self.stats.warm_hits += 1;
            return Some(Placement {
                container: cid,
                kind: ColdStartKind::Warm,
            });
        }

        // 2. Prewarm container: runtime ready, function must initialise.
        if self.prewarm_ready > 0 {
            self.prewarm_ready -= 1;
            // The prewarm memory is re-purposed; adjust for the function's
            // own footprint.
            self.mem_used_mb = self.mem_used_mb - self.prewarm_mem_mb + mem_mb;
            let cid = self.alloc_slot(Slot::Leased { func, mem_mb });
            self.stats.prewarm_hits += 1;
            return Some(Placement {
                container: cid,
                kind: ColdStartKind::Prewarm,
            });
        }

        // 3. Create a new container, evicting idles if needed.
        if self.ensure_memory(mem_mb, now) {
            self.mem_used_mb += mem_mb;
            let cid = self.alloc_slot(Slot::Leased { func, mem_mb });
            self.stats.cold_creates += 1;
            return Some(Placement {
                container: cid,
                kind: ColdStartKind::Cold,
            });
        }

        self.stats.placement_failures += 1;
        None
    }

    /// Return a leased container to the free pool (idle, warm for its
    /// function).
    pub fn release_idle(&mut self, cid: ContainerId, now: SimTime) {
        let slot = &mut self.slots[cid.0 as usize];
        match *slot {
            Slot::Leased { func, mem_mb } => {
                *slot = Slot::Idle {
                    func,
                    since: now,
                    mem_mb,
                };
                self.idle_by_func[func.index()].push(cid);
            }
            ref other => panic!("release_idle on non-leased container: {other:?}"),
        }
    }

    /// Destroy a leased container outright (memory returned). Used when a
    /// node tears down rather than recycling.
    pub fn destroy_leased(&mut self, cid: ContainerId) {
        let slot = &mut self.slots[cid.0 as usize];
        match *slot {
            Slot::Leased { mem_mb, .. } => {
                self.mem_used_mb -= mem_mb;
                *slot = Slot::Dead;
                self.free_slots.push(cid.0);
            }
            ref other => panic!("destroy_leased on non-leased container: {other:?}"),
        }
    }

    /// Node crash: every container — idle, leased, prewarm — is lost and
    /// its memory returned. Accumulated statistics survive (they describe
    /// the run, not the incarnation); the restart boots with an empty pool
    /// and must re-build its prewarm stock via
    /// [`ContainerPool::replenish_prewarm`].
    pub fn crash(&mut self) {
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if !matches!(slot, Slot::Dead) {
                *slot = Slot::Dead;
                self.free_slots.push(idx as u32);
            }
        }
        for list in &mut self.idle_by_func {
            list.clear();
        }
        self.prewarm_ready = 0;
        self.mem_used_mb = 0;
    }

    /// Add one prewarm container if there is a deficit and memory allows.
    /// Returns true if a container was added.
    pub fn replenish_prewarm(&mut self) -> bool {
        if self.prewarm_deficit() == 0 {
            return false;
        }
        if self.mem_used_mb + self.prewarm_mem_mb > self.mem_total_mb {
            return false;
        }
        self.mem_used_mb += self.prewarm_mem_mb;
        self.prewarm_ready += 1;
        true
    }

    /// Evict idle containers (least-recently-used first, across all
    /// functions) until `needed_mb` additional MiB fit. Returns true on
    /// success; partial evictions are kept (they only help future requests).
    fn ensure_memory(&mut self, needed_mb: u64, _now: SimTime) -> bool {
        while self.mem_used_mb + needed_mb > self.mem_total_mb {
            match self.oldest_idle() {
                Some(cid) => self.evict(cid),
                None => return false,
            }
        }
        true
    }

    /// The least-recently-used idle container across every function.
    fn oldest_idle(&self) -> Option<ContainerId> {
        let mut best: Option<(SimTime, ContainerId)> = None;
        for list in &self.idle_by_func {
            for &cid in list {
                if let Slot::Idle { since, .. } = self.slots[cid.0 as usize] {
                    match best {
                        Some((t, b)) if (since, cid) >= (t, b) => {}
                        _ => best = Some((since, cid)),
                    }
                }
            }
        }
        best.map(|(_, cid)| cid)
    }

    fn evict(&mut self, cid: ContainerId) {
        let slot = &mut self.slots[cid.0 as usize];
        match *slot {
            Slot::Idle { func, mem_mb, .. } => {
                *slot = Slot::Dead;
                self.mem_used_mb -= mem_mb;
                self.free_slots.push(cid.0);
                let list = &mut self.idle_by_func[func.index()];
                let pos = list
                    .iter()
                    .position(|&c| c == cid)
                    .expect("idle container missing from its function list");
                list.remove(pos);
                self.stats.evictions += 1;
            }
            ref other => panic!("evict on non-idle container: {other:?}"),
        }
    }

    fn alloc_slot(&mut self, slot: Slot) -> ContainerId {
        if let Some(idx) = self.free_slots.pop() {
            self.slots[idx as usize] = slot;
            ContainerId(idx)
        } else {
            self.slots.push(slot);
            ContainerId((self.slots.len() - 1) as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 256;

    fn pool(mem: u64) -> ContainerPool {
        // No prewarm by default to keep placement paths explicit.
        ContainerPool::new(mem, 3, 0, MB)
    }

    #[test]
    fn cold_create_then_warm_reuse() {
        let mut p = pool(1024);
        let t = SimTime::ZERO;
        let a = p.place(FuncId(0), MB, t).unwrap();
        assert_eq!(a.kind, ColdStartKind::Cold);
        assert_eq!(p.mem_used_mb(), MB);
        p.release_idle(a.container, t);
        assert_eq!(p.idle_count(FuncId(0)), 1);
        let b = p.place(FuncId(0), MB, t).unwrap();
        assert_eq!(b.kind, ColdStartKind::Warm);
        assert_eq!(b.container, a.container);
        assert_eq!(p.mem_used_mb(), MB, "warm reuse must not grow memory");
    }

    #[test]
    fn warm_pool_is_per_function() {
        let mut p = pool(1024);
        let t = SimTime::ZERO;
        let a = p.place(FuncId(0), MB, t).unwrap();
        p.release_idle(a.container, t);
        // A different function cannot take function 0's warm container.
        let b = p.place(FuncId(1), MB, t).unwrap();
        assert_eq!(b.kind, ColdStartKind::Cold);
    }

    #[test]
    fn prewarm_is_used_before_create() {
        let mut p = ContainerPool::new(1024, 2, 1, MB);
        assert_eq!(p.prewarm_ready(), 1);
        let a = p.place(FuncId(0), MB, SimTime::ZERO).unwrap();
        assert_eq!(a.kind, ColdStartKind::Prewarm);
        assert_eq!(p.prewarm_ready(), 0);
        assert_eq!(p.prewarm_deficit(), 1);
        // Replenishment restores the stemcell.
        assert!(p.replenish_prewarm());
        assert_eq!(p.prewarm_ready(), 1);
        assert!(!p.replenish_prewarm(), "no deficit left");
    }

    #[test]
    fn eviction_frees_lru_idle() {
        let mut p = pool(2 * MB);
        let a = p.place(FuncId(0), MB, SimTime::from_secs(0)).unwrap();
        let b = p.place(FuncId(1), MB, SimTime::from_secs(1)).unwrap();
        p.release_idle(a.container, SimTime::from_secs(2)); // older idle
        p.release_idle(b.container, SimTime::from_secs(3));
        // Memory full (2 idle); placing function 2 must evict the LRU idle
        // (function 0's).
        let c = p.place(FuncId(2), MB, SimTime::from_secs(4)).unwrap();
        assert_eq!(c.kind, ColdStartKind::Cold);
        assert_eq!(p.idle_count(FuncId(0)), 0, "older idle evicted");
        assert_eq!(p.idle_count(FuncId(1)), 1, "newer idle kept");
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn placement_fails_when_all_memory_leased() {
        let mut p = pool(2 * MB);
        p.place(FuncId(0), MB, SimTime::ZERO).unwrap();
        p.place(FuncId(1), MB, SimTime::ZERO).unwrap();
        // Nothing idle to evict: must fail.
        assert!(p.place(FuncId(2), MB, SimTime::ZERO).is_none());
        assert_eq!(p.stats().placement_failures, 1);
    }

    #[test]
    fn memory_accounting_is_conserved() {
        let mut p = pool(4 * MB);
        let t = SimTime::ZERO;
        let ids: Vec<_> = (0..3)
            .map(|i| p.place(FuncId(i % 3), MB, t).unwrap().container)
            .collect();
        assert_eq!(p.mem_used_mb(), 3 * MB);
        for id in &ids {
            p.release_idle(*id, t);
        }
        assert_eq!(p.mem_used_mb(), 3 * MB, "idle containers keep memory");
        assert_eq!(p.container_count(), 3);
    }

    #[test]
    fn destroy_returns_memory() {
        let mut p = pool(2 * MB);
        let a = p.place(FuncId(0), MB, SimTime::ZERO).unwrap();
        p.destroy_leased(a.container);
        assert_eq!(p.mem_used_mb(), 0);
        assert_eq!(p.container_count(), 0);
    }

    #[test]
    fn stats_cold_starts_counts_prewarm_and_cold() {
        let mut p = ContainerPool::new(4 * MB, 2, 1, MB);
        p.place(FuncId(0), MB, SimTime::ZERO).unwrap(); // prewarm
        p.place(FuncId(0), MB, SimTime::ZERO).unwrap(); // cold
        let s = p.stats();
        assert_eq!(s.prewarm_hits, 1);
        assert_eq!(s.cold_creates, 1);
        assert_eq!(s.cold_starts(), 2);
        assert_eq!(s.warm_hits, 0);
    }

    #[test]
    fn lifo_reuse_of_warm_containers() {
        // Most-recently-used container is reused first (cache-friendliness),
        // leaving the LRU one as the eviction candidate.
        let mut p = pool(4 * MB);
        let t = SimTime::ZERO;
        let a = p.place(FuncId(0), MB, t).unwrap().container;
        let b = p.place(FuncId(0), MB, t).unwrap().container;
        p.release_idle(a, SimTime::from_secs(1));
        p.release_idle(b, SimTime::from_secs(2));
        let again = p.place(FuncId(0), MB, SimTime::from_secs(3)).unwrap();
        assert_eq!(again.container, b, "MRU idle reused first");
    }

    #[test]
    fn eviction_tie_breaks_deterministically() {
        // Two idles released at the same instant: lowest ContainerId wins.
        let mut p = pool(2 * MB);
        let t = SimTime::ZERO;
        let a = p.place(FuncId(0), MB, t).unwrap().container;
        let b = p.place(FuncId(1), MB, t).unwrap().container;
        p.release_idle(a, SimTime::from_secs(1));
        p.release_idle(b, SimTime::from_secs(1));
        p.place(FuncId(2), MB, SimTime::from_secs(2)).unwrap();
        // a has the lower id: it must have been evicted.
        assert_eq!(p.idle_count(FuncId(0)), 0);
        assert_eq!(p.idle_count(FuncId(1)), 1);
        let _ = b;
    }

    #[test]
    fn prewarm_respects_memory_budget() {
        // Pool too small for the requested prewarm count.
        let p = ContainerPool::new(MB, 1, 5, MB);
        assert_eq!(p.prewarm_ready(), 1);
        assert_eq!(p.mem_used_mb(), MB);
    }

    #[test]
    fn crash_loses_every_container_but_keeps_stats() {
        let mut p = ContainerPool::new(8 * MB, 3, 2, MB);
        let t = SimTime::ZERO;
        let a = p.place(FuncId(0), MB, t).unwrap();
        let b = p.place(FuncId(1), MB, t).unwrap();
        p.release_idle(b.container, t);
        assert!(p.mem_used_mb() > 0);
        let stats_before = p.stats();
        p.crash();
        assert_eq!(p.mem_used_mb(), 0, "crash returns all memory");
        assert_eq!(p.container_count(), 0);
        assert_eq!(p.prewarm_ready(), 0, "stemcells die with the node");
        assert_eq!(p.idle_count(FuncId(1)), 0);
        assert_eq!(p.stats(), stats_before, "stats describe the run");
        // The restarted node rebuilds from cold: placements work again and
        // the prewarm deficit is replenishable.
        assert_eq!(p.prewarm_deficit(), 2);
        assert!(p.replenish_prewarm());
        let c = p.place(FuncId(1), MB, t).unwrap();
        assert_eq!(c.kind, ColdStartKind::Prewarm);
        let _ = a;
    }

    #[test]
    fn crash_does_not_double_free_dead_slots() {
        let mut p = pool(4 * MB);
        let t = SimTime::ZERO;
        let a = p.place(FuncId(0), MB, t).unwrap();
        p.destroy_leased(a.container); // slot already Dead + in free list
        p.place(FuncId(1), MB, t).unwrap();
        p.crash();
        p.crash(); // idempotent: a second crash finds only Dead slots
                   // Allocating up to capacity must hand out distinct slots.
        let mut seen = std::collections::HashSet::new();
        for i in 0..4 {
            let cid = p.place(FuncId(i % 3), MB, t).unwrap().container;
            assert!(seen.insert(cid), "slot {cid:?} handed out twice");
        }
    }

    #[test]
    #[should_panic(expected = "non-leased")]
    fn double_release_panics() {
        let mut p = pool(1024);
        let a = p.place(FuncId(0), MB, SimTime::ZERO).unwrap();
        p.release_idle(a.container, SimTime::ZERO);
        p.release_idle(a.container, SimTime::ZERO);
    }
}
