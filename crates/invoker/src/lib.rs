//! # faas-invoker
//!
//! The OpenWhisk invoker substrate: container lifecycle and the two
//! node-level resource-management regimes the paper compares.
//!
//! * [`config`] — node configuration and the calibration constants that tie
//!   the simulator to the paper's measured testbed behaviour.
//! * [`pool`] — the container pool (§III): free (warm) pool, prewarm pool,
//!   memory accounting, LRU eviction, cold-start bookkeeping.
//! * [`baseline`] — the unmodified-OpenWhisk node: greedy container
//!   creation, memory-proportional CPU shares time-sliced by the OS
//!   (generalized processor sharing with a context-switch penalty), FIFO
//!   overflow queue.
//! * [`ours`] — the paper's node (§IV): a policy-driven priority queue in
//!   front of at most `cores` busy containers, each pinned to a full core,
//!   non-preemptive execution.
//! * [`result`] — per-run outcome collection.
//! * [`step`] — the resumable step API both nodes expose
//!   (`advance_to(horizon)` windows, cross-node failover handoffs), the
//!   substrate of the cluster crate's coupled engine.
//!
//! Both node simulations consume the same [`faas_workload::Scenario`]s and
//! produce the same [`result::NodeResult`], so every experiment in the paper
//! is a like-for-like comparison.

pub mod baseline;
pub mod config;
mod fault_rt;
pub mod ours;
pub mod pool;
pub mod result;
pub mod step;

pub use config::{Calibration, NodeConfig, NodeMode};
pub use pool::{ContainerPool, PoolStats};
pub use result::{DroppedCall, FaultStats, NodeResult};
pub use step::{Handoff, NodeProgress};

use faas_simcore::time::SimTime;

use faas_core::SchedulerConfig;
use faas_workload::faults::FaultSpec;
use faas_workload::sebs::Catalogue;
use faas_workload::trace::Call;
use faas_workload::weight::WeightTable;
use faas_workload::Scenario;

/// Simulate one node serving `calls` (release-ordered) under the given mode.
///
/// `node_index` tags the resulting outcomes (multi-node experiments run one
/// simulation per worker).
pub fn simulate_calls(
    catalogue: &Catalogue,
    calls: &[Call],
    mode: &NodeMode,
    cfg: &NodeConfig,
    seed: u64,
    node_index: u16,
) -> NodeResult {
    match mode {
        NodeMode::Baseline => baseline::simulate(catalogue, calls, cfg, seed, node_index),
        NodeMode::Scheduled(sched) => {
            ours::simulate(catalogue, calls, cfg, *sched, seed, node_index)
        }
    }
}

/// Simulate one node with per-function container weights and rate caps
/// (the weighted-container axis of [`faas_workload::WorkloadSpec`]).
///
/// Weights shape the *baseline* node only: its soft CPU shares are
/// memory-proportional, which is exactly what the GPS weight models. The
/// paper's regime pins every busy container to one full core, so
/// [`NodeMode::Scheduled`] is weight-invariant and runs unchanged.
pub fn simulate_calls_weighted(
    catalogue: &Catalogue,
    calls: &[Call],
    mode: &NodeMode,
    cfg: &NodeConfig,
    weights: &WeightTable,
    seed: u64,
    node_index: u16,
) -> NodeResult {
    match mode {
        NodeMode::Baseline => {
            baseline::simulate_weighted(catalogue, calls, cfg, weights, seed, node_index)
        }
        NodeMode::Scheduled(sched) => {
            ours::simulate(catalogue, calls, cfg, *sched, seed, node_index)
        }
    }
}

/// Simulate one node under a fault plan: dynamic capacity, node
/// crash/restart, transient failures and the retry/timeout/backoff policy
/// (see [`faas_workload::faults`] for the model, and the `baseline` /
/// `ours` module docs for the per-regime semantics).
///
/// The node's fault timeline is derived from `(faults, node_index)` inside
/// the invoker, so multi-node runs stay shard-invariant. With
/// [`FaultSpec::none`] this is [`simulate_calls_weighted`] bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn simulate_calls_faulted(
    catalogue: &Catalogue,
    calls: &[Call],
    mode: &NodeMode,
    cfg: &NodeConfig,
    weights: &WeightTable,
    faults: &FaultSpec,
    seed: u64,
    node_index: u16,
) -> NodeResult {
    match mode {
        NodeMode::Baseline => {
            baseline::simulate_faulted(catalogue, calls, cfg, weights, faults, seed, node_index)
        }
        NodeMode::Scheduled(sched) => {
            ours::simulate_faulted(catalogue, calls, cfg, *sched, faults, seed, node_index)
        }
    }
}

/// Simulate a full scenario (warm-up plus burst) on a single node.
pub fn simulate_scenario(
    catalogue: &Catalogue,
    scenario: &Scenario,
    mode: &NodeMode,
    cfg: &NodeConfig,
    seed: u64,
) -> NodeResult {
    let calls = scenario.all_calls();
    simulate_calls(catalogue, &calls, mode, cfg, seed, 0)
}

/// Convenience constructor for the scheduled mode.
pub fn scheduled(sched: SchedulerConfig) -> NodeMode {
    NodeMode::Scheduled(sched)
}

/// A mode-dispatching resumable node simulator: one enum over the two
/// regimes, exposing the step API of [`step`] so the cluster engine can
/// drive either node kind through conservative time windows without
/// caring which regime it is. Boxed per variant — the two simulators are
/// large and a cluster holds many.
pub enum NodeSim<'a> {
    /// The unmodified-OpenWhisk node.
    Baseline(Box<baseline::NodeSim<'a>>),
    /// The paper's scheduled node.
    Scheduled(Box<ours::NodeSim<'a>>),
}

impl<'a> NodeSim<'a> {
    /// Build an empty resumable node for `mode`; see
    /// [`baseline::NodeSim::new`] / [`ours::NodeSim::new`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        catalogue: &'a Catalogue,
        mode: &NodeMode,
        cfg: &'a NodeConfig,
        weights: &'a WeightTable,
        faults: &'a FaultSpec,
        seed: u64,
        node_index: u16,
        failover: bool,
    ) -> NodeSim<'a> {
        match mode {
            NodeMode::Baseline => NodeSim::Baseline(Box::new(baseline::NodeSim::new(
                catalogue, cfg, weights, faults, seed, node_index, failover,
            ))),
            NodeMode::Scheduled(sched) => NodeSim::Scheduled(Box::new(ours::NodeSim::new(
                catalogue, cfg, *sched, faults, seed, node_index, failover,
            ))),
        }
    }

    /// Append a release-sorted batch of calls and schedule their arrivals.
    pub fn inject(&mut self, calls: &[Call]) {
        match self {
            NodeSim::Baseline(s) => s.inject(calls),
            NodeSim::Scheduled(s) => s.inject(calls),
        }
    }

    /// Re-inject a call another node failed over (see
    /// [`step::Handoff`]).
    pub fn inject_handoff(&mut self, h: &Handoff, deliver_at: SimTime) {
        match self {
            NodeSim::Baseline(s) => s.inject_handoff(h, deliver_at),
            NodeSim::Scheduled(s) => s.inject_handoff(h, deliver_at),
        }
    }

    /// Drain every event with `time <= horizon`, then report progress.
    pub fn advance_to(&mut self, horizon: SimTime) -> NodeProgress {
        match self {
            NodeSim::Baseline(s) => s.advance_to(horizon),
            NodeSim::Scheduled(s) => s.advance_to(horizon),
        }
    }

    /// The current [`NodeProgress`] snapshot.
    pub fn progress(&self) -> NodeProgress {
        match self {
            NodeSim::Baseline(s) => s.progress(),
            NodeSim::Scheduled(s) => s.progress(),
        }
    }

    /// Timestamp of the earliest still-queued event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        match self {
            NodeSim::Baseline(s) => s.next_event_time(),
            NodeSim::Scheduled(s) => s.next_event_time(),
        }
    }

    /// Take the pending failover outbox.
    pub fn take_handoffs(&mut self) -> Vec<Handoff> {
        match self {
            NodeSim::Baseline(s) => s.take_handoffs(),
            NodeSim::Scheduled(s) => s.take_handoffs(),
        }
    }

    /// Check conservation and assemble the [`NodeResult`].
    pub fn finish(self) -> NodeResult {
        match self {
            NodeSim::Baseline(s) => s.finish(),
            NodeSim::Scheduled(s) => s.finish(),
        }
    }
}
