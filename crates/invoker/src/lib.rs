//! # faas-invoker
//!
//! The OpenWhisk invoker substrate: container lifecycle and the two
//! node-level resource-management regimes the paper compares.
//!
//! * [`config`] — node configuration and the calibration constants that tie
//!   the simulator to the paper's measured testbed behaviour.
//! * [`pool`] — the container pool (§III): free (warm) pool, prewarm pool,
//!   memory accounting, LRU eviction, cold-start bookkeeping.
//! * [`baseline`] — the unmodified-OpenWhisk node: greedy container
//!   creation, memory-proportional CPU shares time-sliced by the OS
//!   (generalized processor sharing with a context-switch penalty), FIFO
//!   overflow queue.
//! * [`ours`] — the paper's node (§IV): a policy-driven priority queue in
//!   front of at most `cores` busy containers, each pinned to a full core,
//!   non-preemptive execution.
//! * [`result`] — per-run outcome collection.
//!
//! Both node simulations consume the same [`faas_workload::Scenario`]s and
//! produce the same [`result::NodeResult`], so every experiment in the paper
//! is a like-for-like comparison.

pub mod baseline;
pub mod config;
mod fault_rt;
pub mod ours;
pub mod pool;
pub mod result;

pub use config::{Calibration, NodeConfig, NodeMode};
pub use pool::{ContainerPool, PoolStats};
pub use result::{DroppedCall, FaultStats, NodeResult};

use faas_core::SchedulerConfig;
use faas_workload::faults::FaultSpec;
use faas_workload::sebs::Catalogue;
use faas_workload::trace::Call;
use faas_workload::weight::WeightTable;
use faas_workload::Scenario;

/// Simulate one node serving `calls` (release-ordered) under the given mode.
///
/// `node_index` tags the resulting outcomes (multi-node experiments run one
/// simulation per worker).
pub fn simulate_calls(
    catalogue: &Catalogue,
    calls: &[Call],
    mode: &NodeMode,
    cfg: &NodeConfig,
    seed: u64,
    node_index: u16,
) -> NodeResult {
    match mode {
        NodeMode::Baseline => baseline::simulate(catalogue, calls, cfg, seed, node_index),
        NodeMode::Scheduled(sched) => {
            ours::simulate(catalogue, calls, cfg, *sched, seed, node_index)
        }
    }
}

/// Simulate one node with per-function container weights and rate caps
/// (the weighted-container axis of [`faas_workload::WorkloadSpec`]).
///
/// Weights shape the *baseline* node only: its soft CPU shares are
/// memory-proportional, which is exactly what the GPS weight models. The
/// paper's regime pins every busy container to one full core, so
/// [`NodeMode::Scheduled`] is weight-invariant and runs unchanged.
pub fn simulate_calls_weighted(
    catalogue: &Catalogue,
    calls: &[Call],
    mode: &NodeMode,
    cfg: &NodeConfig,
    weights: &WeightTable,
    seed: u64,
    node_index: u16,
) -> NodeResult {
    match mode {
        NodeMode::Baseline => {
            baseline::simulate_weighted(catalogue, calls, cfg, weights, seed, node_index)
        }
        NodeMode::Scheduled(sched) => {
            ours::simulate(catalogue, calls, cfg, *sched, seed, node_index)
        }
    }
}

/// Simulate one node under a fault plan: dynamic capacity, node
/// crash/restart, transient failures and the retry/timeout/backoff policy
/// (see [`faas_workload::faults`] for the model, and the `baseline` /
/// `ours` module docs for the per-regime semantics).
///
/// The node's fault timeline is derived from `(faults, node_index)` inside
/// the invoker, so multi-node runs stay shard-invariant. With
/// [`FaultSpec::none`] this is [`simulate_calls_weighted`] bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn simulate_calls_faulted(
    catalogue: &Catalogue,
    calls: &[Call],
    mode: &NodeMode,
    cfg: &NodeConfig,
    weights: &WeightTable,
    faults: &FaultSpec,
    seed: u64,
    node_index: u16,
) -> NodeResult {
    match mode {
        NodeMode::Baseline => {
            baseline::simulate_faulted(catalogue, calls, cfg, weights, faults, seed, node_index)
        }
        NodeMode::Scheduled(sched) => {
            ours::simulate_faulted(catalogue, calls, cfg, *sched, faults, seed, node_index)
        }
    }
}

/// Simulate a full scenario (warm-up plus burst) on a single node.
pub fn simulate_scenario(
    catalogue: &Catalogue,
    scenario: &Scenario,
    mode: &NodeMode,
    cfg: &NodeConfig,
    seed: u64,
) -> NodeResult {
    let calls = scenario.all_calls();
    simulate_calls(catalogue, &calls, mode, cfg, seed, 0)
}

/// Convenience constructor for the scheduled mode.
pub fn scheduled(sched: SchedulerConfig) -> NodeMode {
    NodeMode::Scheduled(sched)
}
