//! Shared per-call fault-runtime bookkeeping for the two node simulations.
//!
//! Both invokers track, per call, the current delivery attempt and where
//! that attempt sits in its lifecycle. The state machine is the same in
//! both regimes — only the "queued" structure differs (baseline FIFO vs
//! the scheduled pending queue):
//!
//! ```text
//!             begin_attempt                place
//! Idle ──────────────────────▶ Queued ──────────▶ Running ──▶ Done
//!                                │  timeout         │ crash / transient
//!                                ▼                  ▼
//!                              Backoff ◀────── fail_attempt
//!                                │ retry (attempts left)
//!                                ├──────▶ Dropped (exhausted)
//!                                └──────▶ Migrated (attempts left, cluster
//!                                         failover on: the retry leaves
//!                                         the node as a `Handoff`)
//! ```
//!
//! All of this is dead state on fault-free runs: the invokers allocate the
//! per-call vector only when the [`faas_workload::faults::FaultSpec`] is
//! non-trivial, keeping the no-fault path bit-identical to the pre-fault
//! simulator.

/// Where a call's current delivery attempt sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum FaultPhase {
    /// Not yet arrived at the invoker.
    #[default]
    Idle,
    /// Waiting in the pending structure, not yet executing.
    Queued,
    /// Executing on the node (init, CPU or I/O phase in flight).
    Running,
    /// A failed attempt is waiting out its retry backoff.
    Backoff,
    /// Outcome written: the call completed.
    Done,
    /// Every attempt consumed: the call was dropped.
    Dropped,
    /// The call left this node as a cross-node failover handoff; it
    /// resolves (completes, drops, or migrates again) elsewhere.
    Migrated,
}

/// Per-call fault-runtime state.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FaultCall {
    /// Delivery attempts begun so far (1-based once arrived).
    pub attempt: u32,
    /// Lifecycle position of the current attempt.
    pub phase: FaultPhase,
}
