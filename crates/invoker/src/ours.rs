//! The paper's node: priority queue + dedicated cores (§IV).
//!
//! Event structure of one call:
//!
//! ```text
//! release ──hop──▶ Arrive (r', priority computed, queued)
//!   └─ dispatch when a core is free and the call is at the queue head:
//!        [cold-start init] → execution (p drawn from the function's
//!        distribution, full core, non-preemptive) → ExecDone
//! ExecDone ──hop──▶ completion at the client; container enters cleanup
//! CleanupDone: container → free pool, core released, dispatch again
//! ```
//!
//! The container is unavailable during cleanup and the core is held: this is
//! the per-call management cost (docker pause/unpause, log collection) that
//! the paper identifies as comparable to the execution time itself (§V-B).
//!
//! # Fault semantics ([`simulate_faulted`])
//!
//! Same model as the baseline (see `baseline` module docs), adapted to the
//! dedicated-core regime:
//!
//! * **Capacity** events resize the [`CorePool`]. Execution is
//!   non-preemptive, so a shrink never interrupts running calls — the pool
//!   just hands out nothing until completions drain it below the new
//!   total. The oversubscription slowdown keeps using the configured core
//!   count (a documented approximation: at the paper's busy limit the
//!   slowdown is exactly 1 and the capacity squeeze is fully captured by
//!   the reduced parallelism).
//! * **Crash** kills in-flight attempts, releases every core, and loses
//!   every container; queued calls survive in the pending queue. Stale
//!   `ExecDone`/`CleanupDone`/`PrewarmReady` timers are invalidated by the
//!   incarnation counter in their payload.
//! * **Pending timeouts** skip lazily: [`PendingQueue`] has no removal, so
//!   a timed-out entry stays queued and `dispatch` discards it on pop
//!   (its phase is no longer `Queued`). A retried call is pushed again
//!   with a fresh priority; whichever entry pops first while the call is
//!   `Queued` dispatches it, the rest are stale.
//! * Re-delivered attempts go through [`SchedulerState::on_receive`] again
//!   — the scheduler sees every delivery, like OpenWhisk's controller.

use crate::config::NodeConfig;
use crate::fault_rt::{FaultCall, FaultPhase};
use crate::pool::{ContainerId, ContainerPool};
use crate::result::{DroppedCall, FaultStats, NodeResult};
use crate::step::{Handoff, NodeProgress};
use faas_core::{PendingQueue, SchedulerConfig, SchedulerState};
use faas_cpu::CorePool;
use faas_simcore::dist::Sampler;
use faas_simcore::events::EventQueue;
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::faults::{DropReason, FaultEvent, FaultKind, FaultSpec};
use faas_workload::sebs::Catalogue;
use faas_workload::trace::{Call, CallKind, CallOutcome, ColdStartKind};

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A call reaches the invoker.
    Arrive(u32),
    /// A call's execution finishes on its container. The second field is
    /// the node incarnation the attempt ran under: a crash bumps the
    /// counter, so timers of killed attempts are recognisably stale.
    ExecDone(u32, u32),
    /// A container's post-response cleanup finishes
    /// (incarnation-guarded).
    CleanupDone(ContainerId, u32),
    /// A prewarm replacement container becomes ready
    /// (incarnation-guarded).
    PrewarmReady(u32),
    /// Fault-timeline event at this index fires (fault runs only).
    Fault(u32),
    /// A failed call's retry backoff expired: re-deliver the next attempt.
    Retry(u32),
    /// The pending timeout of `(call, attempt)` fired: abandon the attempt
    /// if it is still queued.
    PendingTimeout(u32, u32),
}

#[derive(Debug, Clone, Copy)]
struct CallRuntime {
    priority: f64,
    invoker_receive: SimTime,
    exec_start: SimTime,
    processing: f64,
    start_kind: ColdStartKind,
    container: Option<ContainerId>,
}

impl CallRuntime {
    fn empty() -> Self {
        CallRuntime {
            priority: 0.0,
            invoker_receive: SimTime::ZERO,
            exec_start: SimTime::ZERO,
            processing: 0.0,
            start_kind: ColdStartKind::Warm,
            container: None,
        }
    }
}

/// The paper's node as a resumable simulator (see [`crate::step`] for the
/// lifecycle contract), mirroring [`crate::baseline::NodeSim`] so both
/// invoker paths share one structure. The legacy `simulate_*` entry points
/// are thin wrappers: `new` + `inject` + `advance_to(SimTime::MAX)` +
/// `finish`, pinned bit-identical to the pre-refactor run-to-completion
/// loop.
pub struct NodeSim<'a> {
    catalogue: &'a Catalogue,
    calls: Vec<Call>,
    cfg: &'a NodeConfig,
    node_index: u16,
    events: EventQueue<Ev>,
    pending: PendingQueue<u32>,
    sched: SchedulerState,
    pool: ContainerPool,
    cores: CorePool,
    /// Summed CPU fraction of currently executing calls, for the
    /// oversubscription slowdown (zero-cost at the default busy limit).
    cpu_load: f64,
    /// Summed memory-bandwidth demand of currently executing calls, in
    /// bandwidth units — each call's working-set footprint
    /// (`memory_mb / 1024`) as a proxy for its bandwidth draw. Maintained
    /// unconditionally, but only read when
    /// [`NodeConfig::mem_bandwidth`] models the axis, so the default
    /// configuration is bit-identical to the CPU-only model.
    mem_load: f64,
    /// Intrinsic CPU work of completed executions, core-seconds.
    served_cpu_secs: f64,
    /// Memory-bandwidth work of completed executions,
    /// bandwidth-unit-seconds (zero while the axis is unmodeled).
    served_mem_units: f64,
    runtime: Vec<CallRuntime>,
    outcomes: Vec<CallOutcome>,
    /// Slots of `outcomes` already overwritten with a real completion.
    outcomes_filled: usize,
    rng_service: Xoshiro256,
    rng_cold: Xoshiro256,
    // Pool statistics are snapshotted when the first measured call arrives,
    // so the reported counters cover only the measured phase (Fig. 2).
    measured_snapshot: Option<crate::pool::PoolStats>,
    last_completion: SimTime,
    peak_events: usize,
    /// The fault plan (the inert [`FaultSpec::none`] on fault-free runs).
    faults: &'a FaultSpec,
    /// This node's compiled fault timeline, indexed by [`Ev::Fault`].
    timeline: Vec<FaultEvent>,
    /// False iff `faults.is_none()`: every fault code path is gated on
    /// this, keeping the fault-free run bit-identical to the pre-fault
    /// simulator.
    fault_on: bool,
    /// False between a crash and its restart.
    alive: bool,
    /// Bumped on every crash; timer events carry the value they were
    /// scheduled under and are dropped when stale.
    incarnation: u32,
    /// Per-call attempt/phase state (empty on fault-free runs).
    fstate: Vec<FaultCall>,
    fault_stats: FaultStats,
    drops: Vec<DroppedCall>,
    /// Cross-node failover enabled (coupled cluster runs only): a failed
    /// attempt with retries left leaves the node as a [`Handoff`] instead
    /// of scheduling a local [`Ev::Retry`].
    failover: bool,
    /// Outbox of pending handoffs, drained by the cluster engine at each
    /// window barrier.
    handoffs: Vec<Handoff>,
    /// Calls that left this node via failover (their pending outcome slot
    /// is discarded at `finish`).
    migrated: usize,
}

/// Run the paper's node over `calls` (must be sorted by release time).
pub fn simulate(
    catalogue: &Catalogue,
    calls: &[Call],
    cfg: &NodeConfig,
    sched_cfg: SchedulerConfig,
    seed: u64,
    node_index: u16,
) -> NodeResult {
    simulate_faulted(
        catalogue,
        calls,
        cfg,
        sched_cfg,
        &FaultSpec::none(),
        seed,
        node_index,
    )
}

/// Run the paper's node under a fault plan: dynamic capacity, crash and
/// restart, transient failures and the retry/timeout/backoff policy (see
/// the module docs for the semantics). With [`FaultSpec::none`] this *is*
/// [`simulate`] — bit-for-bit.
pub fn simulate_faulted(
    catalogue: &Catalogue,
    calls: &[Call],
    cfg: &NodeConfig,
    sched_cfg: SchedulerConfig,
    faults: &FaultSpec,
    seed: u64,
    node_index: u16,
) -> NodeResult {
    let mut sim = NodeSim::new(catalogue, cfg, sched_cfg, faults, seed, node_index, false);
    sim.inject(calls);
    sim.advance_to(SimTime::MAX);
    sim.finish()
}

impl<'a> NodeSim<'a> {
    /// Build an empty scheduled node: no calls yet, only the node's fault
    /// timeline scheduled (before any arrival, so a same-instant fault
    /// fires first).
    pub fn new(
        catalogue: &'a Catalogue,
        cfg: &'a NodeConfig,
        sched_cfg: SchedulerConfig,
        faults: &'a FaultSpec,
        seed: u64,
        node_index: u16,
        failover: bool,
    ) -> NodeSim<'a> {
        faults.validate();
        let fault_on = !faults.is_none();
        assert!(!failover || fault_on, "failover needs a fault plan");
        let timeline = if fault_on {
            faults.timeline_for_node(node_index).events
        } else {
            Vec::new()
        };
        let mut root = Xoshiro256::seed_from_u64(seed);
        let rng_service = root.derive_stream(0xA001);
        let rng_cold = root.derive_stream(0xA002);

        let mut sim = NodeSim {
            catalogue,
            calls: Vec::new(),
            cfg,
            node_index,
            events: EventQueue::new(),
            pending: PendingQueue::new(),
            sched: SchedulerState::new(catalogue.len(), sched_cfg),
            pool: ContainerPool::new(
                cfg.memory_mb,
                catalogue.len(),
                cfg.prewarm_count,
                prewarm_mem_mb(catalogue),
            ),
            cores: CorePool::new(cfg.busy_limit()),
            cpu_load: 0.0,
            mem_load: 0.0,
            served_cpu_secs: 0.0,
            served_mem_units: 0.0,
            runtime: Vec::new(),
            outcomes: Vec::new(),
            outcomes_filled: 0,
            rng_service,
            rng_cold,
            measured_snapshot: None,
            last_completion: SimTime::ZERO,
            peak_events: 0,
            faults,
            timeline,
            fault_on,
            alive: true,
            incarnation: 0,
            fstate: Vec::new(),
            fault_stats: FaultStats::default(),
            drops: Vec::new(),
            failover,
            handoffs: Vec::new(),
            migrated: 0,
        };

        // Fault-timeline events go in before the arrivals: a fault at the
        // same instant as an arrival gets the smaller sequence number and
        // fires first. A no-op loop on fault-free runs (empty timeline),
        // so arrival sequence numbers are unchanged.
        for k in 0..sim.timeline.len() {
            let at = sim.timeline[k].at;
            sim.events.schedule(at, Ev::Fault(k as u32));
        }
        sim
    }

    /// Append a release-sorted batch of calls and schedule their arrivals.
    /// Every release must be at or after the node's clock (events cannot be
    /// scheduled into the past).
    pub fn inject(&mut self, calls: &[Call]) {
        self.calls.reserve(calls.len());
        self.runtime.reserve(calls.len());
        self.outcomes.reserve(calls.len());
        if self.fault_on {
            self.fstate.reserve(calls.len());
        }
        for (k, call) in calls.iter().enumerate() {
            debug_assert!(
                k == 0 || calls[k - 1].release <= call.release,
                "calls must be sorted by release"
            );
            let idx = self.calls.len() as u32;
            self.calls.push(*call);
            self.runtime.push(CallRuntime::empty());
            self.outcomes
                .push(CallOutcome::pending(call, self.node_index));
            if self.fault_on {
                self.fstate.push(FaultCall::default());
            }
            self.events.schedule(
                call.release + self.cfg.calibration.hop_request,
                Ev::Arrive(idx),
            );
        }
    }

    /// Re-inject a call another node failed over: the attempt counter
    /// carries across, and the delivery is a fresh dispatch through the
    /// controller — one `hop_request` after `deliver_at` (the backoff
    /// expiry, barrier-aligned by the cluster engine).
    pub fn inject_handoff(&mut self, h: &Handoff, deliver_at: SimTime) {
        assert!(self.fault_on, "handoffs only exist under a fault plan");
        let idx = self.calls.len() as u32;
        self.calls.push(h.call);
        self.runtime.push(CallRuntime::empty());
        self.outcomes
            .push(CallOutcome::pending(&h.call, self.node_index));
        self.fstate.push(FaultCall {
            attempt: h.attempts,
            phase: FaultPhase::Idle,
        });
        self.events.schedule(
            deliver_at + self.cfg.calibration.hop_request,
            Ev::Arrive(idx),
        );
    }

    /// Drain every event with `time <= horizon`, then report progress.
    /// `advance_to(SimTime::MAX)` runs to completion.
    pub fn advance_to(&mut self, horizon: SimTime) -> NodeProgress {
        loop {
            self.peak_events = self.peak_events.max(self.events.len());
            let Some((now, ev)) = self.events.pop_at_or_before(horizon) else {
                break;
            };
            match ev {
                Ev::Arrive(i) => self.on_arrive(now, i),
                Ev::ExecDone(i, inc) => self.on_exec_done(now, i, inc),
                Ev::CleanupDone(container, inc) => {
                    if inc == self.incarnation {
                        self.on_cleanup_done(now, container);
                    }
                }
                Ev::PrewarmReady(inc) => {
                    if inc == self.incarnation {
                        self.pool.replenish_prewarm();
                        self.dispatch(now);
                    }
                }
                Ev::Fault(k) => self.on_fault(now, k),
                Ev::Retry(i) => self.on_retry(now, i),
                Ev::PendingTimeout(i, attempt) => self.on_pending_timeout(now, i, attempt),
            }
        }
        self.progress()
    }

    /// The [`NodeProgress`] snapshot `advance_to` returns. Queue depth is
    /// the pending queue's raw length — stale (timed-out) entries are
    /// reaped lazily, so under faults this over-reports, exactly like the
    /// noisy queue metric a real controller polls.
    pub fn progress(&self) -> NodeProgress {
        // Dominant share on the dedicated-core node: core occupancy, or
        // bandwidth pressure when the memory axis is modeled — whichever
        // axis is tighter (the DRF signal feedback balancers route on).
        let mut share = self.cores.busy() as f64 / self.cfg.busy_limit() as f64;
        if self.cfg.mem_bandwidth > 0.0 {
            share = share.max(self.mem_load / self.cfg.mem_bandwidth);
        }
        NodeProgress {
            now: self.events.now(),
            next_event: self.events.peek_time(),
            queue_depth: self.pending.len(),
            inflight: self.cores.busy() as usize,
            alive: self.alive,
            dominant_milli: (share * 1000.0).round() as u32,
            completed: self.outcomes_filled,
            dropped: self.drops.len(),
            handoffs: self.handoffs.len(),
        }
    }

    /// Timestamp of the earliest still-queued event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Take the pending failover outbox (cluster engine, between windows).
    pub fn take_handoffs(&mut self) -> Vec<Handoff> {
        std::mem::take(&mut self.handoffs)
    }

    /// Check conservation and assemble the [`NodeResult`]. Call after the
    /// final `advance_to` has drained the node (`next_event_time() ==
    /// None`).
    pub fn finish(mut self) -> NodeResult {
        assert!(
            self.events.is_empty(),
            "finish with {} events still queued",
            self.events.len()
        );
        assert!(
            self.handoffs.is_empty(),
            "finish with {} handoffs not collected",
            self.handoffs.len()
        );
        assert_eq!(
            self.outcomes_filled + self.drops.len() + self.migrated,
            self.calls.len(),
            "every call must resolve exactly once: completed XOR dropped XOR handed off"
        );
        if !self.drops.is_empty() || self.migrated > 0 {
            // Dropped and migrated calls never overwrote their pending
            // slot: remove them so `outcomes` contains completions only
            // (goodput; a migrated call's outcome is owned by the node
            // that resolved it).
            self.outcomes.retain(|o| o.completion != SimTime::ZERO);
        }
        self.drops.sort_unstable_by_key(|d| (d.release, d.id));

        // Fault runs skip timed-out queue entries lazily, so stale entries
        // may remain; anything still genuinely queued is a stuck call.
        while let Some(i) = self.pending.pop() {
            assert!(
                self.fault_on && self.fstate[i as usize].phase != FaultPhase::Queued,
                "simulation ended with call {i} stuck in the pending queue \
                 (memory smaller than one container?)"
            );
        }
        let total_stats = self.pool.stats();
        let measured_stats = diff_stats(total_stats, self.measured_snapshot.unwrap_or(total_stats));

        NodeResult {
            outcomes: self.outcomes,
            measured_pool_stats: measured_stats,
            total_pool_stats: total_stats,
            peak_queue: self.pending.peak_len(),
            peak_concurrency: self.cores.peak_busy() as usize,
            peak_events: self.peak_events,
            peak_resident_calls: 0,
            last_completion: self.last_completion,
            served_cpu_secs: self.served_cpu_secs,
            served_mem_units: self.served_mem_units,
            drops: self.drops,
            fault_stats: self.fault_stats,
        }
    }

    fn on_arrive(&mut self, now: SimTime, i: u32) {
        let idx = i as usize;
        if self.measured_snapshot.is_none() && self.calls[idx].kind == CallKind::Measured {
            // Arrivals preserve release order (constant hop), so this is
            // the first measured arrival.
            self.measured_snapshot = Some(self.pool.stats());
        }
        let func = self.calls[idx].func;
        let prio = self.sched.on_receive(func, now);
        self.runtime[idx].priority = prio;
        self.runtime[idx].invoker_receive = now;
        if self.fault_on {
            self.begin_attempt(now, i);
        }
        self.pending.push(prio, i);
        self.dispatch(now);
    }

    /// Start the next delivery attempt of call `i` (fault runs only):
    /// bump the attempt counter and arm the pending timeout.
    fn begin_attempt(&mut self, now: SimTime, i: u32) {
        let idx = i as usize;
        self.fstate[idx].attempt += 1;
        self.fstate[idx].phase = FaultPhase::Queued;
        if self.fstate[idx].attempt > 1 {
            self.fault_stats.retries += 1;
        }
        if let Some(timeout) = self.faults.retry.pending_timeout {
            self.events.schedule(
                now + timeout,
                Ev::PendingTimeout(i, self.fstate[idx].attempt),
            );
        }
    }

    fn on_exec_done(&mut self, now: SimTime, i: u32, inc: u32) {
        if inc != self.incarnation {
            return; // the attempt was killed by a crash; timer is stale
        }
        let idx = i as usize;
        let call = &self.calls[idx];
        let rt = self.runtime[idx];
        let spec = self.catalogue.spec(call.func);
        self.cpu_load -= spec.cpu_fraction;
        self.mem_load -= mem_units(spec.memory_mb);
        // The work was consumed whether or not the response survives the
        // transient-failure draw below, so it counts as served either way.
        self.served_cpu_secs += rt.processing * spec.cpu_fraction;
        if self.cfg.mem_bandwidth > 0.0 {
            self.served_mem_units +=
                now.saturating_since(rt.exec_start).as_secs_f64() * mem_units(spec.memory_mb);
        }
        let calib = self.cfg.calibration;
        let processing = SimDuration::from_secs_f64(rt.processing);
        let container = rt.container.expect("executed call must hold a container");
        let mgmt = SimDuration::from_secs_f64(calib.mgmt_secs(self.cfg.cores, rt.processing));
        // The paper's invoker stores "the processing time" measured around
        // the whole container interaction (SSIV-B); on a loaded node that
        // window includes the per-call container management, so the stored
        // estimate is the held interval, not the bare execution time. The
        // invoker measures it whether or not the response survives the
        // transient-failure draw below, and the container cleans up either
        // way — the work was consumed.
        self.sched.on_complete(call.func, processing + mgmt, now);
        self.events
            .schedule(now + mgmt, Ev::CleanupDone(container, self.incarnation));
        if self.fault_on && self.faults.attempt_fails(call.id, self.fstate[idx].attempt) {
            self.fault_stats.transient_failures += 1;
            self.fail_attempt(now, i, DropReason::ExhaustedRetries);
            return;
        }
        let completion = now + calib.hop_response;
        // A hard assert (one branch per call, negligible next to the event
        // loop): together with the final filled-count check it guarantees
        // every slot is written exactly once, in release builds too.
        assert_eq!(
            self.outcomes[idx].completion,
            SimTime::ZERO,
            "outcome written twice"
        );
        self.outcomes_filled += 1;
        if self.fault_on {
            self.fstate[idx].phase = FaultPhase::Done;
        }
        self.outcomes[idx] = CallOutcome {
            id: call.id,
            func: call.func,
            kind: call.kind,
            release: call.release,
            invoker_receive: rt.invoker_receive,
            exec_start: rt.exec_start,
            exec_end: now,
            completion,
            processing,
            start_kind: rt.start_kind,
            node: self.node_index,
        };
        if call.kind == CallKind::Measured {
            self.last_completion = self.last_completion.max(completion);
        }
    }

    /// A delivery attempt of call `i` just failed (transient failure,
    /// crash kill, or pending timeout): schedule the retry per policy —
    /// locally, or as a cross-node handoff when failover is on — or drop
    /// the call with `exhausted_reason` when no attempts remain.
    fn fail_attempt(&mut self, now: SimTime, i: u32, exhausted_reason: DropReason) {
        let idx = i as usize;
        let attempt = self.fstate[idx].attempt;
        if attempt < self.faults.retry.max_attempts {
            let wait = self
                .faults
                .retry
                .backoff(self.faults.seed, self.calls[idx].id, attempt);
            if self.failover {
                // The retry leaves the node: the cluster engine re-routes
                // it to the least-loaded healthy node at the next barrier.
                self.fstate[idx].phase = FaultPhase::Migrated;
                self.migrated += 1;
                self.fault_stats.failovers += 1;
                self.handoffs.push(Handoff {
                    call: self.calls[idx],
                    attempts: attempt,
                    due: now + wait,
                    from: self.node_index,
                });
                return;
            }
            self.fstate[idx].phase = FaultPhase::Backoff;
            self.events.schedule(now + wait, Ev::Retry(i));
        } else {
            assert_eq!(
                self.outcomes[idx].completion,
                SimTime::ZERO,
                "dropped a call that already completed"
            );
            self.fstate[idx].phase = FaultPhase::Dropped;
            self.fault_stats.dropped += 1;
            self.drops.push(DroppedCall {
                id: self.calls[idx].id,
                func: self.calls[idx].func,
                release: self.calls[idx].release,
                node: self.node_index,
                reason: exhausted_reason,
                attempts: attempt,
            });
        }
    }

    /// A failed attempt's backoff expired: re-deliver the call through the
    /// scheduler (a fresh priority draw, like OpenWhisk's controller
    /// re-sending the request).
    fn on_retry(&mut self, now: SimTime, i: u32) {
        let idx = i as usize;
        debug_assert_eq!(self.fstate[idx].phase, FaultPhase::Backoff);
        let func = self.calls[idx].func;
        let prio = self.sched.on_receive(func, now);
        self.runtime[idx].priority = prio;
        self.runtime[idx].invoker_receive = now;
        self.begin_attempt(now, i);
        self.pending.push(prio, i);
        self.dispatch(now);
    }

    /// The pending timeout of `(i, attempt)` fired. If that attempt is
    /// still queued the client has given up on it: fail the attempt. The
    /// queue entry itself stays ([`PendingQueue`] has no removal) and is
    /// skipped lazily by `dispatch` when popped.
    fn on_pending_timeout(&mut self, now: SimTime, i: u32, attempt: u32) {
        let idx = i as usize;
        if self.fstate[idx].phase != FaultPhase::Queued || self.fstate[idx].attempt != attempt {
            return;
        }
        self.fault_stats.timeouts += 1;
        self.fail_attempt(now, i, DropReason::TimedOut);
    }

    fn on_fault(&mut self, now: SimTime, k: u32) {
        match self.timeline[k as usize].kind {
            FaultKind::SetCapacityFactor(f) => {
                self.fault_stats.capacity_events += 1;
                // Scale the busy limit; never below one core. Running
                // calls are non-preemptive, so a shrink only stops new
                // dispatches until the pool drains below the new total.
                let scaled = (self.cfg.busy_limit() as f64 * f).round().max(1.0) as u32;
                self.cores.set_total(scaled);
                self.dispatch(now); // a grow frees cores immediately
            }
            FaultKind::Crash => self.on_crash(now),
            FaultKind::Restart => self.on_restart(now),
        }
    }

    fn on_crash(&mut self, now: SimTime) {
        assert!(self.alive, "crash on a node that is already down");
        self.alive = false;
        self.incarnation += 1;
        self.fault_stats.crashes += 1;
        // Kill every in-flight attempt (init or execution). Their pending
        // ExecDone/CleanupDone timers are stale under the bumped
        // incarnation. Queued calls stay in the pending queue. Index order
        // keeps the retry schedule deterministic.
        for i in 0..self.calls.len() as u32 {
            if self.fstate[i as usize].phase == FaultPhase::Running {
                self.fault_stats.crash_kills += 1;
                self.fail_attempt(now, i, DropReason::ExhaustedRetries);
            }
        }
        self.cpu_load = 0.0;
        self.mem_load = 0.0;
        self.cores.release_all();
        self.pool.crash();
    }

    fn on_restart(&mut self, now: SimTime) {
        assert!(!self.alive, "restart on a live node");
        self.alive = true;
        // Cold boot: rebuild the prewarm stock at once, exactly like
        // `ContainerPool::new` does at time zero.
        while self.pool.replenish_prewarm() {}
        self.dispatch(now);
    }

    fn on_cleanup_done(&mut self, now: SimTime, container: ContainerId) {
        self.pool.release_idle(container, now);
        self.cores.release();
        if self.pool.prewarm_deficit() > 0 {
            self.events.schedule(
                now + self.cfg.calibration.prewarm_replacement_delay,
                Ev::PrewarmReady(self.incarnation),
            );
        }
        self.dispatch(now);
    }

    /// Start as many pending calls as free cores and memory allow, in
    /// priority order with head-of-line blocking (the queue is strict).
    /// A no-op on a dead node: arrivals keep queuing until the restart.
    fn dispatch(&mut self, now: SimTime) {
        if self.fault_on && !self.alive {
            return;
        }
        while self.cores.has_free() && !self.pending.is_empty() {
            let i = self.pending.pop().expect("non-empty queue pops");
            let idx = i as usize;
            if self.fault_on && self.fstate[idx].phase != FaultPhase::Queued {
                // Stale entry: the attempt timed out while queued (or a
                // duplicate entry already dispatched this call).
                continue;
            }
            let func = self.calls[idx].func;
            let spec = self.catalogue.spec(func);
            match self.pool.place(func, spec.memory_mb as u64, now) {
                Some(placement) => {
                    assert!(self.cores.try_acquire(), "free core checked above");
                    // Cold-start initialisation runs on the call's core at
                    // full speed (dedicated core: work in core-seconds ==
                    // seconds).
                    let calib = self.cfg.calibration;
                    let init_secs = match placement.kind {
                        ColdStartKind::Warm => 0.0,
                        ColdStartKind::Prewarm => {
                            calib.coldstart_work.sample(&mut self.rng_cold)
                                * calib.prewarm_init_fraction
                        }
                        ColdStartKind::Cold => calib.coldstart_work.sample(&mut self.rng_cold),
                    };
                    let p = spec.service_dist().sample(&mut self.rng_service);
                    // Oversubscription slowdown, frozen at dispatch (see the
                    // module docs); exactly 1 at the paper's busy limit.
                    // With a modeled memory axis the slowdown is the
                    // dominant-resource pressure: the max over the CPU and
                    // bandwidth axes (DRF semantics — the binding axis
                    // stretches the execution).
                    self.cpu_load += spec.cpu_fraction;
                    self.mem_load += mem_units(spec.memory_mb);
                    let mut slowdown = (self.cpu_load / self.cfg.cores as f64).max(1.0);
                    if self.cfg.mem_bandwidth > 0.0 {
                        slowdown = slowdown.max(self.mem_load / self.cfg.mem_bandwidth);
                    }
                    let exec_secs = p * (spec.cpu_fraction * slowdown + (1.0 - spec.cpu_fraction));
                    let exec_start = now + SimDuration::from_secs_f64(init_secs);
                    self.runtime[idx].exec_start = exec_start;
                    self.runtime[idx].processing = p;
                    self.runtime[idx].start_kind = placement.kind;
                    self.runtime[idx].container = Some(placement.container);
                    if self.fault_on {
                        self.fstate[idx].phase = FaultPhase::Running;
                    }
                    self.events.schedule(
                        exec_start + SimDuration::from_secs_f64(exec_secs),
                        Ev::ExecDone(i, self.incarnation),
                    );
                }
                None => {
                    // No memory even after eviction: requeue at the same
                    // priority and wait for a container release.
                    self.pending.push(self.runtime[idx].priority, i);
                    break;
                }
            }
        }
    }
}

/// A container's memory-bandwidth demand in bandwidth units: its
/// working-set footprint in GiB (see [`NodeConfig::mem_bandwidth`]).
fn mem_units(memory_mb: u32) -> f64 {
    memory_mb as f64 / 1024.0
}

fn prewarm_mem_mb(catalogue: &Catalogue) -> u64 {
    // Stemcells use the default action memory size.
    catalogue
        .iter()
        .map(|(_, f)| f.memory_mb as u64)
        .min()
        .unwrap_or(256)
}

fn diff_stats(
    total: crate::pool::PoolStats,
    snapshot: crate::pool::PoolStats,
) -> crate::pool::PoolStats {
    crate::pool::PoolStats {
        warm_hits: total.warm_hits - snapshot.warm_hits,
        prewarm_hits: total.prewarm_hits - snapshot.prewarm_hits,
        cold_creates: total.cold_creates - snapshot.cold_creates,
        evictions: total.evictions - snapshot.evictions,
        placement_failures: total.placement_failures - snapshot.placement_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_core::Policy;
    use faas_workload::scenario::BurstScenario;
    use faas_workload::trace::CallId;

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    fn run(policy: Policy, cores: u32, intensity: u32, seed: u64) -> NodeResult {
        let cat = catalogue();
        let scenario = BurstScenario::standard(cores, intensity).generate(&cat, seed);
        simulate(
            &cat,
            &scenario.all_calls(),
            &NodeConfig::paper(cores),
            SchedulerConfig::paper(policy),
            seed,
            0,
        )
    }

    fn faulted(
        policy: Policy,
        cores: u32,
        intensity: u32,
        seed: u64,
        faults: &FaultSpec,
    ) -> NodeResult {
        let cat = catalogue();
        let scenario = BurstScenario::standard(cores, intensity).generate(&cat, seed);
        simulate_faulted(
            &cat,
            &scenario.all_calls(),
            &NodeConfig::paper(cores),
            SchedulerConfig::paper(policy),
            faults,
            seed,
            0,
        )
    }

    use faas_workload::faults::{CapacityRamp, RetryPolicy};

    #[test]
    fn inert_fault_machinery_reproduces_the_plain_run() {
        // Floor 1.0 capacity ramp: every fault gate engages (timeline
        // merge, per-call state, zero-probability transient draws) yet no
        // event can change the schedule.
        let spec = FaultSpec {
            seed: 99,
            capacity: vec![CapacityRamp {
                node: None,
                start: SimTime::from_secs(130),
                floor: 1.0,
                steps_down: 2,
                step_every: SimDuration::from_secs(2),
                hold: SimDuration::from_secs(5),
                steps_up: 2,
            }],
            crashes: Vec::new(),
            transient_failure: 0.0,
            retry: RetryPolicy::standard(),
        };
        assert!(!spec.is_none(), "the gate must actually engage");
        let plain = run(Policy::Sept, 10, 30, 14);
        let gated = faulted(Policy::Sept, 10, 30, 14, &spec);
        assert_eq!(plain.outcomes, gated.outcomes);
        assert!(gated.drops.is_empty());
        assert_eq!(gated.fault_stats.capacity_events, 4);
        assert_eq!(gated.fault_stats.retries, 0);
    }

    #[test]
    fn capacity_degradation_slows_the_contended_run() {
        let cat = catalogue();
        let scenario = BurstScenario::standard(10, 60).generate(&cat, 15);
        let spec = FaultSpec::degradation(15, scenario.burst_start, SimDuration::from_secs(60));
        let plain = run(Policy::Sept, 10, 60, 15);
        let degraded = faulted(Policy::Sept, 10, 60, 15, &spec);
        assert!(degraded.drops.is_empty(), "degradation drops nothing");
        assert_eq!(degraded.outcomes.len(), plain.outcomes.len());
        assert_ne!(plain.outcomes, degraded.outcomes, "capacity must bite");
        assert!(
            degraded.last_completion > plain.last_completion,
            "losing cores mid-burst must delay the drain: {:?} vs {:?}",
            degraded.last_completion,
            plain.last_completion
        );
    }

    #[test]
    fn crash_kills_in_flight_calls_and_restart_drains_the_rest() {
        let cat = catalogue();
        let scenario = BurstScenario::standard(10, 60).generate(&cat, 16);
        let total = scenario.all_calls().len();
        let spec = FaultSpec::crash_restart(16, scenario.burst_start, SimDuration::from_secs(60));
        let r = faulted(Policy::Sept, 10, 60, 16, &spec);
        assert_eq!(r.fault_stats.crashes, 1);
        assert!(
            r.fault_stats.crash_kills > 0,
            "a loaded node has in-flight calls"
        );
        assert_eq!(
            r.outcomes.len() + r.drops.len(),
            total,
            "call conservation: completed XOR dropped"
        );
        assert_eq!(r.fault_stats.dropped, r.drops.len() as u64);
        assert!(
            r.drops.is_empty(),
            "one crash under 3 attempts drops nothing"
        );
        assert!(r.fault_stats.retries >= r.fault_stats.crash_kills);
        let again = faulted(Policy::Sept, 10, 60, 16, &spec);
        assert_eq!(r.outcomes, again.outcomes);
        assert_eq!(r.drops, again.drops);
        assert_eq!(r.fault_stats, again.fault_stats);
    }

    #[test]
    fn retry_storm_drops_only_fully_exhausted_calls() {
        let cat = catalogue();
        let scenario = BurstScenario::standard(10, 30).generate(&cat, 17);
        let total = scenario.all_calls().len();
        let spec = FaultSpec::retry_storm(17);
        let r = faulted(Policy::Fifo, 10, 30, 17, &spec);
        assert!(r.fault_stats.transient_failures > 0);
        assert!(r.fault_stats.retries > 0);
        assert_eq!(r.outcomes.len() + r.drops.len(), total);
        for d in &r.drops {
            assert_eq!(d.reason, DropReason::ExhaustedRetries);
            assert_eq!(d.attempts, spec.retry.max_attempts);
        }
        assert!(r.drops.len() < total / 20);
    }

    #[test]
    fn pending_timeout_abandons_queued_calls() {
        // Starve the node (tiny memory bounds concurrency) with a tight
        // no-retry timeout: the priority queue backs up and queued calls
        // are abandoned with `TimedOut` via the lazy-skip path.
        let cat = catalogue();
        let scenario = BurstScenario::standard(4, 60).generate(&cat, 18);
        let calls = scenario.all_calls();
        let total = calls.len();
        let mut spec = FaultSpec::none();
        spec.retry = RetryPolicy {
            max_attempts: 1,
            pending_timeout: Some(SimDuration::from_secs(5)),
            backoff_base: SimDuration::ZERO,
            backoff_factor: 1.0,
            jitter: 0.0,
        };
        let cfg = NodeConfig::paper(4).with_memory_mb(1024);
        let r = simulate_faulted(
            &cat,
            &calls,
            &cfg,
            SchedulerConfig::paper(Policy::Fifo),
            &spec,
            18,
            0,
        );
        assert!(!r.drops.is_empty(), "a starved queue must time calls out");
        assert!(r.drops.iter().all(|d| d.reason == DropReason::TimedOut));
        assert_eq!(r.fault_stats.timeouts, r.drops.len() as u64);
        assert_eq!(r.outcomes.len() + r.drops.len(), total);
    }

    #[test]
    fn every_call_completes() {
        let r = run(Policy::Fifo, 10, 30, 1);
        assert_eq!(r.measured_len(), 330);
        for o in r.measured() {
            assert!(o.completion > o.release);
            assert!(o.exec_end >= o.exec_start);
            assert!(o.invoker_receive >= o.release);
        }
    }

    #[test]
    fn warm_pool_eliminates_measured_cold_starts() {
        // With 32 GiB and 10 cores the warm-up creates every container the
        // burst needs: measured cold starts ~ 0 (Fig. 2b plateau).
        let r = run(Policy::Fifo, 10, 30, 2);
        assert_eq!(
            r.measured_cold_starts(),
            0,
            "32 GiB must eliminate measured cold starts"
        );
    }

    #[test]
    fn tiny_memory_causes_cold_starts() {
        let cat = catalogue();
        let scenario = BurstScenario::standard(10, 30).generate(&cat, 3);
        let cfg = NodeConfig::paper(10).with_memory_mb(2048);
        let r = simulate(
            &cat,
            &scenario.all_calls(),
            &cfg,
            SchedulerConfig::paper(Policy::Fifo),
            3,
            0,
        );
        assert!(
            r.measured_cold_starts() > 100,
            "2 GiB must thrash: got {}",
            r.measured_cold_starts()
        );
        assert!(r.total_pool_stats.evictions > 0);
    }

    #[test]
    fn concurrency_never_exceeds_cores() {
        let r = run(Policy::Sept, 5, 60, 4);
        assert!(r.peak_concurrency <= 5, "busy containers bounded by cores");
    }

    #[test]
    fn sept_beats_fifo_on_average_response_under_load() {
        let fifo = run(Policy::Fifo, 10, 60, 5);
        let sept = run(Policy::Sept, 10, 60, 5);
        let avg = |r: &NodeResult| {
            let v: Vec<f64> = r
                .measured()
                .map(|o| o.response_time().as_secs_f64())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let f = avg(&fifo);
        let s = avg(&sept);
        assert!(
            s < f / 2.0,
            "SEPT ({s:.1}s) must clearly beat FIFO ({f:.1}s) at intensity 60"
        );
    }

    #[test]
    fn fifo_orders_executions_by_receive_time() {
        let r = run(Policy::Fifo, 10, 30, 6);
        let mut measured: Vec<&CallOutcome> = r.measured().collect();
        measured.sort_by_key(|o| o.exec_start);
        // Under FIFO, execution start order must follow receive order.
        for pair in measured.windows(2) {
            assert!(
                pair[0].invoker_receive <= pair[1].invoker_receive,
                "FIFO must not reorder {:?} vs {:?}",
                pair[0].id,
                pair[1].id
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(Policy::FairChoice, 10, 40, 7);
        let b = run(Policy::FairChoice, 10, 40, 7);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.peak_queue, b.peak_queue);
    }

    #[test]
    fn different_policies_differ() {
        let a = run(Policy::Fifo, 10, 40, 8);
        let b = run(Policy::Sept, 10, 40, 8);
        assert_ne!(a.outcomes, b.outcomes);
    }

    #[test]
    fn outcome_ids_match_calls() {
        let cat = catalogue();
        let scenario = BurstScenario::standard(5, 30).generate(&cat, 9);
        let calls = scenario.all_calls();
        let r = simulate(
            &cat,
            &calls,
            &NodeConfig::paper(5),
            SchedulerConfig::paper(Policy::Eect),
            9,
            3,
        );
        assert_eq!(r.outcomes.len(), calls.len());
        for (o, c) in r.outcomes.iter().zip(&calls) {
            assert_eq!(o.id, c.id);
            assert_eq!(o.func, c.func);
            assert_eq!(o.node, 3);
        }
        let _ = CallId(0);
    }

    #[test]
    fn oversubscription_admits_more_busy_containers() {
        let cat = catalogue();
        let scenario = BurstScenario::standard(5, 60).generate(&cat, 21);
        let cfg = NodeConfig::paper(5).with_busy_limit_factor(2.0);
        let r = simulate(
            &cat,
            &scenario.all_calls(),
            &cfg,
            SchedulerConfig::paper(Policy::Fifo),
            21,
            0,
        );
        assert!(
            r.peak_concurrency > 5 && r.peak_concurrency <= 10,
            "peak {} should exceed 5 cores but respect the 2x limit",
            r.peak_concurrency
        );
    }

    #[test]
    fn oversubscription_helps_io_bound_workloads() {
        // A sleep-only catalogue: dedicated cores idle during the wait, so
        // doubling the busy limit nearly doubles throughput (SSIV-A's
        // stated trade-off).
        use faas_workload::sebs::{FunctionSpec, IntensityClass};
        let cat = Catalogue::from_functions(vec![FunctionSpec {
            name: "sleep",
            client_p5_ms: 1020.0,
            client_median_ms: 1022.0,
            client_p95_ms: 1026.0,
            cpu_fraction: 0.02,
            memory_mb: 256,
            class: IntensityClass::Io,
        }]);
        // 2 cores, 80 sleep calls in 60 s: far beyond 2 dedicated cores.
        let scenario = BurstScenario::standard(2, 400).generate(&cat, 22);
        let avg = |factor: f64| {
            let cfg = NodeConfig::paper(2).with_busy_limit_factor(factor);
            let r = simulate(
                &cat,
                &scenario.all_calls(),
                &cfg,
                SchedulerConfig::paper(Policy::Fifo),
                22,
                0,
            );
            let v: Vec<f64> = r
                .measured()
                .map(|o| o.response_time().as_secs_f64())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let dedicated = avg(1.0);
        let oversub = avg(3.0);
        assert!(
            oversub < dedicated * 0.7,
            "I/O-bound: 3x limit ({oversub:.1}s) must clearly beat 1x ({dedicated:.1}s)"
        );
    }

    #[test]
    fn default_busy_limit_keeps_slowdown_exact() {
        // factor 1.0 must behave identically to the pre-extension model:
        // executed duration equals the drawn processing time.
        let r = run(Policy::Fifo, 5, 30, 23);
        for o in r.measured() {
            let exec = o.exec_end.saturating_since(o.exec_start);
            assert_eq!(exec, o.processing, "no slowdown at the paper's limit");
        }
    }

    #[test]
    fn response_includes_both_hops() {
        // An unloaded call's response is at least init + p + 10 ms.
        let cat = catalogue();
        let func = cat.by_name("sleep").unwrap();
        let calls = vec![Call {
            id: CallId(0),
            func,
            release: SimTime::ZERO,
            kind: CallKind::Measured,
        }];
        let r = simulate(
            &cat,
            &calls,
            &NodeConfig::paper(2),
            SchedulerConfig::paper(Policy::Fifo),
            1,
            0,
        );
        let o = &r.outcomes[0];
        let resp = o.response_time().as_secs_f64();
        // Prewarm init (0.35 x 0.5-2.0s) + ~1.012s sleep + 10ms hops.
        assert!(resp > 1.1, "response {resp}");
        assert!(resp < 3.2, "response {resp}");
        assert_eq!(
            o.start_kind,
            ColdStartKind::Prewarm,
            "stemcell should serve the first call"
        );
    }
}
