//! Randomised invariant checks of the node simulations. The simulations are
//! expensive, so the proptest case count is kept small; each case still
//! checks every call of a full (reduced) run.

use faas_core::{Policy, SchedulerConfig};
use faas_invoker::{simulate_scenario, NodeConfig, NodeMode};
use faas_workload::scenario::BurstScenario;
use faas_workload::sebs::Catalogue;
use proptest::prelude::*;

fn policies() -> Vec<NodeMode> {
    vec![
        NodeMode::Baseline,
        NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
        NodeMode::Scheduled(SchedulerConfig::paper(Policy::Sept)),
        NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Causality, conservation and the busy-container bound hold for random
    /// (cores, intensity, seed, memory).
    #[test]
    fn node_invariants_hold(
        cores in 2u32..8,
        intensity in prop::sample::select(vec![10u32, 20, 30]),
        memory_gb in prop::sample::select(vec![4u64, 8, 32]),
        seed in any::<u64>()
    ) {
        let catalogue = Catalogue::sebs();
        let scenario = BurstScenario::standard(cores, intensity).generate(&catalogue, seed);
        let cfg = NodeConfig::paper(cores).with_memory_mb(memory_gb * 1024);
        for mode in policies() {
            let result = simulate_scenario(&catalogue, &scenario, &mode, &cfg, seed);
            prop_assert_eq!(result.measured_len(), scenario.measured_len());
            for o in &result.outcomes {
                prop_assert!(o.invoker_receive >= o.release);
                prop_assert!(o.exec_start >= o.invoker_receive);
                prop_assert!(o.exec_end >= o.exec_start);
                prop_assert!(o.completion >= o.exec_end);
            }
            if let NodeMode::Scheduled(_) = mode {
                prop_assert!(
                    result.peak_concurrency <= cores as usize,
                    "busy containers {} exceed {} cores",
                    result.peak_concurrency,
                    cores
                );
            }
            // Memory accounting: the pool can never exceed its budget, so
            // peak concurrency is also bounded by memory slots.
            let slots = (memory_gb * 1024 / 256) as usize;
            prop_assert!(result.peak_concurrency <= slots);
        }
    }

    /// Pool statistics tally with per-call start kinds.
    #[test]
    fn pool_stats_match_outcomes(
        cores in 2u32..6,
        seed in any::<u64>()
    ) {
        let catalogue = Catalogue::sebs();
        let scenario = BurstScenario::standard(cores, 20).generate(&catalogue, seed);
        let cfg = NodeConfig::paper(cores);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo));
        let result = simulate_scenario(&catalogue, &scenario, &mode, &cfg, seed);
        // Every placement is attributable to exactly one call, so totals
        // over all outcomes equal the pool counters.
        use faas_workload::trace::ColdStartKind;
        let warm = result
            .outcomes
            .iter()
            .filter(|o| o.start_kind == ColdStartKind::Warm)
            .count() as u64;
        let prewarm = result
            .outcomes
            .iter()
            .filter(|o| o.start_kind == ColdStartKind::Prewarm)
            .count() as u64;
        let cold = result
            .outcomes
            .iter()
            .filter(|o| o.start_kind == ColdStartKind::Cold)
            .count() as u64;
        let stats = result.total_pool_stats;
        prop_assert_eq!(stats.warm_hits, warm);
        prop_assert_eq!(stats.prewarm_hits, prewarm);
        prop_assert_eq!(stats.cold_creates, cold);
    }
}
