//! Edge-case integration tests of the invoker substrate: eviction cascades,
//! prewarm replacement, tiny nodes, degenerate workloads.

use faas_core::{Policy, SchedulerConfig};
use faas_invoker::{simulate_calls, simulate_scenario, NodeConfig, NodeMode};
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::scenario::BurstScenario;
use faas_workload::sebs::Catalogue;
use faas_workload::trace::{Call, CallId, CallKind};

fn catalogue() -> Catalogue {
    Catalogue::sebs()
}

#[test]
fn single_core_node_serialises_everything() {
    let cat = catalogue();
    let scenario = BurstScenario::standard(1, 30).generate(&cat, 1);
    let cfg = NodeConfig::paper(1);
    let r = simulate_scenario(
        &cat,
        &scenario,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
        &cfg,
        1,
    );
    assert_eq!(r.peak_concurrency, 1);
    // Executions never overlap on one core.
    let mut spans: Vec<(SimTime, SimTime)> = r
        .outcomes
        .iter()
        .map(|o| (o.exec_start, o.exec_end))
        .collect();
    spans.sort();
    for w in spans.windows(2) {
        assert!(w[0].1 <= w[1].0, "overlap: {:?} then {:?}", w[0], w[1]);
    }
}

#[test]
fn memory_of_exactly_one_container_still_completes() {
    // Pathological: room for one 256 MiB container (plus no prewarm).
    let cat = catalogue();
    let mut cfg = NodeConfig::paper(1).with_memory_mb(256);
    cfg.prewarm_count = 0;
    let calls: Vec<Call> = (0..20)
        .map(|i| Call {
            id: CallId(i),
            func: cat.by_name("graph-bfs").unwrap(),
            release: SimTime::from_millis(100 * i),
            kind: CallKind::Measured,
        })
        .collect();
    let r = simulate_calls(
        &cat,
        &calls,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
        &cfg,
        2,
        0,
    );
    assert_eq!(r.measured_len(), 20);
    // One container serves everything after its single cold start.
    assert_eq!(r.total_pool_stats.cold_creates, 1);
    assert_eq!(r.total_pool_stats.warm_hits, 19);
}

#[test]
fn alternating_functions_on_tiny_memory_thrash_via_eviction() {
    let cat = catalogue();
    let mut cfg = NodeConfig::paper(1).with_memory_mb(256);
    cfg.prewarm_count = 0;
    let a = cat.by_name("graph-bfs").unwrap();
    let b = cat.by_name("graph-mst").unwrap();
    let calls: Vec<Call> = (0..20)
        .map(|i| Call {
            id: CallId(i),
            func: if i % 2 == 0 { a } else { b },
            release: SimTime::from_millis(500 * i),
            kind: CallKind::Measured,
        })
        .collect();
    let r = simulate_calls(
        &cat,
        &calls,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
        &cfg,
        3,
        0,
    );
    // Every call needs its own container; each creation evicts the previous
    // function's idle container.
    assert_eq!(r.total_pool_stats.cold_creates, 20);
    assert_eq!(r.total_pool_stats.evictions, 19);
    assert_eq!(r.total_pool_stats.warm_hits, 0);
}

#[test]
fn prewarm_pool_replenishes_and_serves_again() {
    let cat = catalogue();
    let mut cfg = NodeConfig::paper(2);
    cfg.prewarm_count = 1;
    cfg.calibration.prewarm_replacement_delay = SimDuration::from_millis(100);
    let f = cat.by_name("dynamic-html").unwrap();
    let g = cat.by_name("thumbnailer").unwrap();
    // Two different functions far apart in time: both should hit prewarm
    // (the second one the replacement stemcell).
    let calls = vec![
        Call {
            id: CallId(0),
            func: f,
            release: SimTime::ZERO,
            kind: CallKind::Measured,
        },
        Call {
            id: CallId(1),
            func: g,
            release: SimTime::from_secs(30),
            kind: CallKind::Measured,
        },
    ];
    let r = simulate_calls(
        &cat,
        &calls,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
        &cfg,
        4,
        0,
    );
    assert_eq!(
        r.total_pool_stats.prewarm_hits, 2,
        "stats: {:?}",
        r.total_pool_stats
    );
}

#[test]
fn baseline_handles_burst_arriving_in_one_instant() {
    // All calls released at the same nanosecond: a worst-case arrival spike.
    let cat = catalogue();
    let f = cat.by_name("graph-pagerank").unwrap();
    let calls: Vec<Call> = (0..200)
        .map(|i| Call {
            id: CallId(i),
            func: f,
            release: SimTime::from_secs(1),
            kind: CallKind::Measured,
        })
        .collect();
    let r = simulate_calls(
        &cat,
        &calls,
        &NodeMode::Baseline,
        &NodeConfig::paper(4),
        5,
        0,
    );
    assert_eq!(r.measured_len(), 200);
    for o in r.measured() {
        assert!(o.completion > o.release);
    }
}

#[test]
fn scheduled_node_handles_instant_spike_of_long_calls() {
    let cat = catalogue();
    let f = cat.by_name("dna-visualisation").unwrap();
    let calls: Vec<Call> = (0..30)
        .map(|i| Call {
            id: CallId(i),
            func: f,
            release: SimTime::from_secs(1),
            kind: CallKind::Measured,
        })
        .collect();
    let r = simulate_calls(
        &cat,
        &calls,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Sept)),
        &NodeConfig::paper(2),
        6,
        0,
    );
    assert_eq!(r.measured_len(), 30);
    // Ties in priority (same function, same estimate) must serve FIFO.
    // Only warm starts are checked: the two initial prewarm placements
    // dispatch simultaneously and their random init times scramble
    // exec_start without scrambling the dispatch order.
    use faas_workload::trace::ColdStartKind;
    let mut by_start: Vec<_> = r
        .measured()
        .filter(|o| o.start_kind == ColdStartKind::Warm)
        .collect();
    by_start.sort_by_key(|o| o.exec_start);
    for w in by_start.windows(2) {
        assert!(w[0].id < w[1].id, "FIFO tie-break violated");
    }
}

#[test]
fn empty_measured_phase_is_not_a_crash() {
    // A warm-up-only call list exercises the snapshot edge case.
    let cat = catalogue();
    let calls = vec![Call {
        id: CallId(0),
        func: cat.by_name("sleep").unwrap(),
        release: SimTime::ZERO,
        kind: CallKind::Warmup,
    }];
    let r = simulate_calls(
        &cat,
        &calls,
        &NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
        &NodeConfig::paper(1),
        7,
        0,
    );
    assert_eq!(r.measured_len(), 0);
    assert_eq!(r.measured_cold_starts(), 0);
}

#[test]
fn event_queue_stays_bounded_by_live_tasks() {
    // Regression for the stale-GpsTick pattern: the baseline invoker used
    // to schedule a fresh generation-stamped tick on every arrival/IO/
    // completion without cancelling the previous one, so every simulated
    // event pushed a dead entry through the heap (plus hash-map traffic on
    // the pop path). With the tick rescheduled in place, the queue can
    // never hold more than the live events: the pre-scheduled arrivals,
    // at most one IoDone/CleanupDone per leased container, at most one
    // tick, and a handful of in-flight PrewarmReady events.
    // (See also `reschedule_burst_keeps_len_bounded_by_live_events` in
    // faas-simcore, which pins the thousands-of-dead-entries case at the
    // queue level.)
    let cat = catalogue();
    let scenario = BurstScenario::standard(10, 90).generate(&cat, 42);
    let calls = scenario.all_calls();
    for mode in [
        NodeMode::Baseline,
        NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo)),
    ] {
        let r = simulate_calls(&cat, &calls, &mode, &NodeConfig::paper(10), 42, 0);
        let bound = calls.len() + 16;
        assert!(
            r.peak_events <= bound,
            "event queue must stay O(live tasks) under {mode:?}: peak {} > bound {} (calls {})",
            r.peak_events,
            bound,
            calls.len()
        );
    }
}
