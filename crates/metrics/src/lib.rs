//! # faas-metrics
//!
//! Aggregation and reporting of experiment results, following the paper's
//! conventions exactly:
//!
//! * [`summary`] — response-time and stretch summaries (`R(i)`, `S(i)`),
//!   relative to the burst-window start, with the paper's percentile set and
//!   `max c(i)`.
//! * [`table`] — plain-text table rendering for the experiment binaries.
//! * [`compare`] — reference values transcribed from the paper's tables and
//!   ratio helpers, so every run can print paper-vs-measured side by side.
//! * [`export`] — JSON/CSV export of rows for offline plotting.

pub mod compare;
pub mod export;
pub mod summary;
pub mod table;

pub use summary::{
    FaultCounts, MetricSummary, ResourceSummary, ResourceUsage, RobustnessSummary, RunSummary,
};
pub use table::TextTable;
