//! Result export: JSON (via serde) and CSV for offline plotting, plus the
//! read-back half used by the perf-trajectory tooling (`BENCH_HISTORY.json`
//! append/gate) and plain-text emission for the static dashboard.

use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Serialise any serde-able value to pretty JSON at `path`, creating parent
/// directories as needed.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Read the JSON document at `path` and deserialize it — the inverse of
/// [`write_json`]. Parse failures surface as `InvalidData` so callers can
/// distinguish a malformed file from a missing one (`NotFound`).
pub fn read_json<T: Deserialize>(path: &Path) -> std::io::Result<T> {
    let text = fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Write a plain-text document (HTML, CSV fragments, …) at `path`, creating
/// parent directories as needed.
pub fn write_text(path: &Path, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, text)
}

/// A CSV writer with minimal quoting (fields containing commas, quotes or
/// newlines are quoted and inner quotes doubled).
pub struct CsvWriter {
    out: Vec<u8>,
    columns: usize,
}

impl CsvWriter {
    /// Start a CSV document with the given header.
    pub fn new(header: &[&str]) -> Self {
        let mut w = CsvWriter {
            out: Vec::new(),
            columns: header.len(),
        };
        w.write_row_raw(header.iter().map(|s| s.to_string()));
        w
    }

    /// Append a row of cells; must match the header width.
    pub fn row<S: ToString, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(
            cells.len(),
            self.columns,
            "CSV row width mismatch: {} vs {}",
            cells.len(),
            self.columns
        );
        self.write_row_raw(cells.into_iter());
    }

    fn write_row_raw<I: Iterator<Item = String>>(&mut self, cells: I) {
        let mut first = true;
        for cell in cells {
            if !first {
                self.out.push(b',');
            }
            first = false;
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                self.out.push(b'"');
                self.out
                    .extend_from_slice(cell.replace('"', "\"\"").as_bytes());
                self.out.push(b'"');
            } else {
                self.out.extend_from_slice(cell.as_bytes());
            }
        }
        self.out.push(b'\n');
    }

    /// The document as a string.
    pub fn to_string_lossy(&self) -> String {
        String::from_utf8_lossy(&self.out).into_owned()
    }

    /// Write the document to `path`, creating parent directories.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(path)?;
        f.write_all(&self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_basic_rows() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(["1", "2"]);
        w.row(["x", "y"]);
        assert_eq!(w.to_string_lossy(), "a,b\n1,2\nx,y\n");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut w = CsvWriter::new(&["v"]);
        w.row(["has,comma"]);
        w.row(["has\"quote"]);
        assert_eq!(w.to_string_lossy(), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
    }

    #[test]
    fn csv_accepts_numbers() {
        let mut w = CsvWriter::new(&["n", "f"]);
        w.row([format!("{}", 3), format!("{:.2}", 1.5)]);
        assert!(w.to_string_lossy().contains("3,1.50"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn csv_width_checked() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(["only"]);
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("faas_metrics_test");
        let path = dir.join("x.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let back: Vec<i32> = serde_json::from_str(&body).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn json_read_back_and_error_kinds() {
        let dir = std::env::temp_dir().join("faas_metrics_test_read");
        let path = dir.join("r.json");
        write_json(&path, &vec![4u32, 5, 6]).unwrap();
        let back: Vec<u32> = read_json(&path).unwrap();
        assert_eq!(back, vec![4, 5, 6]);
        let missing = read_json::<Vec<u32>>(&dir.join("absent.json")).unwrap_err();
        assert_eq!(missing.kind(), std::io::ErrorKind::NotFound);
        std::fs::write(dir.join("bad.json"), "{oops").unwrap();
        let bad = read_json::<Vec<u32>>(&dir.join("bad.json")).unwrap_err();
        assert_eq!(bad.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn write_text_creates_dirs_and_round_trips() {
        let dir = std::env::temp_dir().join("faas_metrics_test_text/deep");
        let path = dir.join("page.html");
        write_text(&path, "<html>ok</html>").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "<html>ok</html>");
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join("faas_metrics_test_text"));
    }

    #[test]
    fn csv_write_to_creates_dirs() {
        let dir = std::env::temp_dir().join("faas_metrics_test_csv/deep");
        let path = dir.join("t.csv");
        let mut w = CsvWriter::new(&["a"]);
        w.row(["1"]);
        w.write_to(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join("faas_metrics_test_csv"));
    }
}
