//! Result export: JSON (via serde) and CSV for offline plotting.

use serde::Serialize;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Serialise any serde-able value to pretty JSON at `path`, creating parent
/// directories as needed.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// A CSV writer with minimal quoting (fields containing commas, quotes or
/// newlines are quoted and inner quotes doubled).
pub struct CsvWriter {
    out: Vec<u8>,
    columns: usize,
}

impl CsvWriter {
    /// Start a CSV document with the given header.
    pub fn new(header: &[&str]) -> Self {
        let mut w = CsvWriter {
            out: Vec::new(),
            columns: header.len(),
        };
        w.write_row_raw(header.iter().map(|s| s.to_string()));
        w
    }

    /// Append a row of cells; must match the header width.
    pub fn row<S: ToString, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(
            cells.len(),
            self.columns,
            "CSV row width mismatch: {} vs {}",
            cells.len(),
            self.columns
        );
        self.write_row_raw(cells.into_iter());
    }

    fn write_row_raw<I: Iterator<Item = String>>(&mut self, cells: I) {
        let mut first = true;
        for cell in cells {
            if !first {
                self.out.push(b',');
            }
            first = false;
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                self.out.push(b'"');
                self.out
                    .extend_from_slice(cell.replace('"', "\"\"").as_bytes());
                self.out.push(b'"');
            } else {
                self.out.extend_from_slice(cell.as_bytes());
            }
        }
        self.out.push(b'\n');
    }

    /// The document as a string.
    pub fn to_string_lossy(&self) -> String {
        String::from_utf8_lossy(&self.out).into_owned()
    }

    /// Write the document to `path`, creating parent directories.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(path)?;
        f.write_all(&self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_basic_rows() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(["1", "2"]);
        w.row(["x", "y"]);
        assert_eq!(w.to_string_lossy(), "a,b\n1,2\nx,y\n");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut w = CsvWriter::new(&["v"]);
        w.row(["has,comma"]);
        w.row(["has\"quote"]);
        assert_eq!(w.to_string_lossy(), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
    }

    #[test]
    fn csv_accepts_numbers() {
        let mut w = CsvWriter::new(&["n", "f"]);
        w.row([format!("{}", 3), format!("{:.2}", 1.5)]);
        assert!(w.to_string_lossy().contains("3,1.50"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn csv_width_checked() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(["only"]);
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("faas_metrics_test");
        let path = dir.join("x.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let back: Vec<i32> = serde_json::from_str(&body).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_write_to_creates_dirs() {
        let dir = std::env::temp_dir().join("faas_metrics_test_csv/deep");
        let path = dir.join("t.csv");
        let mut w = CsvWriter::new(&["a"]);
        w.row(["1"]);
        w.write_to(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join("faas_metrics_test_csv"));
    }
}
