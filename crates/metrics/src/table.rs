//! Plain-text table rendering for the experiment binaries.
//!
//! Produces aligned, pipe-separated tables — enough to eyeball every
//! reproduced table next to the paper's and to paste into EXPERIMENTS.md.

/// A simple text table builder with right-aligned numeric columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str(" | ");
                }
                // Left-align the first column (labels), right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 3 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with sensible precision for table cells.
pub fn fmt_secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a dimensionless ratio.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1.0"]);
        t.row(["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn first_column_left_rest_right() {
        let mut t = TextTable::new(["k", "val"]);
        t.row(["x", "9"]);
        let s = t.render();
        let data = s.lines().nth(2).unwrap();
        assert_eq!(data, "x |   9");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(["a"]);
        assert!(t.is_empty());
        t.row(["x"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fmt_secs_precision() {
        assert_eq!(fmt_secs(123.456), "123");
        assert_eq!(fmt_secs(12.345), "12.3");
        assert_eq!(fmt_secs(1.234), "1.23");
        assert_eq!(fmt_secs(0.012), "0.01");
    }

    #[test]
    fn fmt_ratio_two_decimals() {
        assert_eq!(fmt_ratio(3.44159), "3.44");
    }
}
