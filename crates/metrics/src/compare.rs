//! Reference values transcribed from the paper, for side-by-side
//! paper-vs-measured reporting.
//!
//! * [`TABLE3`] — the aggregated single-node results (paper Table III):
//!   response-time statistics, stretch statistics and `max c(i)` for every
//!   (CPUs, intensity, strategy) combination.
//! * [`TABLE2`] — the FIFO-to-baseline maximum-completion-time ratio ranges
//!   (paper Table II).
//! * [`TABLE5`] — the aggregated multi-node results (paper Table V).

use serde::{Deserialize, Serialize};

/// Strategy labels in the paper's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Unmodified OpenWhisk.
    Baseline,
    /// The paper's FIFO variant.
    Fifo,
    /// Shortest expected processing time.
    Sept,
    /// Earliest expected completion time.
    Eect,
    /// Recent expected completion time.
    Rect,
    /// Fair-Choice.
    Fc,
}

impl Strategy {
    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Baseline => "baseline",
            Strategy::Fifo => "FIFO",
            Strategy::Sept => "SEPT",
            Strategy::Eect => "EECT",
            Strategy::Rect => "RECT",
            Strategy::Fc => "FC",
        }
    }
}

/// One row of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// CPU cores for action containers.
    pub cpus: u32,
    /// Load intensity.
    pub intensity: u32,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Response time: average, 50/75/95/99th percentiles (seconds).
    pub r_avg: f64,
    /// Median response time.
    pub r_p50: f64,
    /// 75th percentile response time.
    pub r_p75: f64,
    /// 95th percentile response time.
    pub r_p95: f64,
    /// 99th percentile response time.
    pub r_p99: f64,
    /// Average stretch.
    pub s_avg: f64,
    /// Median stretch.
    pub s_p50: f64,
    /// Maximum completion time `max c(i)` (seconds).
    pub max_c: f64,
}

macro_rules! t3 {
    ($cpus:expr, $int:expr, $strat:ident, $ra:expr, $r50:expr, $r75:expr, $r95:expr, $r99:expr, $sa:expr, $s50:expr, $mc:expr) => {
        Table3Row {
            cpus: $cpus,
            intensity: $int,
            strategy: Strategy::$strat,
            r_avg: $ra,
            r_p50: $r50,
            r_p75: $r75,
            r_p95: $r95,
            r_p99: $r99,
            s_avg: $sa,
            s_p50: $s50,
            max_c: $mc,
        }
    };
}

/// Paper Table III (aggregated on-premises results), all 90 rows.
pub const TABLE3: [Table3Row; 90] = [
    t3!(5, 30, Baseline, 3.79, 0.49, 4.11, 18.90, 32.14, 18.40, 3.83, 73.53),
    t3!(5, 30, Eect, 6.43, 3.88, 8.00, 25.04, 29.57, 99.15, 13.62, 85.57),
    t3!(5, 30, Fc, 5.54, 2.20, 6.48, 23.66, 36.83, 59.38, 8.69, 86.23),
    t3!(5, 30, Fifo, 10.79, 10.97, 16.34, 22.48, 27.57, 267.49, 37.72, 87.56),
    t3!(5, 30, Rect, 6.74, 3.76, 9.27, 25.42, 30.84, 110.13, 12.27, 85.89),
    t3!(5, 30, Sept, 5.58, 2.25, 6.67, 20.77, 55.62, 66.97, 8.39, 86.52),
    t3!(5, 40, Baseline, 7.84, 0.78, 9.69, 49.43, 65.22, 42.40, 4.50, 98.65),
    t3!(5, 40, Eect, 12.68, 8.62, 20.37, 42.85, 49.69, 240.75, 31.92, 111.33),
    t3!(5, 40, Fc, 8.04, 1.84, 5.86, 48.20, 55.67, 60.00, 10.16, 113.19),
    t3!(5, 40, Fifo, 21.73, 22.12, 31.99, 41.98, 47.63, 592.82, 109.31, 108.66),
    t3!(5, 40, Rect, 12.90, 7.71, 20.28, 41.73, 50.01, 249.60, 33.74, 107.61),
    t3!(5, 40, Sept, 8.01, 1.95, 7.62, 47.39, 83.08, 70.75, 11.26, 112.69),
    t3!(5, 60, Baseline, 31.54, 23.97, 48.77, 100.60, 115.51, 638.02, 50.13, 155.92),
    t3!(5, 60, Eect, 30.11, 25.76, 50.37, 81.06, 98.03, 710.32, 81.45, 159.58),
    t3!(5, 60, Fc, 14.24, 1.47, 5.85, 90.18, 106.32, 87.99, 10.38, 165.98),
    t3!(5, 60, Fifo, 46.78, 46.39, 70.99, 89.01, 94.76, 1351.39, 270.23, 158.81),
    t3!(5, 60, Rect, 32.78, 29.94, 52.70, 81.52, 97.73, 800.29, 109.32, 162.50),
    t3!(5, 60, Sept, 13.94, 1.46, 5.37, 103.82, 118.37, 90.72, 10.88, 173.84),
    t3!(5, 90, Baseline, 76.56, 67.91, 129.62, 166.84, 174.65, 2056.74, 264.63, 244.70),
    t3!(5, 90, Eect, 58.73, 51.93, 98.46, 144.19, 173.34, 1477.99, 185.33, 240.29),
    t3!(5, 90, Fc, 22.93, 1.22, 5.82, 150.14, 183.61, 118.44, 11.29, 246.51),
    t3!(5, 90, Fifo, 85.57, 83.47, 130.60, 163.63, 171.31, 2520.90, 502.49, 237.99),
    t3!(5, 90, Rect, 60.41, 54.69, 99.59, 145.50, 174.24, 1542.98, 188.08, 240.56),
    t3!(5, 90, Sept, 23.44, 1.22, 5.70, 166.37, 197.88, 128.88, 10.22, 257.22),
    t3!(5, 120, Baseline, 120.51, 121.39, 190.35, 253.43, 270.09, 3399.50, 569.46, 345.26),
    t3!(5, 120, Eect, 86.76, 79.90, 147.58, 203.09, 247.98, 2215.09, 300.10, 315.79),
    t3!(5, 120, Fc, 32.50, 1.16, 12.80, 209.93, 259.32, 157.91, 13.98, 325.65),
    t3!(5, 120, Fifo, 124.95, 124.89, 186.62, 239.51, 248.62, 3692.52, 745.51, 317.34),
    t3!(5, 120, Rect, 90.74, 84.65, 150.90, 206.02, 248.73, 2359.35, 336.33, 318.62),
    t3!(5, 120, Sept, 33.54, 1.09, 5.15, 236.60, 272.83, 196.43, 10.39, 349.09),
    t3!(10, 30, Baseline, 14.78, 2.82, 20.37, 71.04, 84.41, 261.61, 4.67, 128.65),
    t3!(10, 30, Eect, 13.22, 4.55, 11.17, 79.27, 93.93, 166.66, 20.42, 153.17),
    t3!(10, 30, Fc, 10.67, 1.62, 6.29, 81.10, 91.89, 83.59, 8.94, 150.75),
    t3!(10, 30, Fifo, 36.42, 37.97, 55.78, 69.94, 86.56, 1000.59, 199.93, 150.51),
    t3!(10, 30, Rect, 12.15, 3.37, 10.66, 74.57, 90.25, 144.19, 15.44, 149.43),
    t3!(10, 30, Sept, 12.52, 1.73, 8.55, 84.58, 131.41, 104.11, 10.35, 174.91),
    t3!(10, 40, Baseline, 64.43, 61.00, 108.77, 154.20, 181.03, 1837.13, 187.27, 251.03),
    t3!(10, 40, Eect, 21.36, 7.03, 29.23, 108.73, 133.87, 312.56, 33.89, 199.08),
    t3!(10, 40, Fc, 14.52, 1.24, 5.08, 111.98, 132.91, 95.18, 8.10, 194.24),
    t3!(10, 40, Fifo, 58.29, 59.30, 86.89, 112.32, 125.61, 1647.40, 332.79, 194.84),
    t3!(10, 40, Rect, 20.37, 5.70, 27.18, 99.79, 127.44, 297.64, 28.59, 190.04),
    t3!(10, 40, Sept, 17.01, 1.53, 7.41, 112.04, 180.39, 130.87, 9.86, 216.74),
    t3!(10, 60, Baseline, 123.36, 116.07, 201.95, 274.14, 295.28, 3608.83, 525.59, 369.25),
    t3!(10, 60, Eect, 40.93, 14.05, 72.20, 163.55, 217.66, 766.19, 77.38, 283.88),
    t3!(10, 60, Fc, 22.65, 1.07, 5.43, 168.50, 213.96, 134.24, 9.24, 280.89),
    t3!(10, 60, Fifo, 101.76, 102.51, 151.86, 194.93, 206.76, 2959.46, 577.59, 277.47),
    t3!(10, 60, Rect, 40.42, 13.38, 69.02, 155.80, 211.23, 763.78, 69.68, 274.04),
    t3!(10, 60, Sept, 25.14, 1.07, 4.55, 179.04, 269.92, 164.52, 8.50, 314.87),
    t3!(10, 90, Baseline, 163.41, 160.93, 250.53, 332.04, 365.07, 4748.15, 961.85, 442.46),
    t3!(10, 90, Eect, 68.52, 31.49, 114.37, 247.83, 339.17, 1360.79, 141.64, 415.94),
    t3!(10, 90, Fc, 34.90, 0.92, 14.38, 253.47, 334.52, 195.96, 10.68, 411.55),
    t3!(10, 90, Fifo, 166.79, 166.11, 247.05, 319.84, 332.49, 4890.04, 992.74, 410.28),
    t3!(10, 90, Rect, 72.55, 35.91, 119.24, 246.27, 334.55, 1510.78, 195.02, 411.09),
    t3!(10, 90, Sept, 39.65, 0.88, 3.95, 293.21, 421.20, 246.66, 8.16, 467.82),
    t3!(10, 120, Baseline, 340.28, 334.90, 530.57, 679.62, 727.89, 10098.53, 1804.64, 816.32),
    t3!(10, 120, Eect, 102.92, 56.33, 166.78, 340.72, 463.55, 2194.44, 299.42, 554.27),
    t3!(10, 120, Fc, 49.48, 0.88, 24.30, 343.05, 456.92, 262.87, 11.82, 544.74),
    t3!(10, 120, Fifo, 233.94, 233.63, 349.59, 442.46, 463.08, 6893.03, 1389.36, 540.65),
    t3!(10, 120, Rect, 104.77, 54.50, 173.36, 346.35, 461.93, 2233.62, 307.82, 549.79),
    t3!(10, 120, Sept, 54.96, 0.89, 10.38, 394.66, 550.91, 331.32, 9.83, 619.56),
    t3!(20, 30, Baseline, 157.13, 154.36, 243.54, 327.49, 348.70, 4656.11, 641.34, 421.43),
    t3!(20, 30, Eect, 27.08, 7.37, 21.26, 187.72, 242.39, 327.66, 26.93, 313.95),
    t3!(20, 30, Fc, 22.88, 1.24, 8.25, 174.38, 239.57, 153.59, 8.63, 310.59),
    t3!(20, 30, Fifo, 85.78, 85.75, 132.47, 170.81, 205.32, 2406.78, 438.65, 293.68),
    t3!(20, 30, Rect, 27.18, 6.18, 22.19, 188.00, 246.34, 317.96, 23.08, 319.11),
    t3!(20, 30, Sept, 24.93, 1.21, 6.44, 211.93, 259.23, 166.36, 8.72, 325.67),
    t3!(20, 40, Baseline, 244.43, 242.17, 378.90, 488.51, 521.93, 7261.72, 1284.46, 611.27),
    t3!(20, 40, Eect, 40.61, 15.61, 38.50, 251.18, 336.74, 566.71, 40.89, 413.02),
    t3!(20, 40, Fc, 29.91, 1.05, 7.30, 232.46, 311.38, 191.42, 9.16, 403.58),
    t3!(20, 40, Fifo, 123.64, 127.04, 187.83, 241.29, 275.38, 3538.65, 665.99, 363.43),
    t3!(20, 40, Rect, 39.68, 15.72, 36.06, 245.46, 334.45, 555.86, 45.04, 402.88),
    t3!(20, 40, Sept, 33.92, 1.21, 7.71, 266.25, 354.82, 220.89, 10.09, 433.72),
    t3!(20, 60, Baseline, 369.33, 370.80, 569.78, 728.69, 767.49, 10964.39, 2006.96, 862.45),
    t3!(20, 60, Eect, 71.46, 35.24, 80.24, 382.11, 526.46, 1157.30, 78.11, 600.83),
    t3!(20, 60, Fc, 42.92, 0.82, 13.13, 331.28, 475.63, 265.52, 9.17, 549.97),
    t3!(20, 60, Fifo, 206.81, 206.47, 309.32, 393.60, 423.32, 6008.17, 1197.68, 528.11),
    t3!(20, 60, Rect, 72.19, 39.89, 78.36, 370.32, 505.96, 1230.51, 105.51, 600.42),
    t3!(20, 60, Sept, 50.62, 0.98, 6.91, 398.61, 542.25, 321.73, 9.07, 617.94),
    t3!(20, 90, Baseline, 595.82, 594.62, 906.13, 1160.06, 1211.78, 17752.87, 3442.67, 1308.52),
    t3!(20, 90, Eect, 125.19, 83.01, 151.72, 557.89, 771.26, 2383.54, 293.77, 884.80),
    t3!(20, 90, Fc, 65.40, 0.69, 24.31, 492.77, 706.85, 389.71, 9.75, 831.43),
    t3!(20, 90, Fifo, 326.33, 322.70, 494.80, 624.92, 656.79, 9591.56, 1892.46, 766.41),
    t3!(20, 90, Rect, 121.63, 78.58, 145.62, 559.83, 772.80, 2260.83, 253.93, 890.43),
    t3!(20, 90, Sept, 80.59, 0.87, 24.60, 606.82, 817.78, 490.77, 9.52, 937.90),
    t3!(20, 120, Baseline, 833.48, 830.32, 1261.60, 1598.61, 1671.75, 24885.55, 5016.84, 1815.17),
    t3!(20, 120, Eect, 176.54, 125.10, 222.15, 749.37, 1034.12, 3566.74, 450.96, 1161.07),
    t3!(20, 120, Fc, 91.91, 0.67, 38.77, 666.66, 957.16, 526.71, 10.68, 1090.75),
    t3!(20, 120, Fifo, 441.81, 441.75, 666.65, 840.46, 880.22, 13051.82, 2662.33, 1000.99),
    t3!(20, 120, Rect, 169.21, 108.62, 211.17, 741.05, 1035.93, 3302.91, 465.54, 1174.23),
    t3!(20, 120, Sept, 111.86, 0.92, 58.64, 815.36, 1125.18, 662.51, 10.16, 1259.98),
];

/// Look up a Table III row.
pub fn table3(cpus: u32, intensity: u32, strategy: Strategy) -> Option<&'static Table3Row> {
    TABLE3
        .iter()
        .find(|r| r.cpus == cpus && r.intensity == intensity && r.strategy == strategy)
}

/// One cell of the paper's Table II: the range of FIFO-to-baseline maximum
/// completion time ratios over the 5 repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table2Cell {
    /// CPU cores.
    pub cpus: u32,
    /// Load intensity.
    pub intensity: u32,
    /// Lower end of the published ratio range.
    pub ratio_lo: f64,
    /// Upper end of the published ratio range.
    pub ratio_hi: f64,
}

/// Paper Table II: FIFO/baseline maximum-completion-time ratio ranges.
pub const TABLE2: [Table2Cell; 15] = [
    Table2Cell {
        cpus: 5,
        intensity: 30,
        ratio_lo: 1.14,
        ratio_hi: 1.20,
    },
    Table2Cell {
        cpus: 5,
        intensity: 40,
        ratio_lo: 1.10,
        ratio_hi: 1.13,
    },
    Table2Cell {
        cpus: 5,
        intensity: 60,
        ratio_lo: 0.98,
        ratio_hi: 1.05,
    },
    Table2Cell {
        cpus: 5,
        intensity: 90,
        ratio_lo: 0.97,
        ratio_hi: 1.02,
    },
    Table2Cell {
        cpus: 5,
        intensity: 120,
        ratio_lo: 0.90,
        ratio_hi: 0.98,
    },
    Table2Cell {
        cpus: 10,
        intensity: 30,
        ratio_lo: 1.11,
        ratio_hi: 1.28,
    },
    Table2Cell {
        cpus: 10,
        intensity: 40,
        ratio_lo: 0.76,
        ratio_hi: 0.90,
    },
    Table2Cell {
        cpus: 10,
        intensity: 60,
        ratio_lo: 0.74,
        ratio_hi: 0.90,
    },
    Table2Cell {
        cpus: 10,
        intensity: 90,
        ratio_lo: 0.92,
        ratio_hi: 1.04,
    },
    Table2Cell {
        cpus: 10,
        intensity: 120,
        ratio_lo: 0.66,
        ratio_hi: 0.70,
    },
    Table2Cell {
        cpus: 20,
        intensity: 30,
        ratio_lo: 0.67,
        ratio_hi: 0.78,
    },
    Table2Cell {
        cpus: 20,
        intensity: 40,
        ratio_lo: 0.59,
        ratio_hi: 0.66,
    },
    Table2Cell {
        cpus: 20,
        intensity: 60,
        ratio_lo: 0.60,
        ratio_hi: 0.64,
    },
    Table2Cell {
        cpus: 20,
        intensity: 90,
        ratio_lo: 0.57,
        ratio_hi: 0.60,
    },
    Table2Cell {
        cpus: 20,
        intensity: 120,
        ratio_lo: 0.55,
        ratio_hi: 0.58,
    },
];

/// Look up a Table II cell.
pub fn table2(cpus: u32, intensity: u32) -> Option<&'static Table2Cell> {
    TABLE2
        .iter()
        .find(|c| c.cpus == cpus && c.intensity == intensity)
}

/// One row of the paper's Table V (multi-node, aggregated).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Number of worker VMs.
    pub nodes: u32,
    /// Action cores per node.
    pub cpus_per_node: u32,
    /// Resulting per-core intensity.
    pub intensity: u32,
    /// Strategy (baseline or FC only in the paper).
    pub strategy: Strategy,
    /// Average response time (seconds).
    pub r_avg: f64,
    /// Median response time.
    pub r_p50: f64,
    /// 75th percentile.
    pub r_p75: f64,
    /// 95th percentile.
    pub r_p95: f64,
    /// 99th percentile.
    pub r_p99: f64,
    /// Maximum completion time.
    pub max_c: f64,
}

macro_rules! t5 {
    ($n:expr, $c:expr, $i:expr, $strat:ident, $ra:expr, $r50:expr, $r75:expr, $r95:expr, $r99:expr, $mc:expr) => {
        Table5Row {
            nodes: $n,
            cpus_per_node: $c,
            intensity: $i,
            strategy: Strategy::$strat,
            r_avg: $ra,
            r_p50: $r50,
            r_p75: $r75,
            r_p95: $r95,
            r_p99: $r99,
            max_c: $mc,
        }
    };
}

/// Paper Table V: multi-node aggregated results.
pub const TABLE5: [Table5Row; 16] = [
    t5!(1, 10, 120, Baseline, 253.74, 253.68, 385.12, 490.51, 511.45, 586.21),
    t5!(1, 10, 120, Fc, 49.15, 1.68, 33.12, 337.01, 446.11, 548.03),
    t5!(2, 10, 60, Baseline, 106.39, 106.54, 167.49, 220.35, 240.22, 317.15),
    t5!(2, 10, 60, Fc, 42.40, 2.46, 30.15, 270.63, 346.99, 467.53),
    t5!(3, 10, 40, Baseline, 94.50, 73.19, 137.27, 287.51, 315.08, 381.75),
    t5!(3, 10, 40, Fc, 35.73, 5.03, 41.94, 203.59, 281.38, 364.24),
    t5!(4, 10, 30, Baseline, 87.96, 54.84, 147.22, 283.36, 315.95, 376.84),
    t5!(4, 10, 30, Fc, 38.65, 5.68, 45.93, 217.24, 292.32, 373.19),
    t5!(1, 18, 120, Baseline, 521.15, 519.76, 789.13, 1003.64, 1045.16, 1136.16),
    t5!(1, 18, 120, Fc, 108.96, 6.00, 59.48, 803.26, 1063.21, 1232.69),
    t5!(2, 18, 60, Baseline, 250.52, 251.49, 381.16, 487.78, 518.81, 609.21),
    t5!(2, 18, 60, Fc, 99.55, 2.93, 28.97, 728.20, 859.13, 1009.59),
    t5!(3, 18, 40, Baseline, 245.87, 215.44, 377.28, 597.07, 643.72, 737.64),
    t5!(3, 18, 40, Fc, 68.62, 6.00, 54.02, 443.97, 638.19, 756.19),
    t5!(4, 18, 30, Baseline, 239.86, 193.97, 406.44, 599.57, 649.21, 723.27),
    t5!(4, 18, 30, Fc, 80.72, 15.02, 80.27, 461.29, 627.30, 831.40),
];

/// Look up a Table V row.
pub fn table5(nodes: u32, cpus_per_node: u32, strategy: Strategy) -> Option<&'static Table5Row> {
    TABLE5
        .iter()
        .find(|r| r.nodes == nodes && r.cpus_per_node == cpus_per_node && r.strategy == strategy)
}

/// Ratio of measured to reference with a guard for tiny denominators.
pub fn ratio(measured: f64, reference: f64) -> f64 {
    if reference.abs() < 1e-9 {
        f64::NAN
    } else {
        measured / reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_is_complete() {
        // 3 core counts x 5 intensities x 6 strategies.
        assert_eq!(TABLE3.len(), 90);
        for cpus in [5, 10, 20] {
            for intensity in [30, 40, 60, 90, 120] {
                for strategy in [
                    Strategy::Baseline,
                    Strategy::Fifo,
                    Strategy::Sept,
                    Strategy::Eect,
                    Strategy::Rect,
                    Strategy::Fc,
                ] {
                    assert!(
                        table3(cpus, intensity, strategy).is_some(),
                        "missing {cpus}/{intensity}/{strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn table3_spot_checks() {
        let r = table3(10, 30, Strategy::Fifo).unwrap();
        assert_eq!(r.r_avg, 36.42);
        assert_eq!(r.s_avg, 1000.59);
        let r = table3(20, 120, Strategy::Fc).unwrap();
        assert_eq!(r.r_p50, 0.67);
        assert_eq!(r.max_c, 1090.75);
    }

    #[test]
    fn table3_percentiles_ordered() {
        for r in &TABLE3 {
            assert!(
                r.r_p50 <= r.r_p75 && r.r_p75 <= r.r_p95 && r.r_p95 <= r.r_p99,
                "row {}/{}/{:?} disordered",
                r.cpus,
                r.intensity,
                r.strategy
            );
        }
    }

    #[test]
    fn table2_ranges_valid() {
        assert_eq!(TABLE2.len(), 15);
        for c in &TABLE2 {
            assert!(c.ratio_lo <= c.ratio_hi);
        }
        let c = table2(20, 30).unwrap();
        assert_eq!(c.ratio_lo, 0.67);
        // The paper's headline flip: FIFO completes faster at 20 cores...
        assert!(c.ratio_hi < 1.0);
        // ...but slower at 5 cores, intensity 30.
        assert!(table2(5, 30).unwrap().ratio_lo > 1.0);
    }

    #[test]
    fn table5_headline_claim() {
        // FC on 3 VMs beats the baseline on 4 VMs (18-core nodes): the
        // paper's §VIII claim.
        let fc3 = table5(3, 18, Strategy::Fc).unwrap();
        let base4 = table5(4, 18, Strategy::Baseline).unwrap();
        assert!(fc3.r_avg < base4.r_avg);
        assert!(fc3.r_p75 < base4.r_p75);
        assert!(fc3.r_p95 < base4.r_p95);
        assert!(fc3.r_p99 < base4.r_p99);
    }

    #[test]
    fn ratio_guards_zero() {
        assert!(ratio(1.0, 0.0).is_nan());
        assert!((ratio(3.0, 2.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Baseline.name(), "baseline");
        assert_eq!(Strategy::Fc.name(), "FC");
    }
}
