//! Response-time and stretch aggregation (§II of the paper).
//!
//! All times are reported relative to the start of the measured burst
//! window, matching the paper's plots (the warm-up phase happens at negative
//! time, so to speak). Stretch uses each function's median idle-system
//! response time from Table I as the denominator (§V-A), which is why values
//! below 1 are possible.

use faas_simcore::stats::{BoxPlot, Summary};
use faas_simcore::time::SimTime;
use faas_workload::sebs::{Catalogue, FuncId};
use faas_workload::trace::CallOutcome;
use serde::{Deserialize, Serialize};

/// Summary of one metric (seconds for response time, dimensionless for
/// stretch) over the measured calls of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Number of calls aggregated.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl MetricSummary {
    /// Build from raw observations.
    pub fn from_values(values: &[f64]) -> MetricSummary {
        let s = Summary::from_data(values);
        MetricSummary {
            count: s.count,
            mean: s.mean,
            p50: s.percentiles.p50,
            p75: s.percentiles.p75,
            p95: s.percentiles.p95,
            p99: s.percentiles.p99,
            max: s.max,
        }
    }
}

/// The full per-run summary row, mirroring one line of the paper's
/// Table III/IV: response-time stats, stretch stats, and `max c(i)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Response-time statistics, seconds.
    pub response: MetricSummary,
    /// Stretch statistics.
    pub stretch: MetricSummary,
    /// Completion time of the last measured call, seconds from burst start
    /// (the paper's `max c(i)` column).
    pub max_completion: f64,
}

/// Response times (seconds) of the measured calls.
pub fn response_times(outcomes: &[&CallOutcome]) -> Vec<f64> {
    let mut out = Vec::new();
    response_times_into(outcomes, &mut out);
    out
}

/// Fill `out` (cleared first) with the response times of the measured
/// calls. Grid/sweep loops pass a reused scratch buffer so thousands of
/// runs stop allocating per run.
pub fn response_times_into(outcomes: &[&CallOutcome], out: &mut Vec<f64>) {
    out.clear();
    out.extend(outcomes.iter().map(|o| o.response_time().as_secs_f64()));
}

/// Stretch values of the measured calls, using Table I medians.
pub fn stretches(outcomes: &[&CallOutcome], catalogue: &Catalogue) -> Vec<f64> {
    let mut out = Vec::new();
    stretches_into(outcomes, catalogue, &mut out);
    out
}

/// Fill `out` (cleared first) with the stretch values of the measured
/// calls; the buffer-reusing twin of [`stretches`].
pub fn stretches_into(outcomes: &[&CallOutcome], catalogue: &Catalogue, out: &mut Vec<f64>) {
    out.clear();
    out.extend(
        outcomes
            .iter()
            .map(|o| o.stretch(catalogue.spec(o.func).stretch_reference())),
    );
}

impl RunSummary {
    /// Summarise the measured calls of a run.
    ///
    /// `burst_start` anchors `max c(i)`; response time and stretch are
    /// anchored to each call's own release time so they need no shifting.
    pub fn from_outcomes(
        outcomes: &[&CallOutcome],
        catalogue: &Catalogue,
        burst_start: SimTime,
    ) -> RunSummary {
        assert!(!outcomes.is_empty(), "summary of zero calls");
        let resp = response_times(outcomes);
        let st = stretches(outcomes, catalogue);
        let max_completion = outcomes
            .iter()
            .map(|o| o.completion.saturating_since(burst_start).as_secs_f64())
            .fold(0.0f64, f64::max);
        RunSummary {
            response: MetricSummary::from_values(&resp),
            stretch: MetricSummary::from_values(&st),
            max_completion,
        }
    }

    /// Summarise only the calls of one function (Fig. 5's per-function
    /// breakdowns).
    pub fn for_function(
        outcomes: &[&CallOutcome],
        catalogue: &Catalogue,
        burst_start: SimTime,
        func: FuncId,
    ) -> Option<RunSummary> {
        let filtered: Vec<&CallOutcome> = outcomes
            .iter()
            .copied()
            .filter(|o| o.func == func)
            .collect();
        if filtered.is_empty() {
            None
        } else {
            Some(RunSummary::from_outcomes(&filtered, catalogue, burst_start))
        }
    }
}

/// Fault counters feeding a [`RobustnessSummary`]. Mirrors the invoker's
/// per-run fault statistics without coupling the metrics crate to it —
/// experiment code copies the fields over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Retry attempts delivered (attempt ≥ 2).
    pub retries: u64,
    /// Attempts abandoned by the pending timeout.
    pub timeouts: u64,
    /// Attempts whose response was lost to a transient failure.
    pub transient_failures: u64,
    /// Node crash events.
    pub crashes: u64,
    /// Retries handed off to another node by the coupled engine's
    /// cross-node failover (zero on independent-engine runs).
    pub failovers: u64,
}

/// Robustness view of one (possibly faulted) run: how much of the offered
/// load was actually served, at what retry cost, and what the delivered
/// tail looked like under the fault plan. All-zero counters and a goodput
/// of 1 on fault-free runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustnessSummary {
    /// Measured calls that completed.
    pub delivered: usize,
    /// Measured calls dropped (retries exhausted or timed out).
    pub dropped: usize,
    /// `delivered / (delivered + dropped)`.
    pub goodput: f64,
    /// `dropped / (delivered + dropped)`.
    pub drop_rate: f64,
    /// Fault counters accumulated over the run.
    pub counts: FaultCounts,
    /// 99th-percentile response time of the *delivered* measured calls,
    /// seconds — the paper-style tail metric under degradation.
    pub p99_response: f64,
}

impl RobustnessSummary {
    /// Summarise the delivered measured calls plus the drop/fault
    /// counters of one run.
    pub fn from_outcomes(
        outcomes: &[&CallOutcome],
        dropped: usize,
        counts: FaultCounts,
    ) -> RobustnessSummary {
        let delivered = outcomes.len();
        let offered = delivered + dropped;
        assert!(offered > 0, "robustness summary of zero calls");
        let p99_response = if delivered == 0 {
            0.0
        } else {
            MetricSummary::from_values(&response_times(outcomes)).p99
        };
        RobustnessSummary {
            delivered,
            dropped,
            goodput: delivered as f64 / offered as f64,
            drop_rate: dropped as f64 / offered as f64,
            counts,
            p99_response,
        }
    }
}

/// Served-resource totals of one node (or any other aggregation unit the
/// caller chooses). Mirrors the invoker's per-run served counters without
/// coupling the metrics crate to it — experiment code copies the fields
/// over, exactly like [`FaultCounts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// CPU work served, core-seconds.
    pub cpu_secs: f64,
    /// Memory-bandwidth work served, bandwidth-unit-seconds. Zero when
    /// the memory axis is unmodeled.
    pub mem_units: f64,
}

/// Multi-resource view of one run: per-resource utilization of the
/// offered capacity, plus the spread of per-node *dominant shares* — each
/// node's busiest axis relative to its capacity, the quantity DRF
/// equalizes. `min`/`max` bound the spread; Jain's fairness index
/// summarizes it (1 when every node carries the same dominant share,
/// `1/n` when one node carries everything).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceSummary {
    /// Served CPU work over offered CPU capacity:
    /// `Σ cpu_secs / (nodes × cores × horizon)`.
    pub cpu_utilization: f64,
    /// Served memory-bandwidth work over offered bandwidth capacity;
    /// zero when the memory axis is unmodeled.
    pub mem_utilization: f64,
    /// Smallest per-node dominant share.
    pub dominant_min: f64,
    /// Largest per-node dominant share.
    pub dominant_max: f64,
    /// Jain's fairness index of the per-node dominant shares; 1 when the
    /// whole cluster degenerates to zero served work.
    pub dominant_jain: f64,
}

impl ResourceSummary {
    /// Summarise per-node served totals against a homogeneous cluster:
    /// every node offers `cores` CPU capacity and `mem_bandwidth`
    /// memory-bandwidth capacity (`0.0` = the axis is unmodeled) over
    /// `horizon_secs` of simulated time.
    pub fn from_usages(
        usages: &[ResourceUsage],
        cores: f64,
        mem_bandwidth: f64,
        horizon_secs: f64,
    ) -> ResourceSummary {
        assert!(!usages.is_empty(), "resource summary of zero nodes");
        assert!(
            cores > 0.0 && horizon_secs > 0.0,
            "resource summary needs positive capacity and horizon"
        );
        let n = usages.len() as f64;
        let cpu_total: f64 = usages.iter().map(|u| u.cpu_secs).sum();
        let mem_total: f64 = usages.iter().map(|u| u.mem_units).sum();
        let dominant: Vec<f64> = usages
            .iter()
            .map(|u| {
                let mut share = u.cpu_secs / (cores * horizon_secs);
                if mem_bandwidth > 0.0 {
                    share = share.max(u.mem_units / (mem_bandwidth * horizon_secs));
                }
                share
            })
            .collect();
        let sum: f64 = dominant.iter().sum();
        let sum_sq: f64 = dominant.iter().map(|d| d * d).sum();
        let jain = if sum_sq > 0.0 {
            (sum * sum) / (n * sum_sq)
        } else {
            1.0
        };
        ResourceSummary {
            cpu_utilization: cpu_total / (n * cores * horizon_secs),
            mem_utilization: if mem_bandwidth > 0.0 {
                mem_total / (n * mem_bandwidth * horizon_secs)
            } else {
                0.0
            },
            dominant_min: dominant.iter().copied().fold(f64::INFINITY, f64::min),
            dominant_max: dominant.iter().copied().fold(0.0, f64::max),
            dominant_jain: jain,
        }
    }
}

/// Box-plot statistics of response times (for figure regeneration).
pub fn response_boxplot(outcomes: &[&CallOutcome]) -> BoxPlot {
    BoxPlot::from_data(&response_times(outcomes))
}

/// Box-plot statistics of stretch (for figure regeneration).
pub fn stretch_boxplot(outcomes: &[&CallOutcome], catalogue: &Catalogue) -> BoxPlot {
    BoxPlot::from_data(&stretches(outcomes, catalogue))
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_simcore::time::SimDuration;
    use faas_workload::trace::{CallId, CallKind, ColdStartKind};

    fn outcome(func: FuncId, release_s: u64, resp_s: f64) -> CallOutcome {
        let release = SimTime::from_secs(release_s);
        let completion = release + SimDuration::from_secs_f64(resp_s);
        CallOutcome {
            id: CallId(release_s),
            func,
            kind: CallKind::Measured,
            release,
            invoker_receive: release,
            exec_start: release,
            exec_end: completion,
            completion,
            processing: SimDuration::from_secs_f64(resp_s),
            start_kind: ColdStartKind::Warm,
            node: 0,
        }
    }

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    #[test]
    fn response_summary_basic() {
        let cat = catalogue();
        let outs = [
            outcome(FuncId(0), 10, 1.0),
            outcome(FuncId(0), 11, 3.0),
            outcome(FuncId(0), 12, 2.0),
        ];
        let refs: Vec<&CallOutcome> = outs.iter().collect();
        let s = RunSummary::from_outcomes(&refs, &cat, SimTime::from_secs(10));
        assert_eq!(s.response.count, 3);
        assert!((s.response.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.response.p50, 2.0);
        // Last completion: release 12 + 2.0 = 14, minus burst start 10 = 4.
        assert!((s.max_completion - 4.0).abs() < 1e-12);
    }

    #[test]
    fn stretch_uses_table1_reference() {
        let cat = catalogue();
        let bfs = cat.by_name("graph-bfs").unwrap();
        // graph-bfs reference is 12 ms; a 1.2 s response is stretch 100.
        let outs = [outcome(bfs, 0, 1.2)];
        let refs: Vec<&CallOutcome> = outs.iter().collect();
        let s = RunSummary::from_outcomes(&refs, &cat, SimTime::ZERO);
        assert!((s.stretch.mean - 100.0).abs() < 1e-9);
    }

    #[test]
    fn stretch_below_one_is_possible() {
        let cat = catalogue();
        let dna = cat.by_name("dna-visualisation").unwrap();
        // dna reference 8.552 s; a 6 s response gives stretch < 1 (§V-A).
        let outs = [outcome(dna, 0, 6.0)];
        let refs: Vec<&CallOutcome> = outs.iter().collect();
        let s = RunSummary::from_outcomes(&refs, &cat, SimTime::ZERO);
        assert!(s.stretch.mean < 1.0);
    }

    #[test]
    fn per_function_filter() {
        let cat = catalogue();
        let a = cat.by_name("graph-bfs").unwrap();
        let b = cat.by_name("sleep").unwrap();
        let outs = [outcome(a, 0, 1.0), outcome(b, 1, 2.0), outcome(a, 2, 3.0)];
        let refs: Vec<&CallOutcome> = outs.iter().collect();
        let s = RunSummary::for_function(&refs, &cat, SimTime::ZERO, a).unwrap();
        assert_eq!(s.response.count, 2);
        assert!((s.response.mean - 2.0).abs() < 1e-12);
        let missing = cat.by_name("uploader").unwrap();
        assert!(RunSummary::for_function(&refs, &cat, SimTime::ZERO, missing).is_none());
    }

    #[test]
    fn percentiles_are_ordered() {
        let cat = catalogue();
        let outs: Vec<CallOutcome> = (0..100)
            .map(|i| outcome(FuncId(0), i, (i as f64 + 1.0) * 0.1))
            .collect();
        let refs: Vec<&CallOutcome> = outs.iter().collect();
        let s = RunSummary::from_outcomes(&refs, &cat, SimTime::ZERO);
        let r = s.response;
        assert!(r.p50 <= r.p75 && r.p75 <= r.p95 && r.p95 <= r.p99 && r.p99 <= r.max);
    }

    #[test]
    fn boxplot_helpers_run() {
        let cat = catalogue();
        let outs: Vec<CallOutcome> = (0..50)
            .map(|i| outcome(FuncId(0), i, 1.0 + (i % 7) as f64))
            .collect();
        let refs: Vec<&CallOutcome> = outs.iter().collect();
        let rb = response_boxplot(&refs);
        assert!(rb.p25 <= rb.median && rb.median <= rb.p75);
        let sb = stretch_boxplot(&refs, &cat);
        assert!(sb.whisker_lo <= sb.whisker_hi);
    }

    #[test]
    #[should_panic(expected = "zero calls")]
    fn empty_summary_panics() {
        let cat = catalogue();
        RunSummary::from_outcomes(&[], &cat, SimTime::ZERO);
    }

    #[test]
    fn robustness_summary_fault_free() {
        let outs = [outcome(FuncId(0), 0, 1.0), outcome(FuncId(0), 1, 2.0)];
        let refs: Vec<&CallOutcome> = outs.iter().collect();
        let s = RobustnessSummary::from_outcomes(&refs, 0, FaultCounts::default());
        assert_eq!(s.delivered, 2);
        assert_eq!(s.goodput, 1.0);
        assert_eq!(s.drop_rate, 0.0);
        // p99 interpolates between the two samples, landing just below max.
        assert!(s.p99_response > 1.9 && s.p99_response <= 2.0);
    }

    #[test]
    fn robustness_summary_with_drops() {
        let outs = [outcome(FuncId(0), 0, 1.0); 3];
        let refs: Vec<&CallOutcome> = outs.iter().collect();
        let counts = FaultCounts {
            retries: 5,
            timeouts: 1,
            transient_failures: 2,
            crashes: 1,
            failovers: 3,
        };
        let s = RobustnessSummary::from_outcomes(&refs, 1, counts);
        assert_eq!(s.delivered, 3);
        assert_eq!(s.dropped, 1);
        assert!((s.goodput - 0.75).abs() < 1e-12);
        assert!((s.drop_rate - 0.25).abs() < 1e-12);
        assert_eq!(s.counts, counts);
    }

    #[test]
    fn robustness_summary_total_loss() {
        // Every call dropped: goodput 0, tail undefined → reported as 0.
        let s = RobustnessSummary::from_outcomes(&[], 4, FaultCounts::default());
        assert_eq!(s.goodput, 0.0);
        assert_eq!(s.drop_rate, 1.0);
        assert_eq!(s.p99_response, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero calls")]
    fn robustness_summary_of_nothing_panics() {
        RobustnessSummary::from_outcomes(&[], 0, FaultCounts::default());
    }

    #[test]
    fn resource_summary_equal_nodes_are_perfectly_fair() {
        // Two identical nodes, CPU-dominant: utilization is the per-node
        // share and Jain's index is exactly 1.
        let usages = [ResourceUsage {
            cpu_secs: 40.0,
            mem_units: 5.0,
        }; 2];
        let s = ResourceSummary::from_usages(&usages, 10.0, 2.0, 10.0);
        assert!((s.cpu_utilization - 0.4).abs() < 1e-12);
        assert!((s.mem_utilization - 0.25).abs() < 1e-12);
        // Dominant axis per node: max(40/100, 5/20) = 0.4.
        assert!((s.dominant_min - 0.4).abs() < 1e-12);
        assert!((s.dominant_max - 0.4).abs() < 1e-12);
        assert!((s.dominant_jain - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resource_summary_dominant_axis_can_be_memory() {
        // One node's memory axis dominates its CPU axis: the dominant
        // share must pick it up, and the skew shows in Jain < 1.
        let usages = [
            ResourceUsage {
                cpu_secs: 10.0,
                mem_units: 18.0,
            },
            ResourceUsage {
                cpu_secs: 10.0,
                mem_units: 2.0,
            },
        ];
        let s = ResourceSummary::from_usages(&usages, 10.0, 2.0, 10.0);
        // Node 0: max(0.1, 0.9) = 0.9; node 1: max(0.1, 0.1) = 0.1.
        assert!((s.dominant_max - 0.9).abs() < 1e-12);
        assert!((s.dominant_min - 0.1).abs() < 1e-12);
        assert!(s.dominant_jain < 0.7, "skew must lower Jain's index");
    }

    #[test]
    fn resource_summary_unmodeled_memory_axis_reads_zero() {
        // mem_bandwidth 0.0 = unmodeled: memory never contributes, even
        // with nonzero served mem units recorded.
        let usages = [ResourceUsage {
            cpu_secs: 30.0,
            mem_units: 99.0,
        }];
        let s = ResourceSummary::from_usages(&usages, 10.0, 0.0, 10.0);
        assert_eq!(s.mem_utilization, 0.0);
        assert!((s.dominant_max - 0.3).abs() < 1e-12);
    }

    #[test]
    fn resource_summary_idle_cluster_is_fair() {
        let usages = [ResourceUsage::default(); 3];
        let s = ResourceSummary::from_usages(&usages, 10.0, 2.0, 10.0);
        assert_eq!(s.cpu_utilization, 0.0);
        assert_eq!(s.dominant_jain, 1.0);
    }

    #[test]
    #[should_panic(expected = "zero nodes")]
    fn resource_summary_of_nothing_panics() {
        ResourceSummary::from_usages(&[], 10.0, 2.0, 10.0);
    }
}
