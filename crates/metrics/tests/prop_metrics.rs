//! Property tests of the metric aggregation layer.

use faas_metrics::export::CsvWriter;
use faas_metrics::summary::MetricSummary;
use faas_metrics::table::TextTable;
use proptest::prelude::*;

proptest! {
    /// MetricSummary percentiles are order statistics of the input.
    #[test]
    fn summary_is_consistent(values in prop::collection::vec(0f64..1e6, 1..500)) {
        let s = MetricSummary::from_values(&values);
        prop_assert_eq!(s.count, values.len());
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.p50 >= min - 1e-9 && s.p50 <= max + 1e-9);
        prop_assert!(s.p50 <= s.p75 && s.p75 <= s.p95 && s.p95 <= s.p99);
        prop_assert!((s.max - max).abs() < 1e-9);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean - mean).abs() < 1e-6);
    }

    /// Rendered tables always have uniform line width and one line per row.
    #[test]
    fn tables_render_rectangularly(
        rows in prop::collection::vec(prop::collection::vec("[a-z0-9.]{0,12}", 3..4), 1..30)
    ) {
        let mut t = TextTable::new(["a", "b", "c"]);
        for row in &rows {
            t.row(row.clone());
        }
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 2);
        let width = lines[0].len();
        for line in &lines {
            prop_assert_eq!(line.len(), width);
        }
    }

    /// CSV escaping round-trips through a minimal parser.
    #[test]
    fn csv_escaping_is_parseable(cells in prop::collection::vec("[ -~]{0,20}", 1..20)) {
        let mut w = CsvWriter::new(&["v"]);
        for c in &cells {
            w.row([c.clone()]);
        }
        let text = w.to_string_lossy();
        // Minimal CSV reader for a single-column document.
        let mut parsed = Vec::new();
        let mut lines = text.lines();
        lines.next(); // header
        for line in lines {
            let cell = if let Some(stripped) = line.strip_prefix('"') {
                stripped
                    .strip_suffix('"')
                    .unwrap_or(stripped)
                    .replace("\"\"", "\"")
            } else {
                line.to_string()
            };
            parsed.push(cell);
        }
        // Cells containing newlines are out of scope for the line-based
        // reader; the generator never produces them ([ -~] excludes \n).
        prop_assert_eq!(parsed, cells);
    }
}
