//! Property tests of the workload-generation subsystem: arrival processes,
//! mixes and the sharded generator.
//!
//! Structural invariants (sorted, in-window, sharded == serial) run under
//! proptest over arbitrary seeds; the statistical rate/skew checks average
//! over a fixed battery of derived seeds so their tolerances can be tight
//! without flaking.

use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::arrival::{ArrivalProcess, ArrivalSpec, MmppArrivals, PoissonArrivals};
use faas_workload::generate::{ShardedGenerator, WorkloadSpec};
use faas_workload::mix::MixSpec;
use faas_workload::sebs::Catalogue;
use faas_workload::trace::CallKind;
use faas_workload::weight::WeightSpec;
use proptest::prelude::*;

fn arrival_strategy() -> impl Strategy<Value = ArrivalSpec> {
    prop_oneof![
        Just(ArrivalSpec::Uniform { count: 400 }),
        Just(ArrivalSpec::Poisson { rate: 8.0 }),
        Just(ArrivalSpec::Mmpp {
            rate_on: 14.0,
            rate_off: 2.0,
            mean_on_secs: 6.0,
            mean_off_secs: 6.0,
        }),
        Just(ArrivalSpec::Diurnal {
            mean_rate: 8.0,
            weights: vec![0.25, 0.5, 1.5, 1.75, 1.0, 1.0],
        }),
    ]
}

fn mix_strategy() -> impl Strategy<Value = MixSpec> {
    prop_oneof![
        Just(MixSpec::Equal),
        Just(MixSpec::Fairness {
            rare_function: "dna-visualisation".into(),
            rare_calls: 10,
        }),
        Just(MixSpec::Zipf { s: 1.2 }),
    ]
}

proptest! {
    /// Every arrival × mix combination produces a sorted burst inside the
    /// window with dense ids, under both generation schemes.
    #[test]
    fn serial_burst_sorted_and_in_window(
        seed in any::<u64>(),
        arrival in arrival_strategy(),
        mix in mix_strategy(),
    ) {
        let catalogue = Catalogue::sebs();
        let spec = WorkloadSpec { arrival, mix, weights: WeightSpec::Uniform, window: SimDuration::from_secs(60) };
        let start = SimTime::from_secs(100);
        let end = start + spec.window;
        let mut root = Xoshiro256::seed_from_u64(seed);
        let mut rng_times = root.derive_stream(1);
        let mut rng_assign = root.derive_stream(2);
        let calls = spec.generate_sorted(&catalogue, start, &mut rng_times, &mut rng_assign, 7);
        let mut prev = SimTime::ZERO;
        for (i, c) in calls.iter().enumerate() {
            prop_assert!(c.release >= start && c.release < end, "call {i} at {:?}", c.release);
            prop_assert!(c.release >= prev, "sorted at {i}");
            prop_assert_eq!(c.id.0, 7 + i as u64, "dense ids");
            prop_assert_eq!(c.kind as u8, CallKind::Measured as u8);
            prev = c.release;
        }
    }

    /// Sharded generation is pure: parallel chunking and per-node strides
    /// reproduce the serial output exactly, for every arrival × mix.
    #[test]
    fn sharded_equals_unsharded(
        seed in any::<u64>(),
        arrival in arrival_strategy(),
        mix in mix_strategy(),
        nodes in 1u64..12,
    ) {
        let catalogue = Catalogue::sebs();
        let spec = WorkloadSpec { arrival, mix, weights: WeightSpec::Uniform, window: SimDuration::from_secs(60) };
        let g = ShardedGenerator::new(&spec, &catalogue, SimTime::from_secs(50), seed);
        let serial = g.generate_serial();
        prop_assert_eq!(&g.generate_parallel(), &serial, "parallel == serial");
        let mut union: Vec<_> = (0..nodes).flat_map(|k| g.iter_stride(k, nodes)).collect();
        union.sort_by_key(|c| c.id);
        prop_assert_eq!(&union, &serial, "stride partition == serial");
    }

    /// Sharded calls stay inside the window and ids stay dense.
    #[test]
    fn sharded_calls_in_window(
        seed in any::<u64>(),
        arrival in arrival_strategy(),
    ) {
        let catalogue = Catalogue::sebs();
        let spec = WorkloadSpec {
            arrival,
            mix: MixSpec::Equal,
            weights: WeightSpec::Uniform, window: SimDuration::from_secs(60),
        };
        let start = SimTime::from_secs(9);
        let end = start + spec.window;
        let g = ShardedGenerator::new(&spec, &catalogue, start, seed);
        for (i, c) in g.iter_chunk(0, g.len()).enumerate() {
            prop_assert!(c.release >= start && c.release < end);
            prop_assert_eq!(c.id.0 as usize, i, "id == index");
        }
    }
}

/// Mean count over a battery of seeds derived from one root.
fn mean_count(process: &dyn ArrivalProcess, window: f64, seeds: u64) -> f64 {
    let mut root = Xoshiro256::seed_from_u64(0xA11);
    let mut sum = 0.0;
    for _ in 0..seeds {
        let mut rng = root.derive_stream(1);
        let profile = process.realize(window, &mut rng);
        sum += profile.sample_count(&mut rng) as f64;
    }
    sum / seeds as f64
}

#[test]
fn poisson_mean_rate_within_tolerance_at_large_n() {
    // 100 seeds x mean 4800: sample-mean sd ~ 6.9, so +-3% is >20 sigma.
    let p = PoissonArrivals { rate: 8.0 };
    let mean = mean_count(&p, 600.0, 100);
    let expected = 8.0 * 600.0;
    assert!(
        (mean - expected).abs() / expected < 0.03,
        "mean {mean} vs {expected}"
    );
}

#[test]
fn mmpp_mean_rate_within_tolerance_at_large_n() {
    // The dominant noise is the realized on/off path (~100 sojourns per
    // window); averaging 200 windows brings the sample mean within a few
    // percent of the stationary rate.
    let mmpp = MmppArrivals {
        rate_on: 14.0,
        rate_off: 2.0,
        mean_on_secs: 6.0,
        mean_off_secs: 6.0,
    };
    let mean = mean_count(&mmpp, 600.0, 200);
    let expected = mmpp.mean_rate() * 600.0;
    assert!(
        (mean - expected).abs() / expected < 0.05,
        "mean {mean} vs stationary {expected}"
    );
}

#[test]
fn zipf_mix_hits_every_function_with_configured_skew() {
    let catalogue = Catalogue::sebs();
    let s = 1.2;
    let spec = WorkloadSpec {
        arrival: ArrivalSpec::Uniform { count: 60_000 },
        mix: MixSpec::Zipf { s },
        weights: WeightSpec::Uniform,
        window: SimDuration::from_secs(60),
    };
    let g = ShardedGenerator::new(&spec, &catalogue, SimTime::ZERO, 0x21F);
    let mut counts = vec![0usize; catalogue.len()];
    for c in g.iter_chunk(0, g.len()) {
        counts[c.func.index()] += 1;
    }
    assert!(
        counts.iter().all(|&c| c > 0),
        "every function is hit: {counts:?}"
    );
    // Rank-1 over rank-2 popularity must track 2^s within sampling slack.
    let ratio = counts[0] as f64 / counts[1] as f64;
    let expected = 2f64.powf(s);
    assert!(
        (ratio - expected).abs() / expected < 0.15,
        "rank ratio {ratio} vs 2^{s} = {expected}"
    );
    // And the tail really is rare: the last rank gets well under the
    // uniform share.
    let uniform_share = g.len() as usize / catalogue.len();
    assert!(
        counts[10] * 2 < uniform_share,
        "tail {counts:?} vs uniform {uniform_share}"
    );
}
