//! Bit-for-bit regression pins for the paper scenarios.
//!
//! The digests below were computed from the pre-subsystem generators (the
//! hand-rolled loops in `scenario.rs` before the `arrival`/`mix`/`generate`
//! refactor). `Scenario::generate` is now a thin adapter over the workload
//! subsystem; these tests guarantee the adapter reproduces the original
//! output exactly — same RNG stream consumption, same sort order, same ids —
//! for every experiment seed, so every table and figure of the paper is
//! unchanged by the refactor.

use faas_workload::scenario::{BurstScenario, FairnessScenario, Scenario};
use faas_workload::sebs::Catalogue;
use faas_workload::trace::CallKind;

/// FNV-1a over little-endian u64 words.
fn fnv1a(acc: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *acc = (*acc ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
}

fn digest_scenario(s: &Scenario) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut acc, s.burst_start.as_nanos());
    fnv1a(&mut acc, s.burst_window.as_nanos());
    for call in s.warmup.iter().chain(s.burst.iter()) {
        fnv1a(&mut acc, call.id.0);
        fnv1a(&mut acc, call.func.0 as u64);
        fnv1a(&mut acc, call.release.as_nanos());
        fnv1a(&mut acc, matches!(call.kind, CallKind::Measured) as u64);
    }
    acc
}

/// The experiment seed set (mirrors `faas_experiments::SEEDS`).
const SEEDS: [u64; 5] = [101, 202, 303, 404, 505];

#[test]
fn burst_scenarios_are_bit_identical_to_pre_subsystem_generator() {
    let cat = Catalogue::sebs();
    let digests: Vec<u64> = SEEDS
        .iter()
        .flat_map(|&seed| {
            [
                digest_scenario(&BurstScenario::standard(10, 60).generate(&cat, seed)),
                digest_scenario(&BurstScenario::standard(20, 30).generate(&cat, seed)),
                digest_scenario(&BurstScenario::standard(5, 120).generate(&cat, seed)),
            ]
        })
        .collect();
    let pinned: Vec<u64> = vec![
        15433644271738547663,
        5605882224232257738,
        10294407032144314560,
        675264102207453323,
        15676862211735525326,
        8330334769139181652,
        4769258682218423518,
        9767098034686029627,
        16741365082484437541,
        14129757797303357894,
        6856421688545439451,
        15129448703504823449,
        11752528825526654300,
        6811328877387885333,
        3319726213383573019,
    ];
    assert_eq!(digests, pinned, "pinned burst digests");
}

#[test]
fn fairness_scenarios_are_bit_identical_to_pre_subsystem_generator() {
    let cat = Catalogue::sebs();
    let digests: Vec<u64> = SEEDS
        .iter()
        .map(|&seed| digest_scenario(&FairnessScenario::paper().generate(&cat, seed)))
        .collect();
    let pinned: Vec<u64> = vec![
        4814119737389369116,
        6154720862216730113,
        10315898115445749992,
        11726004884504603257,
        2506754047970438912,
    ];
    assert_eq!(digests, pinned, "pinned fairness digests");
}
