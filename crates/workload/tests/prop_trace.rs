//! Property tests of the trace ingestion subsystem: shard invariance
//! (any chunk/stride partition of a [`TraceSource`] reproduces the serial
//! log bit-for-bit), rerun identity, and the record→replay digest
//! contract against direct generation.

use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::arrival::ArrivalSpec;
use faas_workload::generate::ShardedGenerator;
use faas_workload::mix::MixSpec;
use faas_workload::sebs::Catalogue;
use faas_workload::synth::SynthSpec;
use faas_workload::trace::{Call, CallId};
use faas_workload::trace_source::{RecordedTrace, TraceSource};
use faas_workload::weight::WeightSpec;
use faas_workload::WorkloadSpec;
use proptest::prelude::*;

fn spec(rate: f64) -> WorkloadSpec {
    WorkloadSpec {
        arrival: ArrivalSpec::Poisson { rate },
        mix: MixSpec::Zipf { s: 1.1 },
        weights: WeightSpec::Uniform,
        window: SimDuration::from_secs(20),
    }
}

fn serial(t: &dyn TraceSource) -> Vec<Call> {
    t.iter_chunk(0, t.len()).collect()
}

/// The shard-invariance guarantee: any chunk partition and any stride
/// partition of the index space reassembles to the serial log bit for
/// bit, and the serial log honors the ordering contract (`id == index`,
/// releases non-decreasing).
fn assert_partitions(t: &dyn TraceSource, chunk: u64, stride: u64) {
    let n = t.len();
    let log = serial(t);
    let mut prev = t.start();
    for (i, c) in log.iter().enumerate() {
        assert_eq!(c.id, CallId(i as u64), "id == index at {i}");
        assert!(c.release >= prev, "release-ordered at {i}");
        prev = c.release;
    }
    let mut from_chunks: Vec<Call> = Vec::with_capacity(log.len());
    let mut lo = 0;
    while lo < n {
        let hi = (lo + chunk).min(n);
        from_chunks.extend(t.iter_chunk(lo, hi));
        lo = hi;
    }
    assert_eq!(from_chunks, log, "chunk-{chunk} partition");
    let mut from_strides: Vec<Call> = (0..stride).flat_map(|s| t.iter_stride(s, stride)).collect();
    from_strides.sort_by_key(|c| c.id);
    assert_eq!(from_strides, log, "stride-{stride} partition");
}

proptest! {
    /// Synthetic traces: any partition reproduces the serial log, and the
    /// same (spec, seed) synthesizes the identical trace on a rerun.
    #[test]
    fn synthetic_partitions_and_reruns_are_bit_exact(
        seed in any::<u64>(),
        rate in 0.5f64..20.0,
        chunk in 1u64..97,
        stride in 1u64..8
    ) {
        let cat = Catalogue::sebs();
        let synth = SynthSpec::azure(rate, SimDuration::from_secs(20));
        let t = faas_workload::synth::SyntheticTrace::new(&synth, &cat, SimTime::ZERO, seed);
        assert_partitions(&t, chunk, stride);
        let rerun = faas_workload::synth::SyntheticTrace::new(&synth, &cat, SimTime::ZERO, seed);
        prop_assert_eq!(serial(&rerun), serial(&t));
    }

    /// Recorded traces: any partition reproduces the serial log, and
    /// recording the same (spec, seed) twice captures the identical trace.
    #[test]
    fn recorded_partitions_and_reruns_are_bit_exact(
        seed in any::<u64>(),
        chunk in 1u64..53,
        stride in 1u64..6
    ) {
        let cat = Catalogue::sebs();
        let t = RecordedTrace::record(&spec(8.0), &cat, SimTime::ZERO, seed);
        prop_assert!(!t.is_empty());
        assert_partitions(&t, chunk, stride);
        let rerun = RecordedTrace::record(&spec(8.0), &cat, SimTime::ZERO, seed);
        prop_assert_eq!(rerun.calls(), t.calls());
    }

    /// Record→replay digest identity: capturing a spec moves only the ids
    /// (generation order → release order); the (func, release, kind)
    /// sequence in release order is direct generation's, bit for bit.
    #[test]
    fn record_is_digest_identical_to_direct_generation(seed in any::<u64>()) {
        let cat = Catalogue::sebs();
        let start = SimTime::from_secs(2);
        let mut direct = ShardedGenerator::new(&spec(8.0), &cat, start, seed).generate_serial();
        direct.sort_by_key(|c| (c.release, c.id));
        let t = RecordedTrace::record(&spec(8.0), &cat, start, seed);
        prop_assert_eq!(t.len(), direct.len() as u64);
        for (i, d) in direct.iter().enumerate() {
            let c = t.call(i as u64);
            prop_assert_eq!(
                (c.func, c.release, c.kind),
                (d.func, d.release, d.kind),
                "digest mismatch at {}",
                i
            );
        }
    }
}
