//! Property tests of the workload generators.

use faas_simcore::time::SimDuration;
use faas_workload::scenario::{BurstScenario, FairnessScenario};
use faas_workload::sebs::Catalogue;
use proptest::prelude::*;

proptest! {
    /// Fairness scenarios keep the exact rare-call count and the total
    /// formula for any seed and rare-call budget.
    #[test]
    fn fairness_counts_hold(
        seed in any::<u64>(),
        rare in 1usize..40
    ) {
        let catalogue = Catalogue::sebs();
        let mut cfg = FairnessScenario::paper();
        cfg.rare_calls = rare;
        let scenario = cfg.generate(&catalogue, seed);
        let dna = catalogue.by_name("dna-visualisation").unwrap();
        let n = scenario.burst.iter().filter(|c| c.func == dna).count();
        prop_assert_eq!(n, rare);
        prop_assert_eq!(scenario.burst.len(), 990);
    }

    /// Burst arrival times are sorted and ids unique for any seed.
    #[test]
    fn burst_sorted_unique_ids(seed in any::<u64>(), cores in 1u32..16) {
        let catalogue = Catalogue::sebs();
        let s = BurstScenario::standard(cores, 30).generate(&catalogue, seed);
        let mut last = None;
        let mut ids = std::collections::BTreeSet::new();
        for c in s.all_calls() {
            prop_assert!(ids.insert(c.id), "duplicate id {:?}", c.id);
            if c.kind == faas_workload::trace::CallKind::Measured {
                if let Some(prev) = last {
                    prop_assert!(c.release >= prev);
                }
                last = Some(c.release);
            }
        }
    }

    /// The mean inter-arrival time over the burst matches the uniform
    /// window: total window / n.
    #[test]
    fn burst_density_is_uniformish(seed in any::<u64>()) {
        let catalogue = Catalogue::sebs();
        let s = BurstScenario::standard(10, 60).generate(&catalogue, seed);
        // Chunk the window into quarters; each holds 25% of the 660 calls
        // with a standard deviation of ~1.7%, so +-9% is a ~5.3 sigma band
        // (safe across the 256 proptest cases).
        let q = SimDuration::from_secs(15);
        for k in 0..4u64 {
            let lo = s.burst_start + SimDuration::from_nanos(k * q.as_nanos());
            let hi = lo + q;
            let n = s
                .burst
                .iter()
                .filter(|c| c.release >= lo && c.release < hi)
                .count();
            let frac = n as f64 / s.burst.len() as f64;
            prop_assert!((frac - 0.25).abs() < 0.09, "quarter {k} holds {frac}");
        }
    }
}
