//! The trace ingestion subsystem: indexable, memory-bounded call logs.
//!
//! A [`TraceSource`] is a *fixed, time-ordered* call log addressed by
//! index — the replay counterpart of [`crate::generate::ShardedGenerator`].
//! It honors the same two contracts that make the sharded generator
//! compose with every cluster engine:
//!
//! 1. **Pure in `(source, index)`** — `call(i)` returns the identical
//!    [`Call`] however, whenever and on whatever thread it is evaluated,
//!    so any chunk/stride partition of the index space reproduces the
//!    serial trace bit-for-bit (the shard-invariance guarantee).
//! 2. **Release-ordered** — releases are non-decreasing in the index and
//!    `call(i).id == CallId(i)`. A trace is a log: index order *is*
//!    arrival order. This is what lets the streaming engines pull bounded
//!    windows of calls through a cursor instead of materializing a `Vec`,
//!    and what makes `Call::stride_node` the round-robin assignment.
//!
//! Two implementations live here and in [`crate::synth`]:
//! [`RecordedTrace`] (a materialized log with JSONL save/load, a
//! chunk-streamed file reader, and a `record` path capturing any
//! [`WorkloadSpec`]) and [`crate::synth::SyntheticTrace`] (an
//! Azure-Functions-style synthesizer whose calls are derived lazily per
//! index, so a 10^8-call day is generated on the fly, never held in
//! memory). [`WorkloadSource`] is the enum the experiment layers thread
//! through: an analytic spec or a trace, interchangeably.
//!
//! Trace runs inject **no warm-up calls**: a trace is the complete log of
//! what the cluster received, warm-up included if it was recorded.

use crate::generate::{ShardedGenerator, WorkloadSpec};
use crate::sebs::Catalogue;
use crate::synth::SynthSpec;
use crate::trace::{Call, CallId};
use faas_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Indexable, memory-bounded access to a fixed, release-ordered call log.
/// See the module docs for the purity and ordering contract.
pub trait TraceSource: Sync {
    /// Number of calls in the log.
    fn len(&self) -> u64;

    /// The log's start time (all releases are at or after it).
    fn start(&self) -> SimTime;

    /// The `index`-th call, pure in `(self, index)`; releases are
    /// non-decreasing in `index` and `call(i).id == CallId(i)`.
    fn call(&self, index: u64) -> Call;

    /// True when the log is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stream one contiguous chunk `[lo, hi)` in index (= release) order.
    fn iter_chunk(&self, lo: u64, hi: u64) -> Box<dyn Iterator<Item = Call> + '_> {
        debug_assert!(lo <= hi && hi <= self.len());
        Box::new((lo..hi).map(move |i| self.call(i)))
    }

    /// Stream every `stride`-th call starting at `offset` — the per-node
    /// view under round-robin assignment by index.
    fn iter_stride(&self, offset: u64, stride: u64) -> Box<dyn Iterator<Item = Call> + '_> {
        assert!(stride > 0, "stride must be positive");
        Box::new(
            (offset..self.len())
                .step_by(stride as usize)
                .map(move |i| self.call(i)),
        )
    }
}

/// The JSONL trace-file header (first line of the file).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TraceHeader {
    /// Format version.
    version: u32,
    /// Trace start time.
    start: SimTime,
    /// Number of call records following the header.
    len: u64,
}

const TRACE_FORMAT_VERSION: u32 = 1;

/// A materialized, release-ordered call log.
///
/// The file format is JSONL — one header line, then one [`Call`] per line
/// — chosen so [`RecordedTrace::stream`] can replay a file with an O(1
/// line) working set and no streaming-JSON machinery. [`SimTime`] is
/// integer nanoseconds, so save/load round-trips bit-exactly.
pub struct RecordedTrace {
    start: SimTime,
    calls: Vec<Call>,
}

impl RecordedTrace {
    /// Build a trace from any call list: sorts by `(release, id)` and
    /// re-assigns dense ids in release order, establishing the
    /// [`TraceSource`] contract (`id == index`, releases non-decreasing).
    pub fn from_calls(start: SimTime, mut calls: Vec<Call>) -> RecordedTrace {
        calls.sort_by_key(|c| (c.release, c.id));
        for (i, c) in calls.iter_mut().enumerate() {
            c.id = CallId(i as u64);
        }
        RecordedTrace { start, calls }
    }

    /// Capture an existing [`WorkloadSpec`] into a trace: realize the
    /// sharded generator for `(spec, seed)`, materialize in parallel, and
    /// establish release order. The captured multiset of
    /// `(func, release, kind)` is digest-identical to direct generation —
    /// only the ids move, from generation order to release order.
    pub fn record(
        spec: &WorkloadSpec,
        catalogue: &Catalogue,
        start: SimTime,
        seed: u64,
    ) -> RecordedTrace {
        let generator = ShardedGenerator::new(spec, catalogue, start, seed);
        RecordedTrace::from_calls(start, generator.generate_parallel())
    }

    /// Save as JSONL (header line + one call per line).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        let header = TraceHeader {
            version: TRACE_FORMAT_VERSION,
            start: self.start,
            len: self.calls.len() as u64,
        };
        let header_line = serde_json::to_string(&header).map_err(io::Error::other)?;
        w.write_all(header_line.as_bytes())?;
        w.write_all(b"\n")?;
        for call in &self.calls {
            let line = serde_json::to_string(call).map_err(io::Error::other)?;
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        w.flush()
    }

    /// Load a JSONL trace file fully into memory (re-establishing the
    /// ordering contract on the way in). For O(chunk) replay of a file
    /// too large to hold, use [`RecordedTrace::stream`].
    pub fn load(path: &Path) -> io::Result<RecordedTrace> {
        let mut reader = RecordedTrace::stream(path)?;
        let mut calls = Vec::with_capacity(reader.len().min(1 << 20) as usize);
        for call in &mut reader {
            calls.push(call?);
        }
        Ok(RecordedTrace::from_calls(reader.start(), calls))
    }

    /// Open a chunk-streamed reader over a JSONL trace file: an iterator
    /// with an O(1 line) working set, plus the header's `len`/`start`.
    pub fn stream(path: &Path) -> io::Result<TraceFileReader> {
        let mut lines = BufReader::new(std::fs::File::open(path)?).lines();
        let header_line = lines
            .next()
            .ok_or_else(|| io::Error::other("empty trace file"))??;
        let header: TraceHeader = serde_json::from_str(&header_line).map_err(io::Error::other)?;
        if header.version != TRACE_FORMAT_VERSION {
            return Err(io::Error::other(format!(
                "unsupported trace format version {}",
                header.version
            )));
        }
        Ok(TraceFileReader { header, lines })
    }

    /// The calls, in release order.
    pub fn calls(&self) -> &[Call] {
        &self.calls
    }
}

impl TraceSource for RecordedTrace {
    fn len(&self) -> u64 {
        self.calls.len() as u64
    }

    fn start(&self) -> SimTime {
        self.start
    }

    fn call(&self, index: u64) -> Call {
        self.calls[index as usize]
    }
}

/// A chunk-streamed JSONL trace-file reader; see [`RecordedTrace::stream`].
pub struct TraceFileReader {
    header: TraceHeader,
    lines: std::io::Lines<BufReader<std::fs::File>>,
}

impl TraceFileReader {
    /// Number of calls the header promises.
    pub fn len(&self) -> u64 {
        self.header.len
    }

    /// True when the header promises no calls.
    pub fn is_empty(&self) -> bool {
        self.header.len == 0
    }

    /// Trace start time from the header.
    pub fn start(&self) -> SimTime {
        self.header.start
    }
}

impl Iterator for TraceFileReader {
    type Item = io::Result<Call>;

    fn next(&mut self) -> Option<io::Result<Call>> {
        let line = match self.lines.next()? {
            Ok(line) => line,
            Err(e) => return Some(Err(e)),
        };
        Some(serde_json::from_str(&line).map_err(io::Error::other))
    }
}

/// Serializable description of a trace to replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceSpec {
    /// Synthesize an Azure-style trace on the fly (never materialized).
    Synthetic(SynthSpec),
    /// Replay a recorded JSONL trace file.
    Recorded {
        /// Path to the trace file (a `String` so the spec stays
        /// serializable with the vendored serde subset).
        path: String,
    },
}

impl TraceSpec {
    /// Open the trace this spec describes. `start`/`seed` parameterize
    /// synthetic traces; a recorded trace carries its own start time and
    /// consumes no randomness.
    pub fn open(
        &self,
        catalogue: &Catalogue,
        start: SimTime,
        seed: u64,
    ) -> io::Result<Box<dyn TraceSource>> {
        match self {
            TraceSpec::Synthetic(spec) => Ok(Box::new(crate::synth::SyntheticTrace::new(
                spec, catalogue, start, seed,
            ))),
            TraceSpec::Recorded { path } => Ok(Box::new(RecordedTrace::load(Path::new(path))?)),
        }
    }

    /// Short label for report tables.
    pub fn label(&self) -> String {
        match self {
            TraceSpec::Synthetic(spec) => spec.label(),
            TraceSpec::Recorded { path } => format!(
                "replay({})",
                Path::new(path)
                    .file_name()
                    .map_or_else(|| path.clone(), |f| f.to_string_lossy().into_owned())
            ),
        }
    }
}

/// What drives a run: an analytic workload spec or a fixed trace. The
/// experiment layers thread this through so every engine composes with
/// both generation schemes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSource {
    /// Generate from an analytic spec (arrival × mix × weights × window).
    Spec(WorkloadSpec),
    /// Replay a fixed trace.
    Trace(TraceSpec),
}

impl WorkloadSource {
    /// Short label for report tables.
    pub fn label(&self, catalogue: &Catalogue) -> String {
        match self {
            WorkloadSource::Spec(spec) => spec.label(catalogue),
            WorkloadSource::Trace(trace) => trace.label(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalSpec;
    use crate::mix::MixSpec;
    use crate::trace::CallKind;
    use crate::weight::WeightSpec;
    use faas_simcore::time::SimDuration;
    use std::path::PathBuf;

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            arrival: ArrivalSpec::Poisson { rate: 9.0 },
            mix: MixSpec::Zipf { s: 1.1 },
            weights: WeightSpec::Uniform,
            window: SimDuration::from_secs(60),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("faas-trace-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn record_establishes_the_ordering_contract() {
        let t = RecordedTrace::record(&spec(), &catalogue(), SimTime::from_secs(3), 11);
        assert!(!t.is_empty());
        let mut prev = SimTime::ZERO;
        for i in 0..t.len() {
            let c = t.call(i);
            assert_eq!(c.id, CallId(i), "id == index");
            assert!(c.release >= prev, "release-ordered at {i}");
            prev = c.release;
        }
    }

    #[test]
    fn record_is_digest_identical_to_direct_generation() {
        // Only ids move (generation order -> release order); the
        // (func, release, kind) multiset is the generator's, bit for bit.
        let cat = catalogue();
        let g = ShardedGenerator::new(&spec(), &cat, SimTime::from_secs(3), 11);
        let mut direct = g.generate_serial();
        direct.sort_by_key(|c| (c.release, c.id));
        let t = RecordedTrace::record(&spec(), &cat, SimTime::from_secs(3), 11);
        assert_eq!(t.len(), direct.len() as u64);
        for (i, d) in direct.iter().enumerate() {
            let c = t.call(i as u64);
            assert_eq!((c.func, c.release, c.kind), (d.func, d.release, d.kind));
        }
    }

    #[test]
    fn save_load_round_trips_bit_exactly() {
        let t = RecordedTrace::record(&spec(), &catalogue(), SimTime::from_secs(5), 13);
        let path = tmp("roundtrip.jsonl");
        t.save(&path).expect("save");
        let loaded = RecordedTrace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.start(), t.start());
        assert_eq!(loaded.calls(), t.calls());
    }

    #[test]
    fn streamed_reader_matches_indexed_access() {
        let t = RecordedTrace::record(&spec(), &catalogue(), SimTime::from_secs(5), 17);
        let path = tmp("stream.jsonl");
        t.save(&path).expect("save");
        let reader = RecordedTrace::stream(&path).expect("open");
        assert_eq!(reader.len(), t.len());
        assert_eq!(reader.start(), t.start());
        let streamed: Vec<Call> = reader.map(|c| c.expect("parse")).collect();
        std::fs::remove_file(&path).ok();
        assert_eq!(streamed, t.calls());
    }

    #[test]
    fn chunks_and_strides_partition_the_trace() {
        let t = RecordedTrace::record(&spec(), &catalogue(), SimTime::ZERO, 19);
        let n = t.len();
        let serial: Vec<Call> = t.iter_chunk(0, n).collect();
        let mut from_strides: Vec<Call> = (0..3).flat_map(|s| t.iter_stride(s, 3)).collect();
        from_strides.sort_by_key(|c| c.id);
        assert_eq!(from_strides, serial);
        let mid = n / 2;
        let mut from_chunks: Vec<Call> = t.iter_chunk(0, mid).collect();
        from_chunks.extend(t.iter_chunk(mid, n));
        assert_eq!(from_chunks, serial);
    }

    #[test]
    fn from_calls_sorts_and_renumbers() {
        let f = catalogue().by_name("sleep").unwrap();
        let mk = |id: u64, ms: u64| Call {
            id: CallId(id),
            func: f,
            release: SimTime::from_millis(ms),
            kind: CallKind::Measured,
        };
        let t = RecordedTrace::from_calls(SimTime::ZERO, vec![mk(5, 30), mk(9, 10), mk(2, 20)]);
        let releases: Vec<u64> = (0..3).map(|i| t.call(i).release.as_nanos()).collect();
        assert_eq!(
            releases,
            vec![
                SimTime::from_millis(10).as_nanos(),
                SimTime::from_millis(20).as_nanos(),
                SimTime::from_millis(30).as_nanos()
            ]
        );
        assert!((0..3).all(|i| t.call(i).id == CallId(i)));
    }

    #[test]
    fn trace_spec_open_and_labels() {
        let cat = catalogue();
        let synth = TraceSpec::Synthetic(SynthSpec::azure(5.0, SimDuration::from_secs(60)));
        let t = synth.open(&cat, SimTime::ZERO, 23).expect("synthetic");
        assert!(!t.is_empty());
        assert!(synth.label().starts_with("synth("));

        let rec = RecordedTrace::record(&spec(), &cat, SimTime::ZERO, 29);
        let path = tmp("spec-open.jsonl");
        rec.save(&path).expect("save");
        let replay = TraceSpec::Recorded {
            path: path.to_string_lossy().into_owned(),
        };
        let r = replay.open(&cat, SimTime::ZERO, 0).expect("recorded");
        std::fs::remove_file(&path).ok();
        assert_eq!(r.len(), rec.len());
        assert!(replay.label().starts_with("replay("));
        let src = WorkloadSource::Trace(synth);
        assert!(src.label(&cat).starts_with("synth("));
        assert_eq!(WorkloadSource::Spec(spec()).label(&cat), spec().label(&cat));
    }
}
