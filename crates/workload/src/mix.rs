//! Pluggable function-popularity mixes.
//!
//! The paper uses two mixes: an exact equal split across the eleven SeBS
//! functions (§V-B) and the Fig. 5 fairness mix (exactly ten calls of one
//! rare long function, the rest uniform over the others). Real FaaS
//! popularity is heavy-tailed, so the subsystem adds a Zipf mix over the
//! catalogue.
//!
//! A mix supports two assignment schemes:
//!
//! * [`FunctionMix::materialize`] — build the exact function multiset for
//!   `n` calls and shuffle it into release order. This is the serial,
//!   legacy-compatible path: for the paper's mixes it consumes the RNG
//!   stream exactly like the pre-subsystem generators, which keeps the
//!   scenario adapters bit-for-bit identical.
//! * [`FunctionMix::function_at`] — the function of one call given its
//!   *permuted index* (see [`crate::generate::IndexPermutation`]). This is
//!   the counter-based path the sharded generator uses: any worker can
//!   compute any call's function without touching shared state, while
//!   exact-count mixes stay exact because the permutation is a bijection.

use crate::sebs::{Catalogue, FuncId};
use faas_simcore::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// A realized function mix for one catalogue.
pub trait FunctionMix: Send + Sync {
    /// Short label for report tables (`equal`, `fairness`, `zipf`).
    fn label(&self) -> String;

    /// The exact function multiset for `n` calls, shuffled into release
    /// order with `rng` (legacy-compatible serial path).
    fn materialize(&self, n: usize, rng: &mut Xoshiro256) -> Vec<FuncId>;

    /// The function of the call whose permuted index is `permuted` out of
    /// `n` (counter-based sharded path). `rng` is the call's private
    /// stream; index-deterministic mixes ignore it.
    fn function_at(&self, permuted: u64, n: u64, rng: &mut Xoshiro256) -> FuncId;
}

/// The paper's equal split: call counts per function differ by at most one
/// (exactly equal when `n` divides evenly, as in every §V scenario).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EqualSplit {
    /// Number of functions in the catalogue.
    pub functions: usize,
}

impl FunctionMix for EqualSplit {
    fn label(&self) -> String {
        "equal".into()
    }

    fn materialize(&self, n: usize, rng: &mut Xoshiro256) -> Vec<FuncId> {
        let k = self.functions;
        assert!(k > 0, "equal split needs functions");
        let per = n / k;
        let rem = n % k;
        let mut funcs: Vec<FuncId> = Vec::with_capacity(n);
        for f in 0..k {
            let count = per + usize::from(f < rem);
            funcs.extend(std::iter::repeat_n(FuncId(f as u16), count));
        }
        rng.shuffle(&mut funcs);
        funcs
    }

    fn function_at(&self, permuted: u64, n: u64, _rng: &mut Xoshiro256) -> FuncId {
        debug_assert!(permuted < n);
        // Balanced block assignment over the permuted index space: each
        // function owns a contiguous block of permuted positions, so counts
        // differ by at most one and the (random) permutation decorrelates
        // function from release order and node assignment.
        FuncId((permuted as u128 * self.functions as u128 / n as u128) as u16)
    }
}

/// The Fig. 5 fairness mix: exactly `rare_calls` calls of one rare
/// function; every other call picks uniformly among the remaining
/// functions.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessMix {
    /// The rare function.
    pub rare: FuncId,
    /// The other functions, in catalogue order.
    pub others: Vec<FuncId>,
    /// Exact number of rare calls.
    pub rare_calls: usize,
}

impl FunctionMix for FairnessMix {
    fn label(&self) -> String {
        "fairness".into()
    }

    fn materialize(&self, n: usize, rng: &mut Xoshiro256) -> Vec<FuncId> {
        assert!(
            !self.others.is_empty(),
            "fairness mix needs at least two functions"
        );
        assert!(
            n >= self.rare_calls,
            "total calls {n} cannot fit {} rare calls",
            self.rare_calls
        );
        let mut funcs: Vec<FuncId> = Vec::with_capacity(n);
        funcs.extend(std::iter::repeat_n(self.rare, self.rare_calls));
        for _ in self.rare_calls..n {
            funcs.push(*rng.choose(&self.others));
        }
        rng.shuffle(&mut funcs);
        funcs
    }

    fn function_at(&self, permuted: u64, n: u64, rng: &mut Xoshiro256) -> FuncId {
        debug_assert!(permuted < n);
        // Same validation as `materialize`, so the sharded path cannot
        // silently accept a scenario the serial path rejects.
        assert!(
            n >= self.rare_calls as u64,
            "total calls {n} cannot fit {} rare calls",
            self.rare_calls
        );
        if permuted < self.rare_calls as u64 {
            self.rare
        } else {
            *rng.choose(&self.others)
        }
    }
}

/// Zipf popularity over the catalogue: function at catalogue index `r`
/// has weight `1 / (r + 1)^s`.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfMix {
    /// Skew exponent (0 = uniform; SeBS-scale traces fit 0.9–1.5).
    pub s: f64,
    /// Cumulative probability at each function, last entry 1.
    cdf: Vec<f64>,
}

impl ZipfMix {
    /// Build the mix for `functions` catalogue entries with skew `s`.
    pub fn new(functions: usize, s: f64) -> ZipfMix {
        assert!(functions > 0, "zipf mix needs functions");
        assert!(s >= 0.0 && s.is_finite(), "zipf skew must be non-negative");
        let weights: Vec<f64> = (0..functions).map(|r| (r as f64 + 1.0).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfMix { s, cdf }
    }

    fn draw(&self, rng: &mut Xoshiro256) -> FuncId {
        let u = rng.next_f64();
        let idx = self
            .cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1);
        FuncId(idx as u16)
    }
}

impl FunctionMix for ZipfMix {
    fn label(&self) -> String {
        format!("zipf{:.1}", self.s)
    }

    fn materialize(&self, n: usize, rng: &mut Xoshiro256) -> Vec<FuncId> {
        (0..n).map(|_| self.draw(rng)).collect()
    }

    fn function_at(&self, _permuted: u64, _n: u64, rng: &mut Xoshiro256) -> FuncId {
        self.draw(rng)
    }
}

/// Serializable description of a function mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MixSpec {
    /// The paper's equal split.
    Equal,
    /// The Fig. 5 fairness mix.
    Fairness {
        /// Name of the rare function (must exist in the catalogue).
        rare_function: String,
        /// Exact number of rare calls.
        rare_calls: usize,
    },
    /// Zipf popularity with skew `s` over the catalogue order.
    Zipf {
        /// Skew exponent.
        s: f64,
    },
}

impl MixSpec {
    /// Realize the mix against a catalogue.
    pub fn mix(&self, catalogue: &Catalogue) -> Box<dyn FunctionMix> {
        match self {
            MixSpec::Equal => Box::new(EqualSplit {
                functions: catalogue.len(),
            }),
            MixSpec::Fairness {
                rare_function,
                rare_calls,
            } => {
                let rare = catalogue
                    .by_name(rare_function)
                    .expect("rare function must exist in the catalogue");
                let others: Vec<FuncId> = catalogue.ids().filter(|&f| f != rare).collect();
                assert!(
                    !others.is_empty(),
                    "fairness scenario needs at least two functions"
                );
                Box::new(FairnessMix {
                    rare,
                    others,
                    rare_calls: *rare_calls,
                })
            }
            MixSpec::Zipf { s } => Box::new(ZipfMix::new(catalogue.len(), *s)),
        }
    }

    /// Short label for report tables.
    pub fn label(&self, catalogue: &Catalogue) -> String {
        self.mix(catalogue).label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_counts_are_balanced() {
        let mix = EqualSplit { functions: 11 };
        let mut rng = Xoshiro256::seed_from_u64(1);
        let funcs = mix.materialize(660, &mut rng);
        for f in 0..11u16 {
            assert_eq!(funcs.iter().filter(|&&x| x == FuncId(f)).count(), 60);
        }
        // Non-divisible: counts differ by at most one.
        let funcs = mix.materialize(25, &mut rng);
        for f in 0..11u16 {
            let c = funcs.iter().filter(|&&x| x == FuncId(f)).count();
            assert!((2..=3).contains(&c), "func {f} got {c}");
        }
    }

    #[test]
    fn equal_split_function_at_is_balanced() {
        let mix = EqualSplit { functions: 11 };
        let mut rng = Xoshiro256::seed_from_u64(2);
        let n = 660u64;
        let mut counts = [0usize; 11];
        for j in 0..n {
            counts[mix.function_at(j, n, &mut rng).index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 60), "{counts:?}");
    }

    #[test]
    fn fairness_counter_scheme_keeps_rare_exact() {
        let mix = FairnessMix {
            rare: FuncId(0),
            others: (1..11).map(FuncId).collect(),
            rare_calls: 10,
        };
        let mut rng = Xoshiro256::seed_from_u64(3);
        let n = 990u64;
        let rare = (0..n)
            .filter(|&j| mix.function_at(j, n, &mut rng) == FuncId(0))
            .count();
        assert_eq!(rare, 10);
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let mix = ZipfMix::new(11, 1.2);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut counts = [0usize; 11];
        for _ in 0..50_000 {
            counts[mix.draw(&mut rng).index()] += 1;
        }
        assert!(
            counts[0] > counts[5] && counts[5] > counts[10],
            "{counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0), "every function is hit");
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let mix = ZipfMix::new(4, 0.0);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[mix.draw(&mut rng).index()] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn mix_spec_realizes_against_catalogue() {
        let cat = Catalogue::sebs();
        assert_eq!(MixSpec::Equal.label(&cat), "equal");
        assert_eq!(
            MixSpec::Fairness {
                rare_function: "dna-visualisation".into(),
                rare_calls: 10
            }
            .label(&cat),
            "fairness"
        );
        assert_eq!(MixSpec::Zipf { s: 1.2 }.label(&cat), "zipf1.2");
    }

    #[test]
    #[should_panic(expected = "must exist")]
    fn unknown_rare_function_rejected() {
        MixSpec::Fairness {
            rare_function: "nope".into(),
            rare_calls: 1,
        }
        .mix(&Catalogue::sebs());
    }
}
