//! Azure-Functions-style synthetic trace generation.
//!
//! Published FaaS production traces share three load-shape features the
//! analytic generators of [`crate::arrival`]/[`crate::mix`] only model one
//! at a time: *heavy-tailed* per-function popularity (a few functions
//! dominate), *diurnal* per-function cycles with function-specific phases
//! (different tenants peak at different hours), and *bursty* short-scale
//! on-off behaviour superimposed on both. [`SyntheticTrace`] composes all
//! three — plus optional correlated invocation chains — into one
//! [`crate::trace_source::TraceSource`].
//!
//! # Contract: pure in `(seed, index)`, memory-bounded
//!
//! Construction realizes the *cluster-wide intensity profile* once: every
//! function's mean rate (Zipf over a seeded popularity order), diurnal
//! curve (seeded phase) and MMPP on-off path (seeded sojourns) are merged
//! into one global piecewise-constant profile with a per-segment
//! per-function rate table. That realization is O(segments · functions) —
//! independent of the call count.
//!
//! Each call is then derived lazily from its own RNG stream, exactly like
//! [`crate::generate::ShardedGenerator`]: call `i` of `n` draws its
//! release via the stratified quantile `(i + u_i) / n` through the
//! profile's inverse CDF (monotone in `i`, so the trace is release-ordered
//! by construction), picks its function from the CDF of the segment its
//! release lands in, and redirects along the seeded chain permutation with
//! probability `chain_p`. A 10^8-call day is therefore *addressable*
//! without ever being materialized, any chunk/stride partition reproduces
//! the serial trace bit-for-bit, and reruns are bit-identical across
//! thread counts.

use crate::arrival::{CountModel, IntensityProfile};
use crate::generate::mix64;
use crate::sebs::Catalogue;
use crate::trace::{Call, CallId, CallKind};
use crate::trace_source::TraceSource;
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Stream tag for the profile realization (popularity order, phases, MMPP
/// paths).
const STREAM_SYNTH_PROFILE: u64 = 0xA701;
/// Stream tag for the call-count draw.
const STREAM_SYNTH_COUNT: u64 = 0xA702;
/// Stream tag for the per-call stream base.
const STREAM_SYNTH_CALLS: u64 = 0xA703;
/// Stream tag for the invocation-chain permutation.
const STREAM_SYNTH_CHAIN: u64 = 0xA704;

/// Bursty on-off modulation superimposed on every function's rate curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmppBurst {
    /// Multiplicative rate boost while a function's chain is *on*.
    pub rate_boost: f64,
    /// Mean on-state sojourn, seconds.
    pub mean_on_secs: f64,
    /// Mean off-state sojourn, seconds.
    pub mean_off_secs: f64,
}

/// Serializable description of an Azure-style synthetic trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Zipf exponent of the per-function mean-rate distribution (the
    /// heavy tail; which function gets which rank is seeded).
    pub zipf_s: f64,
    /// Cluster-wide mean arrival rate, calls/second, averaged over the
    /// window.
    pub mean_rate: f64,
    /// Trace length (the "day").
    pub window: SimDuration,
    /// Relative amplitude of the per-function diurnal cycle, in `[0, 1]`.
    pub diurnal_amplitude: f64,
    /// Resolution of the piecewise diurnal curve (equal-length segments).
    pub diurnal_segments: u32,
    /// Optional bursty MMPP superposition (one independent on-off chain
    /// per function).
    pub burst: Option<MmppBurst>,
    /// Probability a call is redirected along the seeded invocation chain
    /// (correlated invocations), in `[0, 1]`.
    pub chain_p: f64,
}

impl SynthSpec {
    /// An Azure-flavoured default: strong popularity skew, pronounced
    /// diurnal cycle, minute-scale bursts, mild invocation chaining.
    pub fn azure(mean_rate: f64, window: SimDuration) -> SynthSpec {
        SynthSpec {
            zipf_s: 1.1,
            mean_rate,
            window,
            diurnal_amplitude: 0.6,
            diurnal_segments: 48,
            burst: Some(MmppBurst {
                rate_boost: 3.0,
                mean_on_secs: 60.0,
                mean_off_secs: 300.0,
            }),
            chain_p: 0.15,
        }
    }

    /// Short label for report tables.
    pub fn label(&self) -> String {
        format!("synth(z{:.1},{:.0}/s)", self.zipf_s, self.mean_rate)
    }
}

/// A lazily-evaluated synthetic trace; see the module docs for the model
/// and the purity/memory contract.
pub struct SyntheticTrace {
    start: SimTime,
    /// The merged cluster-wide rate curve (release-offset distribution).
    profile: IntensityProfile,
    /// Global segment boundaries in seconds (`seg_bounds.len() == S + 1`),
    /// matching `profile`'s segments one-for-one.
    seg_bounds: Vec<f64>,
    /// Row-major `S × functions` per-segment cumulative function shares;
    /// each row ends at 1.0.
    fn_cdf: Vec<f64>,
    functions: u16,
    /// `chain_next[f]` is the seeded successor of function `f` (a single
    /// cycle through all functions, so never the identity for 2+).
    chain_next: Vec<u16>,
    chain_p: f64,
    n: u64,
    base: u64,
}

impl SyntheticTrace {
    /// Realize `spec` against `catalogue` — O(segments · functions) work
    /// and memory, however many calls the trace holds.
    pub fn new(
        spec: &SynthSpec,
        catalogue: &Catalogue,
        start: SimTime,
        seed: u64,
    ) -> SyntheticTrace {
        let nf = catalogue.len();
        assert!(nf > 0, "synthetic trace needs a non-empty catalogue");
        let window = spec.window.as_secs_f64();
        assert!(window > 0.0, "trace window must be positive");
        assert!(
            spec.mean_rate >= 0.0 && spec.mean_rate.is_finite(),
            "mean rate must be finite and non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&spec.diurnal_amplitude),
            "diurnal amplitude must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&spec.chain_p),
            "chain_p must be in [0, 1]"
        );
        assert!(spec.diurnal_segments >= 1, "diurnal curve needs segments");

        let mut root = Xoshiro256::seed_from_u64(seed);
        let mut rng = root.derive_stream(STREAM_SYNTH_PROFILE);

        // Heavy-tailed mean rates: Zipf weights over a seeded popularity
        // order, so which function is hot varies with the seed.
        let mut order: Vec<usize> = (0..nf).collect();
        rng.shuffle(&mut order);
        let zipf: Vec<f64> = (0..nf)
            .map(|r| 1.0 / ((r + 1) as f64).powf(spec.zipf_s))
            .collect();
        let zsum: f64 = zipf.iter().sum();
        let mut mean_rates = vec![0.0f64; nf];
        for (rank, &f) in order.iter().enumerate() {
            mean_rates[f] = spec.mean_rate * zipf[rank] / zsum;
        }

        // Per-function diurnal phase (uniform) and MMPP on-off path.
        let phases: Vec<f64> = (0..nf).map(|_| rng.next_f64()).collect();
        // Each function's realized on/off switch times; the state before
        // the first switch is `mmpp_init[f]`.
        let mut switches: Vec<Vec<f64>> = vec![Vec::new(); nf];
        let mut mmpp_init = vec![false; nf];
        if let Some(b) = spec.burst {
            assert!(
                b.mean_on_secs > 0.0 && b.mean_off_secs > 0.0,
                "MMPP sojourn means must be positive"
            );
            assert!(b.rate_boost >= 0.0, "MMPP boost must be non-negative");
            let p_on = b.mean_on_secs / (b.mean_on_secs + b.mean_off_secs);
            for f in 0..nf {
                let mut on = rng.next_f64() < p_on;
                mmpp_init[f] = on;
                let mut t = 0.0;
                loop {
                    let mean = if on { b.mean_on_secs } else { b.mean_off_secs };
                    t += -mean * (1.0 - rng.next_f64()).ln();
                    if t >= window {
                        break;
                    }
                    switches[f].push(t);
                    on = !on;
                }
            }
        }

        // Global segment boundaries: the diurnal grid plus every MMPP
        // switch of every function; the exact window end is appended last
        // so float creep in the grid arithmetic cannot lose it.
        let mut bounds: Vec<f64> = (0..spec.diurnal_segments)
            .map(|j| window * j as f64 / spec.diurnal_segments as f64)
            .collect();
        for s in &switches {
            bounds.extend(s.iter().copied().filter(|&t| t < window));
        }
        bounds.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        bounds.push(window);

        // Per-segment per-function rates, evaluated at segment midpoints
        // (exact: every factor is piecewise-constant on this grid).
        let mut seg_bounds = vec![0.0f64];
        let mut segments: Vec<(f64, f64)> = Vec::new();
        let mut fn_cdf: Vec<f64> = Vec::new();
        // Walk each function's switch list with a cursor instead of
        // re-searching per segment.
        let mut sw_cursor = vec![0usize; nf];
        let boost = spec.burst.map_or(1.0, |b| b.rate_boost);
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            let len = b - a;
            if len <= 0.0 {
                continue;
            }
            let mid = a + len / 2.0;
            let dseg = ((mid / window) * spec.diurnal_segments as f64) as usize;
            let dseg = dseg.min(spec.diurnal_segments as usize - 1);
            let dmid = (dseg as f64 + 0.5) / spec.diurnal_segments as f64;
            let mut total = 0.0;
            let row_base = fn_cdf.len();
            for f in 0..nf {
                // Advance this function's on/off cursor past the segment
                // start; parity from the initial state gives the state.
                while sw_cursor[f] < switches[f].len() && switches[f][sw_cursor[f]] <= a {
                    sw_cursor[f] += 1;
                }
                let on = mmpp_init[f] ^ (sw_cursor[f] % 2 == 1);
                let diurnal = 1.0
                    + spec.diurnal_amplitude * (std::f64::consts::TAU * (dmid + phases[f])).sin();
                let rate = mean_rates[f] * diurnal.max(0.0) * if on { boost } else { 1.0 };
                total += rate;
                fn_cdf.push(total);
            }
            // Normalize the row to a CDF; an all-zero row falls back to
            // uniform so a zero-rate segment still has a defined draw.
            if total > 0.0 {
                for v in &mut fn_cdf[row_base..] {
                    *v /= total;
                }
            } else {
                for (f, v) in fn_cdf[row_base..].iter_mut().enumerate() {
                    *v = (f + 1) as f64 / nf as f64;
                }
            }
            seg_bounds.push(*seg_bounds.last().expect("bounds") + len);
            segments.push((len, total));
        }

        let profile = IntensityProfile::piecewise(&segments, CountModel::Poisson);
        let n = profile.sample_count(&mut root.derive_stream(STREAM_SYNTH_COUNT)) as u64;
        let base = root.derive_stream(STREAM_SYNTH_CALLS).next_u64();

        // The invocation chain: one seeded cycle through all functions, so
        // `chain_next` is never the identity when 2+ functions exist.
        let mut cycle: Vec<usize> = (0..nf).collect();
        root.derive_stream(STREAM_SYNTH_CHAIN).shuffle(&mut cycle);
        let mut chain_next = vec![0u16; nf];
        for i in 0..nf {
            chain_next[cycle[i]] = cycle[(i + 1) % nf] as u16;
        }

        SyntheticTrace {
            start,
            profile,
            seg_bounds,
            fn_cdf,
            functions: nf as u16,
            chain_next,
            chain_p: spec.chain_p,
            n,
            base,
        }
    }

    /// The realized expected arrival mass (calls); the drawn count `len()`
    /// is Poisson around it.
    pub fn mass(&self) -> f64 {
        self.profile.mass()
    }

    /// Index of the profile segment containing release offset `t`.
    fn segment_of(&self, t: f64) -> usize {
        let s = match self
            .seg_bounds
            .binary_search_by(|b| b.partial_cmp(&t).expect("finite bounds"))
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        s.min(self.seg_bounds.len().saturating_sub(2))
    }
}

impl TraceSource for SyntheticTrace {
    fn len(&self) -> u64 {
        self.n
    }

    fn start(&self) -> SimTime {
        self.start
    }

    fn call(&self, index: u64) -> Call {
        debug_assert!(index < self.n, "call index out of range");
        let mut rng = Xoshiro256::seed_from_u64(self.base ^ mix64(index));
        // Stratified quantile: strictly increasing in the index, uniform
        // within the call's own 1/n stratum — releases are non-decreasing
        // in the index (the TraceSource ordering contract) yet every call
        // remains a pure function of (seed, index).
        let q = (index as f64 + rng.next_f64()) / self.n as f64;
        let offset = self.profile.inv_cdf(q);
        let release = self.start + SimDuration::from_secs_f64(offset);
        let seg = self.segment_of(offset);
        let u = rng.next_f64();
        let nf = self.functions as usize;
        let row = &self.fn_cdf[seg * nf..(seg + 1) * nf];
        let f = row.partition_point(|&c| c <= u).min(nf - 1);
        let f = if self.chain_p > 0.0 && rng.next_f64() < self.chain_p {
            self.chain_next[f] as usize
        } else {
            f
        };
        Call {
            id: CallId(index),
            func: crate::sebs::FuncId(f as u16),
            release,
            kind: CallKind::Measured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    fn spec() -> SynthSpec {
        SynthSpec::azure(40.0, SimDuration::from_secs(600))
    }

    #[test]
    fn count_tracks_mean_rate() {
        let t = SyntheticTrace::new(&spec(), &catalogue(), SimTime::ZERO, 1);
        // Mass is seed-dependent (MMPP realization); the count should be
        // within a factor of the nominal mean (40/s * 600s = 24k) that
        // generously covers boost/diurnal variance.
        let nominal = 24_000.0;
        assert!(
            (t.len() as f64) > nominal * 0.3 && (t.len() as f64) < nominal * 3.0,
            "len {} vs nominal {nominal}",
            t.len()
        );
    }

    #[test]
    fn calls_are_pure_in_index_and_seed() {
        let a = SyntheticTrace::new(&spec(), &catalogue(), SimTime::from_secs(7), 9);
        let b = SyntheticTrace::new(&spec(), &catalogue(), SimTime::from_secs(7), 9);
        assert_eq!(a.len(), b.len());
        for i in [0, 1, 17, a.len() / 2, a.len() - 1] {
            assert_eq!(a.call(i), b.call(i));
            assert_eq!(a.call(i), a.call(i), "re-evaluation is stable");
        }
        let c = SyntheticTrace::new(&spec(), &catalogue(), SimTime::from_secs(7), 10);
        let moved = (0..100).filter(|&i| c.call(i) != a.call(i)).count();
        assert!(moved > 50, "seeds decorrelate ({moved} moved)");
    }

    #[test]
    fn releases_are_monotone_and_inside_window() {
        let t = SyntheticTrace::new(&spec(), &catalogue(), SimTime::from_secs(100), 3);
        let end = SimTime::from_secs(100) + SimDuration::from_secs(600);
        let mut prev = SimTime::ZERO;
        let step = (t.len() / 2000).max(1);
        let mut i = 0;
        while i < t.len() {
            let c = t.call(i);
            assert!(c.release >= prev, "monotone at {i}");
            assert!(c.release >= SimTime::from_secs(100) && c.release < end);
            assert_eq!(c.id, CallId(i));
            prev = c.release;
            i += step;
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let t = SyntheticTrace::new(&spec(), &catalogue(), SimTime::ZERO, 5);
        let mut counts = vec![0u64; catalogue().len()];
        for i in 0..t.len().min(20_000) {
            counts[t.call(i).func.index()] += 1;
        }
        let total: u64 = counts.iter().sum();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top2: u64 = counts.iter().take(2).sum();
        assert!(
            top2 as f64 / total as f64 > 0.35,
            "top-2 share {}/{total} not heavy-tailed",
            top2
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "chaining touches every function"
        );
    }

    #[test]
    fn chain_permutation_is_a_derangement_cycle() {
        let t = SyntheticTrace::new(&spec(), &catalogue(), SimTime::ZERO, 6);
        let nf = t.functions as usize;
        let mut seen = vec![false; nf];
        let mut f = 0usize;
        for _ in 0..nf {
            assert_ne!(t.chain_next[f] as usize, f, "no self-chain");
            f = t.chain_next[f] as usize;
            assert!(!seen[f], "single cycle");
            seen[f] = true;
        }
        assert!(seen.iter().all(|&s| s), "cycle covers every function");
    }

    #[test]
    fn no_burst_and_flat_cycle_is_near_homogeneous() {
        let s = SynthSpec {
            zipf_s: 0.0,
            mean_rate: 20.0,
            window: SimDuration::from_secs(600),
            diurnal_amplitude: 0.0,
            diurnal_segments: 4,
            burst: None,
            chain_p: 0.0,
        };
        let t = SyntheticTrace::new(&s, &catalogue(), SimTime::ZERO, 2);
        assert!((t.mass() - 12_000.0).abs() < 1e-6, "mass {}", t.mass());
        // Equal weights, no modulation: every function's share is ~1/11.
        let mut counts = vec![0u64; catalogue().len()];
        let m = t.len().min(11_000);
        for i in 0..m {
            counts[t.call(i).func.index()] += 1;
        }
        for (f, &c) in counts.iter().enumerate() {
            let share = c as f64 / m as f64;
            assert!((share - 1.0 / 11.0).abs() < 0.02, "func {f} share {share}");
        }
    }
}
