//! Seeded, fully deterministic fault injection: dynamic node capacity,
//! node crash/restart, and per-call transient failures with a
//! retry/timeout/backoff policy.
//!
//! # Fault model
//!
//! A [`FaultSpec`] declares, for a whole cluster run:
//!
//! * **Capacity ramps** ([`CapacityRamp`]) — a node's effective core count
//!   degrades to a trough multiplier and later restores, in configurable
//!   steps. One step down models a cgroup throttle landing at once; many
//!   steps model growing noisy-neighbor pressure; a slow restoration
//!   models autoscale lag. Compiled to `SetCapacity` timeline events that
//!   the invokers feed into [`faas_cpu::GpsCpu::set_capacity`].
//! * **Crashes** ([`CrashSpec`]) — a node dies at an instant and restarts
//!   after a delay. In-flight attempts on the dead node are killed (and
//!   retried per policy); queued calls survive — OpenWhisk's load balancer
//!   has already committed them to the invoker's Kafka topic, so they wait
//!   for the restarted invoker to resume pulling. Every container is lost,
//!   so the node restarts cold.
//! * **Transient failures** — each delivery *attempt* of a call fails with
//!   probability [`FaultSpec::transient_failure`], drawn at attempt
//!   completion (the work is consumed; the response is lost).
//! * **A [`RetryPolicy`]** — max attempts per call, a pending timeout
//!   (abandon an attempt that has not started executing in time) and
//!   exponential backoff with deterministic jitter between attempts.
//!
//! # Determinism and shard invariance
//!
//! Every random draw is a **pure function** of `(spec.seed, call id,
//! attempt)` — a SplitMix64 hash, not a stateful stream — and every
//! timeline is a pure function of `(spec, node index)`. No draw depends on
//! event order, on which worker thread simulates the node, or on how the
//! call stream was sharded, so a fixed seed reproduces a crash/retry
//! scenario bit-for-bit across runs and across chunk/stride sharding —
//! the same discipline [`crate::generate::ShardedGenerator`] uses for
//! call generation.

use crate::trace::CallId;
use faas_simcore::rng::splitmix64;
use faas_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Domain-separation tags for the per-call hash draws.
const TAG_TRANSIENT: u64 = 0xFA11_0001;
const TAG_JITTER: u64 = 0xFA11_0002;

/// A uniform `[0, 1)` draw that is a pure function of its arguments: the
/// spec seed, the call, the attempt number and a domain tag. Two rounds of
/// SplitMix64 over the mixed inputs — no stream state, so the draw is
/// independent of simulation event order and sharding.
fn unit_draw(seed: u64, call: CallId, attempt: u32, tag: u64) -> f64 {
    let mut s = seed
        ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ((call.0 << 32) | attempt as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    splitmix64(&mut s);
    let x = splitmix64(&mut s);
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Per-call retry/timeout/backoff policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum delivery attempts per call (at least 1; 1 means no retry).
    pub max_attempts: u32,
    /// Abandon an attempt that has not *started executing* within this
    /// long of its (re)arrival at the invoker; `None` disables the
    /// timeout. Models the client/gateway giving up on a queued request.
    pub pending_timeout: Option<SimDuration>,
    /// Backoff before the first retry; retry `k` (1-based) waits
    /// `backoff_base · backoff_factor^(k-1)`, scaled by the jitter draw.
    pub backoff_base: SimDuration,
    /// Exponential backoff multiplier (at least 1).
    pub backoff_factor: f64,
    /// Jitter fraction in `[0, 1]`: the backoff is scaled by `1 + j·u`
    /// with `u` a deterministic per-`(call, attempt)` unit draw.
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retries, no timeout: every attempt is final.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            pending_timeout: None,
            backoff_base: SimDuration::ZERO,
            backoff_factor: 1.0,
            jitter: 0.0,
        }
    }

    /// A production-shaped default: three attempts, 250 ms initial backoff
    /// doubling per retry, half-range jitter, no pending timeout.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            pending_timeout: None,
            backoff_base: SimDuration::from_millis(250),
            backoff_factor: 2.0,
            jitter: 0.5,
        }
    }

    /// Panic unless the policy is well-formed.
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "a call needs at least one attempt");
        assert!(
            self.backoff_factor.is_finite() && self.backoff_factor >= 1.0,
            "backoff factor must be finite and at least 1, got {}",
            self.backoff_factor
        );
        assert!(
            self.jitter.is_finite() && (0.0..=1.0).contains(&self.jitter),
            "jitter must sit in [0, 1], got {}",
            self.jitter
        );
    }

    /// The deterministic backoff before retrying `call` after its failed
    /// `attempt` (1-based). Pure in `(seed, call, attempt)`.
    pub fn backoff(&self, seed: u64, call: CallId, attempt: u32) -> SimDuration {
        let base = self.backoff_base.as_secs_f64();
        if base <= 0.0 {
            return SimDuration::ZERO;
        }
        let exp = self.backoff_factor.powi(attempt.saturating_sub(1) as i32);
        let scale = 1.0 + self.jitter * unit_draw(seed, call, attempt, TAG_JITTER);
        SimDuration::from_secs_f64(base * exp * scale)
    }
}

/// A capacity degradation/restoration ramp on one node (or all nodes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityRamp {
    /// Target node index, or `None` to degrade every node.
    pub node: Option<u16>,
    /// Onset of the degradation.
    pub start: SimTime,
    /// Capacity multiplier at the trough (`0 < floor`; above 1 models a
    /// temporary burst of extra capacity).
    pub floor: f64,
    /// Equal steps down to the trough (at least 1): 1 is a cgroup
    /// throttle landing at once, many is noisy-neighbor pressure growing.
    pub steps_down: u32,
    /// Time between consecutive steps (down and up).
    pub step_every: SimDuration,
    /// How long the trough holds before restoration begins.
    pub hold: SimDuration,
    /// Equal steps back to full capacity (at least 1): many steps model
    /// autoscale lag clawing capacity back slowly.
    pub steps_up: u32,
}

impl CapacityRamp {
    /// Panic unless the ramp is well-formed.
    pub fn validate(&self) {
        assert!(
            self.floor.is_finite() && self.floor > 0.0,
            "capacity floor must be positive and finite, got {}",
            self.floor
        );
        assert!(
            self.steps_down >= 1 && self.steps_up >= 1,
            "ramps need steps"
        );
    }

    /// Append this ramp's `SetCapacity` events for `node` to `out`.
    fn compile_into(&self, node: u16, out: &mut Vec<FaultEvent>) {
        match self.node {
            Some(n) if n != node => return,
            _ => {}
        }
        let mut at = self.start;
        for step in 1..=self.steps_down {
            let frac = step as f64 / self.steps_down as f64;
            let factor = 1.0 + (self.floor - 1.0) * frac;
            out.push(FaultEvent {
                at,
                kind: FaultKind::SetCapacityFactor(factor),
            });
            if step < self.steps_down {
                at += self.step_every;
            }
        }
        at += self.hold;
        for step in 1..=self.steps_up {
            let frac = step as f64 / self.steps_up as f64;
            let factor = self.floor + (1.0 - self.floor) * frac;
            at += self.step_every;
            out.push(FaultEvent {
                at,
                kind: FaultKind::SetCapacityFactor(factor),
            });
        }
    }
}

/// A node crash with restart-after-delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// The node that dies.
    pub node: u16,
    /// The instant it dies.
    pub at: SimTime,
    /// How long until the invoker process is back (cold: every container
    /// is lost).
    pub restart_after: SimDuration,
}

/// One compiled fault event on a node's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the event fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// The kinds of compiled fault events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Scale the node's core capacity to `factor ×` its configured cores.
    SetCapacityFactor(f64),
    /// The node dies: in-flight attempts are killed, containers are lost.
    Crash,
    /// The (cold) invoker process is back; dispatch resumes.
    Restart,
}

impl FaultKind {
    /// Deterministic secondary sort key for same-instant events: capacity
    /// changes apply before a crash, and a crash precedes a restart.
    fn order(&self) -> u8 {
        match self {
            FaultKind::SetCapacityFactor(_) => 0,
            FaultKind::Crash => 1,
            FaultKind::Restart => 2,
        }
    }
}

/// The compiled, time-sorted fault timeline of one node: a pure function
/// of `(spec, node index)`, merged into the node's event queue by the
/// invoker simulations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultTimeline {
    /// Events sorted by `(time, kind order)`.
    pub events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// True when nothing ever happens to this node.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The full fault plan of a run. [`FaultSpec::none`] — the default — is
/// the identity: no capacity events, no crashes, zero failure probability
/// and a no-retry policy, under which every simulation path reduces to
/// the fault-free behavior bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Root seed of every deterministic fault draw (transient failures,
    /// backoff jitter). Independent of the workload seeds so fault plans
    /// never perturb call generation.
    pub seed: u64,
    /// Capacity degradation/restoration ramps.
    pub capacity: Vec<CapacityRamp>,
    /// Node crashes.
    pub crashes: Vec<CrashSpec>,
    /// Probability that one delivery attempt fails transiently, in
    /// `[0, 1]`. Drawn per `(call, attempt)` at attempt completion.
    pub transient_failure: f64,
    /// The retry/timeout/backoff policy.
    pub retry: RetryPolicy,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

impl FaultSpec {
    /// The identity plan: no faults, no retries.
    pub fn none() -> Self {
        FaultSpec {
            seed: 0,
            capacity: Vec::new(),
            crashes: Vec::new(),
            transient_failure: 0.0,
            retry: RetryPolicy::no_retry(),
        }
    }

    /// True when the plan can never alter a run: the invokers skip all
    /// fault bookkeeping on such plans, keeping the no-fault hot path
    /// bit-identical to the pre-fault simulator. A pending timeout counts
    /// as a fault source — it can abandon queued attempts even with no
    /// capacity events, crashes or transient failures. A bare
    /// `max_attempts > 1` does not: with nothing able to fail an attempt,
    /// retries are unreachable.
    pub fn is_none(&self) -> bool {
        self.capacity.is_empty()
            && self.crashes.is_empty()
            && self.transient_failure == 0.0
            && self.retry.pending_timeout.is_none()
    }

    /// Panic unless the plan is well-formed.
    pub fn validate(&self) {
        assert!(
            self.transient_failure.is_finite() && (0.0..=1.0).contains(&self.transient_failure),
            "transient failure probability must sit in [0, 1], got {}",
            self.transient_failure
        );
        self.retry.validate();
        for ramp in &self.capacity {
            ramp.validate();
        }
    }

    /// Preset: a mid-window degradation ramp on every node — three steps
    /// down to 40% capacity, a hold, and a slow six-step restoration
    /// (autoscale lag) — with the standard retry policy.
    pub fn degradation(seed: u64, burst_start: SimTime, window: SimDuration) -> Self {
        let quarter = SimDuration::from_secs_f64(window.as_secs_f64() / 4.0);
        FaultSpec {
            seed,
            capacity: vec![CapacityRamp {
                node: None,
                start: burst_start + quarter,
                floor: 0.4,
                steps_down: 3,
                step_every: SimDuration::from_secs(2),
                hold: quarter,
                steps_up: 6,
            }],
            crashes: Vec::new(),
            transient_failure: 0.0,
            retry: RetryPolicy::standard(),
        }
    }

    /// Preset: node 0 crashes a third into the burst window and restarts
    /// after a tenth of the window, with the standard retry policy.
    pub fn crash_restart(seed: u64, burst_start: SimTime, window: SimDuration) -> Self {
        let third = SimDuration::from_secs_f64(window.as_secs_f64() / 3.0);
        let tenth = SimDuration::from_secs_f64(window.as_secs_f64() / 10.0);
        FaultSpec {
            seed,
            capacity: Vec::new(),
            crashes: vec![CrashSpec {
                node: 0,
                at: burst_start + third,
                restart_after: tenth,
            }],
            transient_failure: 0.0,
            retry: RetryPolicy::standard(),
        }
    }

    /// Preset: [`FaultSpec::crash_restart`] under an impatient client —
    /// two attempts and a 1.5 s pending timeout. Queued calls committed to
    /// the dead node now time out instead of waiting for the restart,
    /// which is the regime where routing policy matters: a static balancer
    /// keeps feeding the dead node's shard, while queue-feedback balancers
    /// with cross-node failover steer around it (the coupled engine's
    /// robustness axis).
    pub fn crash_strict(seed: u64, burst_start: SimTime, window: SimDuration) -> Self {
        let mut spec = FaultSpec::crash_restart(seed, burst_start, window);
        spec.retry = RetryPolicy {
            max_attempts: 2,
            pending_timeout: Some(SimDuration::from_millis(1500)),
            backoff_base: SimDuration::from_millis(100),
            backoff_factor: 2.0,
            jitter: 0.5,
        };
        spec
    }

    /// Preset: a retry storm — 15% of attempts fail transiently under an
    /// aggressive five-attempt policy with tight backoff.
    pub fn retry_storm(seed: u64) -> Self {
        FaultSpec {
            seed,
            capacity: Vec::new(),
            crashes: Vec::new(),
            transient_failure: 0.15,
            retry: RetryPolicy {
                max_attempts: 5,
                pending_timeout: None,
                backoff_base: SimDuration::from_millis(100),
                backoff_factor: 2.0,
                jitter: 0.5,
            },
        }
    }

    /// Compile the plan into `node`'s time-sorted fault timeline. Pure in
    /// `(self, node)`: the same spec yields the same timeline whatever
    /// order nodes are simulated in.
    pub fn timeline_for_node(&self, node: u16) -> FaultTimeline {
        self.validate();
        let mut events = Vec::new();
        for ramp in &self.capacity {
            ramp.compile_into(node, &mut events);
        }
        for crash in &self.crashes {
            if crash.node == node {
                events.push(FaultEvent {
                    at: crash.at,
                    kind: FaultKind::Crash,
                });
                events.push(FaultEvent {
                    at: crash.at + crash.restart_after,
                    kind: FaultKind::Restart,
                });
            }
        }
        events.sort_by(|a, b| {
            a.at.cmp(&b.at)
                .then_with(|| a.kind.order().cmp(&b.kind.order()))
        });
        FaultTimeline { events }
    }

    /// Whether delivery attempt `attempt` (1-based) of `call` fails
    /// transiently. Pure in `(seed, call, attempt)`.
    pub fn attempt_fails(&self, call: CallId, attempt: u32) -> bool {
        self.transient_failure > 0.0
            && unit_draw(self.seed, call, attempt, TAG_TRANSIENT) < self.transient_failure
    }
}

/// Why a call left the system without completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Every allowed attempt failed transiently or was killed by a crash.
    ExhaustedRetries,
    /// The pending timeout expired before the attempt started executing
    /// and no attempts remained.
    TimedOut,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_draws_are_pure_and_decorrelated() {
        let a = unit_draw(7, CallId(3), 1, TAG_TRANSIENT);
        let b = unit_draw(7, CallId(3), 1, TAG_TRANSIENT);
        assert_eq!(a, b, "same inputs, same draw");
        assert!((0.0..1.0).contains(&a));
        assert_ne!(a, unit_draw(7, CallId(3), 2, TAG_TRANSIENT));
        assert_ne!(a, unit_draw(7, CallId(4), 1, TAG_TRANSIENT));
        assert_ne!(a, unit_draw(8, CallId(3), 1, TAG_TRANSIENT));
        assert_ne!(a, unit_draw(7, CallId(3), 1, TAG_JITTER));
    }

    #[test]
    fn transient_failure_rate_is_roughly_the_probability() {
        let mut spec = FaultSpec::none();
        spec.transient_failure = 0.2;
        let fails = (0..10_000)
            .filter(|&i| spec.attempt_fails(CallId(i), 1))
            .count();
        assert!((1_700..2_300).contains(&fails), "saw {fails} failures");
        // Zero probability short-circuits without drawing.
        assert!(!FaultSpec::none().attempt_fails(CallId(0), 1));
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let p = RetryPolicy::standard();
        let b1 = p.backoff(42, CallId(9), 1).as_secs_f64();
        let b2 = p.backoff(42, CallId(9), 2).as_secs_f64();
        let b3 = p.backoff(42, CallId(9), 3).as_secs_f64();
        assert!((0.25..=0.375).contains(&b1), "attempt 1 backoff {b1}");
        assert!((0.5..=0.75).contains(&b2), "attempt 2 backoff {b2}");
        assert!((1.0..=1.5).contains(&b3), "attempt 3 backoff {b3}");
        // Deterministic per (seed, call, attempt).
        assert_eq!(p.backoff(42, CallId(9), 2), p.backoff(42, CallId(9), 2));
        assert_ne!(p.backoff(42, CallId(9), 2), p.backoff(42, CallId(10), 2));
        // No base, no wait.
        assert_eq!(
            RetryPolicy::no_retry().backoff(1, CallId(0), 1),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ramp_compiles_to_monotone_steps_down_then_up() {
        let ramp = CapacityRamp {
            node: None,
            start: SimTime::from_secs(100),
            floor: 0.4,
            steps_down: 3,
            step_every: SimDuration::from_secs(2),
            hold: SimDuration::from_secs(10),
            steps_up: 2,
        };
        let spec = FaultSpec {
            capacity: vec![ramp],
            ..FaultSpec::none()
        };
        let tl = spec.timeline_for_node(5);
        let factors: Vec<f64> = tl
            .events
            .iter()
            .map(|e| match e.kind {
                FaultKind::SetCapacityFactor(f) => f,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(factors.len(), 5);
        // Down: 0.8, 0.6, 0.4; up: 0.7, 1.0.
        assert!((factors[0] - 0.8).abs() < 1e-12);
        assert!((factors[1] - 0.6).abs() < 1e-12);
        assert!((factors[2] - 0.4).abs() < 1e-12);
        assert!((factors[3] - 0.7).abs() < 1e-12);
        assert!((factors[4] - 1.0).abs() < 1e-12);
        let times: Vec<SimTime> = tl.events.iter().map(|e| e.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted timeline");
        assert_eq!(times[0], SimTime::from_secs(100));
        // Restoration ends at full capacity.
        assert_eq!(factors.last().copied(), Some(1.0));
    }

    #[test]
    fn timelines_are_per_node_and_pure() {
        let spec = FaultSpec {
            capacity: vec![CapacityRamp {
                node: Some(1),
                start: SimTime::from_secs(10),
                floor: 0.5,
                steps_down: 1,
                step_every: SimDuration::from_secs(1),
                hold: SimDuration::from_secs(5),
                steps_up: 1,
            }],
            crashes: vec![CrashSpec {
                node: 0,
                at: SimTime::from_secs(20),
                restart_after: SimDuration::from_secs(4),
            }],
            ..FaultSpec::none()
        };
        let n0 = spec.timeline_for_node(0);
        let n1 = spec.timeline_for_node(1);
        let n2 = spec.timeline_for_node(2);
        assert_eq!(
            n0.events,
            vec![
                FaultEvent {
                    at: SimTime::from_secs(20),
                    kind: FaultKind::Crash
                },
                FaultEvent {
                    at: SimTime::from_secs(24),
                    kind: FaultKind::Restart
                },
            ]
        );
        assert_eq!(n1.events.len(), 2, "ramp targets node 1 only");
        assert!(matches!(
            n1.events[0].kind,
            FaultKind::SetCapacityFactor(f) if (f - 0.5).abs() < 1e-12
        ));
        assert!(n2.is_empty());
        // Purity: recompilation is identical.
        assert_eq!(n0, spec.timeline_for_node(0));
    }

    #[test]
    fn none_plan_is_inert() {
        let spec = FaultSpec::none();
        assert!(spec.is_none());
        assert!(spec.timeline_for_node(0).is_empty());
        assert!(!spec.attempt_fails(CallId(0), 1));
        assert_eq!(spec.retry.max_attempts, 1);
        // Presets are not inert.
        assert!(
            !FaultSpec::degradation(1, SimTime::from_secs(100), SimDuration::from_secs(60))
                .is_none()
        );
        assert!(
            !FaultSpec::crash_restart(1, SimTime::from_secs(100), SimDuration::from_secs(60))
                .is_none()
        );
        assert!(!FaultSpec::retry_storm(1).is_none());
        let strict =
            FaultSpec::crash_strict(1, SimTime::from_secs(100), SimDuration::from_secs(60));
        assert!(!strict.is_none());
        assert_eq!(strict.retry.max_attempts, 2);
        assert_eq!(
            strict.retry.pending_timeout,
            Some(SimDuration::from_millis(1500))
        );
        assert_eq!(strict.crashes.len(), 1, "inherits the crash plan");
        // A pending timeout alone can abandon queued attempts: not inert.
        let mut timed = FaultSpec::none();
        timed.retry.pending_timeout = Some(SimDuration::from_secs(1));
        assert!(!timed.is_none());
    }

    #[test]
    #[should_panic(expected = "transient failure probability")]
    fn invalid_probability_rejected() {
        let mut spec = FaultSpec::none();
        spec.transient_failure = 1.5;
        spec.timeline_for_node(0);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let mut spec = FaultSpec::none();
        spec.retry.max_attempts = 0;
        spec.timeline_for_node(0);
    }
}
