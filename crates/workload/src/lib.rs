//! # faas-workload
//!
//! The workload substrate: the SeBS function catalogue and the Gatling-style
//! load scenarios the paper evaluates with.
//!
//! * [`sebs`] — the eleven SeBS benchmark functions the paper measures
//!   (Table I), each with its published idle-system latency quantiles, an
//!   I/O-vs-CPU intensity class, and a fitted log-normal service-time
//!   distribution.
//! * [`scenario`] — experiment scenarios: the uniform 60-second burst
//!   parameterised by *intensity* (§V-B: `1.1 · cores · intensity` requests),
//!   the warm-up phase (§V-A: `cores` parallel calls per function), and the
//!   skewed fairness mix of Fig. 5.
//! * [`trace`] — call/outcome record types shared by the node and cluster
//!   simulations.

pub mod scenario;
pub mod sebs;
pub mod trace;

pub use scenario::{BurstScenario, FairnessScenario, Scenario};
pub use sebs::{Catalogue, FuncId, FunctionSpec, IntensityClass};
pub use trace::{Call, CallKind, CallOutcome, ColdStartKind};
