//! # faas-workload
//!
//! The workload substrate: the SeBS function catalogue, the pluggable
//! workload-generation subsystem, and the Gatling-style paper scenarios
//! expressed on top of it.
//!
//! ## Modules
//!
//! * [`sebs`] — the eleven SeBS benchmark functions the paper measures
//!   (Table I), each with its published idle-system latency quantiles, an
//!   I/O-vs-CPU intensity class, and a fitted log-normal service-time
//!   distribution.
//! * [`arrival`] — pluggable arrival processes: the paper's uniform-window
//!   burst, homogeneous Poisson, a two-state MMPP (on-off bursts) and a
//!   piecewise diurnal curve. Every process realizes a piecewise-constant
//!   [`arrival::IntensityProfile`], after which calls are conditionally
//!   i.i.d. — the property that makes generation shardable.
//! * [`mix`] — pluggable function-popularity mixes: the paper's exact
//!   equal split, the Fig. 5 fairness mix (exactly `rare_calls` of one
//!   long function) and Zipf popularity over the catalogue.
//! * [`weight`] — per-function container weights and rate caps (the
//!   weighted-container axis): uniform, round-robin memory tiers, and
//!   Zipf-correlated shares. Weights never consume RNG streams — they
//!   shape only the GPS simulation, not the generated calls.
//! * [`generate`] — the two generation schemes over a
//!   [`generate::WorkloadSpec`] (arrival × mix × weights × window): the
//!   serial sorted path the paper adapters use, and the counter-based
//!   [`generate::ShardedGenerator`] whose calls are pure functions of
//!   `(seed, index)` so hundreds of nodes can generate their own call
//!   streams in parallel.
//! * [`scenario`] — the paper's experiment scenarios as thin adapters over
//!   the subsystem: the uniform 60-second burst parameterised by
//!   *intensity* (§V-B: `1.1 · cores · intensity` requests), the warm-up
//!   phase (§V-A: `cores` parallel calls per function), and the skewed
//!   fairness mix of Fig. 5. Output is bit-for-bit identical to the
//!   pre-subsystem generators (pinned by `tests/regression_scenarios.rs`).
//! * [`trace`] — call/outcome record types shared by the node and cluster
//!   simulations.
//! * [`trace_source`] — the trace ingestion subsystem: the
//!   [`trace_source::TraceSource`] trait (indexable, memory-bounded access
//!   to a fixed release-ordered call log, pure in `(source, index)` so any
//!   chunk/stride partition reproduces the serial trace bit-for-bit),
//!   [`trace_source::RecordedTrace`] (JSONL save/load/stream plus a
//!   `record` path capturing any [`generate::WorkloadSpec`]), and
//!   [`trace_source::WorkloadSource`] (spec-or-trace, threaded through the
//!   experiment layers).
//! * [`synth`] — an Azure-Functions-style trace synthesizer: Zipf
//!   per-function mean rates, per-function diurnal phases, MMPP bursts and
//!   correlated invocation chains, all derived lazily per index from
//!   seeded streams so a 10^8-call day is replayed without ever being
//!   materialized.
//! * [`faults`] — seeded deterministic fault injection: capacity
//!   degradation/restoration ramps, node crash/restart, per-call transient
//!   failures and the retry/timeout/backoff policy. Every draw is a pure
//!   hash of `(seed, call, attempt)` and every node timeline a pure
//!   function of `(spec, node)`, so fault scenarios reproduce bit-for-bit
//!   across runs and sharding.
//!
//! ## How the paper's §V scenarios map onto the axes
//!
//! | Paper scenario | Arrival | Mix |
//! |----------------|---------|-----|
//! | §V-B burst (Tables II–IV, Figs. 3–4) | [`arrival::UniformBurst`] with `1.1·c·v` calls | [`mix::EqualSplit`] |
//! | Fig. 5 fairness | [`arrival::UniformBurst`] | [`mix::FairnessMix`] (10 × dna-visualisation) |
//! | §VIII cluster (Fig. 6, Tables V–VI) | [`arrival::UniformBurst`] with the fixed total load | [`mix::EqualSplit`] |
//! | beyond the paper | [`arrival::PoissonArrivals`], [`arrival::MmppArrivals`], [`arrival::DiurnalArrivals`] | [`mix::ZipfMix`] |

pub mod arrival;
pub mod faults;
pub mod generate;
pub mod mix;
pub mod scenario;
pub mod sebs;
pub mod synth;
pub mod trace;
pub mod trace_source;
pub mod weight;

pub use arrival::{ArrivalProcess, ArrivalSpec, IntensityProfile};
pub use faults::{
    CapacityRamp, CrashSpec, DropReason, FaultEvent, FaultKind, FaultSpec, FaultTimeline,
    RetryPolicy,
};
pub use generate::{IndexPermutation, ShardedGenerator, WorkloadSpec};
pub use mix::{FunctionMix, MixSpec};
pub use scenario::{BurstScenario, FairnessScenario, Scenario};
pub use sebs::{Catalogue, FuncId, FunctionSpec, IntensityClass};
pub use synth::{MmppBurst, SynthSpec, SyntheticTrace};
pub use trace::{Call, CallKind, CallOutcome, ColdStartKind};
pub use trace_source::{RecordedTrace, TraceSource, TraceSpec, WorkloadSource};
pub use weight::{TaskShare, TierSpec, WeightSpec, WeightTable};
