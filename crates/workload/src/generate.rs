//! Scenario generation: the serial legacy-compatible path and the sharded
//! streaming generator.
//!
//! A [`WorkloadSpec`] is the full description of one measured burst: an
//! arrival process ([`crate::arrival`]), a function mix ([`crate::mix`]) and
//! a window. Two generation schemes consume it:
//!
//! * [`WorkloadSpec::generate_sorted`] — the serial path: release times are
//!   drawn sequentially from one RNG stream and sorted, the function
//!   multiset is materialized and shuffled on a second stream, and ids are
//!   assigned in release order. For the paper's uniform/equal and fairness
//!   scenarios this consumes the streams exactly like the pre-subsystem
//!   generators, so [`crate::scenario`]'s adapters are bit-for-bit
//!   identical (pinned by `tests/regression_scenarios.rs`).
//! * [`ShardedGenerator`] — the scale path: every call is a pure function
//!   of `(seed, call index)`. Each call derives its own RNG stream, draws
//!   its release offset by inverting the realized intensity profile, and
//!   gets its function from the mix via a seeded bijective
//!   [`IndexPermutation`] (so exact-count mixes stay exact). Any partition
//!   of the index space — contiguous chunks, per-node strides — yields the
//!   same calls, which is what lets `run_cluster_streamed` generate and
//!   assign work for hundreds of nodes in parallel without materializing
//!   one shared call vector.

use crate::arrival::{ArrivalSpec, IntensityProfile};
use crate::mix::{FunctionMix, MixSpec};
use crate::sebs::Catalogue;
use crate::trace::{Call, CallId, CallKind};
use crate::weight::WeightSpec;
use faas_simcore::rng::{splitmix64, Xoshiro256};
use faas_simcore::time::{SimDuration, SimTime};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Stream tag for profile realization and the count draw.
const STREAM_PROFILE: u64 = 0x9E01;
/// Stream tag for the index permutation key.
const STREAM_PERM: u64 = 0x9E02;
/// Stream tag for the per-call stream base.
const STREAM_CALLS: u64 = 0x9E03;

/// A fully-specified measured workload: arrival × mix × weights × window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The arrival process.
    pub arrival: ArrivalSpec,
    /// The function mix.
    pub mix: MixSpec,
    /// Per-function container weights/caps ([`crate::weight`]). Purely a
    /// *simulation* axis: weights never consume RNG streams, so the
    /// generated call sequence is independent of this field.
    pub weights: WeightSpec,
    /// Window length.
    pub window: SimDuration,
}

impl WorkloadSpec {
    /// Short `arrival/mix` label for report tables.
    pub fn label(&self, catalogue: &Catalogue) -> String {
        format!("{}/{}", self.arrival.label(), self.mix.label(catalogue))
    }

    /// Serial generation: sorted measured calls starting at `start`, ids
    /// `id_base..`, times from `rng_times`, functions from `rng_assign`.
    ///
    /// This is the legacy-compatible scheme — see the module docs.
    pub fn generate_sorted(
        &self,
        catalogue: &Catalogue,
        start: SimTime,
        rng_times: &mut Xoshiro256,
        rng_assign: &mut Xoshiro256,
        id_base: u64,
    ) -> Vec<Call> {
        let profile = self
            .arrival
            .process()
            .realize(self.window.as_secs_f64(), rng_times);
        let n = profile.sample_count(rng_times);
        let funcs = self.mix.mix(catalogue).materialize(n, rng_assign);
        let mut times: Vec<SimTime> = (0..n)
            .map(|_| start + SimDuration::from_secs_f64(profile.inv_cdf(rng_times.next_f64())))
            .collect();
        times.sort_unstable();
        times
            .into_iter()
            .zip(funcs)
            .enumerate()
            .map(|(i, (release, func))| Call {
                id: CallId(id_base + i as u64),
                func,
                release,
                kind: CallKind::Measured,
            })
            .collect()
    }
}

/// SplitMix64 finalizer: a stateless 64-bit mix for deriving per-call and
/// per-shard stream seeds.
#[inline]
pub(crate) fn mix64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// A seeded bijection on `[0, n)` (4-round Feistel network with
/// cycle-walking).
///
/// The sharded generator uses it to hand exact-count mixes a *permuted*
/// index: the mix assigns functions by contiguous blocks of permuted
/// positions (keeping counts exact), while the permutation decorrelates a
/// call's function from its index — and therefore from whatever
/// index-based shard or node stripe the call lands on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexPermutation {
    n: u64,
    half_bits: u32,
    half_mask: u64,
    keys: [u64; 4],
}

impl IndexPermutation {
    /// Build a permutation of `[0, n)` keyed by `key`. `n` must be positive.
    pub fn new(n: u64, key: u64) -> IndexPermutation {
        assert!(n > 0, "permutation domain must be non-empty");
        // Smallest even bit-width covering n, at least 2: the Feistel walks
        // a power-of-four domain no larger than 4n.
        let bits = (64 - (n - 1).max(1).leading_zeros()).max(2).div_ceil(2) * 2;
        let half_bits = bits / 2;
        let mut k = key;
        let keys = [
            splitmix64(&mut k),
            splitmix64(&mut k),
            splitmix64(&mut k),
            splitmix64(&mut k),
        ];
        IndexPermutation {
            n,
            half_bits,
            half_mask: (1u64 << half_bits) - 1,
            keys,
        }
    }

    /// The image of `i` under the permutation; `i` must be below `n`.
    pub fn permute(&self, i: u64) -> u64 {
        debug_assert!(i < self.n);
        let mut x = i;
        // Cycle-walk: the Feistel permutes [0, 4n); re-encrypt until the
        // image lands back inside [0, n). Expected < 4 rounds.
        loop {
            x = self.feistel(x);
            if x < self.n {
                return x;
            }
        }
    }

    fn feistel(&self, x: u64) -> u64 {
        let mut l = x >> self.half_bits;
        let mut r = x & self.half_mask;
        for &k in &self.keys {
            let f = mix64(r ^ k) & self.half_mask;
            (l, r) = (r, l ^ f);
        }
        (l << self.half_bits) | r
    }
}

/// The sharded streaming generator: calls as pure functions of
/// `(seed, index)`.
pub struct ShardedGenerator {
    start: SimTime,
    profile: IntensityProfile,
    mix: Box<dyn FunctionMix>,
    perm: IndexPermutation,
    n: u64,
    base: u64,
}

impl ShardedGenerator {
    /// Realize `spec` into a generator: the intensity profile and call
    /// count are sampled once (cheap, serial); everything per-call is
    /// deferred to [`ShardedGenerator::call`].
    pub fn new(
        spec: &WorkloadSpec,
        catalogue: &Catalogue,
        start: SimTime,
        seed: u64,
    ) -> ShardedGenerator {
        let mut root = Xoshiro256::seed_from_u64(seed);
        let mut rng_profile = root.derive_stream(STREAM_PROFILE);
        let profile = spec
            .arrival
            .process()
            .realize(spec.window.as_secs_f64(), &mut rng_profile);
        let n = profile.sample_count(&mut rng_profile) as u64;
        let perm = IndexPermutation::new(n.max(1), root.derive_stream(STREAM_PERM).next_u64());
        let base = root.derive_stream(STREAM_CALLS).next_u64();
        ShardedGenerator {
            start,
            profile,
            mix: spec.mix.mix(catalogue),
            perm,
            n,
            base,
        }
    }

    /// Number of measured calls this scenario emits.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when the realized scenario has no calls.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Start of the measured window.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// The `index`-th call. Pure in `(generator, index)`: any shard layout
    /// produces identical calls.
    pub fn call(&self, index: u64) -> Call {
        debug_assert!(index < self.n, "call index out of range");
        let mut rng = Xoshiro256::seed_from_u64(self.base ^ mix64(index));
        let release = self.start + SimDuration::from_secs_f64(self.profile.inv_cdf(rng.next_f64()));
        let func = self
            .mix
            .function_at(self.perm.permute(index), self.n, &mut rng);
        Call {
            id: CallId(index),
            func,
            release,
            kind: CallKind::Measured,
        }
    }

    /// Stream the calls of one contiguous chunk `[lo, hi)`, in index order.
    pub fn iter_chunk(&self, lo: u64, hi: u64) -> impl Iterator<Item = Call> + '_ {
        debug_assert!(lo <= hi && hi <= self.n);
        (lo..hi).map(move |i| self.call(i))
    }

    /// Stream every `stride`-th call starting at `offset` — the per-node
    /// view under round-robin assignment by call index.
    pub fn iter_stride(&self, offset: u64, stride: u64) -> impl Iterator<Item = Call> + '_ {
        assert!(stride > 0, "stride must be positive");
        (offset..self.n)
            .step_by(stride as usize)
            .map(move |i| self.call(i))
    }

    /// Materialize every call serially, in index order (unsorted by
    /// release; sort on `(release, id)` if release order is needed).
    pub fn generate_serial(&self) -> Vec<Call> {
        self.iter_chunk(0, self.n).collect()
    }

    /// Materialize every call in parallel chunks under rayon. Chunk outputs
    /// are concatenated in index order, so the result is identical to
    /// [`ShardedGenerator::generate_serial`] regardless of thread count.
    pub fn generate_parallel(&self) -> Vec<Call> {
        let threads = rayon::current_num_threads() as u64;
        if threads <= 1 || self.n < 2 {
            return self.generate_serial();
        }
        let chunk = self.n.div_ceil(threads * 4).max(1);
        let ranges: Vec<(u64, u64)> = (0..self.n)
            .step_by(chunk as usize)
            .map(|lo| (lo, (lo + chunk).min(self.n)))
            .collect();
        let parts: Vec<Vec<Call>> = ranges
            .par_iter()
            .map(|&(lo, hi)| self.iter_chunk(lo, hi).collect())
            .collect();
        let mut out = Vec::with_capacity(self.n as usize);
        for part in parts {
            out.extend(part);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            arrival: ArrivalSpec::Uniform { count: 660 },
            mix: MixSpec::Equal,
            weights: WeightSpec::Uniform,
            window: SimDuration::from_secs(60),
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        for n in [1u64, 2, 7, 64, 100, 1023] {
            let p = IndexPermutation::new(n, 0xABCD ^ n);
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                let j = p.permute(i);
                assert!(j < n, "image in range");
                assert!(!seen[j as usize], "injective at {i}");
                seen[j as usize] = true;
            }
        }
    }

    #[test]
    fn permutation_depends_on_key() {
        let a = IndexPermutation::new(1000, 1);
        let b = IndexPermutation::new(1000, 2);
        let moved = (0..1000).filter(|&i| a.permute(i) != b.permute(i)).count();
        assert!(moved > 900, "keys decorrelate ({moved} moved)");
    }

    #[test]
    fn sharded_calls_are_pure_in_index() {
        let g = ShardedGenerator::new(&spec(), &catalogue(), SimTime::from_secs(10), 42);
        let a = g.call(17);
        let b = g.call(17);
        assert_eq!(a, b);
        let g2 = ShardedGenerator::new(&spec(), &catalogue(), SimTime::from_secs(10), 42);
        assert_eq!(g2.call(17), a);
    }

    #[test]
    fn parallel_equals_serial() {
        let g = ShardedGenerator::new(&spec(), &catalogue(), SimTime::ZERO, 7);
        assert_eq!(g.generate_parallel(), g.generate_serial());
    }

    #[test]
    fn strides_partition_the_call_set() {
        let g = ShardedGenerator::new(&spec(), &catalogue(), SimTime::ZERO, 8);
        let mut union: Vec<Call> = (0..4u64).flat_map(|s| g.iter_stride(s, 4)).collect();
        union.sort_by_key(|c| c.id);
        assert_eq!(union, g.generate_serial());
    }

    #[test]
    fn sharded_equal_split_is_exact() {
        let g = ShardedGenerator::new(&spec(), &catalogue(), SimTime::ZERO, 9);
        let mut counts = [0usize; 11];
        for c in g.iter_chunk(0, g.len()) {
            counts[c.func.index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 60), "{counts:?}");
    }

    #[test]
    fn sharded_times_inside_window() {
        let g = ShardedGenerator::new(&spec(), &catalogue(), SimTime::from_secs(137), 10);
        let end = SimTime::from_secs(137 + 60);
        for c in g.iter_chunk(0, g.len()) {
            assert!(c.release >= SimTime::from_secs(137) && c.release < end);
        }
    }

    #[test]
    fn generate_sorted_is_sorted_with_dense_ids() {
        let cat = catalogue();
        let mut root = Xoshiro256::seed_from_u64(3);
        let mut t = root.derive_stream(1);
        let mut a = root.derive_stream(2);
        let calls = spec().generate_sorted(&cat, SimTime::from_secs(5), &mut t, &mut a, 100);
        assert_eq!(calls.len(), 660);
        for (i, w) in calls.windows(2).enumerate() {
            assert!(w[0].release <= w[1].release, "sorted at {i}");
        }
        assert_eq!(calls[0].id, CallId(100));
        assert_eq!(calls.last().unwrap().id, CallId(100 + 659));
    }

    #[test]
    fn weights_do_not_perturb_generation() {
        // The weight axis is simulation-only: the same seed produces the
        // same call sequence whatever the weight model says.
        let mut weighted = spec();
        weighted.weights = WeightSpec::paper_tiers();
        let a = ShardedGenerator::new(&spec(), &catalogue(), SimTime::ZERO, 5).generate_serial();
        let b = ShardedGenerator::new(&weighted, &catalogue(), SimTime::ZERO, 5).generate_serial();
        assert_eq!(a, b);
        let mut root = Xoshiro256::seed_from_u64(5);
        let mut t1 = root.derive_stream(1);
        let mut a1 = root.derive_stream(2);
        let sorted_plain = spec().generate_sorted(&catalogue(), SimTime::ZERO, &mut t1, &mut a1, 0);
        let mut root = Xoshiro256::seed_from_u64(5);
        let mut t2 = root.derive_stream(1);
        let mut a2 = root.derive_stream(2);
        let sorted_weighted =
            weighted.generate_sorted(&catalogue(), SimTime::ZERO, &mut t2, &mut a2, 0);
        assert_eq!(sorted_plain, sorted_weighted);
    }

    #[test]
    fn zipf_sharded_generation_works() {
        let s = WorkloadSpec {
            arrival: ArrivalSpec::Poisson { rate: 11.0 },
            mix: MixSpec::Zipf { s: 1.2 },
            weights: WeightSpec::ZipfCorrelated { s: 1.0 },
            window: SimDuration::from_secs(60),
        };
        let g = ShardedGenerator::new(&s, &catalogue(), SimTime::ZERO, 11);
        assert!(g.len() > 400, "rate 11/s over 60s ~ 660 calls");
        let calls = g.generate_parallel();
        assert_eq!(calls.len() as u64, g.len());
    }
}
