//! Per-function GPS weights and rate caps — the weighted-container axis.
//!
//! OpenWhisk gives every container a CPU share proportional to its memory
//! limit (§III of the paper), and a single-threaded function cannot exceed
//! one core however large its share. The GPS kernel in `faas-cpu` models
//! both knobs per task (`weight`, `max_rate`); until PR 4 every simulation
//! drove it with the uniform `(1.0, 1.0)` signature, leaving the weighted
//! water-filling path exercised only by unit tests. A [`WeightSpec`] is
//! the third workload axis alongside the arrival process and the function
//! mix: it maps every catalogue function to a [`TaskShare`], which the
//! invoker hands to the GPS bank for that function's CPU phases.
//!
//! Weights are a *deterministic* function of the catalogue — they never
//! consume RNG streams, so adding the axis leaves the generated call
//! sequences of every existing scenario bit-for-bit intact (the digest
//! regressions in `tests/regression_scenarios.rs` still pin them).
//!
//! Three models:
//!
//! * [`WeightSpec::Uniform`] — the legacy `(1, 1)` signature; the invoker
//!   detects it and stays on the GPS uniform fast path.
//! * [`WeightSpec::Tiers`] — explicit weight/cap tiers assigned round-robin
//!   over the catalogue order, the "memory tier" picture: big-memory
//!   containers get proportionally larger shares, a throttled tier is
//!   rate-capped below one core.
//! * [`WeightSpec::ZipfCorrelated`] — weight correlated with catalogue
//!   popularity rank (`(rank + 1)^{-s}`, normalized to mean 1): popular
//!   functions, which under a Zipf mix also dominate the call volume, get
//!   the larger shares. Caps stay at one core.

use crate::sebs::{Catalogue, FuncId};
use serde::{Deserialize, Serialize};

/// The GPS share of one function's containers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskShare {
    /// GPS weight (OpenWhisk: proportional to the container memory limit).
    pub weight: f64,
    /// Service-rate cap in cores (single-threaded functions cannot exceed
    /// one core).
    pub max_rate: f64,
}

impl TaskShare {
    /// The legacy uniform signature.
    pub const UNIFORM: TaskShare = TaskShare {
        weight: 1.0,
        max_rate: 1.0,
    };

    /// True iff this is bit-for-bit the uniform signature. Introspection
    /// only — the GPS kernel detects uniformity itself from the live
    /// signature set; nothing needs to pre-certify it.
    pub fn is_uniform(&self) -> bool {
        self.weight.to_bits() == 1.0f64.to_bits() && self.max_rate.to_bits() == 1.0f64.to_bits()
    }
}

/// One explicit weight/cap tier of [`WeightSpec::Tiers`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// GPS weight of the tier.
    pub weight: f64,
    /// Rate cap of the tier, cores.
    pub max_rate: f64,
}

/// Serializable description of the per-function weight model.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum WeightSpec {
    /// Every container identical: weight 1, cap 1 core (the paper's
    /// regime and the GPS uniform fast path).
    #[default]
    Uniform,
    /// Explicit tiers assigned round-robin by catalogue index.
    Tiers {
        /// The tiers, cycled over the catalogue order.
        tiers: Vec<TierSpec>,
    },
    /// Weight `(rank + 1)^{-s}` by catalogue popularity rank, normalized
    /// to mean 1; caps fixed at one core.
    ZipfCorrelated {
        /// Skew exponent (matches [`crate::mix::ZipfMix`]'s rank order).
        s: f64,
    },
}

impl WeightSpec {
    /// The standard three-tier memory picture used by the experiment
    /// sweeps: a 4x big-memory tier, a baseline tier, and a throttled tier
    /// capped at half a core.
    pub fn paper_tiers() -> WeightSpec {
        WeightSpec::Tiers {
            tiers: vec![
                TierSpec {
                    weight: 4.0,
                    max_rate: 1.0,
                },
                TierSpec {
                    weight: 1.0,
                    max_rate: 1.0,
                },
                TierSpec {
                    weight: 1.0,
                    max_rate: 0.5,
                },
            ],
        }
    }

    /// Short label for report tables (`w-uniform`, `w-tiers3`,
    /// `w-zipf1`). The Zipf skew is rendered at full precision: sweep
    /// rows are grouped and looked up purely by label, so two distinct
    /// specs must never alias.
    pub fn label(&self) -> String {
        match self {
            WeightSpec::Uniform => "w-uniform".into(),
            WeightSpec::Tiers { tiers } => format!("w-tiers{}", tiers.len()),
            WeightSpec::ZipfCorrelated { s } => format!("w-zipf{s}"),
        }
    }

    /// Realize the model against a catalogue as a dense per-function
    /// table.
    pub fn table(&self, catalogue: &Catalogue) -> WeightTable {
        let n = catalogue.len();
        let shares = match self {
            WeightSpec::Uniform => vec![TaskShare::UNIFORM; n],
            WeightSpec::Tiers { tiers } => {
                assert!(!tiers.is_empty(), "tier list cannot be empty");
                for t in tiers {
                    assert!(
                        t.weight > 0.0 && t.max_rate > 0.0,
                        "tier weights and caps must be positive"
                    );
                }
                (0..n)
                    .map(|i| {
                        let t = tiers[i % tiers.len()];
                        TaskShare {
                            weight: t.weight,
                            max_rate: t.max_rate,
                        }
                    })
                    .collect()
            }
            WeightSpec::ZipfCorrelated { s } => {
                assert!(s.is_finite() && *s >= 0.0, "zipf skew must be non-negative");
                let raw: Vec<f64> = (0..n).map(|r| (r as f64 + 1.0).powf(-s)).collect();
                let mean = raw.iter().sum::<f64>() / n as f64;
                raw.iter()
                    .map(|w| TaskShare {
                        weight: w / mean,
                        max_rate: 1.0,
                    })
                    .collect()
            }
        };
        WeightTable { shares }
    }
}

/// A realized weight model: one [`TaskShare`] per catalogue function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightTable {
    shares: Vec<TaskShare>,
}

impl WeightTable {
    /// The uniform table for a catalogue of `functions` entries.
    pub fn uniform(functions: usize) -> WeightTable {
        WeightTable {
            shares: vec![TaskShare::UNIFORM; functions],
        }
    }

    /// The share of one function's containers.
    pub fn share(&self, func: FuncId) -> TaskShare {
        self.shares[func.index()]
    }

    /// True when every function carries the uniform signature.
    /// Introspection for tests and reports; the GPS kernel keys its fast
    /// path on the live signature set, not on this table.
    pub fn is_uniform(&self) -> bool {
        self.shares.iter().all(TaskShare::is_uniform)
    }

    /// Number of functions covered.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// True for an empty catalogue.
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    #[test]
    fn uniform_table_is_uniform() {
        let t = WeightSpec::Uniform.table(&catalogue());
        assert!(t.is_uniform());
        assert_eq!(t.len(), catalogue().len());
        for func in catalogue().ids() {
            assert!(t.share(func).is_uniform());
        }
    }

    #[test]
    fn tiers_cycle_over_the_catalogue() {
        let spec = WeightSpec::paper_tiers();
        let t = spec.table(&catalogue());
        assert!(!t.is_uniform());
        // 11 functions over 3 tiers: index 0 and 3 share a tier.
        assert_eq!(t.share(FuncId(0)), t.share(FuncId(3)));
        assert_eq!(t.share(FuncId(1)), t.share(FuncId(4)));
        assert!((t.share(FuncId(0)).weight - 4.0).abs() < 1e-12);
        assert!((t.share(FuncId(2)).max_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zipf_weights_decrease_with_rank_and_average_one() {
        let t = WeightSpec::ZipfCorrelated { s: 1.0 }.table(&catalogue());
        assert!(!t.is_uniform());
        let n = t.len();
        let mut sum = 0.0;
        for i in 0..n {
            let share = t.share(FuncId(i as u16));
            sum += share.weight;
            assert!((share.max_rate - 1.0).abs() < 1e-12, "caps stay at 1 core");
            if i > 0 {
                assert!(
                    share.weight < t.share(FuncId(i as u16 - 1)).weight,
                    "weights must decrease with rank"
                );
            }
        }
        assert!((sum / n as f64 - 1.0).abs() < 1e-12, "mean weight 1");
    }

    #[test]
    fn zipf_zero_skew_degenerates_to_uniform_weights() {
        let t = WeightSpec::ZipfCorrelated { s: 0.0 }.table(&catalogue());
        // Every weight is exactly 1.0 (and so is the cap); the table is
        // bit-for-bit uniform and the fast path applies.
        assert!(t.is_uniform());
    }

    #[test]
    fn labels_are_stable_and_do_not_alias() {
        assert_eq!(WeightSpec::Uniform.label(), "w-uniform");
        assert_eq!(WeightSpec::paper_tiers().label(), "w-tiers3");
        assert_eq!(WeightSpec::ZipfCorrelated { s: 1.25 }.label(), "w-zipf1.25");
        assert_ne!(
            WeightSpec::ZipfCorrelated { s: 1.15 }.label(),
            WeightSpec::ZipfCorrelated { s: 1.2 }.label(),
            "close skews must not collapse to one sweep row"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_tier_rejected() {
        WeightSpec::Tiers {
            tiers: vec![TierSpec {
                weight: 0.0,
                max_rate: 1.0,
            }],
        }
        .table(&catalogue());
    }
}
