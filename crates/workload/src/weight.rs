//! Per-function GPS weights and rate caps — the weighted-container axis.
//!
//! OpenWhisk gives every container a CPU share proportional to its memory
//! limit (§III of the paper), and a single-threaded function cannot exceed
//! one core however large its share. The GPS kernel in `faas-cpu` models
//! both knobs per task (`weight`, `max_rate`); until PR 4 every simulation
//! drove it with the uniform `(1.0, 1.0)` signature, leaving the weighted
//! water-filling path exercised only by unit tests. A [`WeightSpec`] is
//! the third workload axis alongside the arrival process and the function
//! mix: it maps every catalogue function to a [`TaskShare`], which the
//! invoker hands to the GPS bank for that function's CPU phases.
//!
//! Weights are a *deterministic* function of the catalogue — they never
//! consume RNG streams, so adding the axis leaves the generated call
//! sequences of every existing scenario bit-for-bit intact (the digest
//! regressions in `tests/regression_scenarios.rs` still pin them).
//!
//! Four models:
//!
//! * [`WeightSpec::Uniform`] — the legacy `(1, 1)` signature; the invoker
//!   detects it and stays on the GPS uniform fast path.
//! * [`WeightSpec::Tiers`] — explicit weight/cap tiers assigned round-robin
//!   over the catalogue order, the "memory tier" picture: big-memory
//!   containers get proportionally larger shares, a throttled tier is
//!   rate-capped below one core.
//! * [`WeightSpec::ZipfCorrelated`] — weight correlated with catalogue
//!   popularity rank (`(rank + 1)^{-s}`, normalized to mean 1): popular
//!   functions, which under a Zipf mix also dominate the call volume, get
//!   the larger shares. Caps stay at one core.
//! * [`WeightSpec::PhasedWarmup`] — any base model plus distinct
//!   *warm-up* shares per CPU phase. Warm-up calls are the ones that
//!   create the containers, and a container's cgroup update lands only
//!   after creation: until then it runs at the runtime's default share.
//!   Giving the warm-up init phase (and optionally the warm-up exec
//!   phase) its own [`TaskShare`] models that cgroup-update latency
//!   instead of retroactively billing the measured function's share —
//!   see [`WarmupShares`].
//! * [`WeightSpec::ZipfMemCorrelated`] — Zipf weights plus a
//!   memory-bandwidth demand correlated with popularity, the
//!   multi-resource axis (below).
//!
//! # Per-resource demands (DRF)
//!
//! Since PR 10 a [`TaskShare`] also carries `mem_per_cpu`: the
//! memory-bandwidth units a function consumes per unit of CPU. The
//! invoker turns it into a `faas_cpu::ResourceVector` and the GPS bank
//! allocates by *dominant share* — each task's water-filling key is its
//! rate on whichever resource axis its profile demands most, so the
//! capped/uncapped partition machinery is reused unchanged across axes
//! (Dominant Resource Fairness on top of weighted water-filling). The
//! invariant the whole stack preserves: **`mem_per_cpu == 0.0` is the
//! degenerate single-resource profile, and every schedule built only
//! from such shares is bit-for-bit identical to the pre-DRF scalar
//! kernel** — the digest regressions in `tests/regression_scenarios.rs`
//! still pin the legacy scenarios unchanged. Tier and Zipf models grow
//! correlated CPU/mem variants ([`WeightSpec::paper_tiers_mem`],
//! [`WeightSpec::ZipfMemCorrelated`]); labels render the memory axis at
//! full precision so distinct specs never alias to one sweep row.

use crate::sebs::{Catalogue, FuncId};
use crate::trace::CallKind;
use serde::{Deserialize, Serialize};

/// The GPS share of one function's containers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskShare {
    /// GPS weight (OpenWhisk: proportional to the container memory limit).
    pub weight: f64,
    /// Service-rate cap in cores (single-threaded functions cannot exceed
    /// one core).
    pub max_rate: f64,
    /// Memory-bandwidth units consumed per unit of CPU. `0.0` (the
    /// default everywhere) is the degenerate single-resource profile: the
    /// invoker places such tasks through the scalar `add_task` path,
    /// bit-identical to the pre-DRF kernel. Values above `1.0` make the
    /// function memory-dominant under DRF.
    pub mem_per_cpu: f64,
}

impl TaskShare {
    /// The legacy uniform signature.
    pub const UNIFORM: TaskShare = TaskShare {
        weight: 1.0,
        max_rate: 1.0,
        mem_per_cpu: 0.0,
    };

    /// True iff this is bit-for-bit the uniform signature. Introspection
    /// only — the GPS kernel detects uniformity itself from the live
    /// signature set; nothing needs to pre-certify it.
    pub fn is_uniform(&self) -> bool {
        self.weight.to_bits() == 1.0f64.to_bits()
            && self.max_rate.to_bits() == 1.0f64.to_bits()
            && self.mem_per_cpu == 0.0
    }

    /// True iff the share demands no memory bandwidth — the degenerate
    /// single-resource profile the invoker keeps on the scalar path.
    pub fn is_cpu_only(&self) -> bool {
        self.mem_per_cpu == 0.0
    }
}

/// One explicit weight/cap tier of [`WeightSpec::Tiers`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// GPS weight of the tier.
    pub weight: f64,
    /// Rate cap of the tier, cores.
    pub max_rate: f64,
    /// Memory-bandwidth demand per unit of CPU (see
    /// [`TaskShare::mem_per_cpu`]); `0.0` keeps the tier CPU-only.
    pub mem_per_cpu: f64,
}

/// The CPU phase a GPS task belongs to, from the weight model's point of
/// view: cold-start initialisation runs before the container's cgroup
/// update has landed, execution after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallPhase {
    /// Cold-start initialisation work.
    Init,
    /// Function execution work.
    Exec,
}

/// Per-phase share overrides for *warm-up* calls. `None` falls back to
/// the measured function's share, so `WarmupShares::default()` reproduces
/// the legacy behaviour bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WarmupShares {
    /// Share of warm-up cold-start initialisation work. The canonical
    /// cgroup-latency model sets this to [`TaskShare::UNIFORM`]: a freshly
    /// created container initialises under the runtime's default share
    /// because its cgroup update has not been applied yet.
    pub init: Option<TaskShare>,
    /// Share of warm-up execution work (after the cgroup update landed).
    pub exec: Option<TaskShare>,
}

/// Serializable description of the per-function weight model.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum WeightSpec {
    /// Every container identical: weight 1, cap 1 core (the paper's
    /// regime and the GPS uniform fast path).
    #[default]
    Uniform,
    /// Explicit tiers assigned round-robin by catalogue index.
    Tiers {
        /// The tiers, cycled over the catalogue order.
        tiers: Vec<TierSpec>,
    },
    /// Weight `(rank + 1)^{-s}` by catalogue popularity rank, normalized
    /// to mean 1; caps fixed at one core.
    ZipfCorrelated {
        /// Skew exponent (matches [`crate::mix::ZipfMix`]'s rank order).
        s: f64,
    },
    /// A base model plus per-phase warm-up share overrides (cgroup update
    /// latency modelling — see [`WarmupShares`]).
    PhasedWarmup {
        /// The model measured calls (and unset warm-up phases) use.
        base: Box<WeightSpec>,
        /// The warm-up phase overrides.
        warmup: WarmupShares,
    },
    /// Zipf weights plus a memory-bandwidth demand correlated with
    /// popularity: rank `r` gets weight `(r + 1)^{-s}` (normalized to
    /// mean 1, as [`WeightSpec::ZipfCorrelated`]) and
    /// `mem_per_cpu = mem_top · (r + 1)^{-s}` — the popular functions
    /// that dominate the call volume are also the bandwidth-hungry ones,
    /// so the memory axis saturates first under a Zipf mix. Caps stay at
    /// one core.
    ZipfMemCorrelated {
        /// Skew exponent (matches [`crate::mix::ZipfMix`]'s rank order).
        s: f64,
        /// `mem_per_cpu` of the rank-0 function; later ranks decay by the
        /// same Zipf law. `mem_top > 1.0` makes the head memory-dominant.
        mem_top: f64,
    },
}

impl WeightSpec {
    /// The standard three-tier memory picture used by the experiment
    /// sweeps: a 4x big-memory tier, a baseline tier, and a throttled tier
    /// capped at half a core.
    pub fn paper_tiers() -> WeightSpec {
        WeightSpec::Tiers {
            tiers: vec![
                TierSpec {
                    weight: 4.0,
                    max_rate: 1.0,
                    mem_per_cpu: 0.0,
                },
                TierSpec {
                    weight: 1.0,
                    max_rate: 1.0,
                    mem_per_cpu: 0.0,
                },
                TierSpec {
                    weight: 1.0,
                    max_rate: 0.5,
                    mem_per_cpu: 0.0,
                },
            ],
        }
    }

    /// The three-tier memory picture with correlated bandwidth demands:
    /// the big-memory tier is memory-dominant (2 bandwidth units per CPU
    /// unit — large containers stream large working sets), the baseline
    /// tier is balanced-but-CPU-dominant at 0.5, and the throttled tier is
    /// CPU-only. The multi-resource counterpart of
    /// [`WeightSpec::paper_tiers`] for the DRF sweeps.
    pub fn paper_tiers_mem() -> WeightSpec {
        WeightSpec::Tiers {
            tiers: vec![
                TierSpec {
                    weight: 4.0,
                    max_rate: 1.0,
                    mem_per_cpu: 2.0,
                },
                TierSpec {
                    weight: 1.0,
                    max_rate: 1.0,
                    mem_per_cpu: 0.5,
                },
                TierSpec {
                    weight: 1.0,
                    max_rate: 0.5,
                    mem_per_cpu: 0.0,
                },
            ],
        }
    }

    /// The standard tiers with the canonical cgroup-update-latency model:
    /// warm-up cold-start initialisation runs at the default uniform
    /// share (the per-function cgroup update has not landed when a fresh
    /// container initialises), warm-up execution at the function's tier
    /// share.
    pub fn paper_tiers_cgroup_lag() -> WeightSpec {
        WeightSpec::PhasedWarmup {
            base: Box::new(WeightSpec::paper_tiers()),
            warmup: WarmupShares {
                init: Some(TaskShare::UNIFORM),
                exec: None,
            },
        }
    }

    /// Short label for report tables (`w-uniform`, `w-tiers3`,
    /// `w-zipf1`, `w-tiers3+wu-i1x1`, `w-tiers3-m2x0.5x0`,
    /// `w-zipfmem1x2`). The Zipf skew, warm-up override shares and
    /// memory demands are rendered at full precision: sweep rows are
    /// grouped and looked up purely by label, so two distinct specs must
    /// never alias.
    pub fn label(&self) -> String {
        match self {
            WeightSpec::Uniform => "w-uniform".into(),
            WeightSpec::Tiers { tiers } => {
                let mut label = format!("w-tiers{}", tiers.len());
                if tiers.iter().any(|t| t.mem_per_cpu != 0.0) {
                    label.push_str("-m");
                    for (i, t) in tiers.iter().enumerate() {
                        if i > 0 {
                            label.push('x');
                        }
                        label.push_str(&format!("{}", t.mem_per_cpu));
                    }
                }
                label
            }
            WeightSpec::ZipfCorrelated { s } => format!("w-zipf{s}"),
            WeightSpec::ZipfMemCorrelated { s, mem_top } => format!("w-zipfmem{s}x{mem_top}"),
            WeightSpec::PhasedWarmup { base, warmup } => {
                let mut label = format!("{}+wu", base.label());
                if let Some(s) = warmup.init {
                    label.push_str(&format!("-i{}x{}", s.weight, s.max_rate));
                }
                if let Some(s) = warmup.exec {
                    label.push_str(&format!("-e{}x{}", s.weight, s.max_rate));
                }
                label
            }
        }
    }

    /// Realize the model against a catalogue as a dense per-function
    /// table.
    pub fn table(&self, catalogue: &Catalogue) -> WeightTable {
        if let WeightSpec::PhasedWarmup { base, warmup } = self {
            assert!(
                !matches!(**base, WeightSpec::PhasedWarmup { .. }),
                "warm-up overrides cannot nest"
            );
            for share in [&warmup.init, &warmup.exec].into_iter().flatten() {
                assert!(
                    share.weight > 0.0 && share.max_rate > 0.0,
                    "warm-up shares must be positive"
                );
            }
            let mut table = base.table(catalogue);
            table.warmup = *warmup;
            return table;
        }
        let n = catalogue.len();
        let shares = match self {
            WeightSpec::Uniform => vec![TaskShare::UNIFORM; n],
            WeightSpec::Tiers { tiers } => {
                assert!(!tiers.is_empty(), "tier list cannot be empty");
                for t in tiers {
                    assert!(
                        t.weight > 0.0 && t.max_rate > 0.0,
                        "tier weights and caps must be positive"
                    );
                    assert!(
                        t.mem_per_cpu >= 0.0 && t.mem_per_cpu.is_finite(),
                        "tier memory demand must be finite and non-negative"
                    );
                }
                (0..n)
                    .map(|i| {
                        let t = tiers[i % tiers.len()];
                        TaskShare {
                            weight: t.weight,
                            max_rate: t.max_rate,
                            mem_per_cpu: t.mem_per_cpu,
                        }
                    })
                    .collect()
            }
            WeightSpec::ZipfCorrelated { s } => {
                assert!(s.is_finite() && *s >= 0.0, "zipf skew must be non-negative");
                let raw: Vec<f64> = (0..n).map(|r| (r as f64 + 1.0).powf(-s)).collect();
                let mean = raw.iter().sum::<f64>() / n as f64;
                raw.iter()
                    .map(|w| TaskShare {
                        weight: w / mean,
                        max_rate: 1.0,
                        mem_per_cpu: 0.0,
                    })
                    .collect()
            }
            WeightSpec::ZipfMemCorrelated { s, mem_top } => {
                assert!(s.is_finite() && *s >= 0.0, "zipf skew must be non-negative");
                assert!(
                    mem_top.is_finite() && *mem_top >= 0.0,
                    "mem_top must be finite and non-negative"
                );
                let raw: Vec<f64> = (0..n).map(|r| (r as f64 + 1.0).powf(-s)).collect();
                let mean = raw.iter().sum::<f64>() / n as f64;
                raw.iter()
                    .map(|w| TaskShare {
                        weight: w / mean,
                        max_rate: 1.0,
                        // raw[0] is exactly 1.0, so the head function gets
                        // mem_top and later ranks decay by the Zipf law.
                        mem_per_cpu: mem_top * w,
                    })
                    .collect()
            }
            WeightSpec::PhasedWarmup { .. } => unreachable!("handled above"),
        };
        WeightTable {
            shares,
            warmup: WarmupShares::default(),
        }
    }
}

/// A realized weight model: one [`TaskShare`] per catalogue function,
/// plus optional per-phase warm-up overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightTable {
    shares: Vec<TaskShare>,
    warmup: WarmupShares,
}

impl WeightTable {
    /// The uniform table for a catalogue of `functions` entries.
    pub fn uniform(functions: usize) -> WeightTable {
        WeightTable {
            shares: vec![TaskShare::UNIFORM; functions],
            warmup: WarmupShares::default(),
        }
    }

    /// Attach warm-up phase overrides to this table.
    pub fn with_warmup(mut self, warmup: WarmupShares) -> WeightTable {
        self.warmup = warmup;
        self
    }

    /// The share of one function's containers.
    pub fn share(&self, func: FuncId) -> TaskShare {
        self.shares[func.index()]
    }

    /// The share one CPU phase of one call enters the GPS bank with:
    /// measured calls always use the function's share; warm-up calls use
    /// the per-phase override when one is set. This is the single lookup
    /// the invoker performs per GPS task.
    pub fn phase_share(&self, func: FuncId, kind: CallKind, phase: CallPhase) -> TaskShare {
        if kind == CallKind::Warmup {
            let over = match phase {
                CallPhase::Init => self.warmup.init,
                CallPhase::Exec => self.warmup.exec,
            };
            if let Some(share) = over {
                return share;
            }
        }
        self.share(func)
    }

    /// True when every share this table can hand out carries the uniform
    /// signature (including warm-up overrides). Introspection for tests
    /// and reports; the GPS kernel keys its fast path on the live
    /// signature set, not on this table.
    pub fn is_uniform(&self) -> bool {
        self.shares.iter().all(TaskShare::is_uniform)
            && [self.warmup.init, self.warmup.exec]
                .iter()
                .flatten()
                .all(TaskShare::is_uniform)
    }

    /// Number of functions covered.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// True for an empty catalogue.
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    #[test]
    fn uniform_table_is_uniform() {
        let t = WeightSpec::Uniform.table(&catalogue());
        assert!(t.is_uniform());
        assert_eq!(t.len(), catalogue().len());
        for func in catalogue().ids() {
            assert!(t.share(func).is_uniform());
        }
    }

    #[test]
    fn tiers_cycle_over_the_catalogue() {
        let spec = WeightSpec::paper_tiers();
        let t = spec.table(&catalogue());
        assert!(!t.is_uniform());
        // 11 functions over 3 tiers: index 0 and 3 share a tier.
        assert_eq!(t.share(FuncId(0)), t.share(FuncId(3)));
        assert_eq!(t.share(FuncId(1)), t.share(FuncId(4)));
        assert!((t.share(FuncId(0)).weight - 4.0).abs() < 1e-12);
        assert!((t.share(FuncId(2)).max_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zipf_weights_decrease_with_rank_and_average_one() {
        let t = WeightSpec::ZipfCorrelated { s: 1.0 }.table(&catalogue());
        assert!(!t.is_uniform());
        let n = t.len();
        let mut sum = 0.0;
        for i in 0..n {
            let share = t.share(FuncId(i as u16));
            sum += share.weight;
            assert!((share.max_rate - 1.0).abs() < 1e-12, "caps stay at 1 core");
            if i > 0 {
                assert!(
                    share.weight < t.share(FuncId(i as u16 - 1)).weight,
                    "weights must decrease with rank"
                );
            }
        }
        assert!((sum / n as f64 - 1.0).abs() < 1e-12, "mean weight 1");
    }

    #[test]
    fn zipf_zero_skew_degenerates_to_uniform_weights() {
        let t = WeightSpec::ZipfCorrelated { s: 0.0 }.table(&catalogue());
        // Every weight is exactly 1.0 (and so is the cap); the table is
        // bit-for-bit uniform and the fast path applies.
        assert!(t.is_uniform());
    }

    #[test]
    fn labels_are_stable_and_do_not_alias() {
        assert_eq!(WeightSpec::Uniform.label(), "w-uniform");
        assert_eq!(WeightSpec::paper_tiers().label(), "w-tiers3");
        assert_eq!(WeightSpec::ZipfCorrelated { s: 1.25 }.label(), "w-zipf1.25");
        assert_ne!(
            WeightSpec::ZipfCorrelated { s: 1.15 }.label(),
            WeightSpec::ZipfCorrelated { s: 1.2 }.label(),
            "close skews must not collapse to one sweep row"
        );
    }

    #[test]
    fn phased_warmup_overrides_only_warmup_phases() {
        let t = WeightSpec::paper_tiers_cgroup_lag().table(&catalogue());
        assert!(!t.is_uniform());
        let f = FuncId(0); // tier weight 4.0
                           // Measured calls always use the function's share.
        for phase in [CallPhase::Init, CallPhase::Exec] {
            let s = t.phase_share(f, CallKind::Measured, phase);
            assert!((s.weight - 4.0).abs() < 1e-12);
        }
        // Warm-up init runs pre-cgroup-update at the default share...
        let init = t.phase_share(f, CallKind::Warmup, CallPhase::Init);
        assert!(init.is_uniform(), "warm-up init at the default share");
        // ...and warm-up exec falls back to the function's share (the
        // canonical model leaves `exec` unset).
        let exec = t.phase_share(f, CallKind::Warmup, CallPhase::Exec);
        assert!((exec.weight - 4.0).abs() < 1e-12);
    }

    #[test]
    fn default_warmup_shares_reproduce_the_function_share() {
        let t = WeightSpec::paper_tiers().table(&catalogue());
        for func in catalogue().ids() {
            for kind in [CallKind::Warmup, CallKind::Measured] {
                for phase in [CallPhase::Init, CallPhase::Exec] {
                    assert_eq!(t.phase_share(func, kind, phase), t.share(func));
                }
            }
        }
    }

    #[test]
    fn phased_warmup_label_and_uniformity() {
        let spec = WeightSpec::paper_tiers_cgroup_lag();
        assert_eq!(spec.label(), "w-tiers3+wu-i1x1");
        // A uniform base with a non-uniform warm-up override is not a
        // uniform table.
        let t = WeightSpec::PhasedWarmup {
            base: Box::new(WeightSpec::Uniform),
            warmup: WarmupShares {
                init: Some(TaskShare {
                    weight: 2.0,
                    max_rate: 1.0,
                    mem_per_cpu: 0.0,
                }),
                exec: None,
            },
        }
        .table(&catalogue());
        assert!(!t.is_uniform());
        // And uniform overrides keep a uniform base uniform.
        let u = WeightTable::uniform(catalogue().len()).with_warmup(WarmupShares {
            init: Some(TaskShare::UNIFORM),
            exec: Some(TaskShare::UNIFORM),
        });
        assert!(u.is_uniform());
    }

    #[test]
    #[should_panic(expected = "cannot nest")]
    fn nested_phased_warmup_rejected() {
        WeightSpec::PhasedWarmup {
            base: Box::new(WeightSpec::paper_tiers_cgroup_lag()),
            warmup: WarmupShares::default(),
        }
        .table(&catalogue());
    }

    #[test]
    fn mem_tiers_correlate_and_keep_legacy_shares_cpu_only() {
        let plain = WeightSpec::paper_tiers().table(&catalogue());
        for func in catalogue().ids() {
            assert!(plain.share(func).is_cpu_only(), "legacy tiers stay scalar");
        }
        let mem = WeightSpec::paper_tiers_mem().table(&catalogue());
        // Same weights and caps as the plain tiers; only the memory axis
        // differs, and the big-memory tier is memory-dominant.
        for func in catalogue().ids() {
            let a = plain.share(func);
            let b = mem.share(func);
            assert_eq!(a.weight, b.weight);
            assert_eq!(a.max_rate, b.max_rate);
        }
        assert!((mem.share(FuncId(0)).mem_per_cpu - 2.0).abs() < 1e-12);
        assert!(
            mem.share(FuncId(2)).is_cpu_only(),
            "throttled tier stays CPU-only"
        );
    }

    #[test]
    fn zipf_mem_demand_decays_with_rank() {
        let t = WeightSpec::ZipfMemCorrelated {
            s: 1.0,
            mem_top: 2.0,
        }
        .table(&catalogue());
        assert!(
            (t.share(FuncId(0)).mem_per_cpu - 2.0).abs() < 1e-12,
            "head gets mem_top"
        );
        for i in 1..t.len() {
            let prev = t.share(FuncId(i as u16 - 1));
            let cur = t.share(FuncId(i as u16));
            assert!(
                cur.mem_per_cpu < prev.mem_per_cpu,
                "memory demand decays with rank"
            );
            assert!(cur.weight < prev.weight, "weights still decay with rank");
        }
    }

    #[test]
    fn mem_labels_do_not_alias() {
        assert_eq!(WeightSpec::paper_tiers().label(), "w-tiers3");
        assert_eq!(WeightSpec::paper_tiers_mem().label(), "w-tiers3-m2x0.5x0");
        assert_eq!(
            WeightSpec::ZipfMemCorrelated {
                s: 1.0,
                mem_top: 2.0
            }
            .label(),
            "w-zipfmem1x2"
        );
        assert_ne!(
            WeightSpec::ZipfMemCorrelated {
                s: 1.0,
                mem_top: 2.0
            }
            .label(),
            WeightSpec::ZipfMemCorrelated {
                s: 1.0,
                mem_top: 2.5
            }
            .label(),
            "distinct memory tops must not collapse to one sweep row"
        );
    }

    #[test]
    fn uniform_share_is_cpu_only_and_mem_share_is_not_uniform() {
        assert!(TaskShare::UNIFORM.is_cpu_only());
        let s = TaskShare {
            weight: 1.0,
            max_rate: 1.0,
            mem_per_cpu: 0.5,
        };
        assert!(
            !s.is_uniform(),
            "a memory demand breaks the uniform signature"
        );
        assert!(!s.is_cpu_only());
    }

    #[test]
    #[should_panic(expected = "memory demand must be finite")]
    fn negative_tier_mem_rejected() {
        WeightSpec::Tiers {
            tiers: vec![TierSpec {
                weight: 1.0,
                max_rate: 1.0,
                mem_per_cpu: -1.0,
            }],
        }
        .table(&catalogue());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_tier_rejected() {
        WeightSpec::Tiers {
            tiers: vec![TierSpec {
                weight: 0.0,
                max_rate: 1.0,
                mem_per_cpu: 0.0,
            }],
        }
        .table(&catalogue());
    }
}
