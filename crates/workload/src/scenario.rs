//! Experiment scenarios.
//!
//! §V-A/§V-B of the paper define the load shape precisely:
//!
//! * **Warm-up**: `c` parallel calls per function (where `c` is the number of
//!   action cores), so each function ends up with up to `c` warm containers.
//!   Warm-up calls are not measured.
//! * **Burst**: all measured requests are issued uniformly at random inside a
//!   60-second window; after the window no new requests arrive and the
//!   client waits for all responses.
//! * **Intensity** `v`: with `c` cores and 11 functions the burst holds
//!   exactly `1.1 · c · v` requests, split equally across functions
//!   (`c·v/10` calls each).
//! * **Fairness mix** (Fig. 5): 10 CPUs, intensity 90, *exactly 10*
//!   dna-visualisation calls; every other call picks uniformly at random
//!   among the remaining ten functions.

use crate::sebs::{Catalogue, FuncId};
use crate::trace::{Call, CallId, CallKind};
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A generated scenario: warm-up calls followed by a measured burst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Warm-up calls, grouped in per-function waves of `c` parallel calls.
    pub warmup: Vec<Call>,
    /// Measured calls, sorted by release time.
    pub burst: Vec<Call>,
    /// Start of the measured burst window.
    pub burst_start: SimTime,
    /// Length of the burst window.
    pub burst_window: SimDuration,
}

impl Scenario {
    /// All calls (warm-up first, then burst) in release order.
    pub fn all_calls(&self) -> Vec<Call> {
        let mut calls = self.warmup.clone();
        calls.extend(self.burst.iter().copied());
        calls
    }

    /// Number of measured calls.
    pub fn measured_len(&self) -> usize {
        self.burst.len()
    }
}

/// Parameters of the uniform-burst scenario (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstScenario {
    /// Number of CPU cores available to action containers (`c`).
    pub cores: u32,
    /// Load intensity (`v`); the paper uses multiples of 10.
    pub intensity: u32,
    /// Length of the burst window; the paper fixes 60 s.
    pub window: SimDuration,
    /// Gap between the end of warm-up and the burst start, giving the node
    /// time to settle.
    pub warmup_gap: SimDuration,
}

impl BurstScenario {
    /// The paper's standard configuration: 60-second window, 5-second gap.
    pub fn standard(cores: u32, intensity: u32) -> Self {
        BurstScenario {
            cores,
            intensity,
            window: SimDuration::from_secs(60),
            warmup_gap: SimDuration::from_secs(5),
        }
    }

    /// Total number of measured requests: `n_f · c · v / 10` — for the
    /// 11-function SeBS set this is the paper's `1.1 · c · v`.
    pub fn total_requests(&self, catalogue: &Catalogue) -> usize {
        catalogue.len() * self.per_function_requests()
    }

    /// Measured requests per function: `c · v / 10`.
    pub fn per_function_requests(&self) -> usize {
        (self.cores as usize) * (self.intensity as usize) / 10
    }

    /// Generate the scenario with a given seed.
    ///
    /// The warm-up phase issues `cores` parallel calls per function, one
    /// function at a time (matching §V-A), at one-second wave spacing; the
    /// node processes them before the burst because the burst only starts
    /// after `warmup_gap`. Burst arrival times are i.i.d. uniform over the
    /// window, function assignment is an exact equal split, and the pairing
    /// of times with functions is a seeded shuffle — five seeds give the
    /// paper's "5 different random sequences of calls".
    pub fn generate(&self, catalogue: &Catalogue, seed: u64) -> Scenario {
        let mut root = Xoshiro256::seed_from_u64(seed);
        let mut rng_times = root.derive_stream(0x7131);
        let mut rng_assign = root.derive_stream(0x7132);

        let mut next_id = 0u32;
        let alloc_id = |ids: &mut u32| {
            let id = CallId(*ids);
            *ids += 1;
            id
        };

        // Warm-up: one wave per function, `cores` simultaneous calls.
        let mut warmup = Vec::with_capacity(catalogue.len() * self.cores as usize);
        let mut wave_start = SimTime::ZERO;
        for func in catalogue.ids() {
            for _ in 0..self.cores {
                warmup.push(Call {
                    id: alloc_id(&mut next_id),
                    func,
                    release: wave_start,
                    kind: CallKind::Warmup,
                });
            }
            // Waves are spaced widely enough that even the slowest function
            // (dna-visualisation, ~8.6 s) plus a cold start finishes before
            // the burst, because the burst start is computed from the last
            // wave plus the warm-up gap below.
            wave_start += SimDuration::from_secs(12);
        }
        let burst_start = wave_start + self.warmup_gap;

        // Burst: equal per-function counts, uniform times, shuffled pairing.
        let per_func = self.per_function_requests();
        let total = per_func * catalogue.len();
        let mut funcs: Vec<FuncId> = Vec::with_capacity(total);
        for func in catalogue.ids() {
            funcs.extend(std::iter::repeat_n(func, per_func));
        }
        rng_assign.shuffle(&mut funcs);

        let mut times: Vec<SimTime> = (0..total)
            .map(|_| {
                burst_start
                    + SimDuration::from_secs_f64(
                        rng_times.uniform_f64(0.0, self.window.as_secs_f64()),
                    )
            })
            .collect();
        times.sort_unstable();

        let burst: Vec<Call> = times
            .into_iter()
            .zip(funcs)
            .map(|(release, func)| Call {
                id: alloc_id(&mut next_id),
                func,
                release,
                kind: CallKind::Measured,
            })
            .collect();

        Scenario {
            warmup,
            burst,
            burst_start,
            burst_window: self.window,
        }
    }
}

/// Parameters of the fairness scenario of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessScenario {
    /// Number of CPU cores (`c`); the paper uses 10.
    pub cores: u32,
    /// Load intensity; the paper uses 90.
    pub intensity: u32,
    /// Exact number of calls of the rare long function; the paper uses 10.
    pub rare_calls: usize,
    /// Name of the rare long function; the paper uses dna-visualisation.
    pub rare_function: &'static str,
    /// Burst window.
    pub window: SimDuration,
    /// Warm-up gap, as in [`BurstScenario`].
    pub warmup_gap: SimDuration,
}

impl FairnessScenario {
    /// The configuration of Fig. 5.
    pub fn paper() -> Self {
        FairnessScenario {
            cores: 10,
            intensity: 90,
            rare_calls: 10,
            rare_function: "dna-visualisation",
            window: SimDuration::from_secs(60),
            warmup_gap: SimDuration::from_secs(5),
        }
    }

    /// Generate the scenario. Exactly `rare_calls` calls of the rare
    /// function; all other calls pick uniformly at random among the
    /// remaining functions (no partial-uniformity guarantee, matching
    /// §VII-D).
    pub fn generate(&self, catalogue: &Catalogue, seed: u64) -> Scenario {
        let rare = catalogue
            .by_name(self.rare_function)
            .expect("rare function must exist in the catalogue");
        let others: Vec<FuncId> = catalogue.ids().filter(|&f| f != rare).collect();
        assert!(
            !others.is_empty(),
            "fairness scenario needs at least two functions"
        );

        let mut root = Xoshiro256::seed_from_u64(seed);
        let mut rng_times = root.derive_stream(0x7A01);
        let mut rng_assign = root.derive_stream(0x7A02);

        let mut next_id = 0u32;

        // Warm-up identical in shape to the burst scenario.
        let mut warmup = Vec::new();
        let mut wave_start = SimTime::ZERO;
        for func in catalogue.ids() {
            for _ in 0..self.cores {
                warmup.push(Call {
                    id: CallId(next_id),
                    func,
                    release: wave_start,
                    kind: CallKind::Warmup,
                });
                next_id += 1;
            }
            wave_start += SimDuration::from_secs(12);
        }
        let burst_start = wave_start + self.warmup_gap;

        let total = catalogue.len() * (self.cores as usize) * (self.intensity as usize) / 10;
        assert!(
            total >= self.rare_calls,
            "total calls {total} cannot fit {} rare calls",
            self.rare_calls
        );

        let mut funcs: Vec<FuncId> = Vec::with_capacity(total);
        funcs.extend(std::iter::repeat_n(rare, self.rare_calls));
        for _ in self.rare_calls..total {
            funcs.push(*rng_assign.choose(&others));
        }
        rng_assign.shuffle(&mut funcs);

        let mut times: Vec<SimTime> = (0..total)
            .map(|_| {
                burst_start
                    + SimDuration::from_secs_f64(
                        rng_times.uniform_f64(0.0, self.window.as_secs_f64()),
                    )
            })
            .collect();
        times.sort_unstable();

        let burst: Vec<Call> = times
            .into_iter()
            .zip(funcs)
            .map(|(release, func)| Call {
                id: {
                    let id = CallId(next_id);
                    next_id += 1;
                    id
                },
                func,
                release,
                kind: CallKind::Measured,
            })
            .collect();

        Scenario {
            warmup,
            burst,
            burst_start,
            burst_window: self.window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    #[test]
    fn request_count_matches_paper_formula() {
        // §V-B example: 20 cores, intensity 30 -> 660 requests.
        let s = BurstScenario::standard(20, 30);
        assert_eq!(s.total_requests(&catalogue()), 660);
        assert_eq!(s.per_function_requests(), 60);
        // 10 cores, intensity 120 -> 1320 (Fig. 2 discussion).
        let s = BurstScenario::standard(10, 120);
        assert_eq!(s.total_requests(&catalogue()), 1320);
    }

    #[test]
    fn generated_burst_has_equal_function_split() {
        let cat = catalogue();
        let sc = BurstScenario::standard(10, 30).generate(&cat, 1);
        assert_eq!(sc.burst.len(), 330);
        for func in cat.ids() {
            let n = sc.burst.iter().filter(|c| c.func == func).count();
            assert_eq!(n, 30, "function {func:?} call count");
        }
    }

    #[test]
    fn burst_times_inside_window_and_sorted() {
        let sc = BurstScenario::standard(10, 40).generate(&catalogue(), 2);
        let end = sc.burst_start + sc.burst_window;
        let mut prev = SimTime::ZERO;
        for call in &sc.burst {
            assert!(call.release >= sc.burst_start && call.release < end);
            assert!(call.release >= prev, "burst must be sorted");
            prev = call.release;
        }
    }

    #[test]
    fn warmup_has_cores_calls_per_function() {
        let cat = catalogue();
        let sc = BurstScenario::standard(8, 30).generate(&cat, 3);
        assert_eq!(sc.warmup.len(), 8 * cat.len());
        for func in cat.ids() {
            let calls: Vec<_> = sc.warmup.iter().filter(|c| c.func == func).collect();
            assert_eq!(calls.len(), 8);
            // Calls of one wave are simultaneous (parallel warm-up).
            assert!(calls.windows(2).all(|w| w[0].release == w[1].release));
        }
    }

    #[test]
    fn warmup_strictly_precedes_burst() {
        let sc = BurstScenario::standard(10, 60).generate(&catalogue(), 4);
        let last_warm = sc.warmup.iter().map(|c| c.release).max().unwrap();
        assert!(last_warm < sc.burst_start);
        assert!(sc.burst.first().unwrap().release >= sc.burst_start);
    }

    #[test]
    fn same_seed_same_scenario() {
        let cat = catalogue();
        let a = BurstScenario::standard(10, 30).generate(&cat, 42);
        let b = BurstScenario::standard(10, 30).generate(&cat, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cat = catalogue();
        let a = BurstScenario::standard(10, 30).generate(&cat, 1);
        let b = BurstScenario::standard(10, 30).generate(&cat, 2);
        assert_ne!(a.burst, b.burst);
    }

    #[test]
    fn call_ids_are_unique_and_dense() {
        let sc = BurstScenario::standard(5, 30).generate(&catalogue(), 5);
        let mut ids: Vec<u32> = sc.all_calls().iter().map(|c| c.id.0).collect();
        ids.sort_unstable();
        let expected: Vec<u32> = (0..ids.len() as u32).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn fairness_has_exact_rare_count() {
        let cat = catalogue();
        let f = FairnessScenario::paper();
        let sc = f.generate(&cat, 7);
        let rare = cat.by_name("dna-visualisation").unwrap();
        let rare_count = sc.burst.iter().filter(|c| c.func == rare).count();
        assert_eq!(rare_count, 10);
        // Total is still 1.1 * c * v = 990.
        assert_eq!(sc.burst.len(), 990);
    }

    #[test]
    fn fairness_other_functions_roughly_uniform() {
        let cat = catalogue();
        let sc = FairnessScenario::paper().generate(&cat, 11);
        let rare = cat.by_name("dna-visualisation").unwrap();
        for func in cat.ids().filter(|&f| f != rare) {
            let n = sc.burst.iter().filter(|c| c.func == func).count();
            // 980 calls over 10 functions: expect 98, allow wide multinomial
            // slack.
            assert!((58..=138).contains(&n), "{func:?} got {n} calls");
        }
    }

    #[test]
    fn fairness_graph_bfs_share_matches_figure_caption() {
        // Fig. 5 caption: graph-bfs is 9.9% of all calls (98/990 expected).
        let cat = catalogue();
        let bfs = cat.by_name("graph-bfs").unwrap();
        let mut total_share = 0.0;
        let seeds = 20;
        for seed in 0..seeds {
            let sc = FairnessScenario::paper().generate(&cat, seed);
            let n = sc.burst.iter().filter(|c| c.func == bfs).count();
            total_share += n as f64 / sc.burst.len() as f64;
        }
        let share = total_share / seeds as f64;
        assert!((share - 0.099).abs() < 0.01, "share {share}");
    }

    #[test]
    fn measured_len_counts_burst_only() {
        let sc = BurstScenario::standard(5, 30).generate(&catalogue(), 1);
        assert_eq!(sc.measured_len(), sc.burst.len());
        assert!(sc.all_calls().len() > sc.measured_len());
    }
}
