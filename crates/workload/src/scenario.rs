//! Experiment scenarios.
//!
//! §V-A/§V-B of the paper define the load shape precisely:
//!
//! * **Warm-up**: `c` parallel calls per function (where `c` is the number of
//!   action cores), so each function ends up with up to `c` warm containers.
//!   Warm-up calls are not measured.
//! * **Burst**: all measured requests are issued uniformly at random inside a
//!   60-second window; after the window no new requests arrive and the
//!   client waits for all responses.
//! * **Intensity** `v`: with `c` cores and 11 functions the burst holds
//!   exactly `1.1 · c · v` requests, split equally across functions
//!   (`c·v/10` calls each).
//! * **Fairness mix** (Fig. 5): 10 CPUs, intensity 90, *exactly 10*
//!   dna-visualisation calls; every other call picks uniformly at random
//!   among the remaining ten functions.

use crate::arrival::ArrivalSpec;
use crate::generate::WorkloadSpec;
use crate::mix::MixSpec;
use crate::sebs::{Catalogue, FuncId};
use crate::trace::{Call, CallId, CallKind};
use crate::weight::WeightSpec;
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Spacing between per-function warm-up waves. Waves are spaced widely
/// enough that even the slowest function (dna-visualisation, ~8.6 s) plus a
/// cold start finishes before the burst, because the burst start is
/// computed from the last wave plus the warm-up gap.
pub const WARMUP_WAVE_SPACING: SimDuration = SimDuration::from_secs(12);

/// The settle gap between the last warm-up wave and the burst start.
pub const WARMUP_SETTLE_GAP: SimDuration = SimDuration::from_secs(5);

/// The shared per-function warm-up wave times and the burst start after
/// [`WARMUP_SETTLE_GAP`] — multi-node scenarios share the wave *times*
/// while each node replays every wave locally with its own `cores`
/// parallel calls.
pub fn warmup_waves(catalogue: &Catalogue) -> (Vec<(FuncId, SimTime)>, SimTime) {
    let mut waves = Vec::with_capacity(catalogue.len());
    let mut wave_start = SimTime::ZERO;
    for func in catalogue.ids() {
        waves.push((func, wave_start));
        wave_start += WARMUP_WAVE_SPACING;
    }
    (waves, wave_start + WARMUP_SETTLE_GAP)
}

/// The warm-up calls one node issues for the given wave times: `cores`
/// simultaneous calls per wave, ids `id_base..` in wave order. The single
/// place the §V-A warm-up layout is encoded — single-node scenarios and
/// the cluster engine both build from it.
pub fn warmup_calls_for_waves(waves: &[(FuncId, SimTime)], cores: u32, id_base: u64) -> Vec<Call> {
    let mut calls = Vec::with_capacity(waves.len() * cores as usize);
    let mut next_id = id_base;
    for &(func, at) in waves {
        for _ in 0..cores {
            calls.push(Call {
                id: CallId(next_id),
                func,
                release: at,
                kind: CallKind::Warmup,
            });
            next_id += 1;
        }
    }
    calls
}

/// The §V-A warm-up phase: one wave per function, `cores` simultaneous
/// calls each, ids `0..`. Returns the calls and the end of the last wave.
pub(crate) fn warmup_calls(catalogue: &Catalogue, cores: u32) -> (Vec<Call>, SimTime) {
    let (waves, _) = warmup_waves(catalogue);
    let warmup = warmup_calls_for_waves(&waves, cores, 0);
    let last_wave_end = waves
        .last()
        .map(|&(_, at)| at + WARMUP_WAVE_SPACING)
        .unwrap_or(SimTime::ZERO);
    (warmup, last_wave_end)
}

/// The §V-A warm-up plus the burst start after the paper's standard
/// 5-second settle gap — the preamble every scenario built from a
/// [`WorkloadSpec`] uses (ids `0..`, so pass `warmup.len()` as the burst's
/// id base).
pub fn warmup_for_spec(catalogue: &Catalogue, cores: u32) -> (Vec<Call>, SimTime) {
    let (warmup, last_wave) = warmup_calls(catalogue, cores);
    (warmup, last_wave + WARMUP_SETTLE_GAP)
}

/// A generated scenario: warm-up calls followed by a measured burst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Warm-up calls, grouped in per-function waves of `c` parallel calls.
    pub warmup: Vec<Call>,
    /// Measured calls, sorted by release time.
    pub burst: Vec<Call>,
    /// Start of the measured burst window.
    pub burst_start: SimTime,
    /// Length of the burst window.
    pub burst_window: SimDuration,
}

impl Scenario {
    /// All calls (warm-up first, then burst) in release order.
    pub fn all_calls(&self) -> Vec<Call> {
        let mut calls = self.warmup.clone();
        calls.extend(self.burst.iter().copied());
        calls
    }

    /// Number of measured calls.
    pub fn measured_len(&self) -> usize {
        self.burst.len()
    }
}

/// Parameters of the uniform-burst scenario (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstScenario {
    /// Number of CPU cores available to action containers (`c`).
    pub cores: u32,
    /// Load intensity (`v`); the paper uses multiples of 10.
    pub intensity: u32,
    /// Length of the burst window; the paper fixes 60 s.
    pub window: SimDuration,
    /// Gap between the end of warm-up and the burst start, giving the node
    /// time to settle.
    pub warmup_gap: SimDuration,
}

impl BurstScenario {
    /// The paper's standard configuration: 60-second window, 5-second gap.
    pub fn standard(cores: u32, intensity: u32) -> Self {
        BurstScenario {
            cores,
            intensity,
            window: SimDuration::from_secs(60),
            warmup_gap: SimDuration::from_secs(5),
        }
    }

    /// Total number of measured requests: `n_f · c · v / 10` — for the
    /// 11-function SeBS set this is the paper's `1.1 · c · v`.
    pub fn total_requests(&self, catalogue: &Catalogue) -> usize {
        catalogue.len() * self.per_function_requests()
    }

    /// Measured requests per function: `c · v / 10`.
    pub fn per_function_requests(&self) -> usize {
        (self.cores as usize) * (self.intensity as usize) / 10
    }

    /// The equivalent [`WorkloadSpec`] for the measured burst.
    pub fn workload_spec(&self, catalogue: &Catalogue) -> WorkloadSpec {
        WorkloadSpec {
            arrival: ArrivalSpec::Uniform {
                count: self.total_requests(catalogue),
            },
            mix: MixSpec::Equal,
            weights: WeightSpec::Uniform,
            window: self.window,
        }
    }

    /// Generate the scenario with a given seed.
    ///
    /// A thin adapter over the workload subsystem: the warm-up phase issues
    /// `cores` parallel calls per function, one function at a time
    /// (matching §V-A); the burst is the uniform-arrival/equal-split
    /// [`WorkloadSpec`] on the same seeded streams the pre-subsystem
    /// generator used, so the output is bit-for-bit identical (pinned by
    /// `tests/regression_scenarios.rs`). Five seeds give the paper's "5
    /// different random sequences of calls".
    pub fn generate(&self, catalogue: &Catalogue, seed: u64) -> Scenario {
        let mut root = Xoshiro256::seed_from_u64(seed);
        let mut rng_times = root.derive_stream(0x7131);
        let mut rng_assign = root.derive_stream(0x7132);

        let (warmup, last_wave) = warmup_calls(catalogue, self.cores);
        let burst_start = last_wave + self.warmup_gap;
        let burst = self.workload_spec(catalogue).generate_sorted(
            catalogue,
            burst_start,
            &mut rng_times,
            &mut rng_assign,
            warmup.len() as u64,
        );

        Scenario {
            warmup,
            burst,
            burst_start,
            burst_window: self.window,
        }
    }
}

/// Parameters of the fairness scenario of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessScenario {
    /// Number of CPU cores (`c`); the paper uses 10.
    pub cores: u32,
    /// Load intensity; the paper uses 90.
    pub intensity: u32,
    /// Exact number of calls of the rare long function; the paper uses 10.
    pub rare_calls: usize,
    /// Name of the rare long function; the paper uses dna-visualisation.
    pub rare_function: &'static str,
    /// Burst window.
    pub window: SimDuration,
    /// Warm-up gap, as in [`BurstScenario`].
    pub warmup_gap: SimDuration,
}

impl FairnessScenario {
    /// The configuration of Fig. 5.
    pub fn paper() -> Self {
        FairnessScenario {
            cores: 10,
            intensity: 90,
            rare_calls: 10,
            rare_function: "dna-visualisation",
            window: SimDuration::from_secs(60),
            warmup_gap: SimDuration::from_secs(5),
        }
    }

    /// The equivalent [`WorkloadSpec`] for the measured burst.
    pub fn workload_spec(&self, catalogue: &Catalogue) -> WorkloadSpec {
        let total = catalogue.len() * (self.cores as usize) * (self.intensity as usize) / 10;
        WorkloadSpec {
            arrival: ArrivalSpec::Uniform { count: total },
            mix: MixSpec::Fairness {
                rare_function: self.rare_function.into(),
                rare_calls: self.rare_calls,
            },
            weights: WeightSpec::Uniform,
            window: self.window,
        }
    }

    /// Generate the scenario. Exactly `rare_calls` calls of the rare
    /// function; all other calls pick uniformly at random among the
    /// remaining functions (no partial-uniformity guarantee, matching
    /// §VII-D). A thin adapter over the workload subsystem, bit-for-bit
    /// identical to the pre-subsystem generator.
    pub fn generate(&self, catalogue: &Catalogue, seed: u64) -> Scenario {
        let mut root = Xoshiro256::seed_from_u64(seed);
        let mut rng_times = root.derive_stream(0x7A01);
        let mut rng_assign = root.derive_stream(0x7A02);

        let (warmup, last_wave) = warmup_calls(catalogue, self.cores);
        let burst_start = last_wave + self.warmup_gap;
        let burst = self.workload_spec(catalogue).generate_sorted(
            catalogue,
            burst_start,
            &mut rng_times,
            &mut rng_assign,
            warmup.len() as u64,
        );

        Scenario {
            warmup,
            burst,
            burst_start,
            burst_window: self.window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    #[test]
    fn request_count_matches_paper_formula() {
        // §V-B example: 20 cores, intensity 30 -> 660 requests.
        let s = BurstScenario::standard(20, 30);
        assert_eq!(s.total_requests(&catalogue()), 660);
        assert_eq!(s.per_function_requests(), 60);
        // 10 cores, intensity 120 -> 1320 (Fig. 2 discussion).
        let s = BurstScenario::standard(10, 120);
        assert_eq!(s.total_requests(&catalogue()), 1320);
    }

    #[test]
    fn generated_burst_has_equal_function_split() {
        let cat = catalogue();
        let sc = BurstScenario::standard(10, 30).generate(&cat, 1);
        assert_eq!(sc.burst.len(), 330);
        for func in cat.ids() {
            let n = sc.burst.iter().filter(|c| c.func == func).count();
            assert_eq!(n, 30, "function {func:?} call count");
        }
    }

    #[test]
    fn burst_times_inside_window_and_sorted() {
        let sc = BurstScenario::standard(10, 40).generate(&catalogue(), 2);
        let end = sc.burst_start + sc.burst_window;
        let mut prev = SimTime::ZERO;
        for call in &sc.burst {
            assert!(call.release >= sc.burst_start && call.release < end);
            assert!(call.release >= prev, "burst must be sorted");
            prev = call.release;
        }
    }

    #[test]
    fn warmup_has_cores_calls_per_function() {
        let cat = catalogue();
        let sc = BurstScenario::standard(8, 30).generate(&cat, 3);
        assert_eq!(sc.warmup.len(), 8 * cat.len());
        for func in cat.ids() {
            let calls: Vec<_> = sc.warmup.iter().filter(|c| c.func == func).collect();
            assert_eq!(calls.len(), 8);
            // Calls of one wave are simultaneous (parallel warm-up).
            assert!(calls.windows(2).all(|w| w[0].release == w[1].release));
        }
    }

    #[test]
    fn warmup_strictly_precedes_burst() {
        let sc = BurstScenario::standard(10, 60).generate(&catalogue(), 4);
        let last_warm = sc.warmup.iter().map(|c| c.release).max().unwrap();
        assert!(last_warm < sc.burst_start);
        assert!(sc.burst.first().unwrap().release >= sc.burst_start);
    }

    #[test]
    fn same_seed_same_scenario() {
        let cat = catalogue();
        let a = BurstScenario::standard(10, 30).generate(&cat, 42);
        let b = BurstScenario::standard(10, 30).generate(&cat, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cat = catalogue();
        let a = BurstScenario::standard(10, 30).generate(&cat, 1);
        let b = BurstScenario::standard(10, 30).generate(&cat, 2);
        assert_ne!(a.burst, b.burst);
    }

    #[test]
    fn call_ids_are_unique_and_dense() {
        let sc = BurstScenario::standard(5, 30).generate(&catalogue(), 5);
        let mut ids: Vec<u64> = sc.all_calls().iter().map(|c| c.id.0).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..ids.len() as u64).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn fairness_has_exact_rare_count() {
        let cat = catalogue();
        let f = FairnessScenario::paper();
        let sc = f.generate(&cat, 7);
        let rare = cat.by_name("dna-visualisation").unwrap();
        let rare_count = sc.burst.iter().filter(|c| c.func == rare).count();
        assert_eq!(rare_count, 10);
        // Total is still 1.1 * c * v = 990.
        assert_eq!(sc.burst.len(), 990);
    }

    #[test]
    fn fairness_other_functions_roughly_uniform() {
        let cat = catalogue();
        let sc = FairnessScenario::paper().generate(&cat, 11);
        let rare = cat.by_name("dna-visualisation").unwrap();
        for func in cat.ids().filter(|&f| f != rare) {
            let n = sc.burst.iter().filter(|c| c.func == func).count();
            // 980 calls over 10 functions: expect 98, allow wide multinomial
            // slack.
            assert!((58..=138).contains(&n), "{func:?} got {n} calls");
        }
    }

    #[test]
    fn fairness_graph_bfs_share_matches_figure_caption() {
        // Fig. 5 caption: graph-bfs is 9.9% of all calls (98/990 expected).
        let cat = catalogue();
        let bfs = cat.by_name("graph-bfs").unwrap();
        let mut total_share = 0.0;
        let seeds = 20;
        for seed in 0..seeds {
            let sc = FairnessScenario::paper().generate(&cat, seed);
            let n = sc.burst.iter().filter(|c| c.func == bfs).count();
            total_share += n as f64 / sc.burst.len() as f64;
        }
        let share = total_share / seeds as f64;
        assert!((share - 0.099).abs() < 0.01, "share {share}");
    }

    #[test]
    fn measured_len_counts_burst_only() {
        let sc = BurstScenario::standard(5, 30).generate(&catalogue(), 1);
        assert_eq!(sc.measured_len(), sc.burst.len());
        assert!(sc.all_calls().len() > sc.measured_len());
    }
}
