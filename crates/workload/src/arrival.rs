//! Pluggable arrival processes.
//!
//! The paper evaluates with exactly one arrival shape: a fixed number of
//! requests i.i.d.-uniform over a 60-second window (§V-B). Real FaaS traffic
//! is Poisson at short scales, bursty (on-off) at medium scales and diurnal
//! at long scales, so the generator subsystem makes the arrival shape a
//! pluggable axis.
//!
//! Every process reduces to the same two-step scheme:
//!
//! 1. [`ArrivalProcess::realize`] samples the scenario's **intensity
//!    profile** — a piecewise-constant arrival-rate curve over the window.
//!    Processes with hidden state (the MMPP's on/off chain) sample their
//!    state path here; memoryless processes return a deterministic profile.
//! 2. Given the profile, arrivals are conditionally i.i.d.: the call count
//!    is either fixed (the paper's burst) or Poisson with the profile's
//!    total mass, and each release offset is an independent draw from the
//!    normalized intensity density ([`IntensityProfile::inv_cdf`]).
//!
//! Step 2 is what makes generation *shardable*: once the profile is
//! realized (cheap — O(state switches), not O(calls)), every call can be
//! produced independently from its own derived RNG stream, in any order,
//! on any worker. See [`crate::generate::ShardedGenerator`].

use faas_simcore::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// A realized, piecewise-constant arrival-intensity curve over a window.
///
/// Produced by [`ArrivalProcess::realize`]; consumed by the generators to
/// draw call counts and i.i.d. release offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct IntensityProfile {
    /// Segment boundaries in seconds: `bounds[0] == 0`, `bounds[last]` is
    /// the window length. `bounds.len() == rates.len() + 1`.
    bounds: Vec<f64>,
    /// Arrival rate (calls/second) of each segment.
    rates: Vec<f64>,
    /// Cumulative expected arrivals at each boundary (`cum[0] == 0`).
    cum: Vec<f64>,
    /// How the call count is drawn.
    count: CountModel,
}

/// How many calls a realized profile emits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CountModel {
    /// Exactly this many calls (the paper's closed workload).
    Fixed(usize),
    /// Poisson with mean equal to the profile's total mass (open workload).
    Poisson,
}

impl IntensityProfile {
    /// A flat profile emitting exactly `count` calls (the paper's burst).
    pub fn uniform_fixed(window_secs: f64, count: usize) -> IntensityProfile {
        assert!(window_secs > 0.0, "window must be positive");
        let rate = count as f64 / window_secs;
        IntensityProfile {
            bounds: vec![0.0, window_secs],
            rates: vec![rate],
            cum: vec![0.0, count as f64],
            count: CountModel::Fixed(count),
        }
    }

    /// A piecewise-constant profile from `(length_secs, rate)` segments.
    ///
    /// Zero-length segments are dropped; the segments must cover a positive
    /// total length.
    pub fn piecewise(segments: &[(f64, f64)], count: CountModel) -> IntensityProfile {
        let mut bounds = vec![0.0];
        let mut rates = Vec::with_capacity(segments.len());
        let mut cum = vec![0.0];
        let mut t = 0.0;
        let mut mass = 0.0;
        for &(len, rate) in segments {
            assert!(len >= 0.0 && rate >= 0.0, "negative segment");
            if len == 0.0 {
                continue;
            }
            t += len;
            mass += len * rate;
            bounds.push(t);
            rates.push(rate);
            cum.push(mass);
        }
        assert!(t > 0.0, "profile must cover a positive window");
        IntensityProfile {
            bounds,
            rates,
            cum,
            count,
        }
    }

    /// Window length in seconds.
    pub fn window_secs(&self) -> f64 {
        *self.bounds.last().expect("profile has bounds")
    }

    /// Total expected arrivals (the integral of the rate curve).
    pub fn mass(&self) -> f64 {
        *self.cum.last().expect("profile has bounds")
    }

    /// Draw the number of calls this scenario emits.
    ///
    /// Fixed counts consume no randomness. Poisson counts use an exact
    /// exponential-race sampler below mean 256 and the normal approximation
    /// (with continuity correction) above — at such means the approximation
    /// error is far below the run-to-run variance of any experiment, and it
    /// keeps scenario setup O(1) so huge sharded generations are not
    /// bottlenecked on a serial count draw.
    pub fn sample_count(&self, rng: &mut Xoshiro256) -> usize {
        match self.count {
            CountModel::Fixed(n) => n,
            CountModel::Poisson => sample_poisson(self.mass(), rng),
        }
    }

    /// Invert the normalized arrival-time CDF: map `u ∈ [0, 1)` to a
    /// release offset in `[0, window)` seconds.
    ///
    /// The flat single-segment case computes `u * window` exactly — the
    /// same arithmetic as the pre-subsystem generators' `uniform_f64(0,
    /// window)` — which is what keeps the paper-scenario adapters
    /// bit-for-bit identical.
    pub fn inv_cdf(&self, u: f64) -> f64 {
        let window = self.window_secs();
        if self.rates.len() == 1 {
            return u * window;
        }
        let target = u * self.mass();
        // Find the segment whose cumulative range contains `target`.
        let seg = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&target).expect("cum is finite"))
        {
            Ok(i) => i.min(self.rates.len() - 1),
            Err(i) => i.saturating_sub(1).min(self.rates.len() - 1),
        };
        let rate = self.rates[seg];
        let offset = if rate > 0.0 {
            self.bounds[seg] + (target - self.cum[seg]) / rate
        } else {
            // Zero-rate segment can only be hit at its exact boundary mass.
            self.bounds[seg]
        };
        // Guard the half-open invariant against floating-point creep.
        if offset >= window {
            window * (1.0 - f64::EPSILON)
        } else {
            offset.max(0.0)
        }
    }
}

/// Poisson sample: exact exponential race below mean 256, normal
/// approximation with continuity correction above.
fn sample_poisson(mean: f64, rng: &mut Xoshiro256) -> usize {
    assert!(
        mean >= 0.0 && mean.is_finite(),
        "Poisson mean must be finite"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean < 256.0 {
        // Count standard exponentials fitting in `mean`.
        let mut acc = 0.0;
        let mut n = 0usize;
        loop {
            acc += -(1.0 - rng.next_f64()).ln();
            if acc > mean {
                return n;
            }
            n += 1;
        }
    }
    let draw = mean + mean.sqrt() * rng.standard_normal();
    draw.round().max(0.0) as usize
}

/// An arrival process: everything needed to realize one scenario's
/// intensity profile from a seeded RNG stream.
pub trait ArrivalProcess: Send + Sync {
    /// Short label for report tables (`uniform`, `poisson`, ...).
    fn label(&self) -> String;

    /// Realize the scenario's intensity profile over `window_secs`.
    ///
    /// Deterministic given the RNG state; hidden-state processes consume
    /// randomness here, memoryless ones consume none.
    fn realize(&self, window_secs: f64, rng: &mut Xoshiro256) -> IntensityProfile;
}

/// The paper's §V-B burst: exactly `count` calls i.i.d.-uniform over the
/// window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformBurst {
    /// Exact number of calls.
    pub count: usize,
}

impl ArrivalProcess for UniformBurst {
    fn label(&self) -> String {
        "uniform".into()
    }

    fn realize(&self, window_secs: f64, _rng: &mut Xoshiro256) -> IntensityProfile {
        IntensityProfile::uniform_fixed(window_secs, self.count)
    }
}

/// Homogeneous Poisson arrivals at a constant rate; the call count is
/// itself Poisson (open workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    /// Arrival rate, calls per second.
    pub rate: f64,
}

impl ArrivalProcess for PoissonArrivals {
    fn label(&self) -> String {
        "poisson".into()
    }

    fn realize(&self, window_secs: f64, _rng: &mut Xoshiro256) -> IntensityProfile {
        assert!(self.rate >= 0.0, "rate must be non-negative");
        IntensityProfile::piecewise(&[(window_secs, self.rate)], CountModel::Poisson)
    }
}

/// Two-state Markov-modulated Poisson process (on-off bursts).
///
/// The hidden chain alternates exponentially-distributed sojourns in an
/// *on* state (rate `rate_on`) and an *off* state (rate `rate_off`); the
/// initial state is drawn from the stationary distribution. Conditional on
/// the realized state path the arrivals are an inhomogeneous Poisson
/// process, which is exactly what [`IntensityProfile`] represents — so MMPP
/// generation shards without approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmppArrivals {
    /// Arrival rate while the chain is on, calls/second.
    pub rate_on: f64,
    /// Arrival rate while the chain is off, calls/second.
    pub rate_off: f64,
    /// Mean sojourn in the on state, seconds.
    pub mean_on_secs: f64,
    /// Mean sojourn in the off state, seconds.
    pub mean_off_secs: f64,
}

impl MmppArrivals {
    /// Long-run mean arrival rate (stationary mixture of the two rates).
    pub fn mean_rate(&self) -> f64 {
        let p_on = self.mean_on_secs / (self.mean_on_secs + self.mean_off_secs);
        p_on * self.rate_on + (1.0 - p_on) * self.rate_off
    }
}

impl ArrivalProcess for MmppArrivals {
    fn label(&self) -> String {
        "mmpp".into()
    }

    fn realize(&self, window_secs: f64, rng: &mut Xoshiro256) -> IntensityProfile {
        assert!(
            self.mean_on_secs > 0.0 && self.mean_off_secs > 0.0,
            "MMPP sojourn means must be positive"
        );
        assert!(
            self.rate_on >= 0.0 && self.rate_off >= 0.0,
            "MMPP rates must be non-negative"
        );
        let p_on = self.mean_on_secs / (self.mean_on_secs + self.mean_off_secs);
        let mut on = rng.next_f64() < p_on;
        let mut segments: Vec<(f64, f64)> = Vec::new();
        let mut t = 0.0;
        while t < window_secs {
            let mean = if on {
                self.mean_on_secs
            } else {
                self.mean_off_secs
            };
            let sojourn = -mean * (1.0 - rng.next_f64()).ln();
            let len = sojourn.min(window_secs - t);
            if len > 0.0 {
                segments.push((len, if on { self.rate_on } else { self.rate_off }));
                t += len;
            }
            on = !on;
        }
        IntensityProfile::piecewise(&segments, CountModel::Poisson)
    }
}

/// Piecewise-constant diurnal rate curve.
///
/// The window is split into `weights.len()` equal-length segments whose
/// rates follow the relative weights, normalized so the window-average rate
/// is `mean_rate`. The profile is deterministic (no hidden state).
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalArrivals {
    /// Window-average arrival rate, calls/second.
    pub mean_rate: f64,
    /// Relative rate of each equal-length segment (any positive scale).
    pub weights: Vec<f64>,
}

impl DiurnalArrivals {
    /// A day-shaped default: quiet night, morning ramp, midday peak,
    /// evening tail.
    pub fn day_shape(mean_rate: f64) -> DiurnalArrivals {
        DiurnalArrivals {
            mean_rate,
            weights: vec![0.25, 0.5, 1.0, 1.75, 1.75, 1.25, 0.75, 0.75],
        }
    }
}

impl ArrivalProcess for DiurnalArrivals {
    fn label(&self) -> String {
        "diurnal".into()
    }

    fn realize(&self, window_secs: f64, _rng: &mut Xoshiro256) -> IntensityProfile {
        assert!(!self.weights.is_empty(), "diurnal curve needs segments");
        assert!(
            self.weights.iter().all(|&w| w >= 0.0),
            "diurnal weights must be non-negative"
        );
        let sum: f64 = self.weights.iter().sum();
        assert!(sum > 0.0, "diurnal curve must have positive mass");
        let k = self.weights.len() as f64;
        let seg_len = window_secs / k;
        let segments: Vec<(f64, f64)> = self
            .weights
            .iter()
            .map(|&w| (seg_len, self.mean_rate * w * k / sum))
            .collect();
        IntensityProfile::piecewise(&segments, CountModel::Poisson)
    }
}

/// Serializable description of an arrival process (sweep configs, JSON
/// results).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Exactly `count` i.i.d.-uniform calls (the paper's burst).
    Uniform {
        /// Exact call count.
        count: usize,
    },
    /// Homogeneous Poisson at `rate` calls/second.
    Poisson {
        /// Arrival rate, calls/second.
        rate: f64,
    },
    /// Two-state on-off MMPP.
    Mmpp {
        /// On-state rate, calls/second.
        rate_on: f64,
        /// Off-state rate, calls/second.
        rate_off: f64,
        /// Mean on sojourn, seconds.
        mean_on_secs: f64,
        /// Mean off sojourn, seconds.
        mean_off_secs: f64,
    },
    /// Piecewise diurnal curve averaging `mean_rate` calls/second.
    Diurnal {
        /// Window-average rate, calls/second.
        mean_rate: f64,
        /// Relative per-segment rates.
        weights: Vec<f64>,
    },
}

impl ArrivalSpec {
    /// Instantiate the process this spec describes.
    pub fn process(&self) -> Box<dyn ArrivalProcess> {
        match self {
            ArrivalSpec::Uniform { count } => Box::new(UniformBurst { count: *count }),
            ArrivalSpec::Poisson { rate } => Box::new(PoissonArrivals { rate: *rate }),
            ArrivalSpec::Mmpp {
                rate_on,
                rate_off,
                mean_on_secs,
                mean_off_secs,
            } => Box::new(MmppArrivals {
                rate_on: *rate_on,
                rate_off: *rate_off,
                mean_on_secs: *mean_on_secs,
                mean_off_secs: *mean_off_secs,
            }),
            ArrivalSpec::Diurnal { mean_rate, weights } => Box::new(DiurnalArrivals {
                mean_rate: *mean_rate,
                weights: weights.clone(),
            }),
        }
    }

    /// Short label for report tables.
    pub fn label(&self) -> String {
        self.process().label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profile_is_flat_and_fixed() {
        let p = UniformBurst { count: 660 }.realize(60.0, &mut Xoshiro256::seed_from_u64(1));
        assert_eq!(p.window_secs(), 60.0);
        assert!((p.mass() - 660.0).abs() < 1e-9);
        assert_eq!(p.sample_count(&mut Xoshiro256::seed_from_u64(2)), 660);
    }

    #[test]
    fn flat_inv_cdf_matches_legacy_arithmetic() {
        // Bit-for-bit contract with the pre-subsystem generators:
        // inv_cdf(u) == u * window exactly.
        let p = UniformBurst { count: 10 }.realize(60.0, &mut Xoshiro256::seed_from_u64(1));
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.next_f64();
            assert_eq!(p.inv_cdf(u).to_bits(), (u * 60.0).to_bits());
        }
    }

    #[test]
    fn poisson_count_tracks_mean() {
        let p = PoissonArrivals { rate: 11.0 }.realize(60.0, &mut Xoshiro256::seed_from_u64(1));
        let mut rng = Xoshiro256::seed_from_u64(4);
        let samples = 400;
        let mean: f64 = (0..samples)
            .map(|_| p.sample_count(&mut rng) as f64)
            .sum::<f64>()
            / samples as f64;
        // mean 660, sd ~25.7; the sample mean has sd ~1.3 — 5 sigma slack.
        assert!((mean - 660.0).abs() < 7.0, "sample mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_tail_sanely() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mean = 1_000_000.0;
        for _ in 0..50 {
            let n = sample_poisson(mean, &mut rng) as f64;
            assert!((n - mean).abs() < 6.0 * mean.sqrt(), "sample {n}");
        }
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn mmpp_profile_covers_window_with_both_rates() {
        let mmpp = MmppArrivals {
            rate_on: 20.0,
            rate_off: 2.0,
            mean_on_secs: 5.0,
            mean_off_secs: 5.0,
        };
        let p = mmpp.realize(600.0, &mut Xoshiro256::seed_from_u64(7));
        assert_eq!(p.window_secs(), 600.0);
        // Long window: realized mass should be near the stationary mean.
        let expected = mmpp.mean_rate() * 600.0;
        assert!(
            (p.mass() - expected).abs() / expected < 0.5,
            "mass {} vs {}",
            p.mass(),
            expected
        );
    }

    #[test]
    fn mmpp_is_deterministic_given_stream() {
        let mmpp = MmppArrivals {
            rate_on: 10.0,
            rate_off: 1.0,
            mean_on_secs: 3.0,
            mean_off_secs: 9.0,
        };
        let a = mmpp.realize(60.0, &mut Xoshiro256::seed_from_u64(8));
        let b = mmpp.realize(60.0, &mut Xoshiro256::seed_from_u64(8));
        assert_eq!(a, b);
    }

    #[test]
    fn diurnal_mass_matches_mean_rate() {
        let d = DiurnalArrivals::day_shape(11.0);
        let p = d.realize(60.0, &mut Xoshiro256::seed_from_u64(9));
        assert!((p.mass() - 11.0 * 60.0).abs() < 1e-6, "mass {}", p.mass());
    }

    #[test]
    fn inv_cdf_is_monotone_and_in_window() {
        let d = DiurnalArrivals::day_shape(5.0);
        let p = d.realize(60.0, &mut Xoshiro256::seed_from_u64(10));
        let mut prev = -1.0;
        for i in 0..=1000 {
            let u = i as f64 / 1001.0;
            let x = p.inv_cdf(u);
            assert!((0.0..60.0).contains(&x), "offset {x}");
            assert!(x >= prev, "monotone inversion");
            prev = x;
        }
    }

    #[test]
    fn inv_cdf_respects_segment_density() {
        // Two segments, all mass in the second half.
        let p = IntensityProfile::piecewise(&[(30.0, 0.0), (30.0, 10.0)], CountModel::Poisson);
        assert!(
            p.inv_cdf(0.01) >= 30.0,
            "low quantile lands in live segment"
        );
        assert!(p.inv_cdf(0.99) < 60.0);
    }

    #[test]
    fn spec_round_trips_to_process_labels() {
        let specs = [
            ArrivalSpec::Uniform { count: 5 },
            ArrivalSpec::Poisson { rate: 1.0 },
            ArrivalSpec::Mmpp {
                rate_on: 2.0,
                rate_off: 0.5,
                mean_on_secs: 1.0,
                mean_off_secs: 1.0,
            },
            ArrivalSpec::Diurnal {
                mean_rate: 1.0,
                weights: vec![1.0, 2.0],
            },
        ];
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["uniform", "poisson", "mmpp", "diurnal"]);
    }
}
