//! The SeBS function catalogue.
//!
//! The paper evaluates with the SeBS serverless benchmark suite (Copik et
//! al., Middleware 2021), using all functions except the Node.js variants and
//! the network micro-benchmarks — eleven functions in total. Table I of the
//! paper publishes the client-side response-time quantiles of each function
//! measured on an idle node, *including* about 10 ms of Kafka/controller
//! overhead.
//!
//! From those published numbers we derive each function's *processing-time*
//! distribution: subtract the constant network overhead from the quantiles
//! and fit a log-normal (see `faas_simcore::dist`). The 11 medians average
//! ~1.042 s, which is exactly the figure the paper uses to convert intensity
//! into CPU utilization (§V-B), so scenario arithmetic carries over.

use faas_simcore::dist::LogNormal;
use faas_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Round-trip client-to-container network/queueing overhead baked into the
/// Table I measurements ("The measurements include ca. 10 ms Kafka
/// overhead").
pub const NETWORK_OVERHEAD_MS: f64 = 10.0;

/// Index of a function in the [`Catalogue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FuncId(pub u16);

impl FuncId {
    /// Usable as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether a function mostly burns CPU or mostly waits on I/O.
///
/// §IV-A: "As in the SeBS benchmark we find both CPU- and I/O-intensive
/// functions, we will verify the impact of that experimentally." The class
/// determines how much of the processing time contends for CPU under the
/// baseline's shared-core regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntensityClass {
    /// Dominated by computation; slows down proportionally under CPU sharing.
    Cpu,
    /// Dominated by I/O, network or sleep; nearly immune to CPU contention.
    Io,
    /// A significant mix of both.
    Mixed,
}

/// Static description of one benchmark function.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FunctionSpec {
    /// SeBS benchmark name.
    pub name: &'static str,
    /// 5th percentile of the idle-system client response time, milliseconds
    /// (Table I).
    pub client_p5_ms: f64,
    /// Median idle-system client response time, milliseconds (Table I).
    /// This is the denominator the paper uses for stretch.
    pub client_median_ms: f64,
    /// 95th percentile of the idle-system client response time, milliseconds
    /// (Table I).
    pub client_p95_ms: f64,
    /// Fraction of the processing time that is CPU work (the rest is I/O
    /// wall time that does not contend for cores).
    pub cpu_fraction: f64,
    /// Container memory limit, MiB (OpenWhisk default allocation).
    pub memory_mb: u32,
    /// Intensity class, for reporting.
    pub class: IntensityClass,
}

impl FunctionSpec {
    /// Median *processing* time (client median minus network overhead),
    /// floored at 1 ms — the graph functions complete in about 2 ms of real
    /// work.
    pub fn processing_median_ms(&self) -> f64 {
        (self.client_median_ms - NETWORK_OVERHEAD_MS).max(1.0)
    }

    /// Log-normal processing-time distribution, seconds, fitted to the
    /// Table I quantiles after removing the constant network overhead.
    pub fn service_dist(&self) -> LogNormal {
        let p5 = (self.client_p5_ms - NETWORK_OVERHEAD_MS).max(0.5) / 1000.0;
        let med = self.processing_median_ms() / 1000.0;
        let p95 = ((self.client_p95_ms - NETWORK_OVERHEAD_MS).max(1.0) / 1000.0).max(med);
        let p5 = p5.min(med);
        LogNormal::from_quantile_triple(p5, med, p95)
    }

    /// The stretch denominator the paper uses: the median idle-system
    /// *client* response time (§V-A; this is why stretch can be below 1).
    pub fn stretch_reference(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.client_median_ms / 1000.0)
    }
}

/// The set of functions deployed on the node.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Catalogue {
    functions: Vec<FunctionSpec>,
}

impl Catalogue {
    /// The eleven SeBS functions of Table I.
    pub fn sebs() -> Catalogue {
        // Quantiles straight from Table I (ms). CPU fractions follow the
        // nature of each benchmark: dna-visualisation/compression/
        // video-processing/graph-* are computational; sleep is pure wait;
        // uploader and thumbnailer move bytes to/from object storage;
        // image-recognition mixes model I/O with inference.
        let functions = vec![
            FunctionSpec {
                name: "dna-visualisation",
                client_p5_ms: 8415.0,
                client_median_ms: 8552.0,
                client_p95_ms: 8847.0,
                cpu_fraction: 0.95,
                memory_mb: 256,
                class: IntensityClass::Cpu,
            },
            FunctionSpec {
                name: "sleep",
                client_p5_ms: 1020.0,
                client_median_ms: 1022.0,
                client_p95_ms: 1026.0,
                cpu_fraction: 0.02,
                memory_mb: 256,
                class: IntensityClass::Io,
            },
            FunctionSpec {
                name: "compression",
                client_p5_ms: 793.0,
                client_median_ms: 807.0,
                client_p95_ms: 832.0,
                cpu_fraction: 0.90,
                memory_mb: 256,
                class: IntensityClass::Cpu,
            },
            FunctionSpec {
                name: "video-processing",
                client_p5_ms: 586.0,
                client_median_ms: 593.0,
                client_p95_ms: 605.0,
                cpu_fraction: 0.90,
                memory_mb: 256,
                class: IntensityClass::Cpu,
            },
            FunctionSpec {
                name: "uploader",
                client_p5_ms: 184.0,
                client_median_ms: 192.0,
                client_p95_ms: 405.0,
                cpu_fraction: 0.25,
                memory_mb: 256,
                class: IntensityClass::Io,
            },
            FunctionSpec {
                name: "image-recognition",
                client_p5_ms: 117.0,
                client_median_ms: 121.0,
                client_p95_ms: 237.0,
                cpu_fraction: 0.70,
                memory_mb: 256,
                class: IntensityClass::Mixed,
            },
            FunctionSpec {
                name: "thumbnailer",
                client_p5_ms: 112.0,
                client_median_ms: 118.0,
                client_p95_ms: 124.0,
                cpu_fraction: 0.50,
                memory_mb: 256,
                class: IntensityClass::Mixed,
            },
            FunctionSpec {
                name: "dynamic-html",
                client_p5_ms: 18.0,
                client_median_ms: 19.0,
                client_p95_ms: 22.0,
                cpu_fraction: 0.80,
                memory_mb: 256,
                class: IntensityClass::Cpu,
            },
            FunctionSpec {
                name: "graph-pagerank",
                client_p5_ms: 11.0,
                client_median_ms: 12.0,
                client_p95_ms: 15.0,
                cpu_fraction: 0.85,
                memory_mb: 256,
                class: IntensityClass::Cpu,
            },
            FunctionSpec {
                name: "graph-bfs",
                client_p5_ms: 11.0,
                client_median_ms: 12.0,
                client_p95_ms: 13.0,
                cpu_fraction: 0.85,
                memory_mb: 256,
                class: IntensityClass::Cpu,
            },
            FunctionSpec {
                name: "graph-mst",
                client_p5_ms: 11.0,
                client_median_ms: 12.0,
                client_p95_ms: 13.0,
                cpu_fraction: 0.85,
                memory_mb: 256,
                class: IntensityClass::Cpu,
            },
        ];
        Catalogue { functions }
    }

    /// Build a catalogue from an explicit function list (used by tests and
    /// ablation experiments).
    pub fn from_functions(functions: Vec<FunctionSpec>) -> Catalogue {
        assert!(!functions.is_empty(), "catalogue must not be empty");
        Catalogue { functions }
    }

    /// Number of functions (the paper's `n_f`).
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True if the catalogue is empty (never for the built-in SeBS set).
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Look up a function by id.
    pub fn spec(&self, id: FuncId) -> &FunctionSpec {
        &self.functions[id.index()]
    }

    /// Iterate `(id, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &FunctionSpec)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u16), f))
    }

    /// All function ids.
    pub fn ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.functions.len()).map(|i| FuncId(i as u16))
    }

    /// Find a function by name.
    pub fn by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u16))
    }

    /// Mean of the client-side median response times across functions,
    /// seconds. The paper quotes ~1.042 s for the SeBS set and uses it to
    /// translate intensity into utilization (§V-B).
    pub fn mean_of_client_medians_secs(&self) -> f64 {
        let sum: f64 = self.functions.iter().map(|f| f.client_median_ms).sum();
        sum / self.functions.len() as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_simcore::dist::Sampler;
    use faas_simcore::rng::Xoshiro256;

    #[test]
    fn catalogue_has_eleven_functions() {
        let cat = Catalogue::sebs();
        assert_eq!(cat.len(), 11);
        assert!(!cat.is_empty());
    }

    #[test]
    fn mean_of_medians_matches_paper() {
        // §V-B: "The average response time for the function selected
        // uniformly from Table I is ~1.042s."
        let cat = Catalogue::sebs();
        let mean = cat.mean_of_client_medians_secs();
        assert!(
            (mean - 1.042).abs() < 0.002,
            "mean of medians {mean} should be ~1.042s"
        );
    }

    #[test]
    fn quantiles_are_ordered() {
        for (_, f) in Catalogue::sebs().iter() {
            assert!(
                f.client_p5_ms <= f.client_median_ms && f.client_median_ms <= f.client_p95_ms,
                "{} has disordered quantiles",
                f.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        let cat = Catalogue::sebs();
        let dna = cat.by_name("dna-visualisation").unwrap();
        assert_eq!(cat.spec(dna).name, "dna-visualisation");
        assert_eq!(cat.by_name("graph-bfs").map(|f| f.index()), Some(9));
        assert!(cat.by_name("nonexistent").is_none());
    }

    #[test]
    fn processing_median_subtracts_overhead() {
        let cat = Catalogue::sebs();
        let sleep = cat.spec(cat.by_name("sleep").unwrap());
        assert!((sleep.processing_median_ms() - 1012.0).abs() < 1e-9);
        // Tiny functions floor at 1 ms rather than going to ~2ms-10ms=negative.
        let bfs = cat.spec(cat.by_name("graph-bfs").unwrap());
        assert!(bfs.processing_median_ms() >= 1.0);
    }

    #[test]
    fn service_dist_median_tracks_processing_median() {
        let cat = Catalogue::sebs();
        for (_, f) in cat.iter() {
            let dist = f.service_dist();
            let expected = f.processing_median_ms() / 1000.0;
            assert!(
                (dist.median() - expected).abs() / expected < 1e-9,
                "{}: dist median {} vs expected {}",
                f.name,
                dist.median(),
                expected
            );
        }
    }

    #[test]
    fn service_samples_are_positive_and_plausible() {
        let cat = Catalogue::sebs();
        let mut rng = Xoshiro256::seed_from_u64(1);
        for (_, f) in cat.iter() {
            let dist = f.service_dist();
            for _ in 0..200 {
                let s = dist.sample(&mut rng);
                assert!(s > 0.0, "{} sampled non-positive time", f.name);
                assert!(s < 60.0, "{} sampled implausibly long time {s}", f.name);
            }
        }
    }

    #[test]
    fn stretch_reference_is_client_median() {
        let cat = Catalogue::sebs();
        let dna = cat.spec(cat.by_name("dna-visualisation").unwrap());
        assert_eq!(dna.stretch_reference(), SimDuration::from_millis(8552));
    }

    #[test]
    fn cpu_fractions_in_unit_interval() {
        for (_, f) in Catalogue::sebs().iter() {
            assert!((0.0..=1.0).contains(&f.cpu_fraction), "{}", f.name);
        }
    }

    #[test]
    fn sleep_is_io_dna_is_cpu() {
        let cat = Catalogue::sebs();
        let sleep = cat.spec(cat.by_name("sleep").unwrap());
        assert_eq!(sleep.class, IntensityClass::Io);
        assert!(sleep.cpu_fraction < 0.1);
        let dna = cat.spec(cat.by_name("dna-visualisation").unwrap());
        assert_eq!(dna.class, IntensityClass::Cpu);
        assert!(dna.cpu_fraction > 0.9);
    }

    #[test]
    fn ids_and_iter_agree() {
        let cat = Catalogue::sebs();
        let ids: Vec<FuncId> = cat.ids().collect();
        let iter_ids: Vec<FuncId> = cat.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, iter_ids);
        assert_eq!(ids.len(), 11);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_catalogue_rejected() {
        Catalogue::from_functions(vec![]);
    }
}
