//! Pin the legacy cluster entry points to their pre-refactor behaviour.
//!
//! The step-API refactor rebuilt both node simulators around resumable
//! `advance_to` loops and turned `simulate_*` into thin wrappers. These
//! digests were captured from the pre-refactor engines; any drift in event
//! ordering, RNG stream use or accounting shows up as a digest mismatch
//! long before a statistical test would notice.

use faas_cluster::{
    run_cluster, run_cluster_streamed, run_cluster_streamed_coupled, run_cluster_streamed_faulted,
    ClusterConfig, ClusterScenario, LoadBalancer,
};
use faas_core::{Policy, SchedulerConfig};
use faas_invoker::{NodeConfig, NodeMode, NodeResult};
use faas_simcore::time::SimDuration;
use faas_workload::arrival::ArrivalSpec;
use faas_workload::faults::{DropReason, FaultSpec};
use faas_workload::mix::MixSpec;
use faas_workload::scenario::warmup_waves;
use faas_workload::sebs::Catalogue;
use faas_workload::trace::{CallKind, ColdStartKind};
use faas_workload::weight::WeightSpec;
use faas_workload::WorkloadSpec;

fn fnv1a(acc: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *acc = (*acc ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
}

/// FNV-1a over every field that the legacy engines produce: outcomes,
/// drops, fault stats, peaks and pool stats. Field order matters — this
/// must match the capture run exactly.
fn digest(r: &NodeResult) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for o in &r.outcomes {
        fnv1a(&mut acc, o.id.0);
        fnv1a(&mut acc, o.func.0 as u64);
        fnv1a(&mut acc, matches!(o.kind, CallKind::Measured) as u64);
        fnv1a(&mut acc, o.release.as_nanos());
        fnv1a(&mut acc, o.invoker_receive.as_nanos());
        fnv1a(&mut acc, o.exec_start.as_nanos());
        fnv1a(&mut acc, o.exec_end.as_nanos());
        fnv1a(&mut acc, o.completion.as_nanos());
        fnv1a(&mut acc, o.processing.as_nanos());
        let sk = match o.start_kind {
            ColdStartKind::Warm => 0u64,
            ColdStartKind::Prewarm => 1,
            ColdStartKind::Cold => 2,
        };
        fnv1a(&mut acc, sk);
        fnv1a(&mut acc, o.node as u64);
    }
    for d in &r.drops {
        fnv1a(&mut acc, d.id.0);
        fnv1a(&mut acc, d.func.0 as u64);
        fnv1a(&mut acc, d.release.as_nanos());
        fnv1a(&mut acc, d.node as u64);
        fnv1a(&mut acc, matches!(d.reason, DropReason::TimedOut) as u64);
        fnv1a(&mut acc, d.attempts as u64);
    }
    let fs = &r.fault_stats;
    for x in [
        fs.crashes,
        fs.capacity_events,
        fs.transient_failures,
        fs.crash_kills,
        fs.timeouts,
        fs.retries,
        fs.dropped,
    ] {
        fnv1a(&mut acc, x);
    }
    for x in [
        r.peak_queue as u64,
        r.peak_concurrency as u64,
        r.peak_events as u64,
        r.last_completion.as_nanos(),
        r.measured_pool_stats.warm_hits,
        r.measured_pool_stats.prewarm_hits,
        r.measured_pool_stats.cold_creates,
        r.measured_pool_stats.evictions,
        r.total_pool_stats.warm_hits,
        r.total_pool_stats.cold_creates,
    ] {
        fnv1a(&mut acc, x);
    }
    acc
}

fn spec(count: usize) -> WorkloadSpec {
    WorkloadSpec {
        arrival: ArrivalSpec::Uniform { count },
        mix: MixSpec::Equal,
        weights: WeightSpec::Uniform,
        window: SimDuration::from_secs(60),
    }
}

/// Digests captured from the pre-refactor engines (commit f565ac7); see
/// each run below for the configuration behind a value.
const PINNED: [u64; 6] = [
    14642674751337349946,
    15214209751175753215,
    16958703615627671419,
    2236528332478866575,
    12442433899240915259,
    7411778174491961696,
];

#[test]
fn legacy_entry_points_match_their_pre_refactor_digests() {
    let cat = Catalogue::sebs();
    let fc = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
    let rr3 = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin);
    let rr1 = ClusterConfig { nodes: 1, ..rr3 };
    let fh2 = ClusterConfig::independent(2, NodeConfig::paper(10), LoadBalancer::FunctionHash);

    let d1 = digest(&run_cluster_streamed(
        &cat,
        &spec(132),
        &NodeMode::Baseline,
        &rr3,
        1,
        2,
    ));
    let d2 = digest(&run_cluster_streamed(&cat, &spec(132), &fc, &rr3, 1, 2));
    let sc = ClusterScenario::generate(&cat, 12, 10, SimDuration::from_secs(60), 2);
    let d3 = digest(&run_cluster(&cat, &sc, &NodeMode::Baseline, &fh2, 3));
    let (_, burst_start) = warmup_waves(&cat);
    let mut faults = FaultSpec::crash_restart(21, burst_start, SimDuration::from_secs(60));
    faults.transient_failure = 0.05;
    let d4 = digest(&run_cluster_streamed_faulted(
        &cat,
        &spec(660),
        &fc,
        &rr3,
        &faults,
        21,
        22,
    ));
    let d5 = digest(&run_cluster_streamed_faulted(
        &cat,
        &spec(660),
        &NodeMode::Baseline,
        &rr3,
        &faults,
        21,
        22,
    ));
    let d6 = digest(&run_cluster_streamed(&cat, &spec(66), &fc, &rr1, 5, 6));
    assert_eq!([d1, d2, d3, d4, d5, d6], PINNED);
}

#[test]
fn coupled_engine_hits_the_same_digests_under_static_infinite_windows() {
    // The coupled engine with a static policy and `lookahead = MAX` is the
    // independent engine: it must land on the very same pinned digests.
    let cat = Catalogue::sebs();
    let fc = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
    let rr3 = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin);
    let none = FaultSpec::none();
    let d1 = digest(&run_cluster_streamed_coupled(
        &cat,
        &spec(132),
        &NodeMode::Baseline,
        &rr3,
        &none,
        1,
        2,
    ));
    let d2 = digest(&run_cluster_streamed_coupled(
        &cat,
        &spec(132),
        &fc,
        &rr3,
        &none,
        1,
        2,
    ));
    let (_, burst_start) = warmup_waves(&cat);
    let mut faults = FaultSpec::crash_restart(21, burst_start, SimDuration::from_secs(60));
    faults.transient_failure = 0.05;
    let d4 = digest(&run_cluster_streamed_coupled(
        &cat,
        &spec(660),
        &fc,
        &rr3,
        &faults,
        21,
        22,
    ));
    assert_eq!([d1, d2, d4], [PINNED[0], PINNED[1], PINNED[3]]);
}
