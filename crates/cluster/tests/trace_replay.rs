//! Integration tests of cluster-level trace replay: rerun identity,
//! thread-count invariance, ingestion-window invariance, and the
//! bounded-working-set contract, on both the independent and the coupled
//! trace engines.

use faas_cluster::{
    run_cluster_trace_coupled, run_cluster_trace_streamed, ClusterConfig, LoadBalancer,
};
use faas_core::{Policy, SchedulerConfig};
use faas_invoker::{NodeConfig, NodeMode, NodeResult};
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::faults::FaultSpec;
use faas_workload::sebs::Catalogue;
use faas_workload::synth::{SynthSpec, SyntheticTrace};
use faas_workload::trace_source::TraceSource;
use proptest::prelude::*;

fn trace(catalogue: &Catalogue, rate: f64, secs: u64, seed: u64) -> SyntheticTrace {
    SyntheticTrace::new(
        &SynthSpec::azure(rate, SimDuration::from_secs(secs)),
        catalogue,
        SimTime::ZERO,
        seed,
    )
}

fn fc_mode() -> NodeMode {
    NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice))
}

/// Every outcome-visible field the replay engines produce.
fn assert_same_result(a: &NodeResult, b: &NodeResult) {
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.drops, b.drops);
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.peak_events, b.peak_events);
    assert_eq!(a.peak_resident_calls, b.peak_resident_calls);
}

#[test]
fn streamed_replay_is_thread_invariant() {
    let cat = Catalogue::sebs();
    let t = trace(&cat, 8.0, 60, 0x7A11);
    let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin);
    let parallel =
        run_cluster_trace_streamed(&cat, &t, &fc_mode(), &cfg, &FaultSpec::none(), 5, 64);
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_cluster_trace_streamed(&cat, &t, &fc_mode(), &cfg, &FaultSpec::none(), 5, 64);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_same_result(&parallel, &serial);
    assert_eq!(parallel.outcomes.len() as u64, t.len());
}

#[test]
fn coupled_replay_is_thread_invariant() {
    let cat = Catalogue::sebs();
    let t = trace(&cat, 8.0, 60, 0x7A12);
    let cfg = ClusterConfig::independent(
        3,
        NodeConfig::paper(10),
        LoadBalancer::JoinShortestQueue { seed: 7 },
    )
    .coupled(SimDuration::from_millis(500), false);
    let parallel = run_cluster_trace_coupled(&cat, &t, &fc_mode(), &cfg, &FaultSpec::none(), 5, 64);
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_cluster_trace_coupled(&cat, &t, &fc_mode(), &cfg, &FaultSpec::none(), 5, 64);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_same_result(&parallel, &serial);
    assert_eq!(parallel.outcomes.len() as u64, t.len());
}

proptest! {
    // Each case replays a few hundred calls through a full cluster sim;
    // keep the case count in the tens.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ingestion window is invisible: any chunk size produces the
    /// same outcomes as paging a node's whole shard at once, every call
    /// is served exactly once, and the working set stays within
    /// chunk × nodes.
    #[test]
    fn replay_is_window_invariant_and_conserves_calls(
        seed in any::<u64>(),
        chunk in 1usize..200,
        nodes in 1u16..5
    ) {
        let cat = Catalogue::sebs();
        let t = trace(&cat, 6.0, 30, seed);
        let cfg = ClusterConfig::independent(
            nodes,
            NodeConfig::paper(10),
            LoadBalancer::RoundRobin,
        );
        let windowed =
            run_cluster_trace_streamed(&cat, &t, &fc_mode(), &cfg, &FaultSpec::none(), 5, chunk);
        let whole = run_cluster_trace_streamed(
            &cat,
            &t,
            &fc_mode(),
            &cfg,
            &FaultSpec::none(),
            5,
            t.len().max(1) as usize,
        );
        prop_assert_eq!(&windowed.outcomes, &whole.outcomes);
        let mut ids: Vec<u64> = windowed.outcomes.iter().map(|o| o.id.0).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..t.len()).collect::<Vec<u64>>());
        prop_assert!(
            windowed.peak_resident_calls <= (chunk as u64) * nodes as u64,
            "working set {} vs bound {}",
            windowed.peak_resident_calls,
            chunk * nodes as usize
        );
    }
}
