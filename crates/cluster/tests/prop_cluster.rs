//! Property tests of the cluster layer.

use faas_cluster::{FeedbackRouter, LoadBalancer, NodeView};
use faas_simcore::time::SimTime;
use faas_workload::sebs::FuncId;
use faas_workload::trace::{Call, CallId, CallKind};
use proptest::prelude::*;

fn calls(n: usize, funcs: u16) -> Vec<Call> {
    (0..n)
        .map(|i| Call {
            id: CallId(i as u64),
            func: FuncId((i as u16) % funcs),
            release: SimTime::from_millis(i as u64),
            kind: CallKind::Measured,
        })
        .collect()
}

proptest! {
    /// Both balancers produce a total assignment onto valid nodes, and
    /// per-node loads are near-balanced.
    #[test]
    fn balancers_partition_evenly(
        n in 1usize..500,
        nodes in 1u16..9,
        funcs in 1u16..12
    ) {
        let cs = calls(n, funcs);
        for lb in [LoadBalancer::RoundRobin, LoadBalancer::FunctionHash] {
            let assign = lb.assign(&cs, nodes);
            prop_assert_eq!(assign.len(), n);
            let mut counts = vec![0usize; nodes as usize];
            for &a in &assign {
                prop_assert!(a < nodes);
                counts[a as usize] += 1;
            }
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            // Round-robin is perfectly balanced; function-hash is balanced
            // up to one call per function.
            let slack = match lb {
                LoadBalancer::RoundRobin => 1,
                LoadBalancer::FunctionHash => funcs as usize,
                LoadBalancer::JoinShortestQueue { .. }
                | LoadBalancer::PowerOfTwoChoices { .. }
                | LoadBalancer::JoinShortestDominant { .. }
                | LoadBalancer::PowerOfTwoDominant { .. } => {
                    unreachable!("feedback policies have no static assignment")
                }
            };
            prop_assert!(max - min <= slack, "{lb:?}: {counts:?}");
        }
    }

    /// Assignment is deterministic (pure function of the call list).
    #[test]
    fn assignment_is_pure(n in 1usize..200, nodes in 1u16..5) {
        let cs = calls(n, 11);
        for lb in [LoadBalancer::RoundRobin, LoadBalancer::FunctionHash] {
            prop_assert_eq!(lb.assign(&cs, nodes), lb.assign(&cs, nodes));
        }
    }
}

fn feedback_policies(seed: u64) -> [LoadBalancer; 4] {
    [
        LoadBalancer::JoinShortestQueue { seed },
        LoadBalancer::PowerOfTwoChoices { seed },
        LoadBalancer::JoinShortestDominant { seed },
        LoadBalancer::PowerOfTwoDominant { seed },
    ]
}

/// A pseudo-random but deterministic view sequence for the router to react
/// to (the proptest inputs seed it).
fn view_sequence(len: usize, nodes: usize, salt: u64) -> Vec<Vec<NodeView>> {
    (0..len)
        .map(|i| {
            (0..nodes)
                .map(|n| {
                    let h =
                        (salt ^ (i as u64) << 17 ^ n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    NodeView {
                        backlog: (h >> 32) as usize % 7,
                        // Keep at least node 0 alive so routing stays defined.
                        alive: n == 0 || h & 0xFF > 40,
                        // Span idle through transiently oversubscribed so
                        // the dominant-share policies see real variation.
                        dominant_milli: ((h >> 16) % 1300) as u32,
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    /// Feedback routing is a pure function of (policy seed, decision
    /// index, views): two routers fed the same sequence agree decision by
    /// decision.
    #[test]
    fn feedback_routing_reruns_identically(
        len in 1usize..300,
        nodes in 1usize..8,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let views = view_sequence(len, nodes, salt);
        for lb in feedback_policies(seed) {
            let mut a = FeedbackRouter::new(lb);
            let mut b = FeedbackRouter::new(lb);
            for v in &views {
                prop_assert_eq!(a.route(v), b.route(v));
            }
        }
    }

    /// Decisions are keyed by the decision counter, not by a shared RNG
    /// stream, so any partition of the sequence reproduces the unsharded
    /// run: a router cloned mid-stream continues bit-identically, wherever
    /// the split lands (chunk) and however the halves interleave (stride —
    /// both clones advance independently yet agree with the reference).
    #[test]
    fn feedback_routing_is_partition_invariant(
        len in 2usize..300,
        nodes in 1usize..8,
        split_frac in 0.0f64..1.0,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let views = view_sequence(len, nodes, salt);
        let split = ((len as f64 * split_frac) as usize).min(len - 1);
        for lb in feedback_policies(seed) {
            let mut whole = FeedbackRouter::new(lb);
            let reference: Vec<u16> = views.iter().map(|v| whole.route(v)).collect();

            let mut first = FeedbackRouter::new(lb);
            for v in &views[..split] {
                first.route(v);
            }
            let mut second = first.clone();
            let tail_a: Vec<u16> = views[split..].iter().map(|v| first.route(v)).collect();
            let tail_b: Vec<u16> = views[split..].iter().map(|v| second.route(v)).collect();
            prop_assert_eq!(&tail_a, &reference[split..]);
            prop_assert_eq!(&tail_b, &reference[split..]);
        }
    }

    /// Routing never lands on a dead node while any node is alive.
    #[test]
    fn feedback_routing_respects_liveness(
        len in 1usize..300,
        nodes in 1usize..8,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let views = view_sequence(len, nodes, salt);
        for lb in feedback_policies(seed) {
            let mut router = FeedbackRouter::new(lb);
            for v in &views {
                let choice = router.route(v) as usize;
                prop_assert!(choice < nodes);
                prop_assert!(v[choice].alive);
            }
        }
    }

    /// Tie-breaking is fair: with every node equally loaded, the seeded
    /// draw spreads decisions across the cluster with bounded imbalance
    /// (no node starves, no node hoards).
    #[test]
    fn feedback_tie_breaking_has_bounded_imbalance(
        nodes in 2usize..8,
        seed in any::<u64>(),
    ) {
        let rounds = 2048usize;
        let flat = vec![NodeView { backlog: 3, alive: true, dominant_milli: 250 }; nodes];
        for lb in feedback_policies(seed) {
            let mut router = FeedbackRouter::new(lb);
            let mut counts = vec![0usize; nodes];
            for _ in 0..rounds {
                counts[router.route(&flat) as usize] += 1;
            }
            let expect = rounds / nodes;
            for (n, &c) in counts.iter().enumerate() {
                prop_assert!(
                    c > expect / 2 && c < expect * 2,
                    "{lb:?}: node {n} got {c} of {rounds} over {nodes} nodes"
                );
            }
        }
    }
}
