//! Property tests of the cluster layer.

use faas_cluster::LoadBalancer;
use faas_simcore::time::SimTime;
use faas_workload::sebs::FuncId;
use faas_workload::trace::{Call, CallId, CallKind};
use proptest::prelude::*;

fn calls(n: usize, funcs: u16) -> Vec<Call> {
    (0..n)
        .map(|i| Call {
            id: CallId(i as u32),
            func: FuncId((i as u16) % funcs),
            release: SimTime::from_millis(i as u64),
            kind: CallKind::Measured,
        })
        .collect()
}

proptest! {
    /// Both balancers produce a total assignment onto valid nodes, and
    /// per-node loads are near-balanced.
    #[test]
    fn balancers_partition_evenly(
        n in 1usize..500,
        nodes in 1u16..9,
        funcs in 1u16..12
    ) {
        let cs = calls(n, funcs);
        for lb in [LoadBalancer::RoundRobin, LoadBalancer::FunctionHash] {
            let assign = lb.assign(&cs, nodes);
            prop_assert_eq!(assign.len(), n);
            let mut counts = vec![0usize; nodes as usize];
            for &a in &assign {
                prop_assert!(a < nodes);
                counts[a as usize] += 1;
            }
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            // Round-robin is perfectly balanced; function-hash is balanced
            // up to one call per function.
            let slack = match lb {
                LoadBalancer::RoundRobin => 1,
                LoadBalancer::FunctionHash => funcs as usize,
            };
            prop_assert!(max - min <= slack, "{lb:?}: {counts:?}");
        }
    }

    /// Assignment is deterministic (pure function of the call list).
    #[test]
    fn assignment_is_pure(n in 1usize..200, nodes in 1u16..5) {
        let cs = calls(n, 11);
        for lb in [LoadBalancer::RoundRobin, LoadBalancer::FunctionHash] {
            prop_assert_eq!(lb.assign(&cs, nodes), lb.assign(&cs, nodes));
        }
    }
}
