//! Bounded-memory trace-replay cluster engines.
//!
//! The streamed engines of [`crate::sim`] and [`crate::coupled`] pull a
//! *generator* — calls that are cheap to rematerialize anywhere. These
//! engines pull a [`TraceSource`]: a fixed, release-ordered log addressed
//! by index ([`faas_workload::trace_source`]), which may be a recorded
//! file or a lazily-synthesized 10^8-call day. The contract they exploit
//! is the same in both cases: `call(i)` is pure in `(source, index)` and
//! `call(i).id == CallId(i)`, so any node can page any slice of the log
//! on demand.
//!
//! # Bounded memory
//!
//! No engine here ever materializes the trace. Ingestion runs through
//! windowed cursors: a node fills a buffer of at most `chunk` calls,
//! injects it, drains its simulator up to (just before) the next window's
//! first release, and refills. The largest number of calls resident in
//! these ingestion buffers is reported as
//! [`NodeResult::peak_resident_calls`] — the replay RSS proxy, bounded by
//! `chunk × nodes` however long the trace is. (Event-queue pressure is
//! what [`NodeResult::peak_events`] already tracks.)
//!
//! # No warm-up
//!
//! Trace runs inject no warm-up calls: a trace is the complete log of
//! what the cluster received — if the recorded system was warmed, the
//! warming calls are in the log.
//!
//! # Engine selection
//!
//! [`run_cluster_trace_streamed`] is the independent-node engine (static
//! policies only): round-robin strides the index space exactly as
//! [`crate::sim::run_cluster_streamed`] does, and function-hash has each
//! node replay the per-function rotation counters over a sequential scan
//! (an `O(len)` scan per node, the price of a routing that needs global
//! arrival order without materializing it). [`run_cluster_trace_coupled`]
//! is the conservative-window engine for feedback policies, finite
//! lookahead and cross-node failover — the window protocol of
//! [`crate::coupled`] verbatim, fed by a chunked read-ahead cursor
//! instead of a slice. [`run_cluster_source`] dispatches: any
//! [`WorkloadSource`] × any [`ClusterConfig`] lands on the right engine.

use crate::lb::{home_node, FeedbackRouter, LoadBalancer, NodeView};
use crate::sim::{node_seeds, ClusterConfig};
use faas_invoker::{Handoff, NodeMode, NodeProgress, NodeResult, NodeSim};
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::faults::FaultSpec;
use faas_workload::sebs::{Catalogue, FuncId};
use faas_workload::trace::Call;
use faas_workload::trace_source::{TraceSource, WorkloadSource};
use faas_workload::weight::WeightTable;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// One nanosecond before `t` (clamped at zero): the drain horizon between
/// ingestion windows. Draining to *just before* the next injected release
/// keeps every event at that release in the queue together, so windowing
/// never reorders same-timestamp work relative to a materialized run.
fn just_before(t: SimTime) -> SimTime {
    SimTime::from_nanos(t.as_nanos().saturating_sub(1))
}

/// Replay a trace on independent nodes (static load balancing only; the
/// feedback policies panic — route them through
/// [`run_cluster_trace_coupled`]). Each node pages its own share of the
/// log through a `chunk`-call ingestion window; see the module docs for
/// the memory bound. Bit-identical across reruns and thread counts.
pub fn run_cluster_trace_streamed(
    catalogue: &Catalogue,
    trace: &dyn TraceSource,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    faults: &FaultSpec,
    sim_seed: u64,
    chunk: usize,
) -> NodeResult {
    assert!(cfg.nodes > 0, "cluster needs at least one node");
    assert!(chunk > 0, "ingestion window must hold at least one call");
    let weights = WeightTable::uniform(catalogue.len());
    let seeds = node_seeds(sim_seed, cfg.nodes);
    let n = trace.len();

    match cfg.lb {
        LoadBalancer::RoundRobin => {
            // A call's id is its index, so its stride node is its
            // round-robin assignment: node k pages every `nodes`-th call.
            let results: Vec<NodeResult> = seeds
                .par_iter()
                .map(|&(node, node_seed)| {
                    let mut sim = NodeSim::new(
                        catalogue, mode, &cfg.node, &weights, faults, node_seed, node, false,
                    );
                    let mut buf: Vec<Call> = Vec::with_capacity(chunk.min(n as usize));
                    let mut peak = 0u64;
                    let mut next = node as u64;
                    while next < n {
                        buf.clear();
                        while buf.len() < chunk && next < n {
                            buf.push(trace.call(next));
                            next += cfg.nodes as u64;
                        }
                        peak = peak.max(buf.len() as u64);
                        sim.inject(&buf);
                        if next < n {
                            sim.advance_to(just_before(trace.call(next).release));
                        }
                    }
                    sim.advance_to(SimTime::MAX);
                    let mut r = sim.finish();
                    r.peak_resident_calls = peak;
                    r
                })
                .collect();
            NodeResult::merge(results)
        }
        LoadBalancer::FunctionHash => {
            // Per-function rotation needs the global arrival order, which
            // for a trace is just the index order: every node streams the
            // whole log (O(1) resident per scan position), replays the
            // rotation counters, and keeps its own calls.
            let results: Vec<NodeResult> = seeds
                .par_iter()
                .map(|&(node, node_seed)| {
                    let mut sim = NodeSim::new(
                        catalogue, mode, &cfg.node, &weights, faults, node_seed, node, false,
                    );
                    let mut counters: BTreeMap<FuncId, u64> = BTreeMap::new();
                    let mut buf: Vec<Call> = Vec::with_capacity(chunk.min(n as usize));
                    let mut peak = 0u64;
                    for call in trace.iter_chunk(0, n) {
                        let counter = counters.entry(call.func).or_insert(0);
                        let home = home_node(call.func, cfg.nodes) as u64;
                        let target = ((home + *counter) % cfg.nodes as u64) as u16;
                        *counter += 1;
                        if target != node {
                            continue;
                        }
                        buf.push(call);
                        if buf.len() >= chunk {
                            peak = peak.max(buf.len() as u64);
                            sim.inject(&buf);
                            let resume = just_before(call.release);
                            buf.clear();
                            sim.advance_to(resume);
                        }
                    }
                    if !buf.is_empty() {
                        peak = peak.max(buf.len() as u64);
                        sim.inject(&buf);
                    }
                    sim.advance_to(SimTime::MAX);
                    let mut r = sim.finish();
                    r.peak_resident_calls = peak;
                    r
                })
                .collect();
            NodeResult::merge(results)
        }
        LoadBalancer::JoinShortestQueue { .. }
        | LoadBalancer::PowerOfTwoChoices { .. }
        | LoadBalancer::JoinShortestDominant { .. }
        | LoadBalancer::PowerOfTwoDominant { .. } => {
            panic!("feedback policies need the coupled trace engine: run_cluster_trace_coupled")
        }
    }
}

/// A chunked read-ahead cursor over a trace: at most `chunk` calls
/// resident, refilled on demand, tracking its own peak residency.
struct TraceCursor<'a> {
    trace: &'a dyn TraceSource,
    next_index: u64,
    buf: std::collections::VecDeque<Call>,
    chunk: usize,
    peak_resident: u64,
}

impl<'a> TraceCursor<'a> {
    fn new(trace: &'a dyn TraceSource, chunk: usize) -> TraceCursor<'a> {
        assert!(chunk > 0, "ingestion window must hold at least one call");
        TraceCursor {
            trace,
            next_index: 0,
            buf: std::collections::VecDeque::with_capacity(chunk.min(trace.len() as usize)),
            chunk,
            peak_resident: 0,
        }
    }

    fn refill(&mut self) {
        if !self.buf.is_empty() {
            return;
        }
        let hi = (self.next_index + self.chunk as u64).min(self.trace.len());
        self.buf.extend(self.trace.iter_chunk(self.next_index, hi));
        self.next_index = hi;
        self.peak_resident = self.peak_resident.max(self.buf.len() as u64);
    }

    /// Release time of the next undelivered call, if any.
    fn peek_release(&mut self) -> Option<SimTime> {
        self.refill();
        self.buf.front().map(|c| c.release)
    }

    fn pop(&mut self) -> Option<Call> {
        self.refill();
        self.buf.pop_front()
    }
}

/// How the coupled trace engine routes one call, in index order.
enum TraceRouting {
    /// Round-robin: the call's id *is* its index, so `stride_node`.
    Stride,
    /// Function-hash rotation counters, advanced in routing order —
    /// identical to [`LoadBalancer::assign`] over the materialized log.
    Hash(BTreeMap<FuncId, u64>),
    /// Feedback policy routing on barrier snapshots.
    Feedback(FeedbackRouter),
}

/// Replay a trace on the conservative-window protocol of
/// [`crate::coupled`]: feedback load balancing, finite lookahead and
/// cross-node failover all compose with trace ingestion here. Arrivals
/// are paged through a single `chunk`-call read-ahead cursor (reported as
/// the merged result's [`NodeResult::peak_resident_calls`]); everything
/// else — routing staleness, handoff delivery, barrier order — matches
/// the materialized engine's window loop, so runs are bit-identical
/// across reruns and thread counts.
pub fn run_cluster_trace_coupled(
    catalogue: &Catalogue,
    trace: &dyn TraceSource,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    faults: &FaultSpec,
    sim_seed: u64,
    chunk: usize,
) -> NodeResult {
    assert!(cfg.nodes > 0, "cluster needs at least one node");
    assert!(
        !cfg.failover || cfg.lookahead < SimDuration::MAX,
        "failover handoffs are delivered at window barriers: a finite \
         lookahead is required"
    );
    let weights = WeightTable::uniform(catalogue.len());
    let seeds = node_seeds(sim_seed, cfg.nodes);
    let mut nodes: Vec<NodeSim> = seeds
        .iter()
        .map(|&(node, node_seed)| {
            NodeSim::new(
                catalogue,
                mode,
                &cfg.node,
                &weights,
                faults,
                node_seed,
                node,
                cfg.failover,
            )
        })
        .collect();

    let mut routing = match cfg.lb {
        LoadBalancer::RoundRobin => TraceRouting::Stride,
        LoadBalancer::FunctionHash => TraceRouting::Hash(BTreeMap::new()),
        LoadBalancer::JoinShortestQueue { .. }
        | LoadBalancer::PowerOfTwoChoices { .. }
        | LoadBalancer::JoinShortestDominant { .. }
        | LoadBalancer::PowerOfTwoDominant { .. } => {
            TraceRouting::Feedback(FeedbackRouter::new(cfg.lb))
        }
    };
    let mut views = vec![
        NodeView {
            backlog: 0,
            alive: true,
            dominant_milli: 0,
        };
        cfg.nodes as usize
    ];
    let mut batches: Vec<Vec<Call>> = vec![Vec::new(); cfg.nodes as usize];
    let mut cursor = TraceCursor::new(trace, chunk);
    let mut pending: Vec<Handoff> = Vec::new();
    let mut barrier = SimTime::ZERO;

    loop {
        // The earliest pending work anywhere bounds the next window.
        let mut t = nodes.iter().filter_map(|n| n.next_event_time()).min();
        if let Some(release) = cursor.peek_release() {
            t = Some(t.map_or(release, |t| t.min(release)));
        }
        if let Some(h) = pending.first() {
            t = Some(t.map_or(h.due, |t| t.min(h.due)));
        }
        let Some(t) = t else { break };
        let horizon = t + cfg.lookahead; // saturates at SimTime::MAX

        // 1. Route this window's arrivals in index (= release) order.
        while cursor.peek_release().is_some_and(|r| r <= horizon) {
            let call = cursor.pop().expect("peeked");
            let node = match &mut routing {
                TraceRouting::Stride => call.stride_node(cfg.nodes),
                TraceRouting::Hash(counters) => {
                    let counter = counters.entry(call.func).or_insert(0);
                    let home = home_node(call.func, cfg.nodes) as u64;
                    let node = ((home + *counter) % cfg.nodes as u64) as u16;
                    *counter += 1;
                    node
                }
                TraceRouting::Feedback(router) => router.route(&views),
            };
            views[node as usize].backlog += 1;
            batches[node as usize].push(call);
        }
        for (node, batch) in batches.iter_mut().enumerate() {
            if !batch.is_empty() {
                nodes[node].inject(batch);
                batch.clear();
            }
        }

        // 2. Deliver due handoffs, never earlier than the barrier they
        // were collected at.
        while pending.first().is_some_and(|h| h.due <= horizon) {
            let h = pending.remove(0);
            let target = failover_target(&views, h.from);
            views[target as usize].backlog += 1;
            nodes[target as usize].inject_handoff(&h, h.due.max(barrier));
        }

        // 3. Advance every node through the window in parallel.
        let progress: Vec<NodeProgress> = nodes
            .par_iter_mut()
            .map(|n| n.advance_to(horizon))
            .collect();
        for (v, p) in views.iter_mut().zip(&progress) {
            *v = NodeView {
                backlog: p.backlog(),
                alive: p.alive,
                dominant_milli: p.dominant_milli,
            };
        }

        // 4. Collect failover outboxes in node order.
        for n in nodes.iter_mut() {
            pending.extend(n.take_handoffs());
        }
        pending.sort_by_key(|h| (h.due, h.call.id));
        barrier = horizon;
    }

    assert!(
        cursor.peek_release().is_none(),
        "every trace call was routed"
    );
    assert!(pending.is_empty(), "every handoff was delivered");
    let mut merged = NodeResult::merge(nodes.into_iter().map(|n| n.finish()).collect());
    merged.peak_resident_calls = cursor.peak_resident;
    merged
}

/// Pick the failover target: least-loaded healthy node, lowest index on
/// ties, preferring nodes other than the one the attempt failed on (the
/// policy of [`crate::coupled`]).
fn failover_target(views: &[NodeView], from: u16) -> u16 {
    let pick = |pred: &dyn Fn(usize) -> bool| {
        (0..views.len())
            .filter(|&n| pred(n))
            .min_by_key(|&n| (views[n].backlog, n))
            .map(|n| n as u16)
    };
    pick(&|n| views[n].alive && n as u16 != from)
        .or_else(|| pick(&|n| views[n].alive))
        .or_else(|| pick(&|_| true))
        .expect("cluster needs at least one node")
}

/// Run any [`WorkloadSource`] under any [`ClusterConfig`]: the one entry
/// point the experiment layers call. Spec sources go to the existing
/// generator engines; trace sources are opened (synthetic traces start at
/// [`SimTime::ZERO`] and draw from `scenario_seed`) and replayed through
/// the bounded-memory engines above. Feedback policies, a finite
/// lookahead or failover select the coupled variant either way. `chunk`
/// sizes the trace ingestion windows (unused by spec sources). The only
/// fallible path is opening a recorded trace file.
#[allow(clippy::too_many_arguments)]
pub fn run_cluster_source(
    catalogue: &Catalogue,
    source: &WorkloadSource,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    faults: &FaultSpec,
    scenario_seed: u64,
    sim_seed: u64,
    chunk: usize,
) -> std::io::Result<NodeResult> {
    let coupled = cfg.lb.is_feedback() || cfg.lookahead < SimDuration::MAX || cfg.failover;
    match source {
        WorkloadSource::Spec(spec) => Ok(if coupled {
            crate::coupled::run_cluster_streamed_coupled(
                catalogue,
                spec,
                mode,
                cfg,
                faults,
                scenario_seed,
                sim_seed,
            )
        } else {
            crate::sim::run_cluster_streamed_faulted(
                catalogue,
                spec,
                mode,
                cfg,
                faults,
                scenario_seed,
                sim_seed,
            )
        }),
        WorkloadSource::Trace(tspec) => {
            let trace = tspec.open(catalogue, SimTime::ZERO, scenario_seed)?;
            Ok(if coupled {
                run_cluster_trace_coupled(
                    catalogue,
                    trace.as_ref(),
                    mode,
                    cfg,
                    faults,
                    sim_seed,
                    chunk,
                )
            } else {
                run_cluster_trace_streamed(
                    catalogue,
                    trace.as_ref(),
                    mode,
                    cfg,
                    faults,
                    sim_seed,
                    chunk,
                )
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_core::{Policy, SchedulerConfig};
    use faas_invoker::NodeConfig;
    use faas_simcore::time::SimDuration;
    use faas_workload::synth::{SynthSpec, SyntheticTrace};
    use faas_workload::trace_source::TraceSpec;

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    fn synth(mean_rate: f64, seed: u64) -> SyntheticTrace {
        SyntheticTrace::new(
            &SynthSpec::azure(mean_rate, SimDuration::from_secs(60)),
            &catalogue(),
            SimTime::ZERO,
            seed,
        )
    }

    fn node_map(r: &NodeResult) -> Vec<(u64, u16)> {
        let mut v: Vec<(u64, u16)> = r
            .outcomes
            .iter()
            .filter(|o| o.is_measured())
            .map(|o| (o.id.0, o.node))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn streamed_replay_serves_every_call_once_and_reruns_identically() {
        let cat = catalogue();
        let trace = synth(8.0, 3);
        let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let r = run_cluster_trace_streamed(&cat, &trace, &mode, &cfg, &FaultSpec::none(), 5, 64);
        let measured: Vec<_> = r.outcomes.iter().filter(|o| o.is_measured()).collect();
        assert_eq!(measured.len() as u64, trace.len());
        let mut ids: Vec<u64> = measured.iter().map(|o| o.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, trace.len(), "each call served once");
        assert!(measured.iter().all(|o| o.id.0 % 3 == o.node as u64));
        let again =
            run_cluster_trace_streamed(&cat, &trace, &mode, &cfg, &FaultSpec::none(), 5, 64);
        assert_eq!(r.outcomes, again.outcomes);
        assert_eq!(r.peak_resident_calls, again.peak_resident_calls);
    }

    #[test]
    fn ingestion_windows_do_not_change_the_replay() {
        // Draining to just-before each window's first release keeps the
        // event schedule identical whatever the chunking — one window per
        // call, 64-call windows and inject-everything all agree.
        let cat = catalogue();
        let trace = synth(6.0, 7);
        let cfg = ClusterConfig::independent(2, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let mode = NodeMode::Baseline;
        let run = |chunk: usize| {
            run_cluster_trace_streamed(&cat, &trace, &mode, &cfg, &FaultSpec::none(), 9, chunk)
        };
        let tiny = run(1);
        let medium = run(64);
        let whole = run(usize::MAX >> 8);
        assert_eq!(tiny.outcomes, medium.outcomes);
        assert_eq!(medium.outcomes, whole.outcomes);
    }

    #[test]
    fn function_hash_replay_matches_the_coupled_assignment() {
        // Both trace engines replay the identical per-function rotation:
        // the sequential-scan counters and the window-loop counters see
        // the calls in the same (index) order.
        let cat = catalogue();
        let trace = synth(6.0, 11);
        let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::FunctionHash);
        let mode = NodeMode::Baseline;
        let streamed =
            run_cluster_trace_streamed(&cat, &trace, &mode, &cfg, &FaultSpec::none(), 13, 32);
        let coupled =
            run_cluster_trace_coupled(&cat, &trace, &mode, &cfg, &FaultSpec::none(), 13, 32);
        assert_eq!(node_map(&streamed), node_map(&coupled));
        assert_eq!(streamed.outcomes.len(), coupled.outcomes.len());
    }

    #[test]
    fn coupled_replay_routes_feedback_policies() {
        let cat = catalogue();
        let trace = synth(8.0, 17);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let run = |lb: LoadBalancer| {
            let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), lb)
                .coupled(SimDuration::from_millis(500), false);
            run_cluster_trace_coupled(&cat, &trace, &mode, &cfg, &FaultSpec::none(), 19, 64)
        };
        let jsq = run(LoadBalancer::JoinShortestQueue { seed: 1 });
        let rr = run(LoadBalancer::RoundRobin);
        for r in [&jsq, &rr] {
            let measured = r.outcomes.iter().filter(|o| o.is_measured()).count();
            assert_eq!(measured as u64, trace.len());
        }
        assert_ne!(node_map(&jsq), node_map(&rr), "JSQ must route differently");
        let again = run(LoadBalancer::JoinShortestQueue { seed: 1 });
        assert_eq!(jsq.outcomes, again.outcomes);
    }

    #[test]
    fn peak_resident_calls_is_bounded_by_chunk_times_nodes() {
        // The acceptance bound: however long the trace, the ingestion
        // working set stays under chunk × nodes calls.
        let cat = catalogue();
        let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let mode = NodeMode::Baseline;
        let chunk = 32usize;
        let bound = (chunk * 3) as u64;
        let mut peaks = Vec::new();
        for rate in [4.0, 16.0] {
            let trace = synth(rate, 23);
            let r = run_cluster_trace_streamed(
                &cat,
                &trace,
                &mode,
                &cfg,
                &FaultSpec::none(),
                25,
                chunk,
            );
            assert!(
                r.peak_resident_calls <= bound,
                "{} calls resident for a {}-call trace (bound {bound})",
                r.peak_resident_calls,
                trace.len()
            );
            assert!(r.peak_resident_calls > 0);
            peaks.push(r.peak_resident_calls);
        }
        assert_eq!(peaks[0], peaks[1], "residency is independent of length");
        // The coupled cursor is one shared window: at most `chunk` calls.
        let trace = synth(8.0, 23);
        let ccfg = cfg.coupled(SimDuration::from_millis(500), false);
        let r =
            run_cluster_trace_coupled(&cat, &trace, &mode, &ccfg, &FaultSpec::none(), 25, chunk);
        assert!(r.peak_resident_calls <= chunk as u64);
    }

    #[test]
    fn run_cluster_source_dispatches_specs_and_traces() {
        use faas_workload::arrival::ArrivalSpec;
        use faas_workload::generate::WorkloadSpec;
        use faas_workload::mix::MixSpec;
        use faas_workload::weight::WeightSpec;

        let cat = catalogue();
        let cfg = ClusterConfig::independent(2, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let mode = NodeMode::Baseline;
        let spec = WorkloadSpec {
            arrival: ArrivalSpec::Uniform { count: 66 },
            mix: MixSpec::Equal,
            weights: WeightSpec::Uniform,
            window: SimDuration::from_secs(60),
        };
        // Spec sources reproduce the existing streamed engine bit for bit.
        let via_source = run_cluster_source(
            &cat,
            &WorkloadSource::Spec(spec.clone()),
            &mode,
            &cfg,
            &FaultSpec::none(),
            1,
            2,
            64,
        )
        .expect("spec source");
        let direct = crate::sim::run_cluster_streamed(&cat, &spec, &mode, &cfg, 1, 2);
        assert_eq!(via_source.outcomes, direct.outcomes);

        // Synthetic trace sources replay through the bounded engine.
        let synth_spec = SynthSpec::azure(6.0, SimDuration::from_secs(60));
        let trace = SyntheticTrace::new(&synth_spec, &cat, SimTime::ZERO, 1);
        let via_trace = run_cluster_source(
            &cat,
            &WorkloadSource::Trace(TraceSpec::Synthetic(synth_spec)),
            &mode,
            &cfg,
            &FaultSpec::none(),
            1,
            2,
            64,
        )
        .expect("synthetic source");
        assert_eq!(
            via_trace
                .outcomes
                .iter()
                .filter(|o| o.is_measured())
                .count() as u64,
            trace.len()
        );
        assert!(via_trace.peak_resident_calls > 0);

        // A finite lookahead selects the coupled variant (shared cursor:
        // peak residency is at most one chunk).
        let ccfg = cfg.coupled(SimDuration::from_millis(500), false);
        let synth_spec = SynthSpec::azure(6.0, SimDuration::from_secs(60));
        let via_coupled = run_cluster_source(
            &cat,
            &WorkloadSource::Trace(TraceSpec::Synthetic(synth_spec)),
            &mode,
            &ccfg,
            &FaultSpec::none(),
            1,
            2,
            64,
        )
        .expect("coupled source");
        assert!(via_coupled.peak_resident_calls <= 64);
        assert_eq!(
            via_coupled
                .outcomes
                .iter()
                .filter(|o| o.is_measured())
                .count() as u64,
            trace.len()
        );
    }

    #[test]
    fn faulted_replay_conserves_calls_and_fails_over() {
        let cat = catalogue();
        let trace = synth(10.0, 29);
        let n = trace.len();
        let mut faults = FaultSpec::crash_restart(21, SimTime::ZERO, SimDuration::from_secs(60));
        faults.transient_failure = 0.05;
        let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin)
            .coupled(SimDuration::from_millis(500), true);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let r = run_cluster_trace_coupled(&cat, &trace, &mode, &cfg, &faults, 31, 64);
        let measured = r.outcomes.iter().filter(|o| o.is_measured()).count() as u64;
        let dropped = r.drops.len() as u64;
        assert_eq!(measured + dropped, n, "replay call conservation");
        assert_eq!(r.fault_stats.crashes, 1);
        let again = run_cluster_trace_coupled(&cat, &trace, &mode, &cfg, &faults, 31, 64);
        assert_eq!(r.outcomes, again.outcomes);
        assert_eq!(r.fault_stats, again.fault_stats);
    }

    #[test]
    #[should_panic(expected = "coupled trace engine")]
    fn streamed_replay_rejects_feedback_policies() {
        let cat = catalogue();
        let trace = synth(2.0, 1);
        let cfg = ClusterConfig::independent(
            2,
            NodeConfig::paper(10),
            LoadBalancer::JoinShortestQueue { seed: 1 },
        );
        run_cluster_trace_streamed(
            &cat,
            &trace,
            &NodeMode::Baseline,
            &cfg,
            &FaultSpec::none(),
            1,
            64,
        );
    }
}
