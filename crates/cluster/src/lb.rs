//! Load-balancing policies of the controller.
//!
//! OpenWhisk's ShardingContainerPoolBalancer hashes each action to a home
//! invoker and overflows to the next when the home is saturated; many
//! deployments fall back to plain rotation. We implement both; the §VIII
//! experiments use round-robin, which spreads the paper's equal-per-function
//! load evenly (matching the paper's observation that the per-core intensity
//! is what determines node behaviour).

use faas_workload::sebs::FuncId;
use faas_workload::trace::Call;
use serde::{Deserialize, Serialize};

/// The controller's call-assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadBalancer {
    /// Calls rotate across workers in arrival order.
    RoundRobin,
    /// Each function has a home worker (hash of the function id); successive
    /// calls of one function rotate through workers starting at its home,
    /// approximating the sharding balancer's locality with overflow.
    FunctionHash,
}

impl LoadBalancer {
    /// Assign every call to a node in `0..nodes`. Assignment is by arrival
    /// order and deterministic.
    pub fn assign(&self, calls: &[Call], nodes: u16) -> Vec<u16> {
        assert!(nodes > 0, "cluster needs at least one node");
        match self {
            LoadBalancer::RoundRobin => (0..calls.len())
                .map(|i| (i % nodes as usize) as u16)
                .collect(),
            LoadBalancer::FunctionHash => {
                // Per-function rotation seeded at the function's home node.
                let mut counters: std::collections::BTreeMap<FuncId, u64> =
                    std::collections::BTreeMap::new();
                calls
                    .iter()
                    .map(|call| {
                        let counter = counters.entry(call.func).or_insert(0);
                        let home = home_node(call.func, nodes);
                        let node = (home as u64 + *counter) % nodes as u64;
                        *counter += 1;
                        node as u16
                    })
                    .collect()
            }
        }
    }
}

/// The home worker of a function under [`LoadBalancer::FunctionHash`].
pub fn home_node(func: FuncId, nodes: u16) -> u16 {
    // SplitMix-style scramble so consecutive FuncIds spread out.
    let mut x = func.0 as u64;
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    (x % nodes as u64) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_simcore::time::SimTime;
    use faas_workload::trace::{CallId, CallKind};

    fn calls(n: usize) -> Vec<Call> {
        (0..n)
            .map(|i| Call {
                id: CallId(i as u32),
                func: FuncId((i % 4) as u16),
                release: SimTime::from_millis(i as u64),
                kind: CallKind::Measured,
            })
            .collect()
    }

    #[test]
    fn round_robin_is_balanced() {
        let cs = calls(100);
        let assign = LoadBalancer::RoundRobin.assign(&cs, 4);
        for node in 0..4u16 {
            let count = assign.iter().filter(|&&n| n == node).count();
            assert_eq!(count, 25);
        }
        // Deterministic rotation.
        assert_eq!(&assign[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn function_hash_balances_per_function() {
        let cs = calls(400);
        let assign = LoadBalancer::FunctionHash.assign(&cs, 4);
        // Each function's 100 calls spread evenly.
        for func in 0..4u16 {
            for node in 0..4u16 {
                let count = cs
                    .iter()
                    .zip(&assign)
                    .filter(|(c, &n)| c.func == FuncId(func) && n == node)
                    .count();
                assert_eq!(count, 25, "func {func} node {node}");
            }
        }
    }

    #[test]
    fn function_hash_first_call_goes_home() {
        let cs = calls(4);
        let assign = LoadBalancer::FunctionHash.assign(&cs, 3);
        for (c, &n) in cs.iter().zip(&assign) {
            if cs.iter().position(|x| x.func == c.func) == cs.iter().position(|x| x.id == c.id) {
                assert_eq!(n, home_node(c.func, 3));
            }
        }
    }

    #[test]
    fn single_node_assigns_everything_to_zero() {
        let cs = calls(10);
        for lb in [LoadBalancer::RoundRobin, LoadBalancer::FunctionHash] {
            let assign = lb.assign(&cs, 1);
            assert!(assign.iter().all(|&n| n == 0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        LoadBalancer::RoundRobin.assign(&calls(1), 0);
    }

    #[test]
    fn home_nodes_spread() {
        let homes: std::collections::BTreeSet<u16> =
            (0..11).map(|f| home_node(FuncId(f), 4)).collect();
        assert!(
            homes.len() >= 3,
            "11 functions should cover most of 4 nodes"
        );
    }

    #[test]
    fn function_hash_is_deterministic_across_runs() {
        let cs = calls(257);
        for nodes in [2u16, 3, 8] {
            let a = LoadBalancer::FunctionHash.assign(&cs, nodes);
            let b = LoadBalancer::FunctionHash.assign(&cs, nodes);
            assert_eq!(a, b, "{nodes} nodes");
        }
    }

    #[test]
    fn home_node_load_is_balanced_over_many_functions() {
        // With many functions no node should be the home of more than ~2x
        // the mean share (the SplitMix scramble spreads consecutive ids).
        for nodes in [4u16, 8, 16] {
            let functions = 512u16;
            let mut counts = vec![0usize; nodes as usize];
            for f in 0..functions {
                counts[home_node(FuncId(f), nodes) as usize] += 1;
            }
            let mean = functions as usize / nodes as usize;
            for (node, &c) in counts.iter().enumerate() {
                assert!(
                    c <= 2 * mean,
                    "{nodes} nodes: node {node} is home to {c} functions (mean {mean})"
                );
                assert!(c > 0, "{nodes} nodes: node {node} is home to nothing");
            }
        }
    }

    #[test]
    fn overflow_rotates_in_order_from_home() {
        // Successive calls of one function must visit home, home+1, ...,
        // wrapping around the ring — the sharding balancer's overflow order.
        let func = FuncId(3);
        let nodes = 5u16;
        let cs: Vec<Call> = (0..12)
            .map(|i| Call {
                id: CallId(i as u32),
                func,
                release: SimTime::from_millis(i as u64),
                kind: CallKind::Measured,
            })
            .collect();
        let assign = LoadBalancer::FunctionHash.assign(&cs, nodes);
        let home = home_node(func, nodes);
        let expected: Vec<u16> = (0..12).map(|k| (home + k as u16) % nodes).collect();
        assert_eq!(assign, expected);
    }

    #[test]
    fn interleaved_functions_keep_independent_rotations() {
        // Two functions interleaved in arrival order: each one's rotation
        // advances only on its own calls.
        let nodes = 4u16;
        let cs: Vec<Call> = (0..8)
            .map(|i| Call {
                id: CallId(i as u32),
                func: FuncId((i % 2) as u16),
                release: SimTime::from_millis(i as u64),
                kind: CallKind::Measured,
            })
            .collect();
        let assign = LoadBalancer::FunctionHash.assign(&cs, nodes);
        for f in 0..2u16 {
            let seq: Vec<u16> = cs
                .iter()
                .zip(&assign)
                .filter(|(c, _)| c.func == FuncId(f))
                .map(|(_, &n)| n)
                .collect();
            let home = home_node(FuncId(f), nodes);
            let expected: Vec<u16> = (0..seq.len() as u16).map(|k| (home + k) % nodes).collect();
            assert_eq!(seq, expected, "function {f}");
        }
    }
}
