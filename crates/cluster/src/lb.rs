//! Load-balancing policies of the controller.
//!
//! OpenWhisk's ShardingContainerPoolBalancer hashes each action to a home
//! invoker and overflows to the next when the home is saturated; many
//! deployments fall back to plain rotation. We implement both; the §VIII
//! experiments use round-robin, which spreads the paper's equal-per-function
//! load evenly (matching the paper's observation that the per-core intensity
//! is what determines node behaviour).
//!
//! # Static vs feedback policies
//!
//! [`LoadBalancer::RoundRobin`] and [`LoadBalancer::FunctionHash`] are
//! *static*: the assignment is a pure function of the call sequence, so the
//! whole burst can be sharded up front and every node simulated
//! independently. [`LoadBalancer::JoinShortestQueue`],
//! [`LoadBalancer::PowerOfTwoChoices`] and their dominant-share twins
//! [`LoadBalancer::JoinShortestDominant`] /
//! [`LoadBalancer::PowerOfTwoDominant`] are *feedback* policies: they
//! route on the per-node state the coupled engine observes at each
//! conservative-window barrier (see `crate::coupled`) — queue depths for
//! the former pair, `(dominant resource share, backlog)` keys for the
//! latter — so they only exist there; [`LoadBalancer::assign`] panics for
//! them.
//!
//! Feedback routing is deterministic by construction: every random draw
//! (tie-breaks, the two probes of power-of-two) is a counter-based
//! function of `(policy seed, decision index)`, never a shared mutable
//! stream. The decision sequence therefore depends only on the order in
//! which calls are routed — not on how the engine batches them into
//! windows or threads — which is what makes coupled runs bit-identical
//! across thread counts.

use faas_workload::sebs::FuncId;
use faas_workload::trace::Call;
use serde::{Deserialize, Serialize};

/// The controller's call-assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadBalancer {
    /// Calls rotate across workers in arrival order.
    RoundRobin,
    /// Each function has a home worker (hash of the function id); successive
    /// calls of one function rotate through workers starting at its home,
    /// approximating the sharding balancer's locality with overflow.
    FunctionHash,
    /// Join-the-shortest-queue: each call goes to the healthy node with the
    /// smallest observed backlog (queued + in-flight), ties broken by a
    /// seeded deterministic draw. Feedback policy — coupled engine only.
    JoinShortestQueue {
        /// Seed of the counter-based tie-break draws.
        seed: u64,
    },
    /// Power-of-two-choices: probe two seeded-random healthy nodes, route
    /// to the less loaded (first probe on a tie). The classic
    /// load-balancing result: two probes capture most of JSQ's benefit
    /// without global state. Feedback policy — coupled engine only.
    PowerOfTwoChoices {
        /// Seed of the counter-based probe draws.
        seed: u64,
    },
    /// Join-shortest-queue on the *dominant resource share*: each call
    /// goes to the healthy node with the smallest observed
    /// [`NodeView::dominant_milli`], backlog as the secondary key (so
    /// nodes with an unmodeled or idle memory axis still spread by queue
    /// depth). Routes multi-resource load around memory-bandwidth
    /// hotspots that plain backlog counting cannot see. Feedback policy —
    /// coupled engine only.
    JoinShortestDominant {
        /// Seed of the counter-based tie-break draws.
        seed: u64,
    },
    /// Power-of-two-choices on the dominant resource share: probe two
    /// seeded-random healthy nodes, route to the one with the smaller
    /// `(dominant_milli, backlog)` key (first probe on a tie). Feedback
    /// policy — coupled engine only.
    PowerOfTwoDominant {
        /// Seed of the counter-based probe draws.
        seed: u64,
    },
}

impl LoadBalancer {
    /// Whether this policy routes on observed node state and therefore
    /// requires the coupled cluster engine.
    pub fn is_feedback(&self) -> bool {
        matches!(
            self,
            LoadBalancer::JoinShortestQueue { .. }
                | LoadBalancer::PowerOfTwoChoices { .. }
                | LoadBalancer::JoinShortestDominant { .. }
                | LoadBalancer::PowerOfTwoDominant { .. }
        )
    }

    /// Assign every call to a node in `0..nodes`. Assignment is by arrival
    /// order and deterministic. Panics for feedback policies — they have
    /// no static assignment; route them through the coupled engine.
    pub fn assign(&self, calls: &[Call], nodes: u16) -> Vec<u16> {
        assert!(nodes > 0, "cluster needs at least one node");
        match self {
            LoadBalancer::RoundRobin => (0..calls.len())
                .map(|i| (i % nodes as usize) as u16)
                .collect(),
            LoadBalancer::FunctionHash => {
                // Per-function rotation seeded at the function's home node.
                let mut counters: std::collections::BTreeMap<FuncId, u64> =
                    std::collections::BTreeMap::new();
                calls
                    .iter()
                    .map(|call| {
                        let counter = counters.entry(call.func).or_insert(0);
                        let home = home_node(call.func, nodes);
                        let node = (home as u64 + *counter) % nodes as u64;
                        *counter += 1;
                        node as u16
                    })
                    .collect()
            }
            LoadBalancer::JoinShortestQueue { .. }
            | LoadBalancer::PowerOfTwoChoices { .. }
            | LoadBalancer::JoinShortestDominant { .. }
            | LoadBalancer::PowerOfTwoDominant { .. } => {
                panic!("feedback policies have no static assignment: use the coupled engine")
            }
        }
    }
}

/// What a feedback balancer observes about one node at a window barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeView {
    /// Queued plus in-flight calls ([`faas_invoker::NodeProgress::backlog`]
    /// at the last barrier, plus the calls routed there since).
    pub backlog: usize,
    /// False between a crash and its restart.
    pub alive: bool,
    /// Dominant resource share at the last barrier, in thousandths
    /// ([`faas_invoker::NodeProgress::dominant_milli`]): the maximum over
    /// modeled resource axes of `consumption / capacity`. Stale by one
    /// window like `backlog`; calls routed since the barrier bump the
    /// backlog but not this share. Zero on a node whose axes are all
    /// unmodeled or idle.
    pub dominant_milli: u32,
}

/// SplitMix64 finalizer: the counter-based draw behind every feedback
/// routing decision.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The routing state of a feedback [`LoadBalancer`]: a decision counter.
/// Each [`FeedbackRouter::route`] call consumes exactly one counter value,
/// so the decision sequence is a pure function of `(policy seed, decision
/// order)` — independent of window widths, shard partitions and thread
/// counts.
#[derive(Debug, Clone)]
pub struct FeedbackRouter {
    lb: LoadBalancer,
    decisions: u64,
}

impl FeedbackRouter {
    /// Build a router for a feedback policy (panics on a static one).
    pub fn new(lb: LoadBalancer) -> FeedbackRouter {
        assert!(lb.is_feedback(), "static policies need no feedback router");
        FeedbackRouter { lb, decisions: 0 }
    }

    /// Route one call given the per-node views. Dead nodes are skipped
    /// while any node is alive; with the whole cluster down the call is
    /// routed as if all were up (like OpenWhisk committing to a down
    /// invoker's topic — it queues until the restart).
    pub fn route(&mut self, views: &[NodeView]) -> u16 {
        assert!(!views.is_empty(), "cluster needs at least one node");
        let d = self.decisions;
        self.decisions += 1;
        let any_alive = views.iter().any(|v| v.alive);
        let candidate = |n: usize| !any_alive || views[n].alive;
        match self.lb {
            LoadBalancer::JoinShortestQueue { seed } => {
                let best = (0..views.len())
                    .filter(|&n| candidate(n))
                    .map(|n| views[n].backlog)
                    .min()
                    .expect("at least one candidate");
                let ties: Vec<u16> = (0..views.len())
                    .filter(|&n| candidate(n) && views[n].backlog == best)
                    .map(|n| n as u16)
                    .collect();
                ties[(splitmix64(seed ^ d) % ties.len() as u64) as usize]
            }
            LoadBalancer::PowerOfTwoChoices { seed } => {
                let alive: Vec<u16> = (0..views.len())
                    .filter(|&n| candidate(n))
                    .map(|n| n as u16)
                    .collect();
                let r = splitmix64(seed ^ d);
                // Two probes from one draw (independent halves).
                let a = alive[(r as u32 as u64 % alive.len() as u64) as usize];
                let b = alive[((r >> 32) % alive.len() as u64) as usize];
                let (la, lb) = (views[a as usize].backlog, views[b as usize].backlog);
                // First probe wins ties: each probe is uniform, so tie
                // decisions stay unbiased (min-index would favour node 0).
                if la <= lb {
                    a
                } else {
                    b
                }
            }
            LoadBalancer::JoinShortestDominant { seed } => {
                // Key (dominant share, backlog): the share routes around
                // saturated resource axes, the backlog discriminates when
                // shares agree (all idle, or the memory axis unmodeled —
                // then this degenerates to plain JSQ tie-broken the same
                // way).
                let key = |n: usize| (views[n].dominant_milli, views[n].backlog);
                let best = (0..views.len())
                    .filter(|&n| candidate(n))
                    .map(key)
                    .min()
                    .expect("at least one candidate");
                let ties: Vec<u16> = (0..views.len())
                    .filter(|&n| candidate(n) && key(n) == best)
                    .map(|n| n as u16)
                    .collect();
                ties[(splitmix64(seed ^ d) % ties.len() as u64) as usize]
            }
            LoadBalancer::PowerOfTwoDominant { seed } => {
                let alive: Vec<u16> = (0..views.len())
                    .filter(|&n| candidate(n))
                    .map(|n| n as u16)
                    .collect();
                let r = splitmix64(seed ^ d);
                let a = alive[(r as u32 as u64 % alive.len() as u64) as usize];
                let b = alive[((r >> 32) % alive.len() as u64) as usize];
                let key = |n: u16| {
                    let v = &views[n as usize];
                    (v.dominant_milli, v.backlog)
                };
                // First probe wins ties, as in backlog power-of-two.
                if key(a) <= key(b) {
                    a
                } else {
                    b
                }
            }
            _ => unreachable!("checked in new()"),
        }
    }
}

/// The home worker of a function under [`LoadBalancer::FunctionHash`].
pub fn home_node(func: FuncId, nodes: u16) -> u16 {
    // SplitMix-style scramble so consecutive FuncIds spread out.
    let mut x = func.0 as u64;
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    (x % nodes as u64) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_simcore::time::SimTime;
    use faas_workload::trace::{CallId, CallKind};

    fn calls(n: usize) -> Vec<Call> {
        (0..n)
            .map(|i| Call {
                id: CallId(i as u64),
                func: FuncId((i % 4) as u16),
                release: SimTime::from_millis(i as u64),
                kind: CallKind::Measured,
            })
            .collect()
    }

    #[test]
    fn round_robin_is_balanced() {
        let cs = calls(100);
        let assign = LoadBalancer::RoundRobin.assign(&cs, 4);
        for node in 0..4u16 {
            let count = assign.iter().filter(|&&n| n == node).count();
            assert_eq!(count, 25);
        }
        // Deterministic rotation.
        assert_eq!(&assign[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn function_hash_balances_per_function() {
        let cs = calls(400);
        let assign = LoadBalancer::FunctionHash.assign(&cs, 4);
        // Each function's 100 calls spread evenly.
        for func in 0..4u16 {
            for node in 0..4u16 {
                let count = cs
                    .iter()
                    .zip(&assign)
                    .filter(|(c, &n)| c.func == FuncId(func) && n == node)
                    .count();
                assert_eq!(count, 25, "func {func} node {node}");
            }
        }
    }

    #[test]
    fn function_hash_first_call_goes_home() {
        let cs = calls(4);
        let assign = LoadBalancer::FunctionHash.assign(&cs, 3);
        for (c, &n) in cs.iter().zip(&assign) {
            if cs.iter().position(|x| x.func == c.func) == cs.iter().position(|x| x.id == c.id) {
                assert_eq!(n, home_node(c.func, 3));
            }
        }
    }

    #[test]
    fn single_node_assigns_everything_to_zero() {
        let cs = calls(10);
        for lb in [LoadBalancer::RoundRobin, LoadBalancer::FunctionHash] {
            let assign = lb.assign(&cs, 1);
            assert!(assign.iter().all(|&n| n == 0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        LoadBalancer::RoundRobin.assign(&calls(1), 0);
    }

    #[test]
    fn home_nodes_spread() {
        let homes: std::collections::BTreeSet<u16> =
            (0..11).map(|f| home_node(FuncId(f), 4)).collect();
        assert!(
            homes.len() >= 3,
            "11 functions should cover most of 4 nodes"
        );
    }

    #[test]
    fn function_hash_is_deterministic_across_runs() {
        let cs = calls(257);
        for nodes in [2u16, 3, 8] {
            let a = LoadBalancer::FunctionHash.assign(&cs, nodes);
            let b = LoadBalancer::FunctionHash.assign(&cs, nodes);
            assert_eq!(a, b, "{nodes} nodes");
        }
    }

    #[test]
    fn home_node_load_is_balanced_over_many_functions() {
        // With many functions no node should be the home of more than ~2x
        // the mean share (the SplitMix scramble spreads consecutive ids).
        for nodes in [4u16, 8, 16] {
            let functions = 512u16;
            let mut counts = vec![0usize; nodes as usize];
            for f in 0..functions {
                counts[home_node(FuncId(f), nodes) as usize] += 1;
            }
            let mean = functions as usize / nodes as usize;
            for (node, &c) in counts.iter().enumerate() {
                assert!(
                    c <= 2 * mean,
                    "{nodes} nodes: node {node} is home to {c} functions (mean {mean})"
                );
                assert!(c > 0, "{nodes} nodes: node {node} is home to nothing");
            }
        }
    }

    #[test]
    fn overflow_rotates_in_order_from_home() {
        // Successive calls of one function must visit home, home+1, ...,
        // wrapping around the ring — the sharding balancer's overflow order.
        let func = FuncId(3);
        let nodes = 5u16;
        let cs: Vec<Call> = (0..12)
            .map(|i| Call {
                id: CallId(i as u64),
                func,
                release: SimTime::from_millis(i as u64),
                kind: CallKind::Measured,
            })
            .collect();
        let assign = LoadBalancer::FunctionHash.assign(&cs, nodes);
        let home = home_node(func, nodes);
        let expected: Vec<u16> = (0..12).map(|k| (home + k as u16) % nodes).collect();
        assert_eq!(assign, expected);
    }

    #[test]
    fn feedback_flag_partitions_the_policies() {
        assert!(!LoadBalancer::RoundRobin.is_feedback());
        assert!(!LoadBalancer::FunctionHash.is_feedback());
        assert!(LoadBalancer::JoinShortestQueue { seed: 0 }.is_feedback());
        assert!(LoadBalancer::PowerOfTwoChoices { seed: 0 }.is_feedback());
        assert!(LoadBalancer::JoinShortestDominant { seed: 0 }.is_feedback());
        assert!(LoadBalancer::PowerOfTwoDominant { seed: 0 }.is_feedback());
    }

    #[test]
    #[should_panic(expected = "no static assignment")]
    fn feedback_policies_refuse_static_assignment() {
        LoadBalancer::JoinShortestQueue { seed: 1 }.assign(&calls(3), 2);
    }

    #[test]
    #[should_panic(expected = "no feedback router")]
    fn static_policies_refuse_a_router() {
        FeedbackRouter::new(LoadBalancer::RoundRobin);
    }

    #[test]
    fn jsq_routes_to_the_least_loaded_node() {
        let mut router = FeedbackRouter::new(LoadBalancer::JoinShortestQueue { seed: 9 });
        let views = [
            NodeView {
                backlog: 4,
                alive: true,
                dominant_milli: 0,
            },
            NodeView {
                backlog: 1,
                alive: true,
                dominant_milli: 0,
            },
            NodeView {
                backlog: 7,
                alive: true,
                dominant_milli: 0,
            },
        ];
        for _ in 0..10 {
            assert_eq!(router.route(&views), 1);
        }
    }

    #[test]
    fn dominant_jsq_routes_around_the_saturated_axis() {
        // Node 1 has the shortest queue but a saturated memory axis; the
        // dominant-share policy must send load to node 0 instead, where
        // plain JSQ would pile onto node 1.
        let views = [
            NodeView {
                backlog: 3,
                alive: true,
                dominant_milli: 400,
            },
            NodeView {
                backlog: 1,
                alive: true,
                dominant_milli: 1000,
            },
            NodeView {
                backlog: 5,
                alive: true,
                dominant_milli: 700,
            },
        ];
        let mut dominant = FeedbackRouter::new(LoadBalancer::JoinShortestDominant { seed: 9 });
        for _ in 0..10 {
            assert_eq!(dominant.route(&views), 0);
        }
        let mut jsq = FeedbackRouter::new(LoadBalancer::JoinShortestQueue { seed: 9 });
        assert_eq!(jsq.route(&views), 1);
    }

    #[test]
    fn dominant_jsq_degenerates_to_jsq_when_shares_agree() {
        // All shares equal (e.g. the memory axis unmodeled everywhere and
        // CPU idle): the backlog key takes over and both policies route
        // identically, draw for draw (same seed, same tie-break stream).
        let views = [
            NodeView {
                backlog: 4,
                alive: true,
                dominant_milli: 0,
            },
            NodeView {
                backlog: 2,
                alive: true,
                dominant_milli: 0,
            },
            NodeView {
                backlog: 2,
                alive: true,
                dominant_milli: 0,
            },
        ];
        let mut dominant = FeedbackRouter::new(LoadBalancer::JoinShortestDominant { seed: 5 });
        let mut jsq = FeedbackRouter::new(LoadBalancer::JoinShortestQueue { seed: 5 });
        for _ in 0..32 {
            assert_eq!(dominant.route(&views), jsq.route(&views));
        }
    }

    #[test]
    fn dominant_power_of_two_prefers_the_smaller_key() {
        // Two nodes: node 0 has the smaller (dominant, backlog) key, so it
        // wins every draw whose probes differ — only the draws where both
        // probes land on node 1 (a quarter in expectation) go there. Note
        // plain power-of-two would prefer node 1 (smaller backlog).
        let views = [
            NodeView {
                backlog: 9,
                alive: true,
                dominant_milli: 200,
            },
            NodeView {
                backlog: 1,
                alive: true,
                dominant_milli: 900,
            },
        ];
        let mut router = FeedbackRouter::new(LoadBalancer::PowerOfTwoDominant { seed: 3 });
        let rounds = 256;
        let to_zero = (0..rounds).filter(|_| router.route(&views) == 0).count();
        assert!(
            to_zero > rounds / 2,
            "node 0 won only {to_zero} of {rounds} draws"
        );
        let mut backlog = FeedbackRouter::new(LoadBalancer::PowerOfTwoChoices { seed: 3 });
        let to_one = (0..rounds).filter(|_| backlog.route(&views) == 1).count();
        assert!(to_one > rounds / 2, "backlog P2C must prefer node 1");
    }

    #[test]
    fn dead_cluster_still_routes_somewhere() {
        // All nodes down: the controller commits anyway (the call queues
        // until a restart), instead of panicking.
        let views = [NodeView {
            backlog: 0,
            alive: false,
            dominant_milli: 0,
        }; 3];
        for lb in [
            LoadBalancer::JoinShortestQueue { seed: 2 },
            LoadBalancer::PowerOfTwoChoices { seed: 2 },
            LoadBalancer::JoinShortestDominant { seed: 2 },
            LoadBalancer::PowerOfTwoDominant { seed: 2 },
        ] {
            let mut router = FeedbackRouter::new(lb);
            let n = router.route(&views);
            assert!(n < 3);
        }
    }

    #[test]
    fn interleaved_functions_keep_independent_rotations() {
        // Two functions interleaved in arrival order: each one's rotation
        // advances only on its own calls.
        let nodes = 4u16;
        let cs: Vec<Call> = (0..8)
            .map(|i| Call {
                id: CallId(i as u64),
                func: FuncId((i % 2) as u16),
                release: SimTime::from_millis(i as u64),
                kind: CallKind::Measured,
            })
            .collect();
        let assign = LoadBalancer::FunctionHash.assign(&cs, nodes);
        for f in 0..2u16 {
            let seq: Vec<u16> = cs
                .iter()
                .zip(&assign)
                .filter(|(c, _)| c.func == FuncId(f))
                .map(|(_, &n)| n)
                .collect();
            let home = home_node(FuncId(f), nodes);
            let expected: Vec<u16> = (0..seq.len() as u16).map(|k| (home + k) % nodes).collect();
            assert_eq!(seq, expected, "function {f}");
        }
    }
}
