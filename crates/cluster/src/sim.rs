//! Multi-node experiment engine (§VIII of the paper).
//!
//! The paper's cloud experiment fixes the *total* load (1320 requests for
//! 10-core workers, 2376 for 18-core workers, uniform over 60 s) and varies
//! the number of workers from 4 down to 1, so that `k` workers see per-core
//! intensity `120/k`. Every worker is warmed up before the burst.

use crate::lb::LoadBalancer;
use faas_invoker::{simulate_calls_faulted, NodeConfig, NodeMode, NodeResult};
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::arrival::ArrivalSpec;
use faas_workload::faults::FaultSpec;
use faas_workload::generate::{ShardedGenerator, WorkloadSpec};
use faas_workload::mix::MixSpec;
use faas_workload::scenario::{warmup_calls_for_waves, warmup_waves as warmup_waves_for};
use faas_workload::sebs::{Catalogue, FuncId};
use faas_workload::trace::Call;
use faas_workload::weight::{WeightSpec, WeightTable};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of one cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: u16,
    /// Per-worker configuration.
    pub node: NodeConfig,
    /// Controller load-balancing policy.
    pub lb: LoadBalancer,
    /// Conservative-window width of the coupled engine (see
    /// `crate::coupled`): between windows the controller observes node
    /// state and routes the next slice of arrivals.
    /// [`SimDuration::MAX`] couples nothing — one window runs every node
    /// to completion, which is exactly the independent-node engines.
    /// Ignored by [`run_cluster`]/[`run_cluster_streamed`] (they are
    /// always independent).
    pub lookahead: SimDuration,
    /// Cross-node failover (coupled engine only): a failed attempt with
    /// retries left is re-routed to the least-loaded healthy node at the
    /// next window barrier instead of retrying locally. Requires a finite
    /// `lookahead` and a fault plan.
    pub failover: bool,
}

impl ClusterConfig {
    /// A cluster of independent nodes: infinite lookahead, no failover —
    /// the configuration every pre-coupling experiment runs under.
    pub fn independent(nodes: u16, node: NodeConfig, lb: LoadBalancer) -> ClusterConfig {
        ClusterConfig {
            nodes,
            node,
            lb,
            lookahead: SimDuration::MAX,
            failover: false,
        }
    }

    /// The same cluster under the coupled engine: windows of `lookahead`,
    /// cross-node failover on.
    pub fn coupled(self, lookahead: SimDuration, failover: bool) -> ClusterConfig {
        ClusterConfig {
            lookahead,
            failover,
            ..self
        }
    }
}

/// A generated multi-node scenario: one shared burst plus per-node warm-ups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterScenario {
    /// The measured burst (shared across node-count configurations, as in
    /// the paper: "we send the same sequence of requests").
    pub burst: Vec<Call>,
    /// Start of the burst window.
    pub burst_start: SimTime,
    /// Burst window length.
    pub burst_window: SimDuration,
    /// Per-function warm-up wave times (each node replays these locally).
    pub(crate) warmup_waves: Vec<(FuncId, SimTime)>,
}

/// Per-node simulation seeds, derived sequentially in node order so the
/// RNG stream order is fixed regardless of how the node loop is scheduled.
pub(crate) fn node_seeds(seed: u64, nodes: u16) -> Vec<(u16, u64)> {
    let mut root = Xoshiro256::seed_from_u64(seed ^ 0xC1u64.rotate_left(32));
    (0..nodes)
        .map(|node| (node, root.derive_stream(node as u64).next_u64()))
        .collect()
}

impl ClusterScenario {
    /// Generate the paper's fixed-total-load burst: `per_function` calls of
    /// each function, uniform over `window`, preceded by per-node warm-up
    /// waves of `cores` parallel calls per function.
    ///
    /// A thin adapter over the workload subsystem
    /// ([`WorkloadSpec::generate_sorted`] with uniform arrivals and the
    /// equal split), bit-for-bit identical to the pre-subsystem generator
    /// (pinned below).
    pub fn generate(
        catalogue: &Catalogue,
        per_function: usize,
        cores: u32,
        window: SimDuration,
        seed: u64,
    ) -> ClusterScenario {
        let mut root = Xoshiro256::seed_from_u64(seed);
        let mut rng_times = root.derive_stream(0xC101);
        let mut rng_assign = root.derive_stream(0xC102);

        let (warmup_waves, burst_start) = warmup_waves_for(catalogue);
        let spec = WorkloadSpec {
            arrival: ArrivalSpec::Uniform {
                count: per_function * catalogue.len(),
            },
            mix: MixSpec::Equal,
            weights: WeightSpec::Uniform,
            window,
        };
        let burst =
            spec.generate_sorted(catalogue, burst_start, &mut rng_times, &mut rng_assign, 0);
        let _ = cores; // cores shapes only the per-node warm-up.

        ClusterScenario {
            burst,
            burst_start,
            burst_window: window,
            warmup_waves,
        }
    }

    /// The warm-up calls one node issues (with ids offset to stay unique
    /// within that node's simulation).
    pub(crate) fn node_warmup(&self, cores: u32, id_base: u64) -> Vec<Call> {
        warmup_calls_for_waves(&self.warmup_waves, cores, id_base)
    }
}

/// Run a cluster experiment: assign the burst, simulate every worker in
/// parallel, merge.
///
/// Each worker is an independent seeded discrete-event simulation, so the
/// node loop fans out on a rayon pool. Determinism is preserved: the
/// per-node call lists and seeds are derived sequentially up front (fixing
/// the RNG stream order), and the results are merged in node order.
pub fn run_cluster(
    catalogue: &Catalogue,
    scenario: &ClusterScenario,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    seed: u64,
) -> NodeResult {
    let weights = WeightTable::uniform(catalogue.len());
    run_cluster_weighted(catalogue, scenario, mode, cfg, &weights, seed)
}

/// [`run_cluster`] with per-function container weights/caps on every
/// worker (the weighted-container axis; see
/// [`faas_invoker::simulate_calls_weighted`]).
pub fn run_cluster_weighted(
    catalogue: &Catalogue,
    scenario: &ClusterScenario,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    weights: &WeightTable,
    seed: u64,
) -> NodeResult {
    run_cluster_faulted(
        catalogue,
        scenario,
        mode,
        cfg,
        weights,
        &FaultSpec::none(),
        seed,
    )
}

/// [`run_cluster_weighted`] under a fault plan: every worker derives its
/// own fault timeline from `(faults, node)` inside the invoker, so
/// per-node degradation, crashes and the retry policy compose with any
/// load balancer. With [`FaultSpec::none`] this *is*
/// [`run_cluster_weighted`] — bit-for-bit.
pub fn run_cluster_faulted(
    catalogue: &Catalogue,
    scenario: &ClusterScenario,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    weights: &WeightTable,
    faults: &FaultSpec,
    seed: u64,
) -> NodeResult {
    let assignment = cfg.lb.assign(&scenario.burst, cfg.nodes);
    // Warm-up ids start above the burst ids so each node's call list has
    // unique ids.
    let id_base = scenario.burst.len() as u64;

    // Only the seed derivation must run sequentially (it consumes the root
    // RNG stream in node order); the per-node call lists are deterministic
    // functions of the scenario, so they are built inside the parallel
    // closure — one node's list is alive per worker, not all at once.
    let seeds = node_seeds(seed, cfg.nodes);

    let results: Vec<NodeResult> = seeds
        .par_iter()
        .map(|&(node, node_seed)| {
            let mut calls = scenario.node_warmup(cfg.node.cores, id_base);
            calls.extend(
                scenario
                    .burst
                    .iter()
                    .zip(&assignment)
                    .filter(|(_, &n)| n == node)
                    .map(|(c, _)| *c),
            );
            calls.sort_by_key(|c| (c.release, c.id));
            simulate_calls_faulted(
                catalogue, &calls, mode, &cfg.node, weights, faults, node_seed, node,
            )
        })
        .collect();
    NodeResult::merge(results)
}

/// Run a cluster experiment with *streamed* scenario generation: each node
/// generates its own slice of the burst directly from the sharded
/// generator, so no shared `Vec<Call>` is materialized and scenario
/// assignment never serializes — the path that keeps clusters with
/// hundreds of nodes busy.
///
/// Under [`LoadBalancer::RoundRobin`] node `k` takes every `nodes`-th call
/// by generation index (a stride of the counter-based index space — the
/// streamed equivalent of rotation in arrival order). Per-function
/// rotation ([`LoadBalancer::FunctionHash`]) needs the global arrival
/// order, so that policy falls back to materializing the burst (still
/// generated in parallel chunks) and running the assignment path of
/// [`run_cluster`].
///
/// `scenario_seed` fixes the generated workload, `sim_seed` the per-node
/// service/cold-start draws — mirroring the `(scenario, seed)` split of
/// [`run_cluster`]. Fully deterministic in both. The spec's weight axis
/// ([`WorkloadSpec::weights`]) is realized once against the catalogue and
/// applied on every worker.
pub fn run_cluster_streamed(
    catalogue: &Catalogue,
    spec: &WorkloadSpec,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    scenario_seed: u64,
    sim_seed: u64,
) -> NodeResult {
    run_cluster_streamed_faulted(
        catalogue,
        spec,
        mode,
        cfg,
        &FaultSpec::none(),
        scenario_seed,
        sim_seed,
    )
}

/// [`run_cluster_streamed`] under a fault plan. Fault timelines are pure
/// functions of `(faults, node)` — independent of how the burst is
/// sharded — so the streamed stride path and the materialized fallback
/// inject the identical fault schedule. With [`FaultSpec::none`] this *is*
/// [`run_cluster_streamed`] — bit-for-bit.
pub fn run_cluster_streamed_faulted(
    catalogue: &Catalogue,
    spec: &WorkloadSpec,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    faults: &FaultSpec,
    scenario_seed: u64,
    sim_seed: u64,
) -> NodeResult {
    let (warmup_waves, burst_start) = warmup_waves_for(catalogue);
    let generator = ShardedGenerator::new(spec, catalogue, burst_start, scenario_seed);
    let weights = spec.weights.table(catalogue);

    match cfg.lb {
        LoadBalancer::RoundRobin => {
            let id_base = generator.len();
            let seeds = node_seeds(sim_seed, cfg.nodes);
            let results: Vec<NodeResult> = seeds
                .par_iter()
                .map(|&(node, node_seed)| {
                    let mut calls = warmup_calls_for_waves(&warmup_waves, cfg.node.cores, id_base);
                    calls.extend(generator.iter_stride(node as u64, cfg.nodes as u64));
                    calls.sort_by_key(|c| (c.release, c.id));
                    simulate_calls_faulted(
                        catalogue, &calls, mode, &cfg.node, &weights, faults, node_seed, node,
                    )
                })
                .collect();
            NodeResult::merge(results)
        }
        LoadBalancer::FunctionHash => {
            let mut burst = generator.generate_parallel();
            burst.sort_by_key(|c| (c.release, c.id));
            let scenario = ClusterScenario {
                burst,
                burst_start,
                burst_window: spec.window,
                warmup_waves,
            };
            run_cluster_faulted(catalogue, &scenario, mode, cfg, &weights, faults, sim_seed)
        }
        LoadBalancer::JoinShortestQueue { .. }
        | LoadBalancer::PowerOfTwoChoices { .. }
        | LoadBalancer::JoinShortestDominant { .. }
        | LoadBalancer::PowerOfTwoDominant { .. } => {
            panic!("feedback policies need the coupled engine: run_cluster_streamed_coupled")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_core::{Policy, SchedulerConfig};

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    fn scenario(per_function: usize, seed: u64) -> ClusterScenario {
        ClusterScenario::generate(
            &catalogue(),
            per_function,
            10,
            SimDuration::from_secs(60),
            seed,
        )
    }

    #[test]
    fn burst_size_matches_paper_formula() {
        // 10-core experiment: 1320 requests = 120 per function x 11.
        let sc = scenario(120, 1);
        assert_eq!(sc.burst.len(), 1320);
    }

    #[test]
    fn burst_is_shared_across_node_counts() {
        // The same scenario object is reused for 1-4 nodes; its burst is
        // by construction identical (the paper sends the same sequence).
        let sc = scenario(12, 2);
        let cat = catalogue();
        let cfg1 = ClusterConfig::independent(1, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let cfg2 = ClusterConfig { nodes: 2, ..cfg1 };
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let r1 = run_cluster(&cat, &sc, &mode, &cfg1, 3);
        let r2 = run_cluster(&cat, &sc, &mode, &cfg2, 3);
        assert_eq!(
            r1.outcomes.iter().filter(|o| o.is_measured()).count(),
            r2.outcomes.iter().filter(|o| o.is_measured()).count(),
        );
    }

    #[test]
    fn every_measured_call_served_once() {
        let sc = scenario(12, 3);
        let cat = catalogue();
        let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let r = run_cluster(&cat, &sc, &NodeMode::Baseline, &cfg, 4);
        let measured: Vec<_> = r.outcomes.iter().filter(|o| o.is_measured()).collect();
        assert_eq!(measured.len(), sc.burst.len());
        let mut ids: Vec<u64> = measured.iter().map(|o| o.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sc.burst.len(), "no duplicates");
    }

    #[test]
    fn outcomes_carry_node_indices() {
        let sc = scenario(12, 5);
        let cat = catalogue();
        let cfg = ClusterConfig::independent(4, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo));
        let r = run_cluster(&cat, &sc, &mode, &cfg, 6);
        let nodes: std::collections::BTreeSet<u16> = r
            .outcomes
            .iter()
            .filter(|o| o.is_measured())
            .map(|o| o.node)
            .collect();
        assert_eq!(nodes.len(), 4, "all nodes serve traffic");
    }

    #[test]
    fn more_nodes_reduce_response_time() {
        let sc = scenario(30, 7);
        let cat = catalogue();
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let avg = |nodes: u16| {
            let cfg =
                ClusterConfig::independent(nodes, NodeConfig::paper(10), LoadBalancer::RoundRobin);
            let r = run_cluster(&cat, &sc, &mode, &cfg, 8);
            let v: Vec<f64> = r
                .outcomes
                .iter()
                .filter(|o| o.is_measured())
                .map(|o| o.response_time().as_secs_f64())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let one = avg(1);
        let four = avg(4);
        assert!(
            four < one,
            "4 nodes ({four:.1}s) must beat 1 node ({one:.1}s)"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let sc = scenario(12, 9);
        let cat = catalogue();
        let cfg = ClusterConfig::independent(2, NodeConfig::paper(10), LoadBalancer::FunctionHash);
        let a = run_cluster(&cat, &sc, &NodeMode::Baseline, &cfg, 10);
        let b = run_cluster(&cat, &sc, &NodeMode::Baseline, &cfg, 10);
        assert_eq!(a.outcomes, b.outcomes);
    }

    /// FNV-1a over little-endian u64 words (regression pinning).
    fn fnv1a(acc: &mut u64, x: u64) {
        for b in x.to_le_bytes() {
            *acc = (*acc ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[test]
    fn cluster_scenarios_are_bit_identical_to_pre_subsystem_generator() {
        // Digests computed from the pre-`faas-workload`-subsystem generator;
        // `ClusterScenario::generate` is now an adapter and must reproduce
        // the original burst, warm-up waves and window bit for bit.
        let cat = catalogue();
        let digests: Vec<u64> = [101u64, 202, 303, 404, 505]
            .iter()
            .map(|&seed| {
                let sc = ClusterScenario::generate(&cat, 120, 10, SimDuration::from_secs(60), seed);
                let mut acc = 0xcbf2_9ce4_8422_2325u64;
                fnv1a(&mut acc, sc.burst_start.as_nanos());
                fnv1a(&mut acc, sc.burst_window.as_nanos());
                for &(func, at) in &sc.warmup_waves {
                    fnv1a(&mut acc, func.0 as u64);
                    fnv1a(&mut acc, at.as_nanos());
                }
                for call in &sc.burst {
                    fnv1a(&mut acc, call.id.0);
                    fnv1a(&mut acc, call.func.0 as u64);
                    fnv1a(&mut acc, call.release.as_nanos());
                }
                acc
            })
            .collect();
        let pinned: Vec<u64> = vec![
            17028776068084473943,
            17273010920469456298,
            16964004179114674755,
            12243102530036631855,
            5828814471167295050,
        ];
        assert_eq!(digests, pinned, "pinned cluster digests");
    }

    fn streamed_spec(count: usize) -> WorkloadSpec {
        WorkloadSpec {
            arrival: ArrivalSpec::Uniform { count },
            mix: MixSpec::Equal,
            weights: WeightSpec::Uniform,
            window: SimDuration::from_secs(60),
        }
    }

    #[test]
    fn streamed_round_robin_serves_every_call_once() {
        let cat = catalogue();
        let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let r = run_cluster_streamed(&cat, &streamed_spec(132), &NodeMode::Baseline, &cfg, 1, 2);
        let measured: Vec<_> = r.outcomes.iter().filter(|o| o.is_measured()).collect();
        assert_eq!(measured.len(), 132);
        let mut ids: Vec<u64> = measured.iter().map(|o| o.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 132, "no duplicates");
        // Stride assignment balances nodes exactly (132 = 3 x 44).
        for node in 0..3u16 {
            let n = measured.iter().filter(|o| o.node == node).count();
            assert_eq!(n, 44, "node {node}");
        }
    }

    #[test]
    fn streamed_is_deterministic() {
        let cat = catalogue();
        let cfg = ClusterConfig::independent(2, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let a = run_cluster_streamed(&cat, &streamed_spec(66), &mode, &cfg, 3, 4);
        let b = run_cluster_streamed(&cat, &streamed_spec(66), &mode, &cfg, 3, 4);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn streamed_function_hash_falls_back_to_materialized_assignment() {
        let cat = catalogue();
        let cfg = ClusterConfig::independent(2, NodeConfig::paper(10), LoadBalancer::FunctionHash);
        let r = run_cluster_streamed(&cat, &streamed_spec(66), &NodeMode::Baseline, &cfg, 5, 6);
        let measured = r.outcomes.iter().filter(|o| o.is_measured()).count();
        assert_eq!(measured, 66);
        let nodes: std::collections::BTreeSet<u16> = r
            .outcomes
            .iter()
            .filter(|o| o.is_measured())
            .map(|o| o.node)
            .collect();
        assert_eq!(nodes.len(), 2, "both nodes serve traffic");
    }

    #[test]
    fn streamed_scenario_seed_changes_workload_sim_seed_does_not() {
        let cat = catalogue();
        let cfg = ClusterConfig::independent(2, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let releases = |scen: u64, sim: u64| -> Vec<u64> {
            let r = run_cluster_streamed(
                &cat,
                &streamed_spec(66),
                &NodeMode::Baseline,
                &cfg,
                scen,
                sim,
            );
            let mut v: Vec<u64> = r
                .outcomes
                .iter()
                .filter(|o| o.is_measured())
                .map(|o| o.release.as_nanos())
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(releases(1, 2), releases(1, 3), "sim seed leaves workload");
        assert_ne!(releases(1, 2), releases(9, 2), "scenario seed changes it");
    }

    #[test]
    fn streamed_weighted_spec_reaches_every_node() {
        // The weight axis plumbs through the streamed path: a tiered spec
        // still serves every call exactly once on every node, and changes
        // the baseline outcomes relative to uniform weights.
        let cat = catalogue();
        let cfg = ClusterConfig::independent(2, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let mut spec = streamed_spec(132);
        spec.weights = WeightSpec::paper_tiers();
        let weighted = run_cluster_streamed(&cat, &spec, &NodeMode::Baseline, &cfg, 7, 8);
        let uniform =
            run_cluster_streamed(&cat, &streamed_spec(132), &NodeMode::Baseline, &cfg, 7, 8);
        let measured = weighted.outcomes.iter().filter(|o| o.is_measured()).count();
        assert_eq!(measured, 132);
        assert_ne!(
            weighted.outcomes, uniform.outcomes,
            "tiered weights must shift baseline completions"
        );
        // Same calls, same releases: only the service schedule moved.
        let ids = |r: &NodeResult| {
            let mut v: Vec<u64> = r
                .outcomes
                .iter()
                .filter(|o| o.is_measured())
                .map(|o| o.id.0)
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(&weighted), ids(&uniform));
    }

    #[test]
    fn streamed_weighted_function_hash_fallback_applies_weights() {
        let cat = catalogue();
        let cfg = ClusterConfig::independent(2, NodeConfig::paper(10), LoadBalancer::FunctionHash);
        // The tiered model includes a 0.5-core cap, which binds even on an
        // uncontended node (Zipf weights with unit caps only matter once
        // the run-queue oversubscribes the cores).
        let mut spec = streamed_spec(66);
        spec.weights = WeightSpec::paper_tiers();
        let weighted = run_cluster_streamed(&cat, &spec, &NodeMode::Baseline, &cfg, 9, 10);
        let uniform =
            run_cluster_streamed(&cat, &streamed_spec(66), &NodeMode::Baseline, &cfg, 9, 10);
        assert_eq!(
            weighted.outcomes.iter().filter(|o| o.is_measured()).count(),
            66
        );
        assert_ne!(
            weighted.outcomes, uniform.outcomes,
            "weights must reach the materialized fallback path"
        );
    }

    #[test]
    fn faulted_cluster_conserves_calls_and_reproduces_bit_for_bit() {
        // Crash worker 0 mid-burst on a 3-node streamed cluster: every
        // measured call either completes or is reported dropped, only node
        // 0 crashes, and a fixed seed reproduces the run exactly.
        let cat = catalogue();
        let cfg = ClusterConfig::independent(3, NodeConfig::paper(10), LoadBalancer::RoundRobin);
        let spec = streamed_spec(660);
        let (_, burst_start) = warmup_waves_for(&cat);
        let mut faults = FaultSpec::crash_restart(21, burst_start, SimDuration::from_secs(60));
        faults.transient_failure = 0.05;
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let r = run_cluster_streamed_faulted(&cat, &spec, &mode, &cfg, &faults, 21, 22);
        let measured = r.outcomes.iter().filter(|o| o.is_measured()).count();
        let measured_drops = r.drops.iter().filter(|d| d.id.0 < 660).count();
        assert_eq!(
            measured + measured_drops,
            660,
            "cluster call conservation: completed XOR dropped"
        );
        assert_eq!(r.fault_stats.crashes, 1, "only node 0 crashes");
        assert!(r.fault_stats.crash_kills > 0);
        assert!(r.fault_stats.retries > 0);
        let again = run_cluster_streamed_faulted(&cat, &spec, &mode, &cfg, &faults, 21, 22);
        assert_eq!(r.outcomes, again.outcomes);
        assert_eq!(r.drops, again.drops);
        assert_eq!(r.fault_stats, again.fault_stats);
    }

    #[test]
    fn fault_timelines_are_shard_invariant() {
        // The identical per-node fault schedule reaches both streamed
        // paths: the stride path and the materialize-and-assign fallback
        // derive each worker's timeline from `(faults, node)` alone, so
        // degrading node 1 shows up in both (different LB policies route
        // different calls, so only the fault accounting is comparable).
        let cat = catalogue();
        let spec = streamed_spec(132);
        let (_, burst_start) = warmup_waves_for(&cat);
        let faults = FaultSpec::degradation(31, burst_start, SimDuration::from_secs(60));
        let run_with = |lb: LoadBalancer| {
            let cfg = ClusterConfig::independent(2, NodeConfig::paper(10), lb);
            run_cluster_streamed_faulted(&cat, &spec, &NodeMode::Baseline, &cfg, &faults, 31, 32)
        };
        let stride = run_with(LoadBalancer::RoundRobin);
        let fallback = run_with(LoadBalancer::FunctionHash);
        assert_eq!(
            stride.fault_stats.capacity_events, fallback.fault_stats.capacity_events,
            "both sharding paths replay the same capacity schedule"
        );
        assert!(stride.fault_stats.capacity_events > 0);
        assert!(stride.drops.is_empty() && fallback.drops.is_empty());
    }

    #[test]
    fn warmup_ids_do_not_collide_with_burst() {
        let sc = scenario(12, 11);
        let warm = sc.node_warmup(10, sc.burst.len() as u64);
        let burst_max = sc.burst.iter().map(|c| c.id.0).max().unwrap();
        assert!(warm.iter().all(|c| c.id.0 > burst_max));
    }
}
