//! Multi-node experiment engine (§VIII of the paper).
//!
//! The paper's cloud experiment fixes the *total* load (1320 requests for
//! 10-core workers, 2376 for 18-core workers, uniform over 60 s) and varies
//! the number of workers from 4 down to 1, so that `k` workers see per-core
//! intensity `120/k`. Every worker is warmed up before the burst.

use crate::lb::LoadBalancer;
use faas_invoker::{simulate_calls, NodeConfig, NodeMode, NodeResult};
use faas_simcore::rng::Xoshiro256;
use faas_simcore::time::{SimDuration, SimTime};
use faas_workload::sebs::{Catalogue, FuncId};
use faas_workload::trace::{Call, CallId, CallKind};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of one cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: u16,
    /// Per-worker configuration.
    pub node: NodeConfig,
    /// Controller load-balancing policy.
    pub lb: LoadBalancer,
}

/// A generated multi-node scenario: one shared burst plus per-node warm-ups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterScenario {
    /// The measured burst (shared across node-count configurations, as in
    /// the paper: "we send the same sequence of requests").
    pub burst: Vec<Call>,
    /// Start of the burst window.
    pub burst_start: SimTime,
    /// Burst window length.
    pub burst_window: SimDuration,
    /// Per-function warm-up wave times (each node replays these locally).
    warmup_waves: Vec<(FuncId, SimTime)>,
}

impl ClusterScenario {
    /// Generate the paper's fixed-total-load burst: `per_function` calls of
    /// each function, uniform over `window`, preceded by per-node warm-up
    /// waves of `cores` parallel calls per function.
    pub fn generate(
        catalogue: &Catalogue,
        per_function: usize,
        cores: u32,
        window: SimDuration,
        seed: u64,
    ) -> ClusterScenario {
        let mut root = Xoshiro256::seed_from_u64(seed);
        let mut rng_times = root.derive_stream(0xC101);
        let mut rng_assign = root.derive_stream(0xC102);

        // Warm-up waves: the wave *times* are shared; each node issues its
        // own `cores` parallel calls at each wave.
        let mut warmup_waves = Vec::with_capacity(catalogue.len());
        let mut wave_start = SimTime::ZERO;
        for func in catalogue.ids() {
            warmup_waves.push((func, wave_start));
            wave_start += SimDuration::from_secs(12);
        }
        let burst_start = wave_start + SimDuration::from_secs(5);

        let total = per_function * catalogue.len();
        let mut funcs: Vec<FuncId> = Vec::with_capacity(total);
        for func in catalogue.ids() {
            funcs.extend(std::iter::repeat_n(func, per_function));
        }
        rng_assign.shuffle(&mut funcs);
        let mut times: Vec<SimTime> = (0..total)
            .map(|_| {
                burst_start
                    + SimDuration::from_secs_f64(rng_times.uniform_f64(0.0, window.as_secs_f64()))
            })
            .collect();
        times.sort_unstable();

        let burst: Vec<Call> = times
            .into_iter()
            .zip(funcs)
            .enumerate()
            .map(|(i, (release, func))| Call {
                id: CallId(i as u32),
                func,
                release,
                kind: CallKind::Measured,
            })
            .collect();
        let _ = cores; // cores shapes only the per-node warm-up, added below.

        ClusterScenario {
            burst,
            burst_start,
            burst_window: window,
            warmup_waves,
        }
    }

    /// The warm-up calls one node issues (with ids offset to stay unique
    /// within that node's simulation).
    fn node_warmup(&self, cores: u32, id_base: u32) -> Vec<Call> {
        let mut calls = Vec::with_capacity(self.warmup_waves.len() * cores as usize);
        let mut next = id_base;
        for &(func, at) in &self.warmup_waves {
            for _ in 0..cores {
                calls.push(Call {
                    id: CallId(next),
                    func,
                    release: at,
                    kind: CallKind::Warmup,
                });
                next += 1;
            }
        }
        calls
    }
}

/// Run a cluster experiment: assign the burst, simulate every worker in
/// parallel, merge.
///
/// Each worker is an independent seeded discrete-event simulation, so the
/// node loop fans out on a rayon pool. Determinism is preserved: the
/// per-node call lists and seeds are derived sequentially up front (fixing
/// the RNG stream order), and the results are merged in node order.
pub fn run_cluster(
    catalogue: &Catalogue,
    scenario: &ClusterScenario,
    mode: &NodeMode,
    cfg: &ClusterConfig,
    seed: u64,
) -> NodeResult {
    let assignment = cfg.lb.assign(&scenario.burst, cfg.nodes);
    let mut root = Xoshiro256::seed_from_u64(seed ^ 0xC1u64.rotate_left(32));
    // Warm-up ids start above the burst ids so each node's call list has
    // unique ids.
    let id_base = scenario.burst.len() as u32;

    // Only the seed derivation must run sequentially (it consumes the root
    // RNG stream in node order); the per-node call lists are deterministic
    // functions of the scenario, so they are built inside the parallel
    // closure — one node's list is alive per worker, not all at once.
    let seeds: Vec<(u16, u64)> = (0..cfg.nodes)
        .map(|node| (node, root.derive_stream(node as u64).next_u64()))
        .collect();

    let results: Vec<NodeResult> = seeds
        .par_iter()
        .map(|&(node, node_seed)| {
            let mut calls = scenario.node_warmup(cfg.node.cores, id_base);
            calls.extend(
                scenario
                    .burst
                    .iter()
                    .zip(&assignment)
                    .filter(|(_, &n)| n == node)
                    .map(|(c, _)| *c),
            );
            calls.sort_by_key(|c| (c.release, c.id));
            simulate_calls(catalogue, &calls, mode, &cfg.node, node_seed, node)
        })
        .collect();
    NodeResult::merge(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_core::{Policy, SchedulerConfig};

    fn catalogue() -> Catalogue {
        Catalogue::sebs()
    }

    fn scenario(per_function: usize, seed: u64) -> ClusterScenario {
        ClusterScenario::generate(
            &catalogue(),
            per_function,
            10,
            SimDuration::from_secs(60),
            seed,
        )
    }

    #[test]
    fn burst_size_matches_paper_formula() {
        // 10-core experiment: 1320 requests = 120 per function x 11.
        let sc = scenario(120, 1);
        assert_eq!(sc.burst.len(), 1320);
    }

    #[test]
    fn burst_is_shared_across_node_counts() {
        // The same scenario object is reused for 1-4 nodes; its burst is
        // by construction identical (the paper sends the same sequence).
        let sc = scenario(12, 2);
        let cat = catalogue();
        let cfg1 = ClusterConfig {
            nodes: 1,
            node: NodeConfig::paper(10),
            lb: LoadBalancer::RoundRobin,
        };
        let cfg2 = ClusterConfig { nodes: 2, ..cfg1 };
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let r1 = run_cluster(&cat, &sc, &mode, &cfg1, 3);
        let r2 = run_cluster(&cat, &sc, &mode, &cfg2, 3);
        assert_eq!(
            r1.outcomes.iter().filter(|o| o.is_measured()).count(),
            r2.outcomes.iter().filter(|o| o.is_measured()).count(),
        );
    }

    #[test]
    fn every_measured_call_served_once() {
        let sc = scenario(12, 3);
        let cat = catalogue();
        let cfg = ClusterConfig {
            nodes: 3,
            node: NodeConfig::paper(10),
            lb: LoadBalancer::RoundRobin,
        };
        let r = run_cluster(&cat, &sc, &NodeMode::Baseline, &cfg, 4);
        let measured: Vec<_> = r.outcomes.iter().filter(|o| o.is_measured()).collect();
        assert_eq!(measured.len(), sc.burst.len());
        let mut ids: Vec<u32> = measured.iter().map(|o| o.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sc.burst.len(), "no duplicates");
    }

    #[test]
    fn outcomes_carry_node_indices() {
        let sc = scenario(12, 5);
        let cat = catalogue();
        let cfg = ClusterConfig {
            nodes: 4,
            node: NodeConfig::paper(10),
            lb: LoadBalancer::RoundRobin,
        };
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::Fifo));
        let r = run_cluster(&cat, &sc, &mode, &cfg, 6);
        let nodes: std::collections::BTreeSet<u16> = r
            .outcomes
            .iter()
            .filter(|o| o.is_measured())
            .map(|o| o.node)
            .collect();
        assert_eq!(nodes.len(), 4, "all nodes serve traffic");
    }

    #[test]
    fn more_nodes_reduce_response_time() {
        let sc = scenario(30, 7);
        let cat = catalogue();
        let mode = NodeMode::Scheduled(SchedulerConfig::paper(Policy::FairChoice));
        let avg = |nodes: u16| {
            let cfg = ClusterConfig {
                nodes,
                node: NodeConfig::paper(10),
                lb: LoadBalancer::RoundRobin,
            };
            let r = run_cluster(&cat, &sc, &mode, &cfg, 8);
            let v: Vec<f64> = r
                .outcomes
                .iter()
                .filter(|o| o.is_measured())
                .map(|o| o.response_time().as_secs_f64())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let one = avg(1);
        let four = avg(4);
        assert!(
            four < one,
            "4 nodes ({four:.1}s) must beat 1 node ({one:.1}s)"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let sc = scenario(12, 9);
        let cat = catalogue();
        let cfg = ClusterConfig {
            nodes: 2,
            node: NodeConfig::paper(10),
            lb: LoadBalancer::FunctionHash,
        };
        let a = run_cluster(&cat, &sc, &NodeMode::Baseline, &cfg, 10);
        let b = run_cluster(&cat, &sc, &NodeMode::Baseline, &cfg, 10);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn warmup_ids_do_not_collide_with_burst() {
        let sc = scenario(12, 11);
        let warm = sc.node_warmup(10, sc.burst.len() as u32);
        let burst_max = sc.burst.iter().map(|c| c.id.0).max().unwrap();
        assert!(warm.iter().all(|c| c.id.0 > burst_max));
    }
}
